file(REMOVE_RECURSE
  "libnetrev_rtl.a"
)
