# Empty compiler generated dependencies file for netrev_rtl.
# This may be replaced when dependencies are built.
