file(REMOVE_RECURSE
  "CMakeFiles/netrev_rtl.dir/rtl/expr.cpp.o"
  "CMakeFiles/netrev_rtl.dir/rtl/expr.cpp.o.d"
  "CMakeFiles/netrev_rtl.dir/rtl/lower_ops.cpp.o"
  "CMakeFiles/netrev_rtl.dir/rtl/lower_ops.cpp.o.d"
  "CMakeFiles/netrev_rtl.dir/rtl/module.cpp.o"
  "CMakeFiles/netrev_rtl.dir/rtl/module.cpp.o.d"
  "CMakeFiles/netrev_rtl.dir/rtl/netnamer.cpp.o"
  "CMakeFiles/netrev_rtl.dir/rtl/netnamer.cpp.o.d"
  "CMakeFiles/netrev_rtl.dir/rtl/scan.cpp.o"
  "CMakeFiles/netrev_rtl.dir/rtl/scan.cpp.o.d"
  "CMakeFiles/netrev_rtl.dir/rtl/synth.cpp.o"
  "CMakeFiles/netrev_rtl.dir/rtl/synth.cpp.o.d"
  "libnetrev_rtl.a"
  "libnetrev_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netrev_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
