
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/expr.cpp" "src/CMakeFiles/netrev_rtl.dir/rtl/expr.cpp.o" "gcc" "src/CMakeFiles/netrev_rtl.dir/rtl/expr.cpp.o.d"
  "/root/repo/src/rtl/lower_ops.cpp" "src/CMakeFiles/netrev_rtl.dir/rtl/lower_ops.cpp.o" "gcc" "src/CMakeFiles/netrev_rtl.dir/rtl/lower_ops.cpp.o.d"
  "/root/repo/src/rtl/module.cpp" "src/CMakeFiles/netrev_rtl.dir/rtl/module.cpp.o" "gcc" "src/CMakeFiles/netrev_rtl.dir/rtl/module.cpp.o.d"
  "/root/repo/src/rtl/netnamer.cpp" "src/CMakeFiles/netrev_rtl.dir/rtl/netnamer.cpp.o" "gcc" "src/CMakeFiles/netrev_rtl.dir/rtl/netnamer.cpp.o.d"
  "/root/repo/src/rtl/scan.cpp" "src/CMakeFiles/netrev_rtl.dir/rtl/scan.cpp.o" "gcc" "src/CMakeFiles/netrev_rtl.dir/rtl/scan.cpp.o.d"
  "/root/repo/src/rtl/synth.cpp" "src/CMakeFiles/netrev_rtl.dir/rtl/synth.cpp.o" "gcc" "src/CMakeFiles/netrev_rtl.dir/rtl/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netrev_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
