file(REMOVE_RECURSE
  "CMakeFiles/netrev_common.dir/common/text.cpp.o"
  "CMakeFiles/netrev_common.dir/common/text.cpp.o.d"
  "libnetrev_common.a"
  "libnetrev_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netrev_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
