file(REMOVE_RECURSE
  "libnetrev_common.a"
)
