# Empty dependencies file for netrev_common.
# This may be replaced when dependencies are built.
