# Empty compiler generated dependencies file for netrev_itc.
# This may be replaced when dependencies are built.
