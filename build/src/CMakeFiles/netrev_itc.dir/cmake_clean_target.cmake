file(REMOVE_RECURSE
  "libnetrev_itc.a"
)
