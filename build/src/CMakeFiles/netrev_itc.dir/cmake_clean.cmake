file(REMOVE_RECURSE
  "CMakeFiles/netrev_itc.dir/itc/benchgen.cpp.o"
  "CMakeFiles/netrev_itc.dir/itc/benchgen.cpp.o.d"
  "CMakeFiles/netrev_itc.dir/itc/family.cpp.o"
  "CMakeFiles/netrev_itc.dir/itc/family.cpp.o.d"
  "CMakeFiles/netrev_itc.dir/itc/fig1.cpp.o"
  "CMakeFiles/netrev_itc.dir/itc/fig1.cpp.o.d"
  "CMakeFiles/netrev_itc.dir/itc/profile.cpp.o"
  "CMakeFiles/netrev_itc.dir/itc/profile.cpp.o.d"
  "CMakeFiles/netrev_itc.dir/itc/wordgen.cpp.o"
  "CMakeFiles/netrev_itc.dir/itc/wordgen.cpp.o.d"
  "libnetrev_itc.a"
  "libnetrev_itc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netrev_itc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
