file(REMOVE_RECURSE
  "libnetrev_sim.a"
)
