# Empty compiler generated dependencies file for netrev_sim.
# This may be replaced when dependencies are built.
