file(REMOVE_RECURSE
  "CMakeFiles/netrev_sim.dir/sim/equivalence.cpp.o"
  "CMakeFiles/netrev_sim.dir/sim/equivalence.cpp.o.d"
  "CMakeFiles/netrev_sim.dir/sim/levelize.cpp.o"
  "CMakeFiles/netrev_sim.dir/sim/levelize.cpp.o.d"
  "CMakeFiles/netrev_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/netrev_sim.dir/sim/simulator.cpp.o.d"
  "libnetrev_sim.a"
  "libnetrev_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netrev_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
