# Empty compiler generated dependencies file for netrev_cli.
# This may be replaced when dependencies are built.
