file(REMOVE_RECURSE
  "libnetrev_cli.a"
)
