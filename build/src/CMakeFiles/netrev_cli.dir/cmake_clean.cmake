file(REMOVE_RECURSE
  "CMakeFiles/netrev_cli.dir/cli/cli.cpp.o"
  "CMakeFiles/netrev_cli.dir/cli/cli.cpp.o.d"
  "libnetrev_cli.a"
  "libnetrev_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netrev_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
