
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wordrec/assignment.cpp" "src/CMakeFiles/netrev_wordrec.dir/wordrec/assignment.cpp.o" "gcc" "src/CMakeFiles/netrev_wordrec.dir/wordrec/assignment.cpp.o.d"
  "/root/repo/src/wordrec/baseline.cpp" "src/CMakeFiles/netrev_wordrec.dir/wordrec/baseline.cpp.o" "gcc" "src/CMakeFiles/netrev_wordrec.dir/wordrec/baseline.cpp.o.d"
  "/root/repo/src/wordrec/control.cpp" "src/CMakeFiles/netrev_wordrec.dir/wordrec/control.cpp.o" "gcc" "src/CMakeFiles/netrev_wordrec.dir/wordrec/control.cpp.o.d"
  "/root/repo/src/wordrec/funcheck.cpp" "src/CMakeFiles/netrev_wordrec.dir/wordrec/funcheck.cpp.o" "gcc" "src/CMakeFiles/netrev_wordrec.dir/wordrec/funcheck.cpp.o.d"
  "/root/repo/src/wordrec/grouping.cpp" "src/CMakeFiles/netrev_wordrec.dir/wordrec/grouping.cpp.o" "gcc" "src/CMakeFiles/netrev_wordrec.dir/wordrec/grouping.cpp.o.d"
  "/root/repo/src/wordrec/hash_key.cpp" "src/CMakeFiles/netrev_wordrec.dir/wordrec/hash_key.cpp.o" "gcc" "src/CMakeFiles/netrev_wordrec.dir/wordrec/hash_key.cpp.o.d"
  "/root/repo/src/wordrec/identify.cpp" "src/CMakeFiles/netrev_wordrec.dir/wordrec/identify.cpp.o" "gcc" "src/CMakeFiles/netrev_wordrec.dir/wordrec/identify.cpp.o.d"
  "/root/repo/src/wordrec/matching.cpp" "src/CMakeFiles/netrev_wordrec.dir/wordrec/matching.cpp.o" "gcc" "src/CMakeFiles/netrev_wordrec.dir/wordrec/matching.cpp.o.d"
  "/root/repo/src/wordrec/propagation.cpp" "src/CMakeFiles/netrev_wordrec.dir/wordrec/propagation.cpp.o" "gcc" "src/CMakeFiles/netrev_wordrec.dir/wordrec/propagation.cpp.o.d"
  "/root/repo/src/wordrec/reduce.cpp" "src/CMakeFiles/netrev_wordrec.dir/wordrec/reduce.cpp.o" "gcc" "src/CMakeFiles/netrev_wordrec.dir/wordrec/reduce.cpp.o.d"
  "/root/repo/src/wordrec/trace.cpp" "src/CMakeFiles/netrev_wordrec.dir/wordrec/trace.cpp.o" "gcc" "src/CMakeFiles/netrev_wordrec.dir/wordrec/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netrev_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
