file(REMOVE_RECURSE
  "CMakeFiles/netrev_wordrec.dir/wordrec/assignment.cpp.o"
  "CMakeFiles/netrev_wordrec.dir/wordrec/assignment.cpp.o.d"
  "CMakeFiles/netrev_wordrec.dir/wordrec/baseline.cpp.o"
  "CMakeFiles/netrev_wordrec.dir/wordrec/baseline.cpp.o.d"
  "CMakeFiles/netrev_wordrec.dir/wordrec/control.cpp.o"
  "CMakeFiles/netrev_wordrec.dir/wordrec/control.cpp.o.d"
  "CMakeFiles/netrev_wordrec.dir/wordrec/funcheck.cpp.o"
  "CMakeFiles/netrev_wordrec.dir/wordrec/funcheck.cpp.o.d"
  "CMakeFiles/netrev_wordrec.dir/wordrec/grouping.cpp.o"
  "CMakeFiles/netrev_wordrec.dir/wordrec/grouping.cpp.o.d"
  "CMakeFiles/netrev_wordrec.dir/wordrec/hash_key.cpp.o"
  "CMakeFiles/netrev_wordrec.dir/wordrec/hash_key.cpp.o.d"
  "CMakeFiles/netrev_wordrec.dir/wordrec/identify.cpp.o"
  "CMakeFiles/netrev_wordrec.dir/wordrec/identify.cpp.o.d"
  "CMakeFiles/netrev_wordrec.dir/wordrec/matching.cpp.o"
  "CMakeFiles/netrev_wordrec.dir/wordrec/matching.cpp.o.d"
  "CMakeFiles/netrev_wordrec.dir/wordrec/propagation.cpp.o"
  "CMakeFiles/netrev_wordrec.dir/wordrec/propagation.cpp.o.d"
  "CMakeFiles/netrev_wordrec.dir/wordrec/reduce.cpp.o"
  "CMakeFiles/netrev_wordrec.dir/wordrec/reduce.cpp.o.d"
  "CMakeFiles/netrev_wordrec.dir/wordrec/trace.cpp.o"
  "CMakeFiles/netrev_wordrec.dir/wordrec/trace.cpp.o.d"
  "libnetrev_wordrec.a"
  "libnetrev_wordrec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netrev_wordrec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
