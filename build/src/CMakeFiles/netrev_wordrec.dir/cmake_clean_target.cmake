file(REMOVE_RECURSE
  "libnetrev_wordrec.a"
)
