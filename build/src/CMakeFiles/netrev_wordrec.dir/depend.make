# Empty dependencies file for netrev_wordrec.
# This may be replaced when dependencies are built.
