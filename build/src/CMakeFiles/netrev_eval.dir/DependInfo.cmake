
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/diagnose.cpp" "src/CMakeFiles/netrev_eval.dir/eval/diagnose.cpp.o" "gcc" "src/CMakeFiles/netrev_eval.dir/eval/diagnose.cpp.o.d"
  "/root/repo/src/eval/metrics.cpp" "src/CMakeFiles/netrev_eval.dir/eval/metrics.cpp.o" "gcc" "src/CMakeFiles/netrev_eval.dir/eval/metrics.cpp.o.d"
  "/root/repo/src/eval/reference.cpp" "src/CMakeFiles/netrev_eval.dir/eval/reference.cpp.o" "gcc" "src/CMakeFiles/netrev_eval.dir/eval/reference.cpp.o.d"
  "/root/repo/src/eval/report.cpp" "src/CMakeFiles/netrev_eval.dir/eval/report.cpp.o" "gcc" "src/CMakeFiles/netrev_eval.dir/eval/report.cpp.o.d"
  "/root/repo/src/eval/runner.cpp" "src/CMakeFiles/netrev_eval.dir/eval/runner.cpp.o" "gcc" "src/CMakeFiles/netrev_eval.dir/eval/runner.cpp.o.d"
  "/root/repo/src/eval/table.cpp" "src/CMakeFiles/netrev_eval.dir/eval/table.cpp.o" "gcc" "src/CMakeFiles/netrev_eval.dir/eval/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netrev_wordrec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_itc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
