file(REMOVE_RECURSE
  "CMakeFiles/netrev_eval.dir/eval/diagnose.cpp.o"
  "CMakeFiles/netrev_eval.dir/eval/diagnose.cpp.o.d"
  "CMakeFiles/netrev_eval.dir/eval/metrics.cpp.o"
  "CMakeFiles/netrev_eval.dir/eval/metrics.cpp.o.d"
  "CMakeFiles/netrev_eval.dir/eval/reference.cpp.o"
  "CMakeFiles/netrev_eval.dir/eval/reference.cpp.o.d"
  "CMakeFiles/netrev_eval.dir/eval/report.cpp.o"
  "CMakeFiles/netrev_eval.dir/eval/report.cpp.o.d"
  "CMakeFiles/netrev_eval.dir/eval/runner.cpp.o"
  "CMakeFiles/netrev_eval.dir/eval/runner.cpp.o.d"
  "CMakeFiles/netrev_eval.dir/eval/table.cpp.o"
  "CMakeFiles/netrev_eval.dir/eval/table.cpp.o.d"
  "libnetrev_eval.a"
  "libnetrev_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netrev_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
