file(REMOVE_RECURSE
  "libnetrev_eval.a"
)
