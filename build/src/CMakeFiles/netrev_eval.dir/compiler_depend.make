# Empty compiler generated dependencies file for netrev_eval.
# This may be replaced when dependencies are built.
