file(REMOVE_RECURSE
  "libnetrev_parser.a"
)
