
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parser/bench_parser.cpp" "src/CMakeFiles/netrev_parser.dir/parser/bench_parser.cpp.o" "gcc" "src/CMakeFiles/netrev_parser.dir/parser/bench_parser.cpp.o.d"
  "/root/repo/src/parser/lexer.cpp" "src/CMakeFiles/netrev_parser.dir/parser/lexer.cpp.o" "gcc" "src/CMakeFiles/netrev_parser.dir/parser/lexer.cpp.o.d"
  "/root/repo/src/parser/verilog_parser.cpp" "src/CMakeFiles/netrev_parser.dir/parser/verilog_parser.cpp.o" "gcc" "src/CMakeFiles/netrev_parser.dir/parser/verilog_parser.cpp.o.d"
  "/root/repo/src/parser/verilog_writer.cpp" "src/CMakeFiles/netrev_parser.dir/parser/verilog_writer.cpp.o" "gcc" "src/CMakeFiles/netrev_parser.dir/parser/verilog_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netrev_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
