file(REMOVE_RECURSE
  "CMakeFiles/netrev_parser.dir/parser/bench_parser.cpp.o"
  "CMakeFiles/netrev_parser.dir/parser/bench_parser.cpp.o.d"
  "CMakeFiles/netrev_parser.dir/parser/lexer.cpp.o"
  "CMakeFiles/netrev_parser.dir/parser/lexer.cpp.o.d"
  "CMakeFiles/netrev_parser.dir/parser/verilog_parser.cpp.o"
  "CMakeFiles/netrev_parser.dir/parser/verilog_parser.cpp.o.d"
  "CMakeFiles/netrev_parser.dir/parser/verilog_writer.cpp.o"
  "CMakeFiles/netrev_parser.dir/parser/verilog_writer.cpp.o.d"
  "libnetrev_parser.a"
  "libnetrev_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netrev_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
