# Empty compiler generated dependencies file for netrev_parser.
# This may be replaced when dependencies are built.
