# Empty dependencies file for netrev_netlist.
# This may be replaced when dependencies are built.
