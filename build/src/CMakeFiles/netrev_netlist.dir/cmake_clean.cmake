file(REMOVE_RECURSE
  "CMakeFiles/netrev_netlist.dir/netlist/compare.cpp.o"
  "CMakeFiles/netrev_netlist.dir/netlist/compare.cpp.o.d"
  "CMakeFiles/netrev_netlist.dir/netlist/cone.cpp.o"
  "CMakeFiles/netrev_netlist.dir/netlist/cone.cpp.o.d"
  "CMakeFiles/netrev_netlist.dir/netlist/dot.cpp.o"
  "CMakeFiles/netrev_netlist.dir/netlist/dot.cpp.o.d"
  "CMakeFiles/netrev_netlist.dir/netlist/gate_type.cpp.o"
  "CMakeFiles/netrev_netlist.dir/netlist/gate_type.cpp.o.d"
  "CMakeFiles/netrev_netlist.dir/netlist/netlist.cpp.o"
  "CMakeFiles/netrev_netlist.dir/netlist/netlist.cpp.o.d"
  "CMakeFiles/netrev_netlist.dir/netlist/random_netlist.cpp.o"
  "CMakeFiles/netrev_netlist.dir/netlist/random_netlist.cpp.o.d"
  "CMakeFiles/netrev_netlist.dir/netlist/stats.cpp.o"
  "CMakeFiles/netrev_netlist.dir/netlist/stats.cpp.o.d"
  "CMakeFiles/netrev_netlist.dir/netlist/subcircuit.cpp.o"
  "CMakeFiles/netrev_netlist.dir/netlist/subcircuit.cpp.o.d"
  "CMakeFiles/netrev_netlist.dir/netlist/validate.cpp.o"
  "CMakeFiles/netrev_netlist.dir/netlist/validate.cpp.o.d"
  "libnetrev_netlist.a"
  "libnetrev_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netrev_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
