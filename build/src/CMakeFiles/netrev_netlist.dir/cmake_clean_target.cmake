file(REMOVE_RECURSE
  "libnetrev_netlist.a"
)
