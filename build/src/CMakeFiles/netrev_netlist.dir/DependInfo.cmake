
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/compare.cpp" "src/CMakeFiles/netrev_netlist.dir/netlist/compare.cpp.o" "gcc" "src/CMakeFiles/netrev_netlist.dir/netlist/compare.cpp.o.d"
  "/root/repo/src/netlist/cone.cpp" "src/CMakeFiles/netrev_netlist.dir/netlist/cone.cpp.o" "gcc" "src/CMakeFiles/netrev_netlist.dir/netlist/cone.cpp.o.d"
  "/root/repo/src/netlist/dot.cpp" "src/CMakeFiles/netrev_netlist.dir/netlist/dot.cpp.o" "gcc" "src/CMakeFiles/netrev_netlist.dir/netlist/dot.cpp.o.d"
  "/root/repo/src/netlist/gate_type.cpp" "src/CMakeFiles/netrev_netlist.dir/netlist/gate_type.cpp.o" "gcc" "src/CMakeFiles/netrev_netlist.dir/netlist/gate_type.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/CMakeFiles/netrev_netlist.dir/netlist/netlist.cpp.o" "gcc" "src/CMakeFiles/netrev_netlist.dir/netlist/netlist.cpp.o.d"
  "/root/repo/src/netlist/random_netlist.cpp" "src/CMakeFiles/netrev_netlist.dir/netlist/random_netlist.cpp.o" "gcc" "src/CMakeFiles/netrev_netlist.dir/netlist/random_netlist.cpp.o.d"
  "/root/repo/src/netlist/stats.cpp" "src/CMakeFiles/netrev_netlist.dir/netlist/stats.cpp.o" "gcc" "src/CMakeFiles/netrev_netlist.dir/netlist/stats.cpp.o.d"
  "/root/repo/src/netlist/subcircuit.cpp" "src/CMakeFiles/netrev_netlist.dir/netlist/subcircuit.cpp.o" "gcc" "src/CMakeFiles/netrev_netlist.dir/netlist/subcircuit.cpp.o.d"
  "/root/repo/src/netlist/validate.cpp" "src/CMakeFiles/netrev_netlist.dir/netlist/validate.cpp.o" "gcc" "src/CMakeFiles/netrev_netlist.dir/netlist/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netrev_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
