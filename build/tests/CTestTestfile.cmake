# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_rtl[1]_include.cmake")
include("/root/repo/build/tests/test_wordrec[1]_include.cmake")
include("/root/repo/build/tests/test_itc[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
