file(REMOVE_RECURSE
  "CMakeFiles/test_parser.dir/parser/test_bench_parser.cpp.o"
  "CMakeFiles/test_parser.dir/parser/test_bench_parser.cpp.o.d"
  "CMakeFiles/test_parser.dir/parser/test_lexer.cpp.o"
  "CMakeFiles/test_parser.dir/parser/test_lexer.cpp.o.d"
  "CMakeFiles/test_parser.dir/parser/test_verilog_parser.cpp.o"
  "CMakeFiles/test_parser.dir/parser/test_verilog_parser.cpp.o.d"
  "CMakeFiles/test_parser.dir/parser/test_verilog_roundtrip.cpp.o"
  "CMakeFiles/test_parser.dir/parser/test_verilog_roundtrip.cpp.o.d"
  "test_parser"
  "test_parser.pdb"
  "test_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
