
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/wordrec/test_assignment.cpp" "tests/CMakeFiles/test_wordrec.dir/wordrec/test_assignment.cpp.o" "gcc" "tests/CMakeFiles/test_wordrec.dir/wordrec/test_assignment.cpp.o.d"
  "/root/repo/tests/wordrec/test_baseline.cpp" "tests/CMakeFiles/test_wordrec.dir/wordrec/test_baseline.cpp.o" "gcc" "tests/CMakeFiles/test_wordrec.dir/wordrec/test_baseline.cpp.o.d"
  "/root/repo/tests/wordrec/test_control.cpp" "tests/CMakeFiles/test_wordrec.dir/wordrec/test_control.cpp.o" "gcc" "tests/CMakeFiles/test_wordrec.dir/wordrec/test_control.cpp.o.d"
  "/root/repo/tests/wordrec/test_fig1.cpp" "tests/CMakeFiles/test_wordrec.dir/wordrec/test_fig1.cpp.o" "gcc" "tests/CMakeFiles/test_wordrec.dir/wordrec/test_fig1.cpp.o.d"
  "/root/repo/tests/wordrec/test_funcheck.cpp" "tests/CMakeFiles/test_wordrec.dir/wordrec/test_funcheck.cpp.o" "gcc" "tests/CMakeFiles/test_wordrec.dir/wordrec/test_funcheck.cpp.o.d"
  "/root/repo/tests/wordrec/test_grouping.cpp" "tests/CMakeFiles/test_wordrec.dir/wordrec/test_grouping.cpp.o" "gcc" "tests/CMakeFiles/test_wordrec.dir/wordrec/test_grouping.cpp.o.d"
  "/root/repo/tests/wordrec/test_hash_key.cpp" "tests/CMakeFiles/test_wordrec.dir/wordrec/test_hash_key.cpp.o" "gcc" "tests/CMakeFiles/test_wordrec.dir/wordrec/test_hash_key.cpp.o.d"
  "/root/repo/tests/wordrec/test_identify.cpp" "tests/CMakeFiles/test_wordrec.dir/wordrec/test_identify.cpp.o" "gcc" "tests/CMakeFiles/test_wordrec.dir/wordrec/test_identify.cpp.o.d"
  "/root/repo/tests/wordrec/test_matching.cpp" "tests/CMakeFiles/test_wordrec.dir/wordrec/test_matching.cpp.o" "gcc" "tests/CMakeFiles/test_wordrec.dir/wordrec/test_matching.cpp.o.d"
  "/root/repo/tests/wordrec/test_propagation.cpp" "tests/CMakeFiles/test_wordrec.dir/wordrec/test_propagation.cpp.o" "gcc" "tests/CMakeFiles/test_wordrec.dir/wordrec/test_propagation.cpp.o.d"
  "/root/repo/tests/wordrec/test_reduce.cpp" "tests/CMakeFiles/test_wordrec.dir/wordrec/test_reduce.cpp.o" "gcc" "tests/CMakeFiles/test_wordrec.dir/wordrec/test_reduce.cpp.o.d"
  "/root/repo/tests/wordrec/test_trace.cpp" "tests/CMakeFiles/test_wordrec.dir/wordrec/test_trace.cpp.o" "gcc" "tests/CMakeFiles/test_wordrec.dir/wordrec/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netrev_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_wordrec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_itc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
