# Empty compiler generated dependencies file for test_wordrec.
# This may be replaced when dependencies are built.
