file(REMOVE_RECURSE
  "CMakeFiles/test_wordrec.dir/wordrec/test_assignment.cpp.o"
  "CMakeFiles/test_wordrec.dir/wordrec/test_assignment.cpp.o.d"
  "CMakeFiles/test_wordrec.dir/wordrec/test_baseline.cpp.o"
  "CMakeFiles/test_wordrec.dir/wordrec/test_baseline.cpp.o.d"
  "CMakeFiles/test_wordrec.dir/wordrec/test_control.cpp.o"
  "CMakeFiles/test_wordrec.dir/wordrec/test_control.cpp.o.d"
  "CMakeFiles/test_wordrec.dir/wordrec/test_fig1.cpp.o"
  "CMakeFiles/test_wordrec.dir/wordrec/test_fig1.cpp.o.d"
  "CMakeFiles/test_wordrec.dir/wordrec/test_funcheck.cpp.o"
  "CMakeFiles/test_wordrec.dir/wordrec/test_funcheck.cpp.o.d"
  "CMakeFiles/test_wordrec.dir/wordrec/test_grouping.cpp.o"
  "CMakeFiles/test_wordrec.dir/wordrec/test_grouping.cpp.o.d"
  "CMakeFiles/test_wordrec.dir/wordrec/test_hash_key.cpp.o"
  "CMakeFiles/test_wordrec.dir/wordrec/test_hash_key.cpp.o.d"
  "CMakeFiles/test_wordrec.dir/wordrec/test_identify.cpp.o"
  "CMakeFiles/test_wordrec.dir/wordrec/test_identify.cpp.o.d"
  "CMakeFiles/test_wordrec.dir/wordrec/test_matching.cpp.o"
  "CMakeFiles/test_wordrec.dir/wordrec/test_matching.cpp.o.d"
  "CMakeFiles/test_wordrec.dir/wordrec/test_propagation.cpp.o"
  "CMakeFiles/test_wordrec.dir/wordrec/test_propagation.cpp.o.d"
  "CMakeFiles/test_wordrec.dir/wordrec/test_reduce.cpp.o"
  "CMakeFiles/test_wordrec.dir/wordrec/test_reduce.cpp.o.d"
  "CMakeFiles/test_wordrec.dir/wordrec/test_trace.cpp.o"
  "CMakeFiles/test_wordrec.dir/wordrec/test_trace.cpp.o.d"
  "test_wordrec"
  "test_wordrec.pdb"
  "test_wordrec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wordrec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
