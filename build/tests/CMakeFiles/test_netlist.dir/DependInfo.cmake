
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/netlist/test_compare.cpp" "tests/CMakeFiles/test_netlist.dir/netlist/test_compare.cpp.o" "gcc" "tests/CMakeFiles/test_netlist.dir/netlist/test_compare.cpp.o.d"
  "/root/repo/tests/netlist/test_cone.cpp" "tests/CMakeFiles/test_netlist.dir/netlist/test_cone.cpp.o" "gcc" "tests/CMakeFiles/test_netlist.dir/netlist/test_cone.cpp.o.d"
  "/root/repo/tests/netlist/test_dot.cpp" "tests/CMakeFiles/test_netlist.dir/netlist/test_dot.cpp.o" "gcc" "tests/CMakeFiles/test_netlist.dir/netlist/test_dot.cpp.o.d"
  "/root/repo/tests/netlist/test_gate_type.cpp" "tests/CMakeFiles/test_netlist.dir/netlist/test_gate_type.cpp.o" "gcc" "tests/CMakeFiles/test_netlist.dir/netlist/test_gate_type.cpp.o.d"
  "/root/repo/tests/netlist/test_netlist.cpp" "tests/CMakeFiles/test_netlist.dir/netlist/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/test_netlist.dir/netlist/test_netlist.cpp.o.d"
  "/root/repo/tests/netlist/test_random_netlist.cpp" "tests/CMakeFiles/test_netlist.dir/netlist/test_random_netlist.cpp.o" "gcc" "tests/CMakeFiles/test_netlist.dir/netlist/test_random_netlist.cpp.o.d"
  "/root/repo/tests/netlist/test_stats.cpp" "tests/CMakeFiles/test_netlist.dir/netlist/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_netlist.dir/netlist/test_stats.cpp.o.d"
  "/root/repo/tests/netlist/test_subcircuit.cpp" "tests/CMakeFiles/test_netlist.dir/netlist/test_subcircuit.cpp.o" "gcc" "tests/CMakeFiles/test_netlist.dir/netlist/test_subcircuit.cpp.o.d"
  "/root/repo/tests/netlist/test_validate.cpp" "tests/CMakeFiles/test_netlist.dir/netlist/test_validate.cpp.o" "gcc" "tests/CMakeFiles/test_netlist.dir/netlist/test_validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netrev_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_wordrec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_itc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
