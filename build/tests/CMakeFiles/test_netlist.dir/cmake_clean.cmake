file(REMOVE_RECURSE
  "CMakeFiles/test_netlist.dir/netlist/test_compare.cpp.o"
  "CMakeFiles/test_netlist.dir/netlist/test_compare.cpp.o.d"
  "CMakeFiles/test_netlist.dir/netlist/test_cone.cpp.o"
  "CMakeFiles/test_netlist.dir/netlist/test_cone.cpp.o.d"
  "CMakeFiles/test_netlist.dir/netlist/test_dot.cpp.o"
  "CMakeFiles/test_netlist.dir/netlist/test_dot.cpp.o.d"
  "CMakeFiles/test_netlist.dir/netlist/test_gate_type.cpp.o"
  "CMakeFiles/test_netlist.dir/netlist/test_gate_type.cpp.o.d"
  "CMakeFiles/test_netlist.dir/netlist/test_netlist.cpp.o"
  "CMakeFiles/test_netlist.dir/netlist/test_netlist.cpp.o.d"
  "CMakeFiles/test_netlist.dir/netlist/test_random_netlist.cpp.o"
  "CMakeFiles/test_netlist.dir/netlist/test_random_netlist.cpp.o.d"
  "CMakeFiles/test_netlist.dir/netlist/test_stats.cpp.o"
  "CMakeFiles/test_netlist.dir/netlist/test_stats.cpp.o.d"
  "CMakeFiles/test_netlist.dir/netlist/test_subcircuit.cpp.o"
  "CMakeFiles/test_netlist.dir/netlist/test_subcircuit.cpp.o.d"
  "CMakeFiles/test_netlist.dir/netlist/test_validate.cpp.o"
  "CMakeFiles/test_netlist.dir/netlist/test_validate.cpp.o.d"
  "test_netlist"
  "test_netlist.pdb"
  "test_netlist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
