
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/itc/test_benchgen.cpp" "tests/CMakeFiles/test_itc.dir/itc/test_benchgen.cpp.o" "gcc" "tests/CMakeFiles/test_itc.dir/itc/test_benchgen.cpp.o.d"
  "/root/repo/tests/itc/test_family.cpp" "tests/CMakeFiles/test_itc.dir/itc/test_family.cpp.o" "gcc" "tests/CMakeFiles/test_itc.dir/itc/test_family.cpp.o.d"
  "/root/repo/tests/itc/test_profile.cpp" "tests/CMakeFiles/test_itc.dir/itc/test_profile.cpp.o" "gcc" "tests/CMakeFiles/test_itc.dir/itc/test_profile.cpp.o.d"
  "/root/repo/tests/itc/test_wordgen.cpp" "tests/CMakeFiles/test_itc.dir/itc/test_wordgen.cpp.o" "gcc" "tests/CMakeFiles/test_itc.dir/itc/test_wordgen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netrev_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_wordrec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_itc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
