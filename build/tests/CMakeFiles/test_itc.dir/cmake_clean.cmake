file(REMOVE_RECURSE
  "CMakeFiles/test_itc.dir/itc/test_benchgen.cpp.o"
  "CMakeFiles/test_itc.dir/itc/test_benchgen.cpp.o.d"
  "CMakeFiles/test_itc.dir/itc/test_family.cpp.o"
  "CMakeFiles/test_itc.dir/itc/test_family.cpp.o.d"
  "CMakeFiles/test_itc.dir/itc/test_profile.cpp.o"
  "CMakeFiles/test_itc.dir/itc/test_profile.cpp.o.d"
  "CMakeFiles/test_itc.dir/itc/test_wordgen.cpp.o"
  "CMakeFiles/test_itc.dir/itc/test_wordgen.cpp.o.d"
  "test_itc"
  "test_itc.pdb"
  "test_itc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_itc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
