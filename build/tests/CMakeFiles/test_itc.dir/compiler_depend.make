# Empty compiler generated dependencies file for test_itc.
# This may be replaced when dependencies are built.
