file(REMOVE_RECURSE
  "CMakeFiles/test_rtl.dir/rtl/test_expr.cpp.o"
  "CMakeFiles/test_rtl.dir/rtl/test_expr.cpp.o.d"
  "CMakeFiles/test_rtl.dir/rtl/test_lower_ops.cpp.o"
  "CMakeFiles/test_rtl.dir/rtl/test_lower_ops.cpp.o.d"
  "CMakeFiles/test_rtl.dir/rtl/test_module.cpp.o"
  "CMakeFiles/test_rtl.dir/rtl/test_module.cpp.o.d"
  "CMakeFiles/test_rtl.dir/rtl/test_scan.cpp.o"
  "CMakeFiles/test_rtl.dir/rtl/test_scan.cpp.o.d"
  "CMakeFiles/test_rtl.dir/rtl/test_synth.cpp.o"
  "CMakeFiles/test_rtl.dir/rtl/test_synth.cpp.o.d"
  "test_rtl"
  "test_rtl.pdb"
  "test_rtl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
