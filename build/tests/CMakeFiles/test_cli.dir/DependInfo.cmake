
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cli/test_cli.cpp" "tests/CMakeFiles/test_cli.dir/cli/test_cli.cpp.o" "gcc" "tests/CMakeFiles/test_cli.dir/cli/test_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/netrev_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_wordrec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_itc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/netrev_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
