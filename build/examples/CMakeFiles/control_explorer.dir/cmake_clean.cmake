file(REMOVE_RECURSE
  "CMakeFiles/control_explorer.dir/control_explorer.cpp.o"
  "CMakeFiles/control_explorer.dir/control_explorer.cpp.o.d"
  "control_explorer"
  "control_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
