# Empty dependencies file for control_explorer.
# This may be replaced when dependencies are built.
