# Empty compiler generated dependencies file for trojan_hunt.
# This may be replaced when dependencies are built.
