# Empty compiler generated dependencies file for benchmark_writer.
# This may be replaced when dependencies are built.
