file(REMOVE_RECURSE
  "CMakeFiles/benchmark_writer.dir/benchmark_writer.cpp.o"
  "CMakeFiles/benchmark_writer.dir/benchmark_writer.cpp.o.d"
  "benchmark_writer"
  "benchmark_writer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
