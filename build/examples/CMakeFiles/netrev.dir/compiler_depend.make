# Empty compiler generated dependencies file for netrev.
# This may be replaced when dependencies are built.
