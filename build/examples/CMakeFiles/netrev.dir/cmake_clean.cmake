file(REMOVE_RECURSE
  "CMakeFiles/netrev.dir/netrev_cli.cpp.o"
  "CMakeFiles/netrev.dir/netrev_cli.cpp.o.d"
  "netrev"
  "netrev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netrev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
