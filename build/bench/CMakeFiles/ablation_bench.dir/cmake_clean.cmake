file(REMOVE_RECURSE
  "CMakeFiles/ablation_bench.dir/ablation_bench.cpp.o"
  "CMakeFiles/ablation_bench.dir/ablation_bench.cpp.o.d"
  "ablation_bench"
  "ablation_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
