# Empty dependencies file for ablation_bench.
# This may be replaced when dependencies are built.
