# Empty dependencies file for fig1_casestudy.
# This may be replaced when dependencies are built.
