file(REMOVE_RECURSE
  "CMakeFiles/fig1_casestudy.dir/fig1_casestudy.cpp.o"
  "CMakeFiles/fig1_casestudy.dir/fig1_casestudy.cpp.o.d"
  "fig1_casestudy"
  "fig1_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
