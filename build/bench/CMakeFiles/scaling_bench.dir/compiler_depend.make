# Empty compiler generated dependencies file for scaling_bench.
# This may be replaced when dependencies are built.
