file(REMOVE_RECURSE
  "CMakeFiles/propagation_bench.dir/propagation_bench.cpp.o"
  "CMakeFiles/propagation_bench.dir/propagation_bench.cpp.o.d"
  "propagation_bench"
  "propagation_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/propagation_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
