# Empty dependencies file for propagation_bench.
# This may be replaced when dependencies are built.
