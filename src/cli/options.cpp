#include "cli/options.h"

#include <cstdint>
#include <limits>
#include <stdexcept>

#include "common/exit_code.h"
#include "common/text.h"

namespace netrev::cli {

namespace {

// The one numeric-value parser every counted flag routes through.  std::stoul
// would silently wrap "-5" into a huge count and accept trailing junk
// ("3abc"); this accepts exactly non-negative decimal integers and names the
// offending flag in the diagnostic.
std::size_t parse_count(const FlagSpec& spec, const std::string& value) {
  const auto reject = [&](const char* why) -> std::size_t {
    throw std::invalid_argument(std::string(spec.name) + " expects a " +
                                "non-negative integer " + spec.value_name +
                                ", got '" + value + "' (" + why + ")");
  };
  if (value.empty()) return reject("empty value");
  std::size_t out = 0;
  for (const char c : value) {
    if (c < '0' || c > '9')
      return reject(c == '-' ? "negative values are not allowed"
                             : "not a decimal digit");
    const std::size_t digit = static_cast<std::size_t>(c - '0');
    if (out > (std::numeric_limits<std::size_t>::max() - digit) / 10)
      return reject("value out of range");
    out = out * 10 + digit;
  }
  return out;
}

diag::Severity parse_fail_on(const std::string& value) {
  if (value == "note") return diag::Severity::kNote;
  if (value == "warning") return diag::Severity::kWarning;
  if (value == "error") return diag::Severity::kError;
  throw std::invalid_argument(
      "--fail-on expects note, warning, or error; got '" + value + "'");
}

const FlagSpec& spec_for(FlagId id) {
  for (const FlagSpec& spec : flag_table())
    if (spec.id == id) return spec;
  throw std::logic_error("flag missing from flag_table()");
}

bool command_accepts(const CommandSpec& command, FlagId id) {
  for (FlagId allowed : command.flags)
    if (allowed == id) return true;
  return false;
}

void apply_flag(ParsedFlags& flags, const FlagSpec& spec,
                const std::string& value) {
  switch (spec.id) {
    case FlagId::kBase:
      flags.base = true;
      break;
    case FlagId::kJson:
      flags.json = true;
      break;
    case FlagId::kCrossGroup:
      flags.cross_group = true;
      break;
    case FlagId::kUseDataflow:
      flags.use_dataflow = true;
      break;
    case FlagId::kLegacyCore:
      flags.legacy_core = true;
      break;
    case FlagId::kTrace:
      flags.trace = true;
      break;
    case FlagId::kDepth:
      flags.depth = parse_count(spec, value);
      break;
    case FlagId::kMaxAssign:
      flags.max_assign = parse_count(spec, value);
      break;
    case FlagId::kOutput:
      flags.output = value;
      break;
    case FlagId::kAssign: {
      const auto eq = value.find('=');
      if (eq == std::string::npos || eq + 2 != value.size() ||
          (value[eq + 1] != '0' && value[eq + 1] != '1'))
        throw std::invalid_argument("--assign expects NET=0 or NET=1, got '" +
                                    value + "'");
      flags.assignments.emplace_back(value.substr(0, eq), value[eq + 1] == '1');
      break;
    }
    case FlagId::kRules:
      for (const std::string& id : split(value, ','))
        if (!trim(id).empty()) flags.rules.emplace_back(trim(id));
      break;
    case FlagId::kFailOn:
      flags.fail_on = parse_fail_on(value);
      break;
    case FlagId::kListRules:
      flags.list_rules = true;
      break;
    case FlagId::kKeepGoing:
      flags.keep_going = true;
      break;
    case FlagId::kNoVerify:
      flags.no_verify = true;
      break;
    case FlagId::kVectors:
      flags.vectors = parse_count(spec, value);
      if (*flags.vectors == 0)
        throw std::invalid_argument("--vectors expects a positive sample count");
      break;
    case FlagId::kResume:
      flags.resume = value;
      break;
    case FlagId::kRetries:
      flags.retries = parse_count(spec, value);
      break;
    case FlagId::kCompactJournal:
      flags.compact_journal = true;
      break;
    case FlagId::kListen:
      flags.listen = value;
      break;
    case FlagId::kSocket:
      flags.socket_path = value;
      break;
    case FlagId::kConnect:
      flags.connect = value;
      break;
    case FlagId::kRequestId:
      flags.request_id = value;
      break;
    case FlagId::kMaxQueue:
      flags.max_queue = parse_count(spec, value);
      break;
    case FlagId::kMaxInflight:
      flags.max_inflight = parse_count(spec, value);
      if (*flags.max_inflight == 0)
        throw std::invalid_argument(
            "--max-inflight expects a positive worker count");
      break;
    case FlagId::kIdleTimeout:
      flags.idle_timeout_ms = parse_count(spec, value);
      break;
    case FlagId::kDrainTimeout:
      flags.drain_timeout_ms = parse_count(spec, value);
      break;
    case FlagId::kMaxRequestBytes:
      flags.max_request_bytes = parse_count(spec, value);
      if (*flags.max_request_bytes == 0)
        throw std::invalid_argument(
            "--max-request-bytes expects a positive byte count");
      break;
    case FlagId::kIsolate:
      // Bare --isolate; --isolate=N is special-cased in parse_flags (the
      // only other optional-value flag besides --profile).
      flags.isolate = true;
      break;
    case FlagId::kWorkerMem:
      flags.worker_mem_mb = parse_count(spec, value);
      break;
    case FlagId::kWorkerCpu:
      flags.worker_cpu_s = parse_count(spec, value);
      break;
    case FlagId::kWorkerWall:
      flags.worker_wall_ms = parse_count(spec, value);
      break;
    case FlagId::kCrashRetries:
      flags.crash_retries = parse_count(spec, value);
      if (*flags.crash_retries == 0)
        throw std::invalid_argument(
            "--crash-retries expects a positive attempt count");
      break;
    case FlagId::kTimeout:
      flags.timeout_ms = parse_count(spec, value);
      break;
    case FlagId::kStageTimeout:
      flags.stage_timeout_ms = parse_count(spec, value);
      break;
    case FlagId::kDegrade: {
      const auto policy = exec::parse_degrade_policy(value);
      if (!policy)
        throw std::invalid_argument(
            "--degrade expects off, full, depth, baseline, or groups; got '" +
            value + "'");
      flags.degrade = *policy;
      break;
    }
    case FlagId::kCacheEntries:
      flags.cache_entries = parse_count(spec, value);
      break;
    case FlagId::kJobs:
      flags.jobs = parse_count(spec, value);
      if (*flags.jobs == 0)
        throw std::invalid_argument("--jobs expects a positive thread count");
      break;
    case FlagId::kProfile:
      flags.profile = true;
      break;
    case FlagId::kPermissive:
      flags.permissive = true;
      break;
    case FlagId::kDiagJson:
      flags.diag_json = true;
      break;
    case FlagId::kMaxErrors:
      flags.max_errors = parse_count(spec, value);
      break;
    case FlagId::kVersion:
      flags.version = true;
      break;
  }
}

}  // namespace

const std::vector<FlagSpec>& flag_table() {
  static const std::vector<FlagSpec> table = {
      {FlagId::kBase, "--base", nullptr, false, nullptr,
       "use the shape-hashing baseline technique", false},
      {FlagId::kJson, "--json", nullptr, false, nullptr,
       "machine-readable JSON output", false},
      {FlagId::kCrossGroup, "--cross-group", nullptr, false, nullptr,
       "enable cross-group checking", false},
      {FlagId::kUseDataflow, "--use-dataflow", nullptr, false, nullptr,
       "prune provably-constant nets from control-signal candidates via "
       "ternary dataflow (conservative: only removes proven constants)",
       false},
      {FlagId::kTrace, "--trace", nullptr, false, nullptr,
       "narrate identification decisions", false},
      {FlagId::kDepth, "--depth", nullptr, true, "N",
       "fan-in cone depth bound", false},
      {FlagId::kMaxAssign, "--max-assign", nullptr, true, "N",
       "max simultaneous control assignments", false},
      {FlagId::kOutput, "--output", "-o", true, "PATH",
       "write output to PATH", false},
      {FlagId::kAssign, "--assign", nullptr, true, "NET=V",
       "assign NET=0|1 (repeatable)", false},
      {FlagId::kRules, "--rules", nullptr, true, "a,b",
       "comma-separated lint rule ids", false},
      {FlagId::kFailOn, "--fail-on", nullptr, true, "SEV",
       "lint failure threshold: note|warning|error", false},
      {FlagId::kListRules, "--list-rules", nullptr, false, nullptr,
       "print the built-in lint rule table (id, severity, category, "
       "description) and exit",
       false},
      {FlagId::kKeepGoing, "--keep-going", nullptr, false, nullptr,
       "run every batch entry despite failures", false},
      {FlagId::kNoVerify, "--no-verify", nullptr, false, nullptr,
       "skip the bit-blast simulation equivalence check (verdict "
       "'unchecked')",
       false},
      {FlagId::kVectors, "--vectors", nullptr, true, "N",
       "random vectors per lifted op for the equivalence check (default 64)",
       false},
      {FlagId::kResume, "--resume", nullptr, true, "PATH",
       "append completed entries to the journal at PATH and skip entries "
       "already recorded there (crash-safe resume)",
       false},
      {FlagId::kRetries, "--retries", nullptr, true, "N",
       "retry transient file-read failures up to N times with backoff",
       false},
      {FlagId::kCompactJournal, "--compact-journal", nullptr, false, nullptr,
       "after the run, rewrite the --resume journal dropping superseded "
       "duplicate entries (atomic temp+rename)",
       false},
      {FlagId::kListen, "--listen", nullptr, true, "HOST:PORT",
       "serve on this TCP endpoint (port 0 = ephemeral, printed on stdout; "
       "default 127.0.0.1:0)",
       false},
      {FlagId::kSocket, "--socket", nullptr, true, "PATH",
       "serve on / connect to a Unix domain socket instead of TCP", false},
      {FlagId::kConnect, "--connect", nullptr, true, "HOST:PORT",
       "connect to a running netrev serve on this TCP endpoint", false},
      {FlagId::kRequestId, "--id", nullptr, true, "STR",
       "request id echoed in the response (default: server-assigned)", false},
      {FlagId::kMaxQueue, "--max-queue", nullptr, true, "N",
       "admitted-but-not-started request bound; a full queue sheds new "
       "requests with status 'overloaded' (default 16)",
       false},
      {FlagId::kMaxInflight, "--max-inflight", nullptr, true, "N",
       "concurrently executing request bound (default 4)", false},
      {FlagId::kIdleTimeout, "--idle-timeout", nullptr, true, "MS",
       "close connections idle longer than this (0 = never; default 30000)",
       false},
      {FlagId::kDrainTimeout, "--drain-timeout", nullptr, true, "MS",
       "on SIGTERM/SIGINT, give in-flight requests this long before "
       "cancelling them (default 5000)",
       false},
      {FlagId::kMaxRequestBytes, "--max-request-bytes", nullptr, true, "N",
       "per-connection bound on one unframed request line; an over-limit "
       "frame is answered 'bad_request' and the connection closed (default "
       "8388608)",
       false},
      {FlagId::kIsolate, "--isolate", nullptr, false, nullptr,
       "run entries/requests in supervised worker processes (--isolate=N "
       "sets the pool size, default 2); a crashed worker quarantines its "
       "entry instead of taking down the run",
       false},
      {FlagId::kWorkerMem, "--worker-mem", nullptr, true, "MB",
       "per-worker address-space limit in MiB (RLIMIT_AS; 0 = inherit)",
       false},
      {FlagId::kWorkerCpu, "--worker-cpu", nullptr, true, "S",
       "per-worker CPU-time limit in seconds (RLIMIT_CPU; 0 = inherit)",
       false},
      {FlagId::kWorkerWall, "--worker-wall", nullptr, true, "MS",
       "per-round-trip wall-clock watchdog: a worker silent this long is "
       "SIGKILLed and the entry/request reports a watchdog crash (0 = off)",
       false},
      {FlagId::kCrashRetries, "--crash-retries", nullptr, true, "N",
       "attempts before a crashing entry is quarantined as 'crashed' "
       "(default 2 = one retry on a fresh worker)",
       false},
      {FlagId::kLegacyCore, "--legacy-core", nullptr, false, nullptr,
       "run identification on the pointer-chasing legacy core instead of "
       "the flat CSR core (byte-identical output; performance knob)",
       true},
      {FlagId::kTimeout, "--timeout", nullptr, true, "MS",
       "whole-run wall-clock budget in milliseconds (0 = unlimited)", true},
      {FlagId::kStageTimeout, "--stage-timeout", nullptr, true, "MS",
       "per-stage wall-clock budget in milliseconds (0 = unlimited)", true},
      {FlagId::kDegrade, "--degrade", nullptr, true, "LVL",
       "degradation floor when a deadline or work budget trips: off|full|"
       "depth|baseline|groups (default groups)",
       true},
      {FlagId::kCacheEntries, "--cache-entries", nullptr, true, "N",
       "artifact cache capacity in entries (0 disables caching)", true},
      {FlagId::kJobs, "--jobs", "-j", true, "N",
       "thread count for the parallel pipeline stages (default: NETREV_JOBS "
       "env var, else all cores; results are identical at any value)",
       true},
      {FlagId::kProfile, "--profile", nullptr, false, nullptr,
       "print the stage-profile tree after the command (--profile=json for "
       "JSON on the last line)",
       true},
      {FlagId::kPermissive, "--permissive", nullptr, false, nullptr,
       "recover from parse errors and repair the netlist", true},
      {FlagId::kDiagJson, "--diag-json", nullptr, false, nullptr,
       "print collected diagnostics as JSON", true},
      {FlagId::kMaxErrors, "--max-errors", nullptr, true, "N",
       "stop recovery after N errors", true},
      {FlagId::kVersion, "--version", nullptr, false, nullptr,
       "print the netrev version and exit", true},
  };
  return table;
}

const std::vector<CommandSpec>& command_table() {
  static const std::vector<CommandSpec> table = {
      {"stats", "<design>", "design statistics", {}},
      {"reference", "<design>", "golden reference words", {}},
      {"identify", "<design>", "control-signal word identification",
       {FlagId::kBase, FlagId::kJson, FlagId::kTrace, FlagId::kDepth,
        FlagId::kMaxAssign, FlagId::kCrossGroup, FlagId::kUseDataflow,
        FlagId::kOutput}},
      {"lift", "<design>",
       "lift identified words to a typed word-level model (schema-versioned "
       "JSON); each op is bit-blasted back to gates and checked for "
       "simulation equivalence unless --no-verify",
       {FlagId::kBase, FlagId::kDepth, FlagId::kMaxAssign, FlagId::kCrossGroup,
        FlagId::kUseDataflow, FlagId::kNoVerify, FlagId::kVectors,
        FlagId::kOutput}},
      {"reduce", "<design>", "apply control assignments and reduce",
       {FlagId::kAssign, FlagId::kOutput, FlagId::kDepth, FlagId::kMaxAssign}},
      {"evaluate", "<design>", "compare identified words vs reference",
       {FlagId::kBase, FlagId::kJson, FlagId::kDepth, FlagId::kMaxAssign,
        FlagId::kCrossGroup, FlagId::kUseDataflow}},
      {"lint", "<design>",
       "static-analysis findings; exit 1 at/above --fail-on (default error); "
       "files always load permissively",
       {FlagId::kRules, FlagId::kFailOn, FlagId::kListRules}},
      {"propagate", "<design>", "word propagation",
       {FlagId::kDepth, FlagId::kMaxAssign, FlagId::kCrossGroup}},
      {"batch", "<spec> ...",
       "run parse/lint/identify/lift/evaluate over many designs (specs: "
       "designs, globs, or manifest files); artifacts are cached across "
       "entries",
       {FlagId::kJson, FlagId::kKeepGoing, FlagId::kBase, FlagId::kDepth,
        FlagId::kMaxAssign, FlagId::kCrossGroup, FlagId::kUseDataflow,
        FlagId::kResume, FlagId::kRetries, FlagId::kOutput,
        FlagId::kCompactJournal, FlagId::kIsolate, FlagId::kWorkerMem,
        FlagId::kWorkerCpu, FlagId::kWorkerWall, FlagId::kCrashRetries}},
      {"serve", "",
       "long-lived analysis daemon: newline-delimited JSON requests over TCP "
       "or a Unix socket, bounded admission queue, graceful drain on "
       "SIGTERM/SIGINT (exit 6 drained, 7 drain timeout)",
       {FlagId::kListen, FlagId::kSocket, FlagId::kMaxQueue,
        FlagId::kMaxInflight, FlagId::kIdleTimeout, FlagId::kDrainTimeout,
        FlagId::kMaxRequestBytes, FlagId::kIsolate, FlagId::kWorkerMem,
        FlagId::kWorkerCpu, FlagId::kWorkerWall, FlagId::kBase, FlagId::kDepth,
        FlagId::kMaxAssign, FlagId::kCrossGroup, FlagId::kUseDataflow}},
      {"client", "<op> [design ...]",
       "send one request (ping|stats|load|lint|identify|evaluate|batch|lift) "
       "to a running netrev serve and print the JSON result",
       {FlagId::kConnect, FlagId::kSocket, FlagId::kRequestId, FlagId::kBase,
        FlagId::kDepth, FlagId::kMaxAssign, FlagId::kCrossGroup,
        FlagId::kUseDataflow}},
      {"generate", "<bXXs>", "emit family benchmark", {FlagId::kOutput}},
      {"scan", "<design>", "insert scan chain", {FlagId::kOutput}},
      {"dot", "<design>", "GraphViz with identified words highlighted",
       {FlagId::kDepth, FlagId::kOutput}},
      {"table", "[bXXs ...]", "Table 1 rows",
       {FlagId::kJson, FlagId::kDepth, FlagId::kMaxAssign, FlagId::kCrossGroup,
        FlagId::kUseDataflow}},
      // Internal: one supervised worker process (spawned by --isolate runs;
      // speaks the NDJSON protocol on stdin/stdout).  Accepts the pipeline
      // config flags its supervisor forwards.
      {"worker", "",
       "(internal) supervised worker for --isolate: NDJSON requests on "
       "stdin, responses on stdout",
       {FlagId::kBase, FlagId::kDepth, FlagId::kMaxAssign, FlagId::kCrossGroup,
        FlagId::kUseDataflow, FlagId::kNoVerify, FlagId::kVectors,
        FlagId::kRetries},
       /*hidden=*/true},
  };
  return table;
}

const CommandSpec* find_command(const std::string& name) {
  for (const CommandSpec& command : command_table())
    if (name == command.name) return &command;
  return nullptr;
}

ParsedFlags parse_flags(const CommandSpec& command,
                        const std::vector<std::string>& args,
                        std::size_t start) {
  ParsedFlags flags;
  for (std::size_t i = start; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.empty() || arg[0] != '-') {
      flags.positional.push_back(arg);
      continue;
    }
    // The two flags with an optional value.
    if (arg == "--profile=json") {
      flags.profile = true;
      flags.profile_json = true;
      continue;
    }
    if (arg.rfind("--isolate=", 0) == 0) {
      // The declared spec is valueless (bare --isolate); parse_count's
      // diagnostics need a value name, so give this copy one.
      FlagSpec spec = spec_for(FlagId::kIsolate);
      spec.value_name = "N";
      if (!command_accepts(command, FlagId::kIsolate))
        throw std::invalid_argument(std::string(spec.name) +
                                    " is not valid for '" +
                                    std::string(command.name) + "'");
      flags.isolate = true;
      flags.isolate_workers =
          parse_count(spec, arg.substr(std::string("--isolate=").size()));
      if (*flags.isolate_workers == 0)
        throw std::invalid_argument(
            "--isolate expects a positive worker count");
      continue;
    }
    const auto eq = arg.find('=');
    const std::string head = arg.substr(0, eq);
    std::optional<std::string> inline_value;
    if (eq != std::string::npos) inline_value = arg.substr(eq + 1);

    const FlagSpec* spec = nullptr;
    for (const FlagSpec& candidate : flag_table()) {
      if (head == candidate.name ||
          (candidate.alias != nullptr && head == candidate.alias)) {
        spec = &candidate;
        break;
      }
    }
    if (spec == nullptr) throw std::invalid_argument("unknown flag: " + arg);
    if (!spec->global && !command_accepts(command, spec->id))
      throw std::invalid_argument(std::string(spec->name) +
                                  " is not valid for '" + command.name + "'");

    std::string value;
    if (spec->takes_value) {
      if (inline_value) {
        value = *inline_value;
      } else {
        if (i + 1 >= args.size())
          throw std::invalid_argument(std::string(spec->name) +
                                      " needs a value");
        value = args[++i];
      }
    } else if (inline_value) {
      throw std::invalid_argument(std::string(spec->name) +
                                  " does not take a value");
    }
    apply_flag(flags, *spec, value);
  }
  return flags;
}

std::string usage() {
  std::string out = "usage: netrev <command> [args]\n";
  for (const CommandSpec& command : command_table()) {
    if (command.hidden) continue;
    std::string line = "  ";
    line += command.name;
    if (command.args[0] != '\0') {
      line += ' ';
      line += command.args;
    }
    for (FlagId id : command.flags) {
      const FlagSpec& spec = spec_for(id);
      line += " [";
      line += spec.name;
      if (spec.takes_value) {
        line += ' ';
        line += spec.value_name;
      }
      line += ']';
    }
    out += line + "\n";
    out += "      ";
    out += command.summary;
    out += "\n";
  }
  out += "(<design> = family name, .bench file, or Verilog file)\n";
  out += "global flags:\n";
  for (const FlagSpec& spec : flag_table()) {
    if (!spec.global) continue;
    std::string line = "  ";
    line += spec.name;
    if (spec.takes_value) {
      line += ' ';
      line += spec.value_name;
    }
    if (spec.alias != nullptr) {
      line += " | ";
      line += spec.alias;
      if (spec.takes_value) {
        line += ' ';
        line += spec.value_name;
      }
    }
    out += line + "\n";
    out += "      ";
    out += spec.help;
    out += "\n";
  }
  // Generated from the ExitCode enum so the help text cannot drift from
  // what run_cli actually returns.
  out += "exit codes:";
  bool first = true;
  for (const ExitCode code :
       {ExitCode::kOk, ExitCode::kError, ExitCode::kUsage,
        ExitCode::kRecoveredWithWarnings, ExitCode::kUnusableInput,
        ExitCode::kDeadline, ExitCode::kDrained, ExitCode::kDrainTimeout,
        ExitCode::kOverloaded, ExitCode::kWorkerCrashed,
        ExitCode::kInterrupted}) {
    out += first ? " " : (code == ExitCode::kDrained ? ",\n  " : ", ");
    out += std::to_string(exit_code(code));
    out += ' ';
    out += exit_code_name(code);
    first = false;
  }
  out += '\n';
  return out;
}

}  // namespace netrev::cli
