// Command-line driver for the library (the `netrev` tool).
//
// Subcommands and their flags are declared in cli/options.h (one table
// drives the parser AND the generated usage()); run `netrev help` for the
// authoritative list.  Every subcommand routes design loading and the
// pipeline stages through one netrev::Session, so `netrev batch` and the
// single-design commands share the content-addressed artifact cache.
//
// Netlist files ending in ".bench" are read as ISCAS bench format, anything
// else as structural Verilog.  A name matching a family benchmark (b03s..)
// is generated on the fly.
//
// run_cli is exposed (instead of only a main()) so the test suite drives the
// tool in-process.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace netrev::cli {

// Returns the process exit code.  All output goes to `out`, diagnostics to
// `err`; never throws (errors become messages + nonzero exit).
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

// Convenience for main().
int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err);

std::string usage();

}  // namespace netrev::cli
