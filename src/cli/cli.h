// Command-line driver for the library (the `netrev` tool).
//
// Subcommands:
//   stats <netlist.v|bench>                      size/type/depth statistics
//   reference <netlist>                          golden reference words
//   identify <netlist> [--base] [--json]
//            [--depth N] [--max-assign N] [--cross-group]
//   reduce <netlist> --assign NET=0|1 ... [-o out.v]
//   propagate <netlist> [--json]                 word propagation from Ours
//   generate <bXXs> [-o dir]                     emit a family benchmark
//   scan <netlist> [-o out.v]                    insert a scan chain
//   table [bXXs ...] [--json]                    Table 1 rows
//
// Netlist files ending in ".bench" are read as ISCAS bench format, anything
// else as structural Verilog.  A name matching a family benchmark (b03s..)
// is generated on the fly.
//
// run_cli is exposed (instead of only a main()) so the test suite drives the
// tool in-process.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace netrev::cli {

// Returns the process exit code.  All output goes to `out`, diagnostics to
// `err`; never throws (errors become messages + nonzero exit).
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

// Convenience for main().
int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err);

std::string usage();

}  // namespace netrev::cli
