#include "cli/cli.h"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "analysis/analyzer.h"
#include "cli/options.h"
#include "common/atomic_file.h"
#include "common/diagnostics.h"
#include "common/exit_code.h"
#include "common/thread_pool.h"
#include "common/version.h"
#include "exec/cancel.h"
#include "exec/degrade.h"
#include "eval/diagnose.h"
#include "eval/metrics.h"
#include "eval/reference.h"
#include "eval/report.h"
#include "eval/runner.h"
#include "eval/table.h"
#include "itc/family.h"
#include "netlist/dot.h"
#include "netlist/stats.h"
#include "netlist/validate.h"
#include "parser/bench_parser.h"
#include "parser/verilog_writer.h"
#include "perf/profile.h"
#include "pipeline/batch.h"
#include "pipeline/client.h"
#include "pipeline/journal.h"
#include "pipeline/manifest.h"
#include "pipeline/serve.h"
#include "pipeline/session.h"
#include "pipeline/supervisor.h"
#include "rtl/scan.h"
#include "wordrec/degrade.h"
#include "wordrec/funcheck.h"
#include "wordrec/identify.h"
#include "wordrec/propagation.h"
#include "wordrec/reduce.h"
#include "wordrec/trace.h"

namespace netrev::cli {

namespace {

using netlist::Netlist;

// All per-stage knobs a subcommand needs, consolidated from the parsed
// flags into the one RunConfig the Session is constructed with.
RunConfig config_from(const ParsedFlags& flags) {
  RunConfig config;
  config.parse.permissive = flags.permissive;
  if (flags.depth) config.wordrec.cone_depth = *flags.depth;
  if (flags.max_assign)
    config.wordrec.max_simultaneous_assignments = *flags.max_assign;
  config.wordrec.cross_group_checking = flags.cross_group;
  config.wordrec.use_dataflow = flags.use_dataflow;
  config.wordrec.use_compact = !flags.legacy_core;
  config.analysis.enabled_rules = flags.rules;
  if (flags.no_verify) config.lift.verify = false;
  if (flags.vectors) config.lift.verify_vectors = *flags.vectors;
  config.use_baseline = flags.base;
  if (flags.timeout_ms)
    config.exec.timeout = std::chrono::milliseconds(*flags.timeout_ms);
  if (flags.stage_timeout_ms)
    config.exec.stage_timeout =
        std::chrono::milliseconds(*flags.stage_timeout_ms);
  if (flags.degrade) config.exec.degrade = *flags.degrade;
  if (flags.cache_entries) config.cache_entries = *flags.cache_entries;
  return config;
}

// --- SIGINT -> cancel token ------------------------------------------------
// The handler may only touch async-signal-safe state, so it stores through
// the token's raw atomic flag; everything else (journal flush, exit code
// 130) happens on the normal path once the in-flight entries observe the
// flag and unwind.

std::atomic<bool>* g_sigint_flag = nullptr;

void handle_sigint(int) {
  if (g_sigint_flag != nullptr)
    g_sigint_flag->store(true, std::memory_order_relaxed);
}

class SigintGuard {
 public:
  explicit SigintGuard(exec::CancelToken& token)
      : previous_flag_(g_sigint_flag) {
    g_sigint_flag = token.flag();
    previous_ = std::signal(SIGINT, handle_sigint);
  }
  ~SigintGuard() {
    std::signal(SIGINT, previous_);
    // Restore (not null) so guards nest: run_cli arms every command, and
    // cmd_batch layers its own token over it for the batch window.
    g_sigint_flag = previous_flag_;
  }
  SigintGuard(const SigintGuard&) = delete;
  SigintGuard& operator=(const SigintGuard&) = delete;

 private:
  std::atomic<bool>* previous_flag_;
  void (*previous_)(int) = nullptr;
};

// --- SIGTERM/SIGINT -> serve drain -----------------------------------------
// serve turns both signals into a graceful drain: the handler stores into
// the server's drain flag (async-signal-safe), and the accept loop observes
// it within one poll tick.

std::atomic<bool>* g_drain_flag = nullptr;

void handle_drain_signal(int) {
  if (g_drain_flag != nullptr)
    g_drain_flag->store(true, std::memory_order_relaxed);
}

class DrainSignalGuard {
 public:
  explicit DrainSignalGuard(std::atomic<bool>* flag) {
    g_drain_flag = flag;
    previous_term_ = std::signal(SIGTERM, handle_drain_signal);
    previous_int_ = std::signal(SIGINT, handle_drain_signal);
  }
  ~DrainSignalGuard() {
    std::signal(SIGTERM, previous_term_);
    std::signal(SIGINT, previous_int_);
    g_drain_flag = nullptr;
  }
  DrainSignalGuard(const DrainSignalGuard&) = delete;
  DrainSignalGuard& operator=(const DrainSignalGuard&) = delete;

 private:
  void (*previous_term_)(int) = nullptr;
  void (*previous_int_)(int) = nullptr;
};

// --- worker pool construction ----------------------------------------------

// The argv tail worker children are spawned with: "worker" plus every flag
// that changes what an entry/request produces, so a worker's pipeline
// configuration matches its supervisor's exactly (the byte-identity
// contract of --isolate rests on this).
std::vector<std::string> worker_config_args(const ParsedFlags& flags) {
  std::vector<std::string> args = {"worker"};
  if (flags.base) args.emplace_back("--base");
  if (flags.permissive) args.emplace_back("--permissive");
  if (flags.cross_group) args.emplace_back("--cross-group");
  if (flags.use_dataflow) args.emplace_back("--use-dataflow");
  if (flags.legacy_core) args.emplace_back("--legacy-core");
  if (flags.no_verify) args.emplace_back("--no-verify");
  const auto add = [&args](const char* name, std::size_t value) {
    args.emplace_back(name);
    args.push_back(std::to_string(value));
  };
  if (flags.depth) add("--depth", *flags.depth);
  if (flags.max_assign) add("--max-assign", *flags.max_assign);
  if (flags.vectors) add("--vectors", *flags.vectors);
  if (flags.max_errors) add("--max-errors", *flags.max_errors);
  if (flags.timeout_ms) add("--timeout", *flags.timeout_ms);
  if (flags.stage_timeout_ms) add("--stage-timeout", *flags.stage_timeout_ms);
  if (flags.cache_entries) add("--cache-entries", *flags.cache_entries);
  if (flags.retries) add("--retries", *flags.retries);
  if (flags.jobs) add("--jobs", *flags.jobs);
  if (flags.degrade) {
    args.emplace_back("--degrade");
    args.emplace_back(flags.degrade->enabled
                          ? exec::degrade_level_name(flags.degrade->floor)
                          : "off");
  }
  return args;
}

pipeline::supervisor::PoolOptions pool_options_from(const ParsedFlags& flags) {
  pipeline::supervisor::PoolOptions options;
  options.args = worker_config_args(flags);
  if (flags.isolate_workers) options.workers = *flags.isolate_workers;
  if (flags.worker_mem_mb)
    options.limits.mem_bytes = *flags.worker_mem_mb << 20;
  if (flags.worker_cpu_s) options.limits.cpu_seconds = *flags.worker_cpu_s;
  if (flags.worker_wall_ms)
    options.wall_timeout = std::chrono::milliseconds(*flags.worker_wall_ms);
  return options;
}

// Loads a design through the session: family benchmark name, .bench file,
// or Verilog file.  Strict by default; --permissive recovers and repairs
// (see Session::load_netlist).
LoadedDesign load_design(const std::string& spec, const ParsedFlags& flags) {
  return flags.session->load_netlist(spec, flags.session->config().parse,
                                     *flags.diags);
}

void print_words(std::ostream& out, const Netlist& nl,
                 const wordrec::WordSet& words) {
  for (const wordrec::Word& word : words.words) {
    if (word.width() < 2) continue;
    out << "  [" << word.width() << " bits]";
    for (netlist::NetId bit : word.bits) out << ' ' << nl.net(bit).name;
    out << '\n';
  }
}

// --- subcommands -----------------------------------------------------------

int cmd_stats(const ParsedFlags& flags, std::ostream& out) {
  if (flags.positional.size() != 1)
    throw std::invalid_argument("stats: expected one design");
  const LoadedDesign design = load_design(flags.positional[0], flags);
  const Netlist& nl = design.nl();
  out << nl.name() << ": " << netlist::compute_stats(nl).to_string() << '\n';
  const auto profile = netlist::compute_fanin_profile(nl);
  out << "max fanin " << profile.max_fanin << ", avg fanin "
      << profile.average_fanin << ", comb depth "
      << netlist::combinational_depth(nl) << '\n';
  const auto report = netlist::validate(nl);
  out << "validation: " << report.error_count() << " error(s), "
      << report.warning_count() << " warning(s)\n";
  return exit_code(report.ok() ? ExitCode::kOk : ExitCode::kError);
}

int cmd_reference(const ParsedFlags& flags, std::ostream& out) {
  if (flags.positional.size() != 1)
    throw std::invalid_argument("reference: expected one design");
  const LoadedDesign design = load_design(flags.positional[0], flags);
  const Netlist& nl = design.nl();
  const auto extraction = flags.session->reference(design);
  out << extraction->words.size() << " reference word(s), "
      << extraction->indexed_flops << "/" << extraction->flop_count
      << " flops indexed, avg size " << extraction->average_word_size()
      << '\n';
  for (const auto& word : extraction->words) {
    out << "  " << word.register_name << " [" << word.width() << " bits]";
    for (netlist::NetId bit : word.bits) out << ' ' << nl.net(bit).name;
    out << '\n';
  }
  return 0;
}

int identify_body(const ParsedFlags& flags, std::ostream& out) {
  if (flags.positional.size() != 1)
    throw std::invalid_argument("identify: expected one design");
  Session& session = *flags.session;
  const LoadedDesign design = load_design(flags.positional[0], flags);
  const Netlist& nl = design.nl();

  if (flags.base) {
    // identify_words opens its own "identify" stage; mirror it here.
    perf::Stage stage("identify");
    if (flags.json) {
      out << session.identify_json(design) << '\n';
      return 0;
    }
    const wordrec::WordSet words = *session.identify_baseline(design);
    out << "shape hashing found " << words.count_multibit()
        << " multi-bit word(s):\n";
    print_words(out, nl, words);
    return 0;
  }

  if (flags.json && !flags.trace) {
    out << session.identify_json(design) << '\n';
    return 0;
  }

  wordrec::IdentifyTrace trace;
  if (flags.trace) session.config().wordrec.trace = &trace;
  const auto result = session.identify(design);
  session.config().wordrec.trace = nullptr;
  wordrec::report_degradation(*result, *flags.diags);
  if (flags.json) {
    out << eval::identify_result_to_json(nl, *result) << '\n';
    return 0;
  }
  if (flags.trace) out << wordrec::render_trace(nl, trace);
  if (result->degraded())
    out << "note: degraded to '"
        << exec::degrade_level_name(result->degrade_level) << "' ("
        << result->degrade_reason << ")\n";
  out << "found " << result->words.count_multibit() << " multi-bit word(s), "
      << result->used_control_signals.size() << " control signal(s), "
      << result->stats.reduction_trials << " reduction trial(s):\n";
  print_words(out, nl, result->words);
  for (const auto& unified : result->unified) {
    out << "  unified via";
    for (const auto& [net, value] : unified.assignment)
      out << ' ' << nl.net(net).name << '=' << (value ? 1 : 0);
    out << ':';
    for (netlist::NetId bit : unified.bits) out << ' ' << nl.net(bit).name;
    out << '\n';
  }
  return 0;
}

int cmd_identify(const ParsedFlags& flags, std::ostream& out) {
  if (!flags.output) return identify_body(flags, out);
  // --output: render fully in memory, then commit with the atomic
  // temp+rename writer — an interrupted run (SIGINT unwinding as
  // CancelledError) leaves no partial file behind.
  std::ostringstream rendered;
  const int rc = identify_body(flags, rendered);
  io::write_file_atomic(*flags.output, rendered.str());
  out << "wrote " << *flags.output << '\n';
  return rc;
}

// Lifts the identified words to the typed word-level model and prints the
// schema-versioned JSON document (always JSON — the model IS the output).
// The lift self-verifies by default: each op is bit-blasted back to gates
// and simulated against the original cones, and the document's
// "equivalence" object records the verdict.  Exit 1 when any op failed
// verification, so scripts can gate on equivalence without parsing JSON.
int lift_body(const ParsedFlags& flags, std::ostream& out) {
  if (flags.positional.size() != 1)
    throw std::invalid_argument("lift: expected one design");
  Session& session = *flags.session;
  const LoadedDesign design = load_design(flags.positional[0], flags);
  out << session.lift_json(design) << '\n';
  const auto result = session.lift(design);  // cache hit
  const bool failed = result->verdict == "not_equivalent";
  return exit_code(failed ? ExitCode::kError : ExitCode::kOk);
}

int cmd_lift(const ParsedFlags& flags, std::ostream& out) {
  if (!flags.output) return lift_body(flags, out);
  std::ostringstream rendered;
  const int rc = lift_body(flags, rendered);
  io::write_file_atomic(*flags.output, rendered.str());
  out << "wrote " << *flags.output << '\n';
  return rc;
}

int cmd_reduce(const ParsedFlags& flags, std::ostream& out) {
  if (flags.positional.size() != 1)
    throw std::invalid_argument("reduce: expected one design");
  if (flags.assignments.empty())
    throw std::invalid_argument("reduce: needs at least one --assign NET=V");
  const LoadedDesign design = load_design(flags.positional[0], flags);
  const Netlist& nl = design.nl();

  std::vector<std::pair<netlist::NetId, bool>> seeds;
  for (const auto& [name, value] : flags.assignments) {
    const auto net = nl.find_net(name);
    if (!net) throw std::runtime_error("no such net: " + name);
    seeds.emplace_back(*net, value);
  }
  const auto propagated = wordrec::propagate(nl, seeds);
  if (!propagated.feasible) {
    out << "assignment is infeasible (conflicting implications)\n";
    return exit_code(ExitCode::kError);
  }
  const Netlist reduced = wordrec::materialize_reduction(
      nl, propagated.map, flags.session->config().wordrec);
  out << "assigned " << propagated.map.size() << " net(s); " << nl.gate_count()
      << " -> " << reduced.gate_count() << " gates\n";
  if (flags.output) {
    parser::write_verilog_file(reduced, *flags.output);
    out << "wrote " << *flags.output << '\n';
  }
  return 0;
}

int cmd_propagate(const ParsedFlags& flags, std::ostream& out) {
  if (flags.positional.size() != 1)
    throw std::invalid_argument("propagate: expected one design");
  const LoadedDesign design = load_design(flags.positional[0], flags);
  const Netlist& nl = design.nl();
  const auto result = flags.session->identify(design);
  const auto propagated = wordrec::propagate_words_to_fixpoint(
      nl, result->words, flags.session->config().wordrec);
  out << "seeded with " << result->words.count_multibit()
      << " identified word(s); propagation derived "
      << propagated.candidates.size() << " candidate word(s) ("
      << propagated.ambiguous_positions << " ambiguous position(s) skipped)\n";
  for (const auto& candidate : propagated.candidates) {
    out << "  ["
        << (candidate.source == wordrec::PropagatedWord::Source::kSubtreeRoots
                ? "roots"
                : "leaves")
        << "]";
    for (netlist::NetId bit : candidate.word.bits)
      out << ' ' << nl.net(bit).name;
    out << '\n';
  }
  return 0;
}

int cmd_evaluate(const ParsedFlags& flags, std::ostream& out) {
  if (flags.positional.size() != 1)
    throw std::invalid_argument("evaluate: expected one design");
  Session& session = *flags.session;
  const LoadedDesign design = load_design(flags.positional[0], flags);
  const Netlist& nl = design.nl();
  const auto reference = [&] {
    perf::Stage stage("reference");
    return session.reference(design);
  }();
  if (reference->words.empty())
    throw std::runtime_error(
        "evaluate: no reference words (flop output names carry no indices)");
  // identify_words opens its own "identify" stage; mirror it for --base.
  const wordrec::WordSet words = [&] {
    if (!flags.base) {
      const auto result = session.identify(design);
      wordrec::report_degradation(*result, *flags.diags);
      return result->words;
    }
    perf::Stage stage("identify");
    return *session.identify_baseline(design);
  }();
  const eval::Diagnosis diagnosis = [&] {
    perf::Stage stage("diagnose");
    return eval::diagnose(nl, words, *reference);
  }();
  // Structural-health context for the recovery numbers: a netlist the lint
  // rules flag (dead cones, degenerate gates) depresses recall for reasons
  // that are not the identifier's fault.
  const auto health = [&] {
    perf::Stage stage("analysis");
    return session.analyze(design);
  }();
  if (flags.json) {
    out << eval::evaluate_doc_to_json(
               eval::evaluation_to_json(diagnosis.summary, reference->words),
               eval::analysis_to_json(nl, *health))
        << "\n";
    return 0;
  }
  out << render_diagnosis(diagnosis);
  out << "static analysis: " << health->summary() << '\n';
  for (const analysis::Finding& finding : health->findings)
    out << "  " << finding.to_string() << '\n';

  // Functional screening of the generated words (the paper's "functional
  // techniques may be applied after" note).
  const auto flagged = [&] {
    perf::Stage stage("funcheck");
    // The cached view feeds the bit-parallel sampler; --legacy-core screens
    // on the scalar path (identical samples either way).
    if (session.config().wordrec.use_compact) {
      const auto view = session.compact(design);
      return wordrec::suspicious_words(nl, words, 64, 0x5EED, view.get());
    }
    return wordrec::suspicious_words(nl, words);
  }();
  if (!flagged.empty()) {
    out << "functionally suspicious generated words: " << flagged.size()
        << " (stuck/duplicate/complementary bits)\n";
  }
  return 0;
}

// Lints a design with the static-analysis engine.  Files always load
// permissively (lint exists to inspect broken inputs, so parse recovery
// findings are part of the report); exit 1 when any finding or parse
// diagnostic reaches the --fail-on threshold (default: error).
// Renders the builtin rule table for --list-rules: one row per rule in
// registration order, aligned on the widest id.
std::string render_rule_table() {
  const auto& rules = analysis::RuleRegistry::builtin().rules();
  std::size_t id_width = 0;
  std::size_t sev_width = 0;
  for (const auto& rule : rules) {
    id_width = std::max(id_width, rule->info().id.size());
    sev_width =
        std::max(sev_width, diag::severity_name(rule->info().severity).size());
  }
  std::string table;
  for (const auto& rule : rules) {
    const analysis::RuleInfo& info = rule->info();
    const std::string_view severity = diag::severity_name(info.severity);
    table += "  ";
    table += info.id;
    table.append(id_width - info.id.size() + 2, ' ');
    table += severity;
    table.append(sev_width - severity.size(), ' ');
    table += "  [";
    table += analysis::category_name(info.category);
    table += "]  ";
    table += info.summary;
    table += '\n';
  }
  return std::to_string(rules.size()) + " rule(s):\n" + table;
}

// Rejects unknown --rules ids before any design is loaded: a typo in the
// rule list is a usage error (exit 2), not an analysis failure, and should
// not depend on whether the design parses.
void validate_rule_ids(const std::vector<std::string>& ids) {
  const analysis::RuleRegistry& registry = analysis::RuleRegistry::builtin();
  for (const std::string& id : ids) {
    if (registry.find(id) != nullptr) continue;
    std::string known;
    for (const auto& rule : registry.rules()) {
      if (!known.empty()) known += ", ";
      known += rule->info().id;
    }
    throw std::invalid_argument("unknown analysis rule '" + id +
                                "' (known rules: " + known + ")");
  }
}

int cmd_lint(const ParsedFlags& flags, std::ostream& out) {
  if (flags.list_rules) {
    if (!flags.positional.empty() || !flags.rules.empty())
      throw std::invalid_argument(
          "lint: --list-rules takes no design and no --rules");
    out << render_rule_table();
    return exit_code(ExitCode::kOk);
  }
  if (flags.positional.size() != 1)
    throw std::invalid_argument("lint: expected one design");
  validate_rule_ids(flags.rules);
  const std::string& spec = flags.positional[0];
  Session& session = *flags.session;
  diag::Diagnostics& diags = *flags.diags;

  const Session::Parsed parsed = session.parse_netlist(spec, diags);

  // Parse-time counts, captured before emit() mirrors findings into the sink.
  const std::size_t parse_errors = diags.error_count();
  const std::size_t parse_warnings = diags.warning_count();

  const auto analysis =
      session.analyze(parsed.design, parsed.design.from_file ? &diags : nullptr);
  const analysis::AnalysisResult& result = *analysis;

  if (!diags.empty()) out << diags.to_string();
  for (const analysis::Finding& finding : result.findings) {
    out << finding.to_string() << '\n';
    if (!finding.fix_hint.empty()) out << "  fix: " << finding.fix_hint << '\n';
  }
  // Mirror the findings into the diag sink so --diag-json carries them too.
  analysis::emit(result, diags, spec);
  out << spec << ": " << result.summary() << '\n';

  const diag::Severity fail_on =
      flags.fail_on.value_or(diag::Severity::kError);
  std::size_t failing = result.error_count() + parse_errors;
  if (fail_on <= diag::Severity::kWarning)
    failing += result.warning_count() + parse_warnings;
  if (fail_on <= diag::Severity::kNote) failing += result.note_count();
  return exit_code(failing > 0 ? ExitCode::kError : ExitCode::kOk);
}

// Runs the whole pipeline over many designs through the batch engine; see
// pipeline/batch.h for the per-entry failure and determinism contract.
int cmd_batch(const ParsedFlags& flags, std::ostream& out) {
  if (flags.positional.empty())
    throw std::invalid_argument(
        "batch: expected at least one design, glob, or manifest");
  if (flags.compact_journal && !flags.resume)
    throw std::invalid_argument(
        "batch: --compact-journal needs --resume PATH (there is no journal "
        "to compact otherwise)");
  const std::vector<std::string> specs =
      pipeline::expand_specs(flags.positional);
  pipeline::BatchOptions options;
  options.config = config_from(flags);
  options.keep_going = flags.keep_going;
  options.max_errors =
      flags.max_errors.value_or(diag::Diagnostics::kDefaultMaxErrors);
  if (flags.retries) options.retries = *flags.retries;
  if (flags.resume) options.resume_path = *flags.resume;

  // --isolate: entries run in supervised worker processes; a crash is
  // quarantined as a "crashed" entry instead of taking the batch down.
  std::unique_ptr<pipeline::supervisor::WorkerPool> pool;
  if (flags.isolate) {
    pipeline::supervisor::ignore_sigpipe();
    pool = std::make_unique<pipeline::supervisor::WorkerPool>(
        pool_options_from(flags));
    options.pool = pool.get();
    if (flags.crash_retries) options.crash_retries = *flags.crash_retries;
  }

  // Ctrl-C cancels in-flight entries cooperatively; entries that already
  // finished are in the journal (with --resume), so a rerun picks up where
  // the interrupted run left off.
  options.config.exec.cancellable = true;
  SigintGuard sigint_guard(options.config.exec.cancel);

  const pipeline::BatchResult result = pipeline::run_batch(specs, options);
  const std::string rendered =
      flags.json ? result.to_json() + "\n" : result.render_text();
  if (flags.output) {
    io::write_file_atomic(*flags.output, rendered);
    out << "wrote " << *flags.output << '\n';
  } else {
    out << rendered;
  }
  if (flags.compact_journal) {
    // Also worthwhile after an interrupt: the journal holds only completed
    // entries, and a compacted journal resumes identically.
    const pipeline::CompactionStats stats =
        pipeline::compact_journal(*flags.resume);
    out << "compacted " << *flags.resume << ": kept " << stats.kept
        << " entr" << (stats.kept == 1 ? "y" : "ies") << ", dropped "
        << stats.dropped << " superseded\n";
  }
  if (result.interrupted()) return exit_code(ExitCode::kInterrupted);
  // Quarantined crashes outrank plain failures: exit 9 tells scripts the
  // run hit a fault the workers contained, not an ordinary bad input.
  if (result.crashed > 0) return exit_code(ExitCode::kWorkerCrashed);
  return exit_code(result.all_ok() ? ExitCode::kOk : ExitCode::kError);
}

// Hidden mode: one supervised worker process (see pipeline/supervisor.h).
// Reads NDJSON request lines on stdin and answers exactly one response line
// on stdout per request; EOF on stdin is the shutdown signal.  SIGINT is
// ignored — a Ctrl-C at an interactive terminal reaches the whole foreground
// process group, and interruption is the supervisor's decision, not the
// worker's (the supervisor kills and reaps its children explicitly).
int cmd_worker(const ParsedFlags& flags, std::ostream& out) {
  if (!flags.positional.empty())
    throw std::invalid_argument("worker: takes no positional arguments");
  pipeline::supervisor::ignore_sigpipe();
  std::signal(SIGINT, SIG_IGN);

  pipeline::protocol::ExecutorConfig config;
  config.base = config_from(flags);
  // Like serve: --timeout is a per-request ceiling, not a whole-run budget.
  config.base.exec.timeout = std::chrono::milliseconds(0);
  if (flags.timeout_ms)
    config.max_timeout = std::chrono::milliseconds(*flags.timeout_ms);
  if (flags.retries) config.entry_retries = *flags.retries;
  pipeline::protocol::Executor executor(config);

  std::string line;
  while (std::getline(std::cin, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const pipeline::protocol::ParsedRequest parsed =
        pipeline::protocol::parse_request(line);
    pipeline::protocol::Response response;
    if (!parsed.request) {
      response.status = pipeline::protocol::Status::kBadRequest;
      response.error = parsed.error;
      executor.record(response.status);
    } else {
      response = executor.execute(*parsed.request, exec::CancelToken{});
    }
    out << pipeline::protocol::render_response(response) << '\n';
    out.flush();
  }
  return exit_code(ExitCode::kOk);
}

int cmd_generate(const ParsedFlags& flags, std::ostream& out) {
  if (flags.positional.size() != 1)
    throw std::invalid_argument("generate: expected one family name");
  const auto bench = itc::build_benchmark(flags.positional[0]);
  const std::string dir = flags.output.value_or(".");
  std::filesystem::create_directories(dir);
  const std::string v_path = dir + "/" + bench.profile.name + ".v";
  const std::string b_path = dir + "/" + bench.profile.name + ".bench";
  parser::write_verilog_file(bench.netlist, v_path);
  parser::write_bench_file(bench.netlist, b_path);
  out << "wrote " << v_path << " and " << b_path << '\n';
  return 0;
}

int cmd_scan(const ParsedFlags& flags, std::ostream& out) {
  if (flags.positional.size() != 1)
    throw std::invalid_argument("scan: expected one design");
  const LoadedDesign design = load_design(flags.positional[0], flags);
  const auto scanned = rtl::insert_scan_chain(design.nl());
  out << "inserted " << scanned.muxes_inserted
      << " scan mux(es); control signal "
      << scanned.netlist.net(scanned.scan_enable).name << '\n';
  if (flags.output) {
    parser::write_verilog_file(scanned.netlist, *flags.output);
    out << "wrote " << *flags.output << '\n';
  }
  return 0;
}

int cmd_dot(const ParsedFlags& flags, std::ostream& out) {
  if (flags.positional.size() != 1)
    throw std::invalid_argument("dot: expected one design");
  const LoadedDesign design = load_design(flags.positional[0], flags);
  const Netlist& nl = design.nl();

  netlist::DotOptions dot_options;
  // --depth here bounds the DRAWN cones (0 = whole design); identification
  // itself runs with default options.
  dot_options.cone_depth = flags.depth.value_or(0);
  const wordrec::IdentifyResult result = wordrec::identify_words(nl);
  std::size_t label = 0;
  for (const wordrec::Word& word : result.words.words) {
    if (word.width() < 2) continue;
    netlist::DotOptions::Highlight highlight;
    highlight.label = "word " + std::to_string(label++) + " (" +
                      std::to_string(word.width()) + " bits)";
    highlight.nets = word.bits;
    dot_options.highlights.push_back(std::move(highlight));
  }
  const std::string dot = to_dot(nl, dot_options);
  if (flags.output) {
    std::ofstream file(*flags.output);
    if (!file)
      throw std::runtime_error("cannot open for writing: " + *flags.output);
    file << dot;
    out << "wrote " << *flags.output << " (" << dot_options.highlights.size()
        << " words highlighted)\n";
  } else {
    out << dot;
  }
  return 0;
}

int cmd_table(const ParsedFlags& flags, std::ostream& out) {
  Session& session = *flags.session;
  std::vector<std::string> names = flags.positional;
  if (names.empty())
    for (const auto& profile : itc::itc99s_profiles())
      names.push_back(profile.name);

  std::vector<eval::Table1Row> rows;
  for (const std::string& name : names) {
    const LoadedDesign design = load_design(name, flags);
    const auto reference = session.reference(design);
    const auto base = session.run_baseline(design);
    const auto ours = session.run_ours(design);
    rows.push_back(make_row(name, design.nl(), *reference, base, ours));
  }
  if (flags.json) {
    out << eval::table_to_json(rows) << '\n';
  } else {
    out << eval::render_table1(rows);
  }
  return 0;
}

// The long-lived analysis daemon: admission control, QoS, graceful drain.
// See pipeline/serve.h for the threading model and docs/SERVING.md for the
// wire protocol.
int cmd_serve(const ParsedFlags& flags, std::ostream& out, std::ostream& err) {
  if (!flags.positional.empty())
    throw std::invalid_argument("serve: takes no positional arguments");
  if (flags.listen && flags.socket_path)
    throw std::invalid_argument("serve: --listen and --socket are exclusive");

  pipeline::serve::ServeOptions options;
  if (flags.socket_path) {
    options.unix_path = *flags.socket_path;
  } else {
    const std::string listen = flags.listen.value_or("127.0.0.1:0");
    const auto endpoint = pipeline::client::parse_endpoint(listen);
    if (!endpoint)
      throw std::invalid_argument("serve: --listen expects HOST:PORT, got '" +
                                  listen + "'");
    options.host = endpoint->host;
    options.port = endpoint->port;
  }
  if (flags.max_queue) options.max_queue = *flags.max_queue;
  if (flags.max_inflight) options.max_inflight = *flags.max_inflight;
  if (flags.idle_timeout_ms)
    options.idle_timeout = std::chrono::milliseconds(*flags.idle_timeout_ms);
  if (flags.drain_timeout_ms)
    options.drain_timeout = std::chrono::milliseconds(*flags.drain_timeout_ms);
  if (flags.max_request_bytes)
    options.max_request_bytes = *flags.max_request_bytes;
  if (flags.isolate) options.pool = pool_options_from(flags);

  options.executor.base = config_from(flags);
  // --timeout is the server-enforced per-request ceiling, not a whole-run
  // budget: client budgets are clamped to it (see protocol.h).
  options.executor.base.exec.timeout = std::chrono::milliseconds(0);
  if (flags.timeout_ms)
    options.executor.max_timeout = std::chrono::milliseconds(*flags.timeout_ms);

  pipeline::serve::Server server(options, &err);
  server.start();
  // check.sh and tests parse this exact line to find the ephemeral port.
  out << "netrev serve listening on " << server.endpoint() << '\n';
  out.flush();

  DrainSignalGuard drain_guard(server.drain_flag());
  const ExitCode code = server.run();
  out << "netrev serve " << exit_code_name(code) << '\n';
  return exit_code(code);
}

// One request against a running daemon; prints the raw result bytes so the
// output is byte-identical to the equivalent one-shot `--json` run.
int cmd_client(const ParsedFlags& flags, std::ostream& out, std::ostream& err) {
  if (flags.positional.empty())
    throw std::invalid_argument(
        "client: expected <op> [design ...] (ping|stats|health|load|lint|"
        "identify|evaluate|batch|lift)");
  const auto op = pipeline::protocol::parse_op(flags.positional[0]);
  if (!op)
    throw std::invalid_argument("client: unknown op '" + flags.positional[0] +
                                "'");

  pipeline::protocol::Request request;
  request.op = *op;
  if (flags.request_id) request.id = *flags.request_id;
  if (*op == pipeline::protocol::Op::kBatch) {
    request.designs.assign(flags.positional.begin() + 1,
                           flags.positional.end());
    if (request.designs.empty())
      throw std::invalid_argument("client: batch expects at least one design");
  } else if (flags.positional.size() == 2) {
    request.design = flags.positional[1];
  } else if (flags.positional.size() > 2) {
    throw std::invalid_argument("client: " + flags.positional[0] +
                                " takes at most one design");
  }
  // Bools are always sent so the client's flags fully determine the run,
  // independent of the server's base configuration — that is what makes the
  // output comparable to a one-shot CLI run with the same flags.
  request.options.base = flags.base;
  request.options.permissive = flags.permissive;
  request.options.cross_group = flags.cross_group;
  request.options.use_dataflow = flags.use_dataflow;
  if (flags.depth) request.options.depth = *flags.depth;
  if (flags.max_assign) request.options.max_assign = *flags.max_assign;
  if (flags.max_errors) request.options.max_errors = *flags.max_errors;
  if (flags.timeout_ms) request.options.timeout_ms = *flags.timeout_ms;
  if (flags.degrade) request.options.degrade = *flags.degrade;

  pipeline::client::Endpoint endpoint;
  if (flags.socket_path) {
    endpoint.unix_path = *flags.socket_path;
  } else if (flags.connect) {
    const auto parsed = pipeline::client::parse_endpoint(*flags.connect);
    if (!parsed)
      throw std::invalid_argument(
          "client: --connect expects HOST:PORT, got '" + *flags.connect + "'");
    endpoint = *parsed;
  } else {
    throw std::invalid_argument(
        "client: needs --connect HOST:PORT or --socket PATH");
  }

  pipeline::client::Connection connection(endpoint);
  const pipeline::protocol::Response response = connection.round_trip(request);
  if (flags.diag_json && !response.diagnostics.empty())
    err << response.diagnostics << '\n';

  using pipeline::protocol::Status;
  switch (response.status) {
    case Status::kOk:
    case Status::kDegraded:
      out << response.result << '\n';
      return exit_code(ExitCode::kOk);
    case Status::kOverloaded:
      err << "error: " << response.error << '\n';
      return exit_code(ExitCode::kOverloaded);
    case Status::kDeadline:
      err << "error: " << response.error << '\n';
      return exit_code(ExitCode::kDeadline);
    case Status::kCancelled:
      err << "error: " << response.error << '\n';
      return exit_code(ExitCode::kInterrupted);
    case Status::kBadRequest:
      err << "error: " << response.error << '\n';
      return exit_code(ExitCode::kUsage);
    case Status::kWorkerCrashed:
      err << "error: " << response.error << '\n';
      return exit_code(ExitCode::kWorkerCrashed);
    case Status::kError:
      break;
  }
  err << "error: " << response.error << '\n';
  return exit_code(ExitCode::kError);
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.empty()) {
    err << usage();
    return exit_code(ExitCode::kUsage);
  }
  diag::Diagnostics diags;
  bool diag_json = false;
  try {
    const std::string& command = args[0];
    if (command == "help" || command == "--help") {
      out << usage();
      return exit_code(ExitCode::kOk);
    }
    if (command == "version" || command == "--version") {
      out << "netrev " << version() << '\n';
      return exit_code(ExitCode::kOk);
    }
    const CommandSpec* spec = find_command(command);
    if (spec == nullptr) {
      err << "unknown command: " << command << "\n" << usage();
      return exit_code(ExitCode::kUsage);
    }
    ParsedFlags flags = parse_flags(*spec, args, 1);
    if (flags.version) {
      out << "netrev " << version() << '\n';
      return exit_code(ExitCode::kOk);
    }
    if (flags.max_errors) diags.set_max_errors(*flags.max_errors);
    diag_json = flags.diag_json;
    if (flags.jobs) ThreadPool::set_global_jobs(*flags.jobs);
    if (flags.profile) perf::Profiler::global().enable();

    Session session(config_from(flags));
    flags.diags = &diags;
    flags.session = &session;

    // Every command is interruptible: Ctrl-C trips the session's cancel
    // token, the active stage unwinds as CancelledError, and the command
    // exits 130 with no partial output (file writes are atomic).  serve
    // overrides this with its own drain handler; cmd_batch layers a guard
    // for its separate batch token.
    session.config().exec.cancellable = true;
    SigintGuard sigint_guard(session.config().exec.cancel);

    const int rc = [&] {
      if (command == "stats") return cmd_stats(flags, out);
      if (command == "reference") return cmd_reference(flags, out);
      if (command == "identify") return cmd_identify(flags, out);
      if (command == "lift") return cmd_lift(flags, out);
      if (command == "reduce") return cmd_reduce(flags, out);
      if (command == "evaluate") return cmd_evaluate(flags, out);
      if (command == "lint") return cmd_lint(flags, out);
      if (command == "batch") return cmd_batch(flags, out);
      if (command == "propagate") return cmd_propagate(flags, out);
      if (command == "generate") return cmd_generate(flags, out);
      if (command == "scan") return cmd_scan(flags, out);
      if (command == "dot") return cmd_dot(flags, out);
      if (command == "table") return cmd_table(flags, out);
      if (command == "serve") return cmd_serve(flags, out, err);
      if (command == "client") return cmd_client(flags, out, err);
      if (command == "worker") return cmd_worker(flags, out);
      throw std::logic_error("command in table but not dispatched: " +
                             command);
    }();
    if (flags.profile) {
      // Render while still enabled (total = elapsed since enable), then
      // disable so a later run_cli call in the same process starts clean.
      out << (flags.profile_json
                  ? perf::Profiler::global().render_json() + "\n"
                  : perf::Profiler::global().render_text());
      perf::Profiler::global().disable();
    }
    if (flags.diag_json) out << diags.to_json() << '\n';
    // A permissive run that succeeded but collected diagnostics signals
    // "recovered with warnings" so scripts can tell it from a clean pass.
    if (rc == exit_code(ExitCode::kOk) && flags.permissive && !diags.empty())
      return exit_code(ExitCode::kRecoveredWithWarnings);
    return rc;
  } catch (const UnusableInputError& error) {
    perf::Profiler::global().disable();
    if (diag_json) out << diags.to_json() << '\n';
    err << "error: " << error.what() << '\n';
    return exit_code(ExitCode::kUnusableInput);
  } catch (const exec::DeadlineExceededError& error) {
    // Only reached when degradation is off (--degrade=off) or the floor
    // rung itself tripped; otherwise the ladder absorbs the deadline.
    perf::Profiler::global().disable();
    if (diag_json) out << diags.to_json() << '\n';
    err << "error: " << error.what() << '\n';
    return exit_code(ExitCode::kDeadline);
  } catch (const exec::CancelledError& error) {
    perf::Profiler::global().disable();
    if (diag_json) out << diags.to_json() << '\n';
    err << "error: " << error.what() << '\n';
    return exit_code(ExitCode::kInterrupted);
  } catch (const std::invalid_argument& error) {
    // Bad flags, malformed values, wrong positionals: usage errors, distinct
    // from runtime failures so scripts can tell "fix the command line" from
    // "fix the input".
    perf::Profiler::global().disable();
    err << "error: " << error.what() << '\n';
    return exit_code(ExitCode::kUsage);
  } catch (const std::exception& error) {
    perf::Profiler::global().disable();
    err << "error: " << error.what() << '\n';
    return exit_code(ExitCode::kError);
  }
}

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return run_cli(args, out, err);
}

}  // namespace netrev::cli
