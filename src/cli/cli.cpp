#include "cli/cli.h"

#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>

#include "analysis/analyzer.h"
#include "common/diagnostics.h"
#include "common/text.h"
#include "common/thread_pool.h"
#include "perf/profile.h"
#include "eval/diagnose.h"
#include "eval/metrics.h"
#include "eval/reference.h"
#include "eval/report.h"
#include "eval/runner.h"
#include "eval/table.h"
#include "itc/family.h"
#include "netlist/dot.h"
#include "netlist/repair.h"
#include "netlist/stats.h"
#include "netlist/validate.h"
#include "parser/bench_parser.h"
#include "parser/parse_options.h"
#include "parser/verilog_parser.h"
#include "parser/verilog_writer.h"
#include "rtl/scan.h"
#include "wordrec/baseline.h"
#include "wordrec/funcheck.h"
#include "wordrec/identify.h"
#include "wordrec/propagation.h"
#include "wordrec/reduce.h"
#include "wordrec/trace.h"

namespace netrev::cli {

namespace {

using netlist::Netlist;

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_family_name(const std::string& name) {
  try {
    itc::profile_by_name(name);
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

// Thrown when a permissive load recovers nothing usable (fatal diagnostics,
// or a netlist that still fails validation after repair).  Mapped to exit
// code 4 by run_cli.
struct UnusableInputError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct ParsedFlags {
  std::vector<std::string> positional;
  bool base = false;
  bool json = false;
  bool cross_group = false;
  bool trace = false;
  bool permissive = false;
  bool diag_json = false;
  bool profile = false;       // --profile: print the stage tree (text)
  bool profile_json = false;  // --profile=json: print it as JSON
  std::optional<std::size_t> jobs;
  std::optional<std::size_t> depth;
  std::optional<std::size_t> max_assign;
  std::optional<std::size_t> max_errors;
  std::optional<std::string> output;
  std::vector<std::pair<std::string, bool>> assignments;
  std::vector<std::string> rules;                // lint --rules a,b,c
  std::optional<diag::Severity> fail_on;         // lint --fail-on=...
  // Non-owning; set by run_cli so permissive loads have a sink.
  diag::Diagnostics* diags = nullptr;
};

// Loads a design: family benchmark name, .bench file, or Verilog file.
// Strict by default (any parse error throws); with --permissive the parsers
// recover what they can, the netlist is repaired, and only a design that
// still fails validation is rejected.
Netlist load_design(const std::string& spec, const ParsedFlags& flags) {
  perf::Stage stage("load");
  if (is_family_name(spec)) return itc::build_benchmark(spec).netlist;
  if (!flags.permissive) {
    if (ends_with(spec, ".bench")) return parser::parse_bench_file(spec);
    return parser::parse_verilog_file(spec);
  }

  diag::Diagnostics& diags = *flags.diags;
  parser::ParseOptions options;
  options.permissive = true;
  options.filename = spec;
  Netlist nl = ends_with(spec, ".bench")
                   ? parser::parse_bench_file(spec, options, diags)
                   : parser::parse_verilog_file(spec, options, diags);
  if (!diags.usable())
    throw UnusableInputError("input unusable: " + spec +
                             " (fatal diagnostics; see --diag-json)");

  netlist::RepairResult repaired = netlist::repair(nl, diags);
  // repair() ties and prunes but cannot fix combinational cycles; break them
  // here (diag-reported) so levelization and identification can proceed.
  analysis::CycleBreakResult decycled =
      analysis::break_combinational_cycles(repaired.netlist, diags);
  if (decycled.cycles_broken > 0)
    repaired.netlist = std::move(decycled.netlist);
  const auto report = netlist::validate(repaired.netlist);
  if (!report.ok()) {
    for (const auto& issue : report.issues)
      if (issue.severity == netlist::ValidationIssue::Severity::kError)
        diags.error(issue.message, {spec, 0, 0});
    throw UnusableInputError("input unusable: " + spec + " fails validation (" +
                             std::to_string(report.error_count()) +
                             " error(s)) even after repair");
  }
  return repaired.netlist;
}

diag::Severity parse_fail_on(const std::string& value) {
  if (value == "note") return diag::Severity::kNote;
  if (value == "warning") return diag::Severity::kWarning;
  if (value == "error") return diag::Severity::kError;
  throw std::invalid_argument(
      "--fail-on expects note, warning, or error; got '" + value + "'");
}

ParsedFlags parse_flags(const std::vector<std::string>& args,
                        std::size_t start) {
  ParsedFlags flags;
  for (std::size_t i = start; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto next_value = [&](const char* flag) -> const std::string& {
      if (i + 1 >= args.size())
        throw std::invalid_argument(std::string(flag) + " needs a value");
      return args[++i];
    };
    // `--flag=value` form for the lint flags.
    const auto inline_value =
        [&](const std::string& prefix) -> std::optional<std::string> {
      if (!starts_with(arg, prefix + "=")) return std::nullopt;
      return arg.substr(prefix.size() + 1);
    };
    if (const auto v = inline_value("--rules")) {
      for (const std::string& id : split(*v, ','))
        if (!trim(id).empty()) flags.rules.emplace_back(trim(id));
    } else if (const auto v = inline_value("--fail-on")) {
      flags.fail_on = parse_fail_on(*v);
    } else if (arg == "--rules") {
      for (const std::string& id : split(next_value("--rules"), ','))
        if (!trim(id).empty()) flags.rules.emplace_back(trim(id));
    } else if (arg == "--fail-on") {
      flags.fail_on = parse_fail_on(next_value("--fail-on"));
    } else if (arg == "--base") {
      flags.base = true;
    } else if (arg == "--json") {
      flags.json = true;
    } else if (arg == "--cross-group") {
      flags.cross_group = true;
    } else if (arg == "--trace") {
      flags.trace = true;
    } else if (arg == "--permissive") {
      flags.permissive = true;
    } else if (arg == "--diag-json") {
      flags.diag_json = true;
    } else if (arg == "--profile") {
      flags.profile = true;
    } else if (arg == "--profile=json") {
      flags.profile = true;
      flags.profile_json = true;
    } else if (arg == "--jobs" || arg == "-j") {
      flags.jobs = std::stoul(next_value("--jobs"));
      if (*flags.jobs == 0)
        throw std::invalid_argument("--jobs expects a positive thread count");
    } else if (arg == "--max-errors") {
      flags.max_errors = std::stoul(next_value("--max-errors"));
    } else if (arg == "--depth") {
      flags.depth = std::stoul(next_value("--depth"));
    } else if (arg == "--max-assign") {
      flags.max_assign = std::stoul(next_value("--max-assign"));
    } else if (arg == "-o" || arg == "--output") {
      flags.output = next_value("-o");
    } else if (arg == "--assign") {
      const std::string& spec = next_value("--assign");
      const auto eq = spec.find('=');
      if (eq == std::string::npos || eq + 2 != spec.size() ||
          (spec[eq + 1] != '0' && spec[eq + 1] != '1'))
        throw std::invalid_argument("--assign expects NET=0 or NET=1, got '" +
                                    spec + "'");
      flags.assignments.emplace_back(spec.substr(0, eq), spec[eq + 1] == '1');
    } else if (!arg.empty() && arg[0] == '-') {
      throw std::invalid_argument("unknown flag: " + arg);
    } else {
      flags.positional.push_back(arg);
    }
  }
  return flags;
}

wordrec::Options options_from(const ParsedFlags& flags) {
  wordrec::Options options;
  if (flags.depth) options.cone_depth = *flags.depth;
  if (flags.max_assign) options.max_simultaneous_assignments = *flags.max_assign;
  options.cross_group_checking = flags.cross_group;
  return options;
}

void print_words(std::ostream& out, const Netlist& nl,
                 const wordrec::WordSet& words) {
  for (const wordrec::Word& word : words.words) {
    if (word.width() < 2) continue;
    out << "  [" << word.width() << " bits]";
    for (netlist::NetId bit : word.bits) out << ' ' << nl.net(bit).name;
    out << '\n';
  }
}

// --- subcommands -----------------------------------------------------------

int cmd_stats(const ParsedFlags& flags, std::ostream& out) {
  if (flags.positional.size() != 1)
    throw std::invalid_argument("stats: expected one design");
  const Netlist nl = load_design(flags.positional[0], flags);
  out << nl.name() << ": " << netlist::compute_stats(nl).to_string() << '\n';
  const auto profile = netlist::compute_fanin_profile(nl);
  out << "max fanin " << profile.max_fanin << ", avg fanin "
      << profile.average_fanin << ", comb depth "
      << netlist::combinational_depth(nl) << '\n';
  const auto report = netlist::validate(nl);
  out << "validation: " << report.error_count() << " error(s), "
      << report.warning_count() << " warning(s)\n";
  return report.ok() ? 0 : 1;
}

int cmd_reference(const ParsedFlags& flags, std::ostream& out) {
  if (flags.positional.size() != 1)
    throw std::invalid_argument("reference: expected one design");
  const Netlist nl = load_design(flags.positional[0], flags);
  const auto extraction = eval::extract_reference_words(nl);
  out << extraction.words.size() << " reference word(s), "
      << extraction.indexed_flops << "/" << extraction.flop_count
      << " flops indexed, avg size " << extraction.average_word_size() << '\n';
  for (const auto& word : extraction.words) {
    out << "  " << word.register_name << " [" << word.width() << " bits]";
    for (netlist::NetId bit : word.bits) out << ' ' << nl.net(bit).name;
    out << '\n';
  }
  return 0;
}

int cmd_identify(const ParsedFlags& flags, std::ostream& out) {
  if (flags.positional.size() != 1)
    throw std::invalid_argument("identify: expected one design");
  const Netlist nl = load_design(flags.positional[0], flags);
  const wordrec::Options options = options_from(flags);

  if (flags.base) {
    perf::Stage stage("identify");
    const wordrec::WordSet words =
        wordrec::identify_words_baseline(nl, options);
    if (flags.json) {
      out << eval::words_to_json(nl, words) << '\n';
    } else {
      out << "shape hashing found " << words.count_multibit()
          << " multi-bit word(s):\n";
      print_words(out, nl, words);
    }
    return 0;
  }

  wordrec::IdentifyTrace trace;
  wordrec::Options traced_options = options;
  if (flags.trace) traced_options.trace = &trace;
  const wordrec::IdentifyResult result =
      wordrec::identify_words(nl, traced_options);
  if (flags.json) {
    out << eval::identify_result_to_json(nl, result) << '\n';
    return 0;
  }
  if (flags.trace) out << wordrec::render_trace(nl, trace);
  out << "found " << result.words.count_multibit() << " multi-bit word(s), "
      << result.used_control_signals.size() << " control signal(s), "
      << result.stats.reduction_trials << " reduction trial(s):\n";
  print_words(out, nl, result.words);
  for (const auto& unified : result.unified) {
    out << "  unified via";
    for (const auto& [net, value] : unified.assignment)
      out << ' ' << nl.net(net).name << '=' << (value ? 1 : 0);
    out << ':';
    for (netlist::NetId bit : unified.bits) out << ' ' << nl.net(bit).name;
    out << '\n';
  }
  return 0;
}

int cmd_reduce(const ParsedFlags& flags, std::ostream& out) {
  if (flags.positional.size() != 1)
    throw std::invalid_argument("reduce: expected one design");
  if (flags.assignments.empty())
    throw std::invalid_argument("reduce: needs at least one --assign NET=V");
  const Netlist nl = load_design(flags.positional[0], flags);

  std::vector<std::pair<netlist::NetId, bool>> seeds;
  for (const auto& [name, value] : flags.assignments) {
    const auto net = nl.find_net(name);
    if (!net) throw std::invalid_argument("no such net: " + name);
    seeds.emplace_back(*net, value);
  }
  const auto propagated = wordrec::propagate(nl, seeds);
  if (!propagated.feasible) {
    out << "assignment is infeasible (conflicting implications)\n";
    return 1;
  }
  const Netlist reduced =
      wordrec::materialize_reduction(nl, propagated.map, options_from(flags));
  out << "assigned " << propagated.map.size() << " net(s); " << nl.gate_count()
      << " -> " << reduced.gate_count() << " gates\n";
  if (flags.output) {
    parser::write_verilog_file(reduced, *flags.output);
    out << "wrote " << *flags.output << '\n';
  }
  return 0;
}

int cmd_propagate(const ParsedFlags& flags, std::ostream& out) {
  if (flags.positional.size() != 1)
    throw std::invalid_argument("propagate: expected one design");
  const Netlist nl = load_design(flags.positional[0], flags);
  const wordrec::Options options = options_from(flags);
  const wordrec::IdentifyResult result = wordrec::identify_words(nl, options);
  const auto propagated =
      wordrec::propagate_words_to_fixpoint(nl, result.words, options);
  out << "seeded with " << result.words.count_multibit()
      << " identified word(s); propagation derived "
      << propagated.candidates.size() << " candidate word(s) ("
      << propagated.ambiguous_positions << " ambiguous position(s) skipped)\n";
  for (const auto& candidate : propagated.candidates) {
    out << "  ["
        << (candidate.source == wordrec::PropagatedWord::Source::kSubtreeRoots
                ? "roots"
                : "leaves")
        << "]";
    for (netlist::NetId bit : candidate.word.bits)
      out << ' ' << nl.net(bit).name;
    out << '\n';
  }
  return 0;
}

int cmd_evaluate(const ParsedFlags& flags, std::ostream& out) {
  if (flags.positional.size() != 1)
    throw std::invalid_argument("evaluate: expected one design");
  const Netlist nl = load_design(flags.positional[0], flags);
  const auto reference = [&] {
    perf::Stage stage("reference");
    return eval::extract_reference_words(nl);
  }();
  if (reference.words.empty())
    throw std::invalid_argument(
        "evaluate: no reference words (flop output names carry no indices)");
  const wordrec::Options options = options_from(flags);
  // identify_words opens its own "identify" stage; mirror it for --base.
  const wordrec::WordSet words = [&] {
    if (!flags.base) return wordrec::identify_words(nl, options).words;
    perf::Stage stage("identify");
    return wordrec::identify_words_baseline(nl, options);
  }();
  const eval::Diagnosis diagnosis = [&] {
    perf::Stage stage("diagnose");
    return eval::diagnose(nl, words, reference);
  }();
  // Structural-health context for the recovery numbers: a netlist the lint
  // rules flag (dead cones, degenerate gates) depresses recall for reasons
  // that are not the identifier's fault.
  const analysis::AnalysisResult health = [&] {
    perf::Stage stage("analysis");
    return analysis::analyze(nl);
  }();
  if (flags.json) {
    out << "{\"evaluation\":"
        << eval::evaluation_to_json(diagnosis.summary, reference.words)
        << ",\"analysis\":" << eval::analysis_to_json(nl, health) << "}\n";
    return 0;
  }
  out << render_diagnosis(diagnosis);
  out << "static analysis: " << health.summary() << '\n';
  for (const analysis::Finding& finding : health.findings)
    out << "  " << finding.to_string() << '\n';

  // Functional screening of the generated words (the paper's "functional
  // techniques may be applied after" note).
  const auto flagged = [&] {
    perf::Stage stage("funcheck");
    return wordrec::suspicious_words(nl, words);
  }();
  if (!flagged.empty()) {
    out << "functionally suspicious generated words: " << flagged.size()
        << " (stuck/duplicate/complementary bits)\n";
  }
  return 0;
}

// Lints a design with the static-analysis engine.  Files always load
// permissively (lint exists to inspect broken inputs, so parse recovery
// findings are part of the report); exit 1 when any finding or parse
// diagnostic reaches the --fail-on threshold (default: error).
int cmd_lint(const ParsedFlags& flags, std::ostream& out) {
  if (flags.positional.size() != 1)
    throw std::invalid_argument("lint: expected one design");
  const std::string& spec = flags.positional[0];
  diag::Diagnostics& diags = *flags.diags;

  Netlist nl;
  bool parsed_from_file = false;
  if (is_family_name(spec)) {
    nl = itc::build_benchmark(spec).netlist;
  } else {
    parsed_from_file = true;
    parser::ParseOptions options;
    options.permissive = true;
    options.filename = spec;
    nl = ends_with(spec, ".bench")
             ? parser::parse_bench_file(spec, options, diags)
             : parser::parse_verilog_file(spec, options, diags);
    if (!diags.usable())
      throw UnusableInputError("input unusable: " + spec +
                               " (fatal diagnostics; see --diag-json)");
  }

  // Parse-time counts, captured before emit() mirrors findings into the sink.
  const std::size_t parse_errors = diags.error_count();
  const std::size_t parse_warnings = diags.warning_count();

  analysis::AnalysisOptions options;
  options.enabled_rules = flags.rules;
  const analysis::AnalysisResult result =
      analysis::analyze(nl, options, parsed_from_file ? &diags : nullptr);

  if (!diags.empty()) out << diags.to_string();
  for (const analysis::Finding& finding : result.findings) {
    out << finding.to_string() << '\n';
    if (!finding.fix_hint.empty()) out << "  fix: " << finding.fix_hint << '\n';
  }
  // Mirror the findings into the diag sink so --diag-json carries them too.
  analysis::emit(result, diags, spec);
  out << spec << ": " << result.summary() << '\n';

  const diag::Severity fail_on =
      flags.fail_on.value_or(diag::Severity::kError);
  std::size_t failing = result.error_count() + parse_errors;
  if (fail_on <= diag::Severity::kWarning)
    failing += result.warning_count() + parse_warnings;
  if (fail_on <= diag::Severity::kNote) failing += result.note_count();
  return failing > 0 ? 1 : 0;
}

int cmd_generate(const ParsedFlags& flags, std::ostream& out) {
  if (flags.positional.size() != 1)
    throw std::invalid_argument("generate: expected one family name");
  const auto bench = itc::build_benchmark(flags.positional[0]);
  const std::string dir = flags.output.value_or(".");
  std::filesystem::create_directories(dir);
  const std::string v_path = dir + "/" + bench.profile.name + ".v";
  const std::string b_path = dir + "/" + bench.profile.name + ".bench";
  parser::write_verilog_file(bench.netlist, v_path);
  parser::write_bench_file(bench.netlist, b_path);
  out << "wrote " << v_path << " and " << b_path << '\n';
  return 0;
}

int cmd_scan(const ParsedFlags& flags, std::ostream& out) {
  if (flags.positional.size() != 1)
    throw std::invalid_argument("scan: expected one design");
  const Netlist nl = load_design(flags.positional[0], flags);
  const auto scanned = rtl::insert_scan_chain(nl);
  out << "inserted " << scanned.muxes_inserted
      << " scan mux(es); control signal "
      << scanned.netlist.net(scanned.scan_enable).name << '\n';
  if (flags.output) {
    parser::write_verilog_file(scanned.netlist, *flags.output);
    out << "wrote " << *flags.output << '\n';
  }
  return 0;
}

int cmd_dot(const ParsedFlags& flags, std::ostream& out) {
  if (flags.positional.size() != 1)
    throw std::invalid_argument("dot: expected one design");
  const Netlist nl = load_design(flags.positional[0], flags);

  netlist::DotOptions dot_options;
  // --depth here bounds the DRAWN cones (0 = whole design); identification
  // itself runs with default options.
  dot_options.cone_depth = flags.depth.value_or(0);
  const wordrec::IdentifyResult result = wordrec::identify_words(nl);
  std::size_t label = 0;
  for (const wordrec::Word& word : result.words.words) {
    if (word.width() < 2) continue;
    netlist::DotOptions::Highlight highlight;
    highlight.label = "word " + std::to_string(label++) + " (" +
                      std::to_string(word.width()) + " bits)";
    highlight.nets = word.bits;
    dot_options.highlights.push_back(std::move(highlight));
  }
  const std::string dot = to_dot(nl, dot_options);
  if (flags.output) {
    std::ofstream file(*flags.output);
    if (!file)
      throw std::runtime_error("cannot open for writing: " + *flags.output);
    file << dot;
    out << "wrote " << *flags.output << " (" << dot_options.highlights.size()
        << " words highlighted)\n";
  } else {
    out << dot;
  }
  return 0;
}

int cmd_table(const ParsedFlags& flags, std::ostream& out) {
  std::vector<std::string> names = flags.positional;
  if (names.empty())
    for (const auto& profile : itc::itc99s_profiles())
      names.push_back(profile.name);

  std::vector<eval::Table1Row> rows;
  for (const std::string& name : names) {
    const auto bench = itc::build_benchmark(name);
    const auto reference = eval::extract_reference_words(bench.netlist);
    const auto base = eval::run_baseline(bench.netlist, options_from(flags));
    const auto ours = eval::run_ours(bench.netlist, options_from(flags));
    rows.push_back(make_row(name, bench.netlist, reference, base, ours));
  }
  if (flags.json) {
    out << "[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (i > 0) out << ",";
      out << eval::table_row_to_json(rows[i]);
    }
    out << "]\n";
  } else {
    out << eval::render_table1(rows);
  }
  return 0;
}

}  // namespace

std::string usage() {
  return "usage: netrev <command> [args]\n"
         "  stats <design>                          design statistics\n"
         "  reference <design>                      golden reference words\n"
         "  identify <design> [--base] [--json] [--trace] [--depth N]\n"
         "           [--max-assign N] [--cross-group]\n"
         "  reduce <design> --assign NET=0|1 ... [-o out.v]\n"
         "  evaluate <design> [--base] [--json]     compare vs reference\n"
         "  lint <design> [--rules a,b] [--fail-on note|warning|error]\n"
         "       static-analysis findings; exit 1 at/above --fail-on\n"
         "       (default error); files always load permissively\n"
         "  propagate <design>                      word propagation\n"
         "  generate <bXXs> [-o dir]                emit family benchmark\n"
         "  scan <design> [-o out.v]                insert scan chain\n"
         "  dot <design> [--depth N] [-o out.dot]   GraphViz with words\n"
         "  table [bXXs ...] [--json]               Table 1 rows\n"
         "(<design> = family name, .bench file, or Verilog file)\n"
         "global flags:\n"
         "  --jobs N | -j N   thread count for the parallel pipeline stages\n"
         "                    (default: NETREV_JOBS env var, else all cores;\n"
         "                    results are identical at any value)\n"
         "  --profile         print the stage-profile tree after the command\n"
         "  --profile=json    ... as JSON on the last line\n"
         "  --permissive      recover from parse errors and repair the\n"
         "                    netlist\n"
         "  --max-errors N    stop recovery after N errors\n"
         "  --diag-json       print collected diagnostics as JSON\n"
         "exit codes: 0 ok, 1 error, 2 usage, 3 recovered with warnings,\n"
         "  4 unusable input\n";
}

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.empty()) {
    err << usage();
    return 2;
  }
  diag::Diagnostics diags;
  bool diag_json = false;
  try {
    const std::string& command = args[0];
    ParsedFlags flags = parse_flags(args, 1);
    if (flags.max_errors) diags.set_max_errors(*flags.max_errors);
    flags.diags = &diags;
    diag_json = flags.diag_json;
    if (flags.jobs) ThreadPool::set_global_jobs(*flags.jobs);
    if (flags.profile) perf::Profiler::global().enable();

    const auto dispatch = [&]() -> std::optional<int> {
      if (command == "stats") return cmd_stats(flags, out);
      if (command == "reference") return cmd_reference(flags, out);
      if (command == "identify") return cmd_identify(flags, out);
      if (command == "reduce") return cmd_reduce(flags, out);
      if (command == "evaluate") return cmd_evaluate(flags, out);
      if (command == "lint") return cmd_lint(flags, out);
      if (command == "propagate") return cmd_propagate(flags, out);
      if (command == "generate") return cmd_generate(flags, out);
      if (command == "scan") return cmd_scan(flags, out);
      if (command == "dot") return cmd_dot(flags, out);
      if (command == "table") return cmd_table(flags, out);
      return std::nullopt;
    };
    const std::optional<int> rc = dispatch();
    if (rc) {
      if (flags.profile) {
        // Render while still enabled (total = elapsed since enable), then
        // disable so a later run_cli call in the same process starts clean.
        out << (flags.profile_json
                    ? perf::Profiler::global().render_json() + "\n"
                    : perf::Profiler::global().render_text());
        perf::Profiler::global().disable();
      }
      if (flags.diag_json) out << diags.to_json() << '\n';
      // A permissive run that succeeded but collected diagnostics signals
      // "recovered with warnings" so scripts can tell it from a clean pass.
      if (*rc == 0 && flags.permissive && !diags.empty()) return 3;
      return *rc;
    }
    if (command == "help" || command == "--help") {
      out << usage();
      return 0;
    }
    err << "unknown command: " << command << "\n" << usage();
    return 2;
  } catch (const UnusableInputError& error) {
    perf::Profiler::global().disable();
    if (diag_json) out << diags.to_json() << '\n';
    err << "error: " << error.what() << '\n';
    return 4;
  } catch (const std::exception& error) {
    perf::Profiler::global().disable();
    err << "error: " << error.what() << '\n';
    return 1;
  }
}

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return run_cli(args, out, err);
}

}  // namespace netrev::cli
