// Table-driven CLI option parsing.
//
// Every flag netrev accepts is declared exactly once in flag_table(), and
// every subcommand in command_table() lists which flags apply to it.  The
// parser, the per-command applicability check, and usage() are all generated
// from the same two tables, so help text cannot drift from what the parser
// actually accepts.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/diagnostics.h"
#include "exec/degrade.h"

namespace netrev {
class Session;
}

namespace netrev::cli {

enum class FlagId {
  // Command-specific flags.
  kBase,
  kJson,
  kCrossGroup,
  kUseDataflow,
  kTrace,
  kDepth,
  kMaxAssign,
  kOutput,
  kAssign,
  kRules,
  kFailOn,
  kListRules,
  kKeepGoing,
  kNoVerify,
  kVectors,
  kResume,
  kRetries,
  kCompactJournal,
  // serve / client flags.
  kListen,
  kSocket,
  kConnect,
  kRequestId,
  kMaxQueue,
  kMaxInflight,
  kIdleTimeout,
  kDrainTimeout,
  kMaxRequestBytes,
  // Process isolation (batch / serve).
  kIsolate,
  kWorkerMem,
  kWorkerCpu,
  kWorkerWall,
  kCrashRetries,
  // Global flags (valid for every command).
  kLegacyCore,
  kTimeout,
  kStageTimeout,
  kDegrade,
  kCacheEntries,
  kJobs,
  kProfile,
  kPermissive,
  kDiagJson,
  kMaxErrors,
  kVersion,
};

struct FlagSpec {
  FlagId id;
  const char* name;        // "--base"
  const char* alias;       // short form ("-j") or nullptr
  bool takes_value;        // expects "--flag value" or "--flag=value"
  const char* value_name;  // metavariable for usage(), e.g. "N"
  const char* help;        // one-line description for usage()
  bool global;             // applies to every command
};

struct CommandSpec {
  const char* name;
  const char* args;     // positional signature, e.g. "<design>"
  const char* summary;  // one-line description for usage()
  std::vector<FlagId> flags;  // applicable command-specific flags
  // Internal commands (the supervisor's "worker" mode) parse normally but
  // are omitted from usage().
  bool hidden = false;
};

const std::vector<FlagSpec>& flag_table();
const std::vector<CommandSpec>& command_table();
// nullptr when `name` is not a known subcommand.
const CommandSpec* find_command(const std::string& name);

// The parse result every subcommand consumes.
struct ParsedFlags {
  std::vector<std::string> positional;
  bool base = false;
  bool json = false;
  bool cross_group = false;
  bool use_dataflow = false;  // --use-dataflow: constant-net pruning
  bool trace = false;
  bool permissive = false;
  bool diag_json = false;
  bool profile = false;       // --profile: print the stage tree (text)
  bool profile_json = false;  // --profile=json: print it as JSON
  bool keep_going = false;    // batch --keep-going
  bool no_verify = false;     // lift --no-verify: skip equivalence check
  bool version = false;       // --version: print version and exit
  bool legacy_core = false;   // --legacy-core: pointer netlist, scalar sim
  std::optional<std::size_t> jobs;
  std::optional<std::size_t> depth;
  std::optional<std::size_t> max_assign;
  std::optional<std::size_t> max_errors;
  std::optional<std::size_t> vectors;  // lift --vectors: verification samples
  std::optional<std::string> output;
  std::optional<std::size_t> timeout_ms;        // --timeout (whole run)
  std::optional<std::size_t> stage_timeout_ms;  // --stage-timeout (per stage)
  std::optional<exec::DegradePolicy> degrade;   // --degrade policy
  std::optional<std::size_t> cache_entries;     // --cache-entries bound
  std::optional<std::string> resume;            // batch --resume journal path
  std::optional<std::size_t> retries;           // batch --retries
  bool compact_journal = false;     // batch --compact-journal (needs --resume)
  std::optional<std::string> listen;       // serve --listen HOST:PORT
  std::optional<std::string> socket_path;  // serve/client --socket PATH
  std::optional<std::string> connect;      // client --connect HOST:PORT
  std::optional<std::string> request_id;   // client --id STR
  std::optional<std::size_t> max_queue;         // serve --max-queue
  std::optional<std::size_t> max_inflight;      // serve --max-inflight
  std::optional<std::size_t> idle_timeout_ms;   // serve --idle-timeout
  std::optional<std::size_t> drain_timeout_ms;  // serve --drain-timeout
  std::optional<std::size_t> max_request_bytes;  // serve --max-request-bytes
  bool isolate = false;  // batch/serve --isolate[=N]: supervised workers
  std::optional<std::size_t> isolate_workers;  // the =N (pool size)
  std::optional<std::size_t> worker_mem_mb;    // --worker-mem (RLIMIT_AS MiB)
  std::optional<std::size_t> worker_cpu_s;     // --worker-cpu (RLIMIT_CPU s)
  std::optional<std::size_t> worker_wall_ms;   // --worker-wall watchdog
  std::optional<std::size_t> crash_retries;    // batch --crash-retries
  std::vector<std::pair<std::string, bool>> assignments;
  std::vector<std::string> rules;         // lint --rules a,b,c
  std::optional<diag::Severity> fail_on;  // lint --fail-on=...
  bool list_rules = false;                // lint --list-rules
  // Non-owning; set by run_cli before dispatch.
  diag::Diagnostics* diags = nullptr;
  Session* session = nullptr;
};

// Parses args[start..] against `command`'s flag set.  Throws
// std::invalid_argument on unknown flags, missing values, malformed values,
// and flags that are not valid for this command.
ParsedFlags parse_flags(const CommandSpec& command,
                        const std::vector<std::string>& args,
                        std::size_t start);

// Generated from flag_table() + command_table().
std::string usage();

}  // namespace netrev::cli
