// Partial structural matching and subgroup formation (§2.3).
//
// Within a potential-bit group, bits are visited sequentially and each is
// compared against its predecessor via a sorted merge over their subtree
// hash-key lists (each key visited once, O(k_i + k_j)).  Fully or partially
// matching neighbours chain into the same subgroup; the dissimilar subtrees
// discovered along the way are remembered per bit by their root nets — the
// input to control-signal discovery (§2.4).
#pragma once

#include <span>
#include <vector>

#include "wordrec/hash_key.h"

namespace netrev::wordrec {

// Outcome of comparing two bit signatures.
struct BitMatch {
  bool comparable = false;  // both bits have a combinational root
  bool full = false;        // every subtree matched on both sides
  bool partial = false;     // at least one subtree matched
  std::vector<netlist::NetId> dissimilar_a;  // unmatched subtree roots in a
  std::vector<netlist::NetId> dissimilar_b;  // unmatched subtree roots in b
};

// Sorted-merge comparison of two signatures.  Roots must agree for any
// match; unmatched subtrees are reported even when the comparison fails.
BitMatch compare_bits(const BitSignature& a, const BitSignature& b);

// A refined subgroup: bits that chained together by full/partial matches.
struct Subgroup {
  std::vector<netlist::NetId> bits;  // file order
  // Dissimilar subtree roots recorded per bit (parallel to `bits`); a bit
  // adjacent to two neighbours accumulates the union of both comparisons.
  std::vector<std::vector<netlist::NetId>> dissimilar;
  // True when every chained comparison was a full match (all signatures
  // equal — equality is transitive over the chain).
  bool fully_similar = true;

  bool has_dissimilar() const {
    for (const auto& roots : dissimilar)
      if (!roots.empty()) return true;
    return false;
  }
};

// Splits a group of potential bits into subgroups.  `signatures` must be
// parallel to `group` (signature of each bit).  When `require_full_match` is
// set, only full matches chain — this is exactly the shape-hashing baseline's
// grouping rule [6].
std::vector<Subgroup> form_subgroups(
    std::span<const netlist::NetId> group,
    std::span<const BitSignature> signatures,
    bool require_full_match = false);

}  // namespace netrev::wordrec
