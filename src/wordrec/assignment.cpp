#include "wordrec/assignment.h"

#include <deque>

#include "common/contracts.h"

namespace netrev::wordrec {

using netlist::Gate;
using netlist::GateId;
using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

namespace {

// Worklist-driven implication engine.
class Propagator {
 public:
  Propagator(const Netlist& nl, bool backward) : nl_(&nl), backward_(backward) {}

  PropagationResult run(std::span<const std::pair<NetId, bool>> seeds) {
    for (const auto& [net, value] : seeds) {
      if (!enqueue(net, value)) return fail();
    }
    while (!queue_.empty()) {
      const NetId net = queue_.front();
      queue_.pop_front();
      if (!process(net)) return fail();
    }
    PropagationResult result;
    result.map = std::move(map_);
    result.feasible = true;
    return result;
  }

 private:
  PropagationResult fail() {
    PropagationResult result;
    result.map = std::move(map_);
    result.feasible = false;
    return result;
  }

  // Record value; push to worklist when new.  False on conflict.
  bool enqueue(NetId net, bool value) {
    const auto existing = map_.value(net);
    if (existing.has_value()) return *existing == value;
    map_.assign(net, value);
    queue_.push_back(net);
    return true;
  }

  bool process(NetId net) {
    // Forward: the net is an input of its fanout gates.  A newly-known input
    // can also complete a backward "sole unknown input" implication on a
    // gate whose output was already assigned.
    for (GateId g : nl_->net(net).fanouts) {
      if (!imply_forward(g)) return false;
      if (backward_ && !imply_backward(g)) return false;
    }
    // The net's own driver may now be further constrained (backward), and a
    // newly assigned output may determine remaining inputs.
    if (backward_) {
      if (const auto drv = nl_->driver_of(net))
        if (!imply_backward(*drv)) return false;
    }
    // Forward again on the driver: output assignments can conflict with an
    // already fully-determined gate.
    if (const auto drv = nl_->driver_of(net))
      if (!imply_forward(*drv)) return false;
    return true;
  }

  // Derive the gate's output from its inputs where possible, and check
  // consistency with an already-assigned output.
  bool imply_forward(GateId g) {
    const Gate& gate = nl_->gate(g);
    if (gate.type == GateType::kDff) return true;  // sequential boundary

    std::optional<bool> derived;
    switch (gate.type) {
      case GateType::kConst0: derived = false; break;
      case GateType::kConst1: derived = true; break;
      case GateType::kBuf:
      case GateType::kNot: {
        const auto in = map_.value(gate.inputs[0]);
        if (in) derived = (gate.type == GateType::kBuf) ? *in : !*in;
        break;
      }
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor: {
        const bool cv = *controlling_value(gate.type);
        bool all_known = true;
        bool saw_controlling = false;
        for (NetId in : gate.inputs) {
          const auto v = map_.value(in);
          if (!v) {
            all_known = false;
          } else if (*v == cv) {
            saw_controlling = true;
          }
        }
        if (saw_controlling)
          derived = controlled_output(gate.type);
        else if (all_known)
          derived = !controlled_output(gate.type);
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        bool parity = gate.type == GateType::kXnor;  // XNOR inverts
        bool all_known = true;
        for (NetId in : gate.inputs) {
          const auto v = map_.value(in);
          if (!v) {
            all_known = false;
            break;
          }
          parity = parity != *v;
        }
        if (all_known) derived = parity;
        break;
      }
      case GateType::kDff: break;
    }
    if (derived) return enqueue(gate.output, *derived);
    return true;
  }

  // Derive input values forced by the gate's assigned output.
  bool imply_backward(GateId g) {
    const Gate& gate = nl_->gate(g);
    if (gate.type == GateType::kDff) return true;
    const auto out = map_.value(gate.output);
    if (!out) return true;

    switch (gate.type) {
      case GateType::kConst0: return *out == false;
      case GateType::kConst1: return *out == true;
      case GateType::kBuf: return enqueue(gate.inputs[0], *out);
      case GateType::kNot: return enqueue(gate.inputs[0], !*out);
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor: {
        const bool cv = *controlling_value(gate.type);
        const bool cout = controlled_output(gate.type);
        if (*out == !cout) {
          // Output is the non-controlled value: every input must be
          // non-controlling.
          for (NetId in : gate.inputs)
            if (!enqueue(in, !cv)) return false;
          return true;
        }
        // Output is the controlled value: at least one controlling input; if
        // exactly one input is unknown and the rest are non-controlling, it
        // must carry the controlling value.
        std::optional<NetId> sole_unknown;
        std::size_t unknown_count = 0;
        bool saw_controlling = false;
        for (NetId in : gate.inputs) {
          const auto v = map_.value(in);
          if (!v) {
            ++unknown_count;
            sole_unknown = in;
          } else if (*v == cv) {
            saw_controlling = true;
          }
        }
        if (saw_controlling) return true;
        if (unknown_count == 0) return false;  // conflict
        if (unknown_count == 1) return enqueue(*sole_unknown, cv);
        return true;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        std::optional<NetId> sole_unknown;
        std::size_t unknown_count = 0;
        bool parity = gate.type == GateType::kXnor;
        for (NetId in : gate.inputs) {
          const auto v = map_.value(in);
          if (!v) {
            ++unknown_count;
            sole_unknown = in;
          } else {
            parity = parity != *v;
          }
        }
        if (unknown_count == 1)
          return enqueue(*sole_unknown, parity != *out);
        if (unknown_count == 0) return parity == *out;
        return true;
      }
      case GateType::kDff: return true;
    }
    return true;
  }

  const Netlist* nl_;
  bool backward_;
  AssignmentMap map_;
  std::deque<NetId> queue_;
};

}  // namespace

PropagationResult propagate(const Netlist& nl,
                            std::span<const std::pair<NetId, bool>> seeds,
                            bool backward) {
  return Propagator(nl, backward).run(seeds);
}

}  // namespace netrev::wordrec
