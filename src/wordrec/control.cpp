#include "wordrec/control.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/thread_pool.h"
#include "netlist/compact.h"
#include "netlist/cone.h"

namespace netrev::wordrec {

using netlist::CompactView;
using netlist::ConeScratch;
using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

namespace {

// Per-worker visited-stamp scratch for the CSR walks: control-signal search
// runs both serially inside a group worker and fanned out over the pool (the
// dominance filter), so thread-local storage gives every thread its own
// stamps with no clearing between walks.
ConeScratch& local_scratch() {
  static thread_local ConeScratch scratch;
  return scratch;
}

// CSR twin of the containment + dominance computation below.  Visit orders
// and WorkBudget charges match the legacy walks one-for-one, and `common`
// comes out sorted ascending exactly like the legacy sort, so the returned
// signal list is byte-identical.
std::vector<NetId> find_signals_compact(
    const CompactView& view, std::span<const NetId> dissimilar_roots,
    std::size_t subtree_depth, const Options& options) {
  // Containment: concatenate the (deduplicated) cones, sort, and run-length
  // count — a net common to all subtrees appears exactly roots.size() times.
  std::vector<std::uint32_t> all;
  for (NetId root : dissimilar_roots) {
    const std::vector<std::uint32_t> cone = view.fanin_cone_nets(
        root.value(), subtree_depth, local_scratch(), options.cone_budget);
    all.insert(all.end(), cone.begin(), cone.end());
  }
  std::sort(all.begin(), all.end());

  const std::vector<std::uint8_t>* constant_nets =
      options.use_dataflow ? options.constant_nets : nullptr;
  const auto is_pruned = [&](std::uint32_t net) {
    return constant_nets != nullptr && net < constant_nets->size() &&
           (*constant_nets)[net] != 0;
  };
  const auto is_root = [&](std::uint32_t net) {
    return std::find(dissimilar_roots.begin(), dissimilar_roots.end(),
                     NetId(net)) != dissimilar_roots.end();
  };

  std::vector<std::uint32_t> common;
  for (std::size_t i = 0; i < all.size();) {
    std::size_t j = i;
    while (j < all.size() && all[j] == all[i]) ++j;
    const std::uint32_t net = all[i];
    const std::size_t count = j - i;
    i = j;
    if (count != dissimilar_roots.size()) continue;
    if (is_root(net)) continue;
    const std::uint32_t driver = view.driver(net);
    if (driver != CompactView::kNoGate) {
      const GateType type = view.gate_type(driver);
      if (type == GateType::kConst0 || type == GateType::kConst1) continue;
    }
    common.push_back(net);
  }

  // Dominance filter over CSR adjacency; same parallel shape and early
  // exits as the legacy loop.
  std::vector<std::uint8_t> dominated(common.size(), 0);
  parallel_for(0, common.size(), [&](std::size_t i) {
    if (is_pruned(common[i])) {
      dominated[i] = 1;
      return;
    }
    for (std::size_t j = 0; j < common.size(); ++j) {
      if (i == j) continue;
      if (view.in_fanin_cone(common[j], common[i], local_scratch(),
                             options.cone_budget)) {
        dominated[i] = 1;
        return;
      }
    }
  });
  std::vector<NetId> signals;
  for (std::size_t i = 0; i < common.size(); ++i)
    if (dominated[i] == 0) signals.push_back(NetId(common[i]));

  if (signals.size() > options.max_control_signals_per_subgroup)
    signals.resize(options.max_control_signals_per_subgroup);
  return signals;
}

}  // namespace

std::vector<NetId> find_relevant_control_signals(
    const Netlist& nl, std::span<const NetId> dissimilar_roots,
    const Options& options) {
  std::vector<NetId> signals;
  if (dissimilar_roots.empty()) return signals;

  // Subtrees span cone levels 2..cone_depth, i.e. depth cone_depth - 1 from
  // their roots.
  const std::size_t subtree_depth =
      options.cone_depth > 0 ? options.cone_depth - 1 : 0;

  if (options.use_compact && options.compact != nullptr)
    return find_signals_compact(*options.compact, dissimilar_roots,
                                subtree_depth, options);

  // Count, for every net, how many dissimilar subtrees contain it.  A net
  // can appear at most once per subtree (fanin_cone_nets deduplicates).
  std::unordered_map<NetId, std::size_t> containment;
  for (NetId root : dissimilar_roots)
    for (NetId net : netlist::fanin_cone_nets(nl, root, subtree_depth,
                                              options.cone_budget))
      ++containment[net];

  // Dataflow pruning (--use-dataflow): a provably-constant net can never be
  // toggled, so it cannot remove a dissimilar subtree.  Pruned nets are
  // dropped from the *candidate* side but still serve as dominators below,
  // so the surviving list is exactly the default list minus provably-
  // constant nets — the conservative guarantee the knob promises.
  const std::vector<std::uint8_t>* constant_nets =
      options.use_dataflow ? options.constant_nets : nullptr;
  const auto is_pruned = [&](NetId net) {
    return constant_nets != nullptr && net.value() < constant_nets->size() &&
           (*constant_nets)[net.value()] != 0;
  };

  std::vector<NetId> common;
  for (const auto& [net, count] : containment) {
    if (count != dissimilar_roots.size()) continue;
    // The subtree roots themselves are excluded: assigning a root its
    // controlling value constants the bit's root gate away instead of
    // removing the dissimilar subtree.  (With several dissimilar subtrees
    // the roots are per-bit nets and never common anyway; this matters for
    // the degenerate single-subtree case.)
    if (std::find(dissimilar_roots.begin(), dissimilar_roots.end(), net) !=
        dissimilar_roots.end())
      continue;
    // A constant is never a useful control signal.
    const auto driver = nl.driver_of(net);
    if (driver) {
      const GateType type = nl.gate(*driver).type;
      if (type == GateType::kConst0 || type == GateType::kConst1) continue;
    }
    common.push_back(net);
  }
  std::sort(common.begin(), common.end());

  // Dominance filter: drop any common net lying in the fanin cone of another
  // common net (unbounded combinational reachability).  Each candidate's
  // dominance test is independent — the quadratic cone-walk loop runs on the
  // pool, with verdicts written to per-index slots and collected in order.
  std::vector<std::uint8_t> dominated(common.size(), 0);
  parallel_for(0, common.size(), [&](std::size_t i) {
    // A pruned candidate needs no dominance cone walks: it is dropped
    // regardless of the verdict (but stays in the j loop as a dominator).
    if (is_pruned(common[i])) {
      dominated[i] = 1;
      return;
    }
    for (std::size_t j = 0; j < common.size(); ++j) {
      if (i == j) continue;
      if (netlist::in_fanin_cone(nl, common[j], common[i],
                                 options.cone_budget)) {
        dominated[i] = 1;
        return;
      }
    }
  });
  for (std::size_t i = 0; i < common.size(); ++i)
    if (dominated[i] == 0) signals.push_back(common[i]);

  if (signals.size() > options.max_control_signals_per_subgroup)
    signals.resize(options.max_control_signals_per_subgroup);
  return signals;
}

std::vector<NetId> find_relevant_control_signals(const Netlist& nl,
                                                 const Subgroup& subgroup,
                                                 const Options& options) {
  std::vector<NetId> roots;
  for (const auto& per_bit : subgroup.dissimilar)
    for (NetId root : per_bit)
      if (std::find(roots.begin(), roots.end(), root) == roots.end())
        roots.push_back(root);
  return find_relevant_control_signals(nl, roots, options);
}

}  // namespace netrev::wordrec
