#include "wordrec/baseline.h"

#include "wordrec/grouping.h"
#include "wordrec/matching.h"

namespace netrev::wordrec {

WordSet identify_words_baseline(const netlist::Netlist& nl,
                                const Options& options) {
  const ConeHasher hasher(nl, options);
  WordSet result;
  std::vector<PotentialBitGroup> groups = potential_bit_groups(nl);
  if (options.cross_group_checking)
    groups = merge_groups_across_gaps(nl, std::move(groups),
                                      options.cross_group_max_gap);
  for (const PotentialBitGroup& group : groups) {
    std::vector<BitSignature> signatures;
    signatures.reserve(group.size());
    for (netlist::NetId bit : group) signatures.push_back(hasher.signature(bit));
    for (Subgroup& sg : form_subgroups(group, signatures,
                                       /*require_full_match=*/true)) {
      Word word;
      word.bits = std::move(sg.bits);
      result.words.push_back(std::move(word));
    }
  }
  return result;
}

}  // namespace netrev::wordrec
