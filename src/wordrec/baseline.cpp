#include "wordrec/baseline.h"

#include "common/resource_guard.h"
#include "wordrec/grouping.h"
#include "wordrec/matching.h"

namespace netrev::wordrec {

WordSet identify_words_baseline(const netlist::Netlist& nl,
                                const Options& options_in) {
  // Same budget/checkpoint wiring as identify_words(): cone walks charge a
  // shared budget, and an armed checkpoint polls through it (strided) plus
  // once per group here.  The baseline has no ladder of its own — it IS a
  // degradation rung — so trips propagate to the ladder runner.
  WorkBudget local_budget(options_in.max_cone_work);
  Options options = options_in;
  if (options.cone_budget == nullptr &&
      (options.max_cone_work != 0 || options.checkpoint.armed())) {
    local_budget.set_checkpoint(&options.checkpoint);
    options.cone_budget = &local_budget;
  }

  const ConeHasher hasher(nl, options);
  WordSet result;
  std::vector<PotentialBitGroup> groups = potential_bit_groups(nl);
  if (options.cross_group_checking)
    groups = merge_groups_across_gaps(nl, std::move(groups),
                                      options.cross_group_max_gap);
  for (const PotentialBitGroup& group : groups) {
    options.checkpoint.poll();
    std::vector<BitSignature> signatures;
    signatures.reserve(group.size());
    for (netlist::NetId bit : group) signatures.push_back(hasher.signature(bit));
    for (Subgroup& sg : form_subgroups(group, signatures,
                                       /*require_full_match=*/true)) {
      Word word;
      word.bits = std::move(sg.bits);
      result.words.push_back(std::move(word));
    }
  }
  return result;
}

}  // namespace netrev::wordrec
