#include "wordrec/matching.h"

#include <algorithm>

#include "common/contracts.h"
#include "common/thread_pool.h"
#include "perf/profile.h"

namespace netrev::wordrec {

using netlist::NetId;

BitMatch compare_bits(const BitSignature& a, const BitSignature& b) {
  {
    static perf::Profiler::Counter& pairs =
        perf::Profiler::global().counter("pairs_compared");
    static perf::Profiler::Counter& subtrees =
        perf::Profiler::global().counter("subtrees_diffed");
    if (perf::Profiler::global().enabled()) {
      pairs.fetch_add(1, std::memory_order_relaxed);
      subtrees.fetch_add(a.subtrees.size() + b.subtrees.size(),
                         std::memory_order_relaxed);
    }
  }
  BitMatch match;
  if (!a.root_type.has_value() || !b.root_type.has_value()) return match;
  match.comparable = true;

  // Differing root gate types never match (such bits would not share a
  // potential-bit group in the first place, but subgroup re-checks under
  // reduction can change root types).
  if (*a.root_type != *b.root_type) {
    for (const auto& s : a.subtrees) match.dissimilar_a.push_back(s.root);
    for (const auto& s : b.subtrees) match.dissimilar_b.push_back(s.root);
    return match;
  }

  // Sorted merge over the two key lists; each key is visited once.
  std::size_t i = 0, j = 0;
  std::size_t matched = 0;
  while (i < a.subtrees.size() && j < b.subtrees.size()) {
    const auto& ka = a.subtrees[i].key;
    const auto& kb = b.subtrees[j].key;
    if (ka == kb) {
      ++matched;
      ++i;
      ++j;
    } else if (ka < kb) {
      match.dissimilar_a.push_back(a.subtrees[i].root);
      ++i;
    } else {
      match.dissimilar_b.push_back(b.subtrees[j].root);
      ++j;
    }
  }
  for (; i < a.subtrees.size(); ++i)
    match.dissimilar_a.push_back(a.subtrees[i].root);
  for (; j < b.subtrees.size(); ++j)
    match.dissimilar_b.push_back(b.subtrees[j].root);

  match.full = match.dissimilar_a.empty() && match.dissimilar_b.empty() &&
               !a.subtrees.empty();
  match.partial = !match.full && matched > 0;
  return match;
}

namespace {

void append_unique(std::vector<NetId>& into, const std::vector<NetId>& roots) {
  for (NetId root : roots)
    if (std::find(into.begin(), into.end(), root) == into.end())
      into.push_back(root);
}

}  // namespace

std::vector<Subgroup> form_subgroups(std::span<const NetId> group,
                                     std::span<const BitSignature> signatures,
                                     bool require_full_match) {
  NETREV_REQUIRE(group.size() == signatures.size());
  std::vector<Subgroup> subgroups;
  if (group.empty()) return subgroups;

  // The chaining decision is inherently sequential, but the expensive part —
  // the sorted-merge comparison of each adjacent pair — is not: precompute
  // all group.size()-1 pair matches in parallel (slot k holds the match of
  // bits k-1 and k), then chain serially.  Identical output to the serial
  // loop at any job count.
  std::vector<BitMatch> matches(group.size() > 0 ? group.size() - 1 : 0);
  parallel_for(
      1, group.size(),
      [&](std::size_t k) {
        matches[k - 1] = compare_bits(signatures[k - 1], signatures[k]);
      },
      /*grain=*/8);

  const auto start_subgroup = [&](std::size_t index) {
    Subgroup sg;
    sg.bits.push_back(group[index]);
    sg.dissimilar.emplace_back();
    subgroups.push_back(std::move(sg));
  };

  start_subgroup(0);
  for (std::size_t k = 1; k < group.size(); ++k) {
    const BitMatch& match = matches[k - 1];
    const bool chains =
        require_full_match ? match.full : (match.full || match.partial);
    if (!chains) {
      start_subgroup(k);
      continue;
    }
    Subgroup& sg = subgroups.back();
    // The predecessor's newly-found dissimilar subtrees accumulate onto its
    // entry; the new bit records its own.
    append_unique(sg.dissimilar.back(), match.dissimilar_a);
    sg.bits.push_back(group[k]);
    sg.dissimilar.push_back(match.dissimilar_b);
    if (!match.full) sg.fully_similar = false;
  }
  return subgroups;
}

}  // namespace netrev::wordrec
