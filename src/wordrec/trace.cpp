#include "wordrec/trace.h"

namespace netrev::wordrec {

std::string render_trace(const netlist::Netlist& nl,
                         const IdentifyTrace& trace) {
  std::string out;
  const auto names = [&](const std::vector<netlist::NetId>& nets) {
    std::string text;
    for (netlist::NetId net : nets) text += ' ' + nl.net(net).name;
    return text;
  };
  const auto assignment_text =
      [&](const std::vector<std::pair<netlist::NetId, bool>>& assignment) {
        std::string text;
        for (const auto& [net, value] : assignment)
          text += ' ' + nl.net(net).name + '=' + (value ? '1' : '0');
        return text;
      };

  for (const TraceRecord& record : trace.records) {
    switch (record.kind) {
      case TraceRecord::Kind::kPartialSubgroup:
        out += "subgroup (partial match):" + names(record.nets) + '\n';
        break;
      case TraceRecord::Kind::kControlSignals:
        out += record.nets.empty()
                   ? std::string("  no relevant control signals\n")
                   : "  control signals:" + names(record.nets) + '\n';
        break;
      case TraceRecord::Kind::kTrial:
        out += "  try" + assignment_text(record.assignment) +
               (record.flag ? "" : "  (infeasible)") + '\n';
        break;
      case TraceRecord::Kind::kUnified:
        out += "  UNIFIED via" + assignment_text(record.assignment) + ':' +
               names(record.nets) + '\n';
        break;
      case TraceRecord::Kind::kFallback:
        out += "  fallback to full-match segmentation\n";
        break;
    }
  }
  return out;
}

}  // namespace netrev::wordrec
