// Word propagation: deriving new candidate words from identified ones.
//
// The paper positions its output as the seed for "subsequent stages of
// reverse engineering techniques such as word propagation in [6] which
// require an initial set of full words to operate on."  This module
// implements that stage structurally: for an identified word whose bits have
// fully matching cones, the aligned positions *inside* those cones are also
// words —
//   * the roots of each aligned second-level subtree (one net per bit), and
//   * each aligned cone leaf (flop outputs / primary inputs feeding bit i at
//     the same structural position).
// Ambiguous positions (a gate with two structurally identical fanins, where
// cross-bit alignment cannot be established from structure alone) are
// skipped rather than guessed.
//
// Propagation can be iterated: fresh candidates whose bits are themselves
// gate outputs can be fed back in.
#pragma once

#include <vector>

#include "wordrec/hash_key.h"
#include "wordrec/options.h"
#include "wordrec/word.h"

namespace netrev::wordrec {

struct PropagatedWord {
  Word word;
  // Where the candidate came from (diagnostics / ranking).
  enum class Source { kSubtreeRoots, kAlignedLeaves } source =
      Source::kSubtreeRoots;
  // Structural position inside the parent word's cones.
  std::size_t position = 0;
};

struct WordPropagationResult {
  std::vector<PropagatedWord> candidates;
  std::size_t parents_used = 0;       // multi-bit words that contributed
  std::size_t ambiguous_positions = 0;  // skipped for unalignable structure
};

// Derives candidates from every multi-bit word in `words` whose bits carry
// equal signatures (identified words always do; foreign word sets are
// re-checked).  Candidates are deduplicated, contain at least `min_width`
// distinct nets, and never duplicate an input word.
WordPropagationResult propagate_words(const netlist::Netlist& nl,
                                      const WordSet& words,
                                      const Options& options = {},
                                      std::size_t min_width = 2);

// Convenience: iterate propagation to a fixed point (or `max_rounds`),
// feeding candidates back in.  Returns all distinct candidates found.
WordPropagationResult propagate_words_to_fixpoint(const netlist::Netlist& nl,
                                                  const WordSet& words,
                                                  const Options& options = {},
                                                  std::size_t max_rounds = 4);

}  // namespace netrev::wordrec
