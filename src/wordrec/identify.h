// The paper's word-identification procedure ("Ours" in Table 1): Figure 2's
// pipeline — potential bits (§2.2), partial matching into subgroups (§2.3),
// relevant control signals (§2.4), then iterative value assignment + virtual
// circuit reduction until the subgroup's bits become fully similar (§2.5).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "exec/degrade.h"
#include "netlist/netlist.h"
#include "wordrec/options.h"
#include "wordrec/word.h"

namespace netrev::wordrec {

struct IdentifyStats {
  std::size_t groups = 0;
  std::size_t subgroups = 0;
  std::size_t partial_subgroups = 0;       // needed reduction attempts
  std::size_t control_signal_candidates = 0;
  std::size_t reduction_trials = 0;        // propagate+rehash attempts
  std::size_t unified_subgroups = 0;       // words recovered via reduction
};

// A word recovered through control-signal reduction, with the assignment
// that unified it (for reporting and for handing the reduced circuit to
// downstream tools).
struct UnifiedWord {
  std::vector<netlist::NetId> bits;
  std::vector<std::pair<netlist::NetId, bool>> assignment;
};

struct IdentifyResult {
  WordSet words;
  // Distinct control signals participating in successful unifications —
  // Table 1's "#Control Signals" column.
  std::vector<netlist::NetId> used_control_signals;
  std::vector<UnifiedWord> unified;
  IdentifyStats stats;

  // Degradation record (see exec/degrade.h and wordrec/degrade.h).
  // identify_words() itself always reports kFull; the ladder runner fills
  // these in when a deadline or work budget tripped and a cheaper rung
  // answered instead.  Both strings are deterministic (no wall-clock data),
  // so degraded results stay byte-stable across job counts and reruns.
  exec::DegradeLevel degrade_level = exec::DegradeLevel::kFull;
  std::string degrade_stage;   // rung that first tripped ("" when kFull)
  std::string degrade_reason;  // the trip error's message ("" when kFull)

  bool degraded() const {
    return degrade_level != exec::DegradeLevel::kFull;
  }
};

// Runs a mandatory structural pre-pass first: throws
// analysis::StructuralDefectError (naming the cycle) if the netlist has
// combinational cycles, instead of handing them to levelization/hashing.
// Damaged inputs should go through netlist::repair and
// analysis::break_combinational_cycles before identification.
IdentifyResult identify_words(const netlist::Netlist& nl,
                              const Options& options = {});

}  // namespace netrev::wordrec
