// Circuit reduction (§2.5): materializes the simplified netlist implied by a
// propagated assignment.  Assigned nets and gates with assigned outputs are
// removed; gates that lose constant inputs shed them; a gate left with a
// single input collapses to a buffer or inverter; logic left floating is
// swept (optional).  The word identifier itself works on virtually-reduced
// hash keys for speed — this materializer exists to hand reduced circuits to
// downstream tools (§2.1) and to cross-check the virtual reduction in tests.
#pragma once

#include "netlist/netlist.h"
#include "wordrec/assignment.h"
#include "wordrec/options.h"

namespace netrev::wordrec {

// `assignment` must be a propagation closure over `nl` (see propagate()).
// Net names are preserved; gate order follows the original file order.
netlist::Netlist materialize_reduction(const netlist::Netlist& nl,
                                       const AssignmentMap& assignment,
                                       const Options& options = {});

}  // namespace netrev::wordrec
