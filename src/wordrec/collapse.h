// Shared gate-collapse rules used by both the virtual-reduction hashing
// (hash_key.cpp) and the netlist materializer (reduce.cpp), so the two views
// of a reduced circuit cannot drift apart.
//
// When constant inputs are removed from a gate (§2.5), the survivor keeps its
// type while two or more inputs remain (XOR/XNOR additionally absorb the
// parity of dropped constants), and collapses to a buffer or inverter when
// exactly one input remains.
#pragma once

#include "common/contracts.h"
#include "netlist/gate_type.h"

namespace netrev::wordrec {

// Effective type of a gate of type `original` after dropping constant inputs,
// leaving `live_count` live inputs.  `dropped_parity` is the XOR of the
// dropped constants (only meaningful for XOR/XNOR; pass false otherwise).
// For AND/NAND/OR/NOR the dropped constants must have been non-controlling,
// otherwise the output itself would be constant and the gate removed.
inline netlist::GateType collapsed_type(netlist::GateType original,
                                        std::size_t live_count,
                                        bool dropped_parity) {
  using netlist::GateType;
  NETREV_REQUIRE(live_count >= 1);

  const bool xor_family =
      original == GateType::kXor || original == GateType::kXnor;

  if (live_count >= 2) {
    if (!xor_family) return original;
    if (!dropped_parity) return original;
    return original == GateType::kXor ? GateType::kXnor : GateType::kXor;
  }

  // live_count == 1: collapse to buffer or inverter.
  switch (original) {
    case GateType::kBuf:
    case GateType::kAnd:
    case GateType::kOr: return GateType::kBuf;
    case GateType::kNot:
    case GateType::kNand:
    case GateType::kNor: return GateType::kNot;
    case GateType::kXor:
      return dropped_parity ? GateType::kNot : GateType::kBuf;
    case GateType::kXnor:
      return dropped_parity ? GateType::kBuf : GateType::kNot;
    default:
      NETREV_REQUIRE(false && "gate type cannot collapse");
      return GateType::kBuf;
  }
}

}  // namespace netrev::wordrec
