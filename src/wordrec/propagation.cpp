#include "wordrec/propagation.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "common/contracts.h"

namespace netrev::wordrec {

using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

namespace {

bool is_constant_net(const Netlist& nl, NetId net) {
  const auto driver = nl.driver_of(net);
  if (!driver) return false;
  const GateType type = nl.gate(*driver).type;
  return type == GateType::kConst0 || type == GateType::kConst1;
}

// Canonical-order leaf collection for one subtree.  Children are visited in
// ascending hash-key order, which aligns across structurally-equal subtrees
// of different bits.  Returns nullopt when a node has two children with
// equal keys (alignment would be a guess).
std::optional<std::vector<NetId>> canonical_leaves(const ConeHasher& hasher,
                                                   NetId net,
                                                   std::size_t depth) {
  const Netlist& nl = hasher.design();
  const auto driver = nl.driver_of(net);
  const bool leaf = !driver || nl.gate(*driver).type == GateType::kDff ||
                    nl.gate(*driver).type == GateType::kConst0 ||
                    nl.gate(*driver).type == GateType::kConst1 || depth == 0;
  if (leaf) return std::vector<NetId>{net};

  const netlist::Gate& gate = nl.gate(*driver);
  std::vector<std::pair<HashKey, NetId>> children;
  children.reserve(gate.inputs.size());
  for (NetId in : gate.inputs)
    children.emplace_back(hasher.subtree_key(in, depth - 1), in);
  std::sort(children.begin(), children.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < children.size(); ++i)
    if (children[i].first == children[i - 1].first) return std::nullopt;

  std::vector<NetId> leaves;
  for (const auto& [key, child] : children) {
    const auto sub = canonical_leaves(hasher, child, depth - 1);
    if (!sub) return std::nullopt;
    leaves.insert(leaves.end(), sub->begin(), sub->end());
  }
  return leaves;
}

// Canonical set key for dedup.
std::vector<NetId> sorted_bits(const Word& word) {
  std::vector<NetId> bits = word.bits;
  std::sort(bits.begin(), bits.end());
  return bits;
}

}  // namespace

WordPropagationResult propagate_words(const Netlist& nl, const WordSet& words,
                                      const Options& options,
                                      std::size_t min_width) {
  NETREV_REQUIRE(min_width >= 2);
  const ConeHasher hasher(nl, options);
  const std::size_t subtree_depth =
      options.cone_depth > 0 ? options.cone_depth - 1 : 0;

  WordPropagationResult result;
  std::set<std::vector<NetId>> seen;
  for (const Word& word : words.words)
    if (word.width() >= 2) seen.insert(sorted_bits(word));

  const auto emit = [&](std::vector<NetId> bits,
                        PropagatedWord::Source source, std::size_t position) {
    // All bits distinct, no constants, wide enough.
    std::set<NetId> unique(bits.begin(), bits.end());
    if (unique.size() != bits.size()) return;
    if (bits.size() < min_width) return;
    for (NetId bit : bits)
      if (is_constant_net(nl, bit)) return;
    Word candidate;
    candidate.bits = std::move(bits);
    if (!seen.insert(sorted_bits(candidate)).second) return;
    PropagatedWord propagated;
    propagated.word = std::move(candidate);
    propagated.source = source;
    propagated.position = position;
    result.candidates.push_back(std::move(propagated));
  };

  for (const Word& word : words.words) {
    if (word.width() < 2) continue;

    // Signatures must all agree (identified words do by construction).
    std::vector<BitSignature> sigs;
    sigs.reserve(word.width());
    bool aligned = true;
    for (NetId bit : word.bits) {
      sigs.push_back(hasher.signature(bit));
      if (!sigs.front().structurally_equal(sigs.back())) aligned = false;
    }
    if (!aligned || sigs.front().subtrees.empty()) continue;
    ++result.parents_used;

    const std::size_t positions = sigs.front().subtrees.size();
    for (std::size_t p = 0; p < positions; ++p) {
      // Ambiguous position: duplicate keys in the sorted subtree list.
      const auto& key = sigs.front().subtrees[p].key;
      const bool duplicate =
          (p > 0 && sigs.front().subtrees[p - 1].key == key) ||
          (p + 1 < positions && sigs.front().subtrees[p + 1].key == key);
      if (duplicate) {
        ++result.ambiguous_positions;
        continue;
      }

      // Candidate 1: the aligned subtree roots.
      std::vector<NetId> roots;
      roots.reserve(word.width());
      for (const BitSignature& sig : sigs)
        roots.push_back(sig.subtrees[p].root);
      emit(roots, PropagatedWord::Source::kSubtreeRoots, p);

      // Candidate 2..n: the aligned leaves of that subtree.
      std::vector<std::vector<NetId>> leaves_per_bit;
      bool leaves_ok = true;
      for (const BitSignature& sig : sigs) {
        auto leaves =
            canonical_leaves(hasher, sig.subtrees[p].root, subtree_depth);
        if (!leaves) {
          leaves_ok = false;
          break;
        }
        leaves_per_bit.push_back(std::move(*leaves));
      }
      if (!leaves_ok) {
        ++result.ambiguous_positions;
        continue;
      }
      const std::size_t leaf_count = leaves_per_bit.front().size();
      for (const auto& leaves : leaves_per_bit)
        NETREV_ASSERT(leaves.size() == leaf_count &&
                      "equal keys imply equal leaf counts");
      for (std::size_t leaf = 0; leaf < leaf_count; ++leaf) {
        std::vector<NetId> bits;
        bits.reserve(word.width());
        for (const auto& leaves : leaves_per_bit) bits.push_back(leaves[leaf]);
        emit(bits, PropagatedWord::Source::kAlignedLeaves,
             p * 1000 + leaf);
      }
    }
  }
  return result;
}

WordPropagationResult propagate_words_to_fixpoint(const Netlist& nl,
                                                  const WordSet& words,
                                                  const Options& options,
                                                  std::size_t max_rounds) {
  WordPropagationResult all;
  WordSet frontier = words;
  std::set<std::vector<NetId>> seen;
  for (const Word& word : words.words)
    if (word.width() >= 2) seen.insert(sorted_bits(word));

  for (std::size_t round = 0; round < max_rounds; ++round) {
    WordPropagationResult step = propagate_words(nl, frontier, options);
    all.parents_used += step.parents_used;
    all.ambiguous_positions += step.ambiguous_positions;

    WordSet next;
    for (PropagatedWord& candidate : step.candidates) {
      if (!seen.insert(sorted_bits(candidate.word)).second) continue;
      next.words.push_back(candidate.word);
      all.candidates.push_back(std::move(candidate));
    }
    if (next.words.empty()) break;
    frontier = std::move(next);
  }
  return all;
}

}  // namespace netrev::wordrec
