#include "wordrec/reduce.h"

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/contracts.h"
#include "common/thread_pool.h"
#include "perf/profile.h"
#include "wordrec/collapse.h"

namespace netrev::wordrec {

using netlist::GateId;
using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

namespace {

// Gates whose output survives and the live inputs they keep.
struct SurvivingGate {
  GateId id;
  GateType effective_type = GateType::kBuf;
  std::vector<NetId> live_inputs;  // ids in the ORIGINAL netlist
};

// Survivor decision for one gate: nullopt if the assignment removed it.
// Pure function of (netlist, assignment, gate) — safe from pool workers.
std::optional<SurvivingGate> plan_one(const Netlist& nl,
                                      const AssignmentMap& assignment,
                                      GateId g) {
  const netlist::Gate& gate = nl.gate(g);
  if (assignment.contains(gate.output)) return std::nullopt;  // gate removed

  SurvivingGate survivor;
  survivor.id = g;

  if (gate.type == GateType::kDff) {
    // A flop always survives; a constant D input is preserved through a
    // fresh constant driver (added by the caller below).
    survivor.effective_type = GateType::kDff;
    survivor.live_inputs = gate.inputs;
    return survivor;
  }
  if (gate.type == GateType::kConst0 || gate.type == GateType::kConst1) {
    // Pre-existing constant drivers have no inputs; they survive as-is
    // unless the assignment folded them away (handled above).
    survivor.effective_type = gate.type;
    return survivor;
  }

  bool dropped_parity = false;
  for (NetId in : gate.inputs) {
    const auto v = assignment.value(in);
    if (!v) {
      survivor.live_inputs.push_back(in);
      continue;
    }
    if (const auto cv = controlling_value(gate.type))
      NETREV_ASSERT(*v != *cv &&
                    "controlling input with unassigned output violates "
                    "propagation closure");
    dropped_parity = dropped_parity != *v;
  }
  NETREV_ASSERT(!survivor.live_inputs.empty() &&
                "all-constant gate with unassigned output violates "
                "propagation closure");
  survivor.effective_type =
      (survivor.live_inputs.size() == gate.inputs.size())
          ? gate.type
          : collapsed_type(gate.type, survivor.live_inputs.size(),
                           dropped_parity);
  return survivor;
}

std::vector<SurvivingGate> plan_survivors(const Netlist& nl,
                                          const AssignmentMap& assignment) {
  // Per-gate decisions are independent; plan them on the pool into
  // index-addressed slots, then compact in file order so the surviving list
  // (and every downstream net id) is identical at any job count.
  const std::vector<GateId> order = nl.gates_in_file_order();
  std::vector<std::optional<SurvivingGate>> planned(order.size());
  parallel_for(
      0, order.size(),
      [&](std::size_t i) { planned[i] = plan_one(nl, assignment, order[i]); },
      /*grain=*/64);

  std::vector<SurvivingGate> survivors;
  survivors.reserve(order.size());
  for (auto& plan : planned)
    if (plan) survivors.push_back(std::move(*plan));
  return survivors;
}

// Iteratively drop combinational survivors whose outputs feed nothing and
// are not primary outputs (the floating remains of removed control logic —
// Figure 1's shared control cone vanishing).
void sweep_dead(const Netlist& nl, std::vector<SurvivingGate>& survivors) {
  std::unordered_map<NetId, std::size_t> fanout_count;
  for (const auto& s : survivors)
    for (NetId in : s.live_inputs) ++fanout_count[in];
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = survivors.begin(); it != survivors.end();) {
      const NetId out = nl.gate(it->id).output;
      const bool dead = nl.gate(it->id).type != GateType::kDff &&
                        fanout_count[out] == 0 &&
                        !nl.net(out).is_primary_output;
      if (!dead) {
        ++it;
        continue;
      }
      for (NetId in : it->live_inputs) --fanout_count[in];
      it = survivors.erase(it);
      changed = true;
    }
  }
}

}  // namespace

Netlist materialize_reduction(const Netlist& nl,
                              const AssignmentMap& assignment,
                              const Options& options) {
  std::vector<SurvivingGate> survivors = plan_survivors(nl, assignment);
  if (options.sweep_dead_logic) sweep_dead(nl, survivors);

  Netlist reduced(nl.name() + "_reduced");

  // Nets referenced by surviving gates, plus surviving primary ports.
  std::unordered_map<NetId, NetId> remap;
  const auto map_net = [&](NetId original) {
    const auto it = remap.find(original);
    if (it != remap.end()) return it->second;
    const NetId fresh = reduced.add_net(nl.net(original).name);
    remap.emplace(original, fresh);
    return fresh;
  };

  // Pre-create primary inputs that were not assigned away, preserving
  // declaration order.
  for (NetId pi : nl.primary_inputs())
    if (!assignment.contains(pi)) reduced.mark_primary_input(map_net(pi));

  std::size_t const_counter = 0;
  for (const auto& survivor : survivors) {
    const netlist::Gate& gate = nl.gate(survivor.id);
    const NetId out = map_net(gate.output);

    if (gate.type == GateType::kDff) {
      const NetId d_original = gate.inputs[0];
      NetId d_new;
      if (const auto v = assignment.value(d_original)) {
        // Constant D: keep the flop fed by a fresh constant driver.
        const NetId const_net = reduced.add_net(
            nl.net(d_original).name + "$const" + std::to_string(const_counter++));
        reduced.add_gate(*v ? GateType::kConst1 : GateType::kConst0, const_net,
                         {});
        d_new = const_net;
      } else {
        d_new = map_net(d_original);
      }
      reduced.add_gate(GateType::kDff, out, {d_new});
      continue;
    }

    std::vector<NetId> inputs;
    inputs.reserve(survivor.live_inputs.size());
    for (NetId in : survivor.live_inputs) inputs.push_back(map_net(in));
    reduced.add_gate(survivor.effective_type, out, inputs);
  }

  // Surviving nets without drivers in the reduced design are free inputs
  // (cut points created by removed logic).
  for (std::size_t i = 0; i < reduced.net_count(); ++i) {
    const NetId id = reduced.net_id_at(i);
    if (!reduced.net(id).driver.is_valid() && !reduced.net(id).is_primary_input)
      reduced.mark_primary_input(id);
  }
  for (NetId po : nl.primary_outputs())
    if (!assignment.contains(po) && remap.contains(po))
      reduced.mark_primary_output(remap.at(po));
  return reduced;
}

}  // namespace netrev::wordrec
