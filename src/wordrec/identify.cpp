#include "wordrec/identify.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_set>

#include "analysis/analyzer.h"
#include "analysis/dataflow.h"
#include "common/thread_pool.h"
#include "exec/chaos.h"
#include "netlist/compact.h"
#include "netlist/cone.h"
#include "perf/profile.h"
#include "wordrec/assignment.h"
#include "wordrec/control.h"
#include "wordrec/grouping.h"
#include "wordrec/hash_key.h"
#include "wordrec/matching.h"
#include "wordrec/trace.h"

namespace netrev::wordrec {

using netlist::GateId;
using netlist::NetId;
using netlist::Netlist;

namespace {

using Seed = std::pair<NetId, bool>;

// Trials are evaluated in fixed chunks of this many (a chunk's trials may
// run concurrently; the winner is the lowest-index success).  The chunk size
// is independent of the job count, so which trials get evaluated — and every
// derived statistic — is too.
constexpr std::size_t kTrialChunk = 8;

// Candidate constant values for one control signal: the controlling values
// of the gates it feeds inside the dissimilar region (§2.5: "the assigned
// value to a control signal will be the controlling value to one of the
// logic gates that the control signal is feeding into").
std::vector<bool> candidate_values(const Netlist& nl, NetId signal,
                                   const std::unordered_set<NetId>& region,
                                   const Options& options) {
  bool has_zero = false, has_one = false;
  for (GateId g : nl.net(signal).fanouts) {
    const netlist::Gate& gate = nl.gate(g);
    if (!region.contains(gate.output)) continue;
    const auto cv = controlling_value(gate.type);
    if (!cv) continue;
    (*cv ? has_one : has_zero) = true;
  }
  std::vector<bool> values;
  if (has_zero) values.push_back(false);
  if (has_one) values.push_back(true);
  if (values.empty() && options.try_both_values_without_controlling_sink) {
    values.push_back(false);
    values.push_back(true);
  }
  return values;
}

// All assignment trials of exactly `k` distinct signals, in deterministic
// order, appended to `trials`.
void enumerate_trials(const std::vector<NetId>& signals,
                      const std::vector<std::vector<bool>>& values_per_signal,
                      std::size_t k, std::size_t max_trials,
                      std::vector<std::vector<Seed>>& trials) {
  std::vector<std::size_t> combo(k);
  std::vector<Seed> current(k);

  // Iterate over k-combinations of signal indices.
  const std::size_t n = signals.size();
  if (k == 0 || k > n) return;
  for (std::size_t i = 0; i < k; ++i) combo[i] = i;
  while (true) {
    // Cartesian product over the chosen signals' candidate values.
    std::vector<std::size_t> value_index(k, 0);
    bool values_exhausted = false;
    // Skip combos where some signal has no candidate values.
    bool viable = true;
    for (std::size_t i = 0; i < k; ++i)
      if (values_per_signal[combo[i]].empty()) viable = false;
    while (viable && !values_exhausted) {
      for (std::size_t i = 0; i < k; ++i)
        current[i] = {signals[combo[i]],
                      values_per_signal[combo[i]][value_index[i]]};
      trials.push_back(current);
      if (trials.size() >= max_trials) return;
      // Increment the mixed-radix value counter.
      std::size_t pos = 0;
      while (pos < k) {
        if (++value_index[pos] < values_per_signal[combo[pos]].size()) break;
        value_index[pos] = 0;
        ++pos;
      }
      values_exhausted = pos == k;
    }
    // Next combination (lexicographic).
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (combo[i] != i + n - k) {
        ++combo[i];
        for (std::size_t j = i + 1; j < k; ++j) combo[j] = combo[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
  }
}

// Emit base-style words for a subgroup that could not be unified: re-segment
// its bits by full-match adjacency so the result is never worse than the
// baseline on this span.
void emit_fallback_words(const Subgroup& subgroup,
                         const std::vector<BitSignature>& signatures,
                         std::vector<Word>& out) {
  std::vector<Subgroup> segments = form_subgroups(
      subgroup.bits, signatures, /*require_full_match=*/true);
  for (Subgroup& segment : segments) {
    Word word;
    word.bits = std::move(segment.bits);
    out.push_back(std::move(word));
  }
}

// One trial's verdict: propagate the assignment and re-hash the subgroup's
// bits under it; true iff every bit stays non-constant and all signatures
// become equal with at least one subtree left.
bool trial_unifies(const Netlist& nl, const ConeHasher& hasher,
                   const Subgroup& subgroup, const std::vector<Seed>& trial,
                   bool* feasible_out) {
  const PropagationResult propagated = propagate(nl, trial);
  if (feasible_out != nullptr) *feasible_out = propagated.feasible;
  if (!propagated.feasible) return false;

  std::optional<BitSignature> first;
  for (NetId bit : subgroup.bits) {
    BitSignature sig = hasher.signature(bit, &propagated.map);
    if (!sig.root_type.has_value()) return false;  // a bit became constant
    if (!first) {
      first = std::move(sig);
    } else if (!first->structurally_equal(sig)) {
      return false;
    }
  }
  // A word needs at least one similar subtree left after reduction.
  return first.has_value() && !first->subtrees.empty();
}

// Everything identify_words computes for one potential-bit group.  Groups
// are processed independently (possibly on pool workers) into one of these,
// and the per-group outcomes are merged in group index order so the final
// IdentifyResult is byte-identical at any job count.
struct GroupOutcome {
  IdentifyStats stats;  // this group's contributions (groups field unused)
  std::vector<Word> words;
  std::vector<UnifiedWord> unified;
};

GroupOutcome process_group(const Netlist& nl, const ConeHasher& hasher,
                           const PotentialBitGroup& group,
                           const Options& options,
                           std::size_t subtree_depth) {
  GroupOutcome outcome;

  std::vector<BitSignature> signatures(group.size());
  {
    // Per-bit cone hashing is embarrassingly parallel.  Nested calls (when
    // groups themselves run on workers) execute inline — the top-level
    // group parallelism already saturates the pool.
    perf::ScopedWork work("stage.hashing_ns");
    parallel_for(
        0, group.size(),
        [&](std::size_t i) { signatures[i] = hasher.signature(group[i]); },
        /*grain=*/4);
  }

  std::vector<Subgroup> subgroups;
  {
    perf::ScopedWork work("stage.matching_ns");
    subgroups =
        form_subgroups(group, signatures, /*require_full_match=*/false);
  }
  outcome.stats.subgroups += subgroups.size();

  for (Subgroup& subgroup : subgroups) {
    options.checkpoint.poll();
    if (subgroup.fully_similar) {
      Word word;
      word.bits = std::move(subgroup.bits);
      outcome.words.push_back(std::move(word));
      continue;
    }
    ++outcome.stats.partial_subgroups;
    if (options.trace != nullptr) {
      TraceRecord record;
      record.kind = TraceRecord::Kind::kPartialSubgroup;
      record.nets = subgroup.bits;
      options.trace->records.push_back(std::move(record));
    }

    // Signatures of this subgroup's bits (for the fallback path).
    std::vector<BitSignature> sub_signatures;
    sub_signatures.reserve(subgroup.bits.size());
    for (NetId bit : subgroup.bits)
      sub_signatures.push_back(hasher.signature(bit));

    std::vector<NetId> signals;
    std::unordered_set<NetId> region;
    std::vector<std::vector<bool>> values_per_signal;
    {
      perf::ScopedWork work("stage.control_ns");
      signals = find_relevant_control_signals(nl, subgroup, options);
      outcome.stats.control_signal_candidates += signals.size();
      if (options.trace != nullptr) {
        TraceRecord record;
        record.kind = TraceRecord::Kind::kControlSignals;
        record.nets = signals;
        options.trace->records.push_back(std::move(record));
      }
      if (!signals.empty()) {
        // The dissimilar region: nets of all recorded dissimilar subtrees.
        if (options.use_compact && options.compact != nullptr) {
          netlist::ConeScratch scratch;
          for (const auto& per_bit : subgroup.dissimilar)
            for (NetId root : per_bit)
              for (std::uint32_t net : options.compact->fanin_cone_nets(
                       root.value(), subtree_depth, scratch,
                       options.cone_budget))
                region.insert(NetId(net));
        } else {
          for (const auto& per_bit : subgroup.dissimilar)
            for (NetId root : per_bit)
              for (NetId net : netlist::fanin_cone_nets(
                       nl, root, subtree_depth, options.cone_budget))
                region.insert(net);
        }
        values_per_signal.reserve(signals.size());
        for (NetId signal : signals)
          values_per_signal.push_back(
              candidate_values(nl, signal, region, options));
      }
    }
    if (signals.empty()) {
      if (options.trace != nullptr)
        options.trace->records.push_back(
            TraceRecord{TraceRecord::Kind::kFallback, subgroup.bits, {}, false});
      emit_fallback_words(subgroup, sub_signatures, outcome.words);
      continue;
    }

    std::vector<std::vector<Seed>> trials;
    for (std::size_t k = 1;
         k <= options.max_simultaneous_assignments && k <= signals.size();
         ++k) {
      enumerate_trials(signals, values_per_signal, k,
                       options.max_assignment_trials_per_subgroup, trials);
      if (trials.size() >= options.max_assignment_trials_per_subgroup) break;
    }

    // Find the first trial (in enumeration order) that unifies the subgroup.
    // Untraced runs evaluate fixed chunks of kTrialChunk concurrently; a
    // traced run keeps the serial early-exit loop so trace records stay in
    // trial order.  Both report reduction_trials as the winning trial's
    // 1-based index (or all trials if none wins) — the serial early-exit
    // count — so the statistic is identical across modes and job counts.
    perf::ScopedWork work("stage.reduction_ns");
    std::optional<std::size_t> winning_index;
    if (options.trace != nullptr) {
      for (std::size_t t = 0; t < trials.size(); ++t) {
        bool feasible = false;
        const bool unifies =
            trial_unifies(nl, hasher, subgroup, trials[t], &feasible);
        options.trace->records.push_back(TraceRecord{
            TraceRecord::Kind::kTrial, {}, trials[t], feasible});
        if (unifies) {
          winning_index = t;
          break;
        }
      }
    } else {
      for (std::size_t chunk = 0;
           chunk < trials.size() && !winning_index; chunk += kTrialChunk) {
        options.checkpoint.poll();
        const std::size_t chunk_end =
            std::min(chunk + kTrialChunk, trials.size());
        std::vector<std::uint8_t> unifies(chunk_end - chunk, 0);
        parallel_for(chunk, chunk_end, [&](std::size_t t) {
          unifies[t - chunk] =
              trial_unifies(nl, hasher, subgroup, trials[t], nullptr) ? 1 : 0;
        });
        for (std::size_t t = chunk; t < chunk_end; ++t) {
          if (unifies[t - chunk] != 0) {
            winning_index = t;
            break;
          }
        }
      }
    }
    outcome.stats.reduction_trials +=
        winning_index ? *winning_index + 1 : trials.size();

    if (winning_index) {
      const std::vector<Seed>& winning = trials[*winning_index];
      ++outcome.stats.unified_subgroups;
      if (options.trace != nullptr)
        options.trace->records.push_back(TraceRecord{
            TraceRecord::Kind::kUnified, subgroup.bits, winning, true});
      UnifiedWord unified;
      unified.bits = subgroup.bits;
      unified.assignment = winning;
      outcome.unified.push_back(std::move(unified));

      Word word;
      word.bits = std::move(subgroup.bits);
      outcome.words.push_back(std::move(word));
    } else {
      if (options.trace != nullptr)
        options.trace->records.push_back(
            TraceRecord{TraceRecord::Kind::kFallback, subgroup.bits, {}, false});
      emit_fallback_words(subgroup, sub_signatures, outcome.words);
    }
  }
  return outcome;
}

}  // namespace

IdentifyResult identify_words(const Netlist& nl, const Options& options_in) {
  perf::Stage stage("identify");
  exec::chaos_point("identify");

  // Mandatory structural pre-pass (one cheap SCC sweep): a combinational
  // cycle would poison cone hashing and constant propagation downstream, so
  // abort with a diagnostic naming the loop instead of computing nonsense.
  // Callers with damaged inputs repair first (netlist::repair +
  // analysis::break_combinational_cycles — the CLI's --permissive path).
  analysis::require_acyclic(nl);

  // Wire up the cone-work resource guard: all cone walks of this run charge
  // one shared budget, so a runaway input aborts with ResourceLimitError
  // instead of hanging.  An armed checkpoint also routes through the budget
  // (strided polls per visited net), making every cone walk cancellable.
  WorkBudget local_budget(options_in.max_cone_work);
  Options options = options_in;
  if (options.cone_budget == nullptr &&
      (options.max_cone_work != 0 || options.checkpoint.armed())) {
    // Both locals share this frame's lifetime, so the budget's non-owning
    // checkpoint pointer stays valid for the whole run.  Caller-shared
    // budgets are left untouched (the caller owns their wiring).
    local_budget.set_checkpoint(&options.checkpoint);
    options.cone_budget = &local_budget;
  }

  // --use-dataflow without Session wiring: run the ternary engine here so
  // library callers and the trace path get the same pruning.  The Session
  // passes its ArtifactCache-backed mask instead, skipping this.
  std::vector<std::uint8_t> local_constant_mask;
  if (options.use_dataflow && options.constant_nets == nullptr) {
    perf::Stage dataflow_stage("dataflow");
    analysis::DataflowOptions dataflow_options;
    dataflow_options.checkpoint = options.checkpoint;
    local_constant_mask = analysis::run_dataflow(nl, dataflow_options)
                              .constant_mask();
    options.constant_nets = &local_constant_mask;
  }

  // Data-oriented core: flatten the design once so every cone walk and
  // hashing recursion of this run iterates CSR arrays.  Callers that pass a
  // prebuilt view (the Session's cached artifact) skip the build; the view
  // must be installed before the hasher is constructed (it copies options).
  std::optional<netlist::CompactView> local_view;
  if (options.use_compact && options.compact == nullptr) {
    perf::Stage compact_stage("compact");
    local_view.emplace(netlist::CompactView::build(nl));
    options.compact = &*local_view;
  }

  const ConeHasher hasher(nl, options);
  IdentifyResult result;

  const std::size_t subtree_depth =
      options.cone_depth > 0 ? options.cone_depth - 1 : 0;

  std::vector<PotentialBitGroup> groups;
  {
    perf::Stage grouping_stage("grouping");
    groups = potential_bit_groups(nl);
    if (options.cross_group_checking)
      groups = merge_groups_across_gaps(nl, std::move(groups),
                                        options.cross_group_max_gap);
  }
  result.stats.groups = groups.size();

  // Process groups independently — the pipeline's main parallel axis — then
  // merge outcomes in group index order, which makes the words list, the
  // unified list, and every statistic byte-identical at any job count.  A
  // traced run stays serial so trace records keep their documented order.
  std::vector<GroupOutcome> outcomes(groups.size());
  {
    perf::Stage groups_stage("groups");
    const auto process = [&](std::size_t g) {
      options.checkpoint.poll();
      outcomes[g] =
          process_group(nl, hasher, groups[g], options, subtree_depth);
    };
    if (options.trace != nullptr) {
      for (std::size_t g = 0; g < groups.size(); ++g) process(g);
    } else {
      parallel_for(0, groups.size(), process);
    }
  }

  perf::Stage merge_stage("merge");
  std::unordered_set<NetId> used_signals;
  for (GroupOutcome& outcome : outcomes) {
    result.stats.subgroups += outcome.stats.subgroups;
    result.stats.partial_subgroups += outcome.stats.partial_subgroups;
    result.stats.control_signal_candidates +=
        outcome.stats.control_signal_candidates;
    result.stats.reduction_trials += outcome.stats.reduction_trials;
    result.stats.unified_subgroups += outcome.stats.unified_subgroups;
    for (Word& word : outcome.words)
      result.words.words.push_back(std::move(word));
    for (UnifiedWord& unified : outcome.unified) {
      for (const Seed& seed : unified.assignment)
        used_signals.insert(seed.first);
      result.unified.push_back(std::move(unified));
    }
  }

  result.used_control_signals.assign(used_signals.begin(), used_signals.end());
  std::sort(result.used_control_signals.begin(),
            result.used_control_signals.end());
  return result;
}

}  // namespace netrev::wordrec
