#include "wordrec/identify.h"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "analysis/analyzer.h"
#include "netlist/cone.h"
#include "wordrec/assignment.h"
#include "wordrec/control.h"
#include "wordrec/grouping.h"
#include "wordrec/hash_key.h"
#include "wordrec/matching.h"
#include "wordrec/trace.h"

namespace netrev::wordrec {

using netlist::GateId;
using netlist::NetId;
using netlist::Netlist;

namespace {

using Seed = std::pair<NetId, bool>;

// Candidate constant values for one control signal: the controlling values
// of the gates it feeds inside the dissimilar region (§2.5: "the assigned
// value to a control signal will be the controlling value to one of the
// logic gates that the control signal is feeding into").
std::vector<bool> candidate_values(const Netlist& nl, NetId signal,
                                   const std::unordered_set<NetId>& region,
                                   const Options& options) {
  bool has_zero = false, has_one = false;
  for (GateId g : nl.net(signal).fanouts) {
    const netlist::Gate& gate = nl.gate(g);
    if (!region.contains(gate.output)) continue;
    const auto cv = controlling_value(gate.type);
    if (!cv) continue;
    (*cv ? has_one : has_zero) = true;
  }
  std::vector<bool> values;
  if (has_zero) values.push_back(false);
  if (has_one) values.push_back(true);
  if (values.empty() && options.try_both_values_without_controlling_sink) {
    values.push_back(false);
    values.push_back(true);
  }
  return values;
}

// All assignment trials of exactly `k` distinct signals, in deterministic
// order, appended to `trials`.
void enumerate_trials(const std::vector<NetId>& signals,
                      const std::vector<std::vector<bool>>& values_per_signal,
                      std::size_t k, std::size_t max_trials,
                      std::vector<std::vector<Seed>>& trials) {
  std::vector<std::size_t> combo(k);
  std::vector<Seed> current(k);

  // Iterate over k-combinations of signal indices.
  const std::size_t n = signals.size();
  if (k == 0 || k > n) return;
  for (std::size_t i = 0; i < k; ++i) combo[i] = i;
  while (true) {
    // Cartesian product over the chosen signals' candidate values.
    std::vector<std::size_t> value_index(k, 0);
    bool values_exhausted = false;
    // Skip combos where some signal has no candidate values.
    bool viable = true;
    for (std::size_t i = 0; i < k; ++i)
      if (values_per_signal[combo[i]].empty()) viable = false;
    while (viable && !values_exhausted) {
      for (std::size_t i = 0; i < k; ++i)
        current[i] = {signals[combo[i]],
                      values_per_signal[combo[i]][value_index[i]]};
      trials.push_back(current);
      if (trials.size() >= max_trials) return;
      // Increment the mixed-radix value counter.
      std::size_t pos = 0;
      while (pos < k) {
        if (++value_index[pos] < values_per_signal[combo[pos]].size()) break;
        value_index[pos] = 0;
        ++pos;
      }
      values_exhausted = pos == k;
    }
    // Next combination (lexicographic).
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (combo[i] != i + n - k) {
        ++combo[i];
        for (std::size_t j = i + 1; j < k; ++j) combo[j] = combo[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
  }
}

// Emit base-style words for a subgroup that could not be unified: re-segment
// its bits by full-match adjacency so the result is never worse than the
// baseline on this span.
void emit_fallback_words(const Subgroup& subgroup,
                         const std::vector<BitSignature>& signatures,
                         WordSet& out) {
  std::vector<Subgroup> segments = form_subgroups(
      subgroup.bits, signatures, /*require_full_match=*/true);
  for (Subgroup& segment : segments) {
    Word word;
    word.bits = std::move(segment.bits);
    out.words.push_back(std::move(word));
  }
}

}  // namespace

IdentifyResult identify_words(const Netlist& nl, const Options& options_in) {
  // Mandatory structural pre-pass (one cheap SCC sweep): a combinational
  // cycle would poison cone hashing and constant propagation downstream, so
  // abort with a diagnostic naming the loop instead of computing nonsense.
  // Callers with damaged inputs repair first (netlist::repair +
  // analysis::break_combinational_cycles — the CLI's --permissive path).
  analysis::require_acyclic(nl);

  // Wire up the cone-work resource guard: all cone walks of this run charge
  // one shared budget, so a runaway input aborts with ResourceLimitError
  // instead of hanging.
  WorkBudget local_budget(options_in.max_cone_work);
  Options options = options_in;
  if (options.cone_budget == nullptr && options.max_cone_work != 0)
    options.cone_budget = &local_budget;

  const ConeHasher hasher(nl, options);
  IdentifyResult result;
  std::unordered_set<NetId> used_signals;

  const std::size_t subtree_depth =
      options.cone_depth > 0 ? options.cone_depth - 1 : 0;

  std::vector<PotentialBitGroup> groups = potential_bit_groups(nl);
  if (options.cross_group_checking)
    groups = merge_groups_across_gaps(nl, std::move(groups),
                                      options.cross_group_max_gap);
  for (const PotentialBitGroup& group : groups) {
    ++result.stats.groups;
    std::vector<BitSignature> signatures;
    signatures.reserve(group.size());
    for (NetId bit : group) signatures.push_back(hasher.signature(bit));

    std::vector<Subgroup> subgroups =
        form_subgroups(group, signatures, /*require_full_match=*/false);
    result.stats.subgroups += subgroups.size();

    for (Subgroup& subgroup : subgroups) {
      if (subgroup.fully_similar) {
        Word word;
        word.bits = std::move(subgroup.bits);
        result.words.words.push_back(std::move(word));
        continue;
      }
      ++result.stats.partial_subgroups;
      if (options.trace != nullptr) {
        TraceRecord record;
        record.kind = TraceRecord::Kind::kPartialSubgroup;
        record.nets = subgroup.bits;
        options.trace->records.push_back(std::move(record));
      }

      // Signatures of this subgroup's bits (for the fallback path).
      std::vector<BitSignature> sub_signatures;
      sub_signatures.reserve(subgroup.bits.size());
      for (NetId bit : subgroup.bits)
        sub_signatures.push_back(hasher.signature(bit));

      const std::vector<NetId> signals =
          find_relevant_control_signals(nl, subgroup, options);
      result.stats.control_signal_candidates += signals.size();
      if (options.trace != nullptr) {
        TraceRecord record;
        record.kind = TraceRecord::Kind::kControlSignals;
        record.nets = signals;
        options.trace->records.push_back(std::move(record));
      }
      if (signals.empty()) {
        if (options.trace != nullptr)
          options.trace->records.push_back(
              TraceRecord{TraceRecord::Kind::kFallback, subgroup.bits, {}, false});
        emit_fallback_words(subgroup, sub_signatures, result.words);
        continue;
      }

      // The dissimilar region: nets of all recorded dissimilar subtrees.
      std::unordered_set<NetId> region;
      for (const auto& per_bit : subgroup.dissimilar)
        for (NetId root : per_bit)
          for (NetId net : netlist::fanin_cone_nets(nl, root, subtree_depth,
                                                    options.cone_budget))
            region.insert(net);

      std::vector<std::vector<bool>> values_per_signal;
      values_per_signal.reserve(signals.size());
      for (NetId signal : signals)
        values_per_signal.push_back(
            candidate_values(nl, signal, region, options));

      std::vector<std::vector<Seed>> trials;
      for (std::size_t k = 1;
           k <= options.max_simultaneous_assignments && k <= signals.size();
           ++k) {
        enumerate_trials(signals, values_per_signal, k,
                         options.max_assignment_trials_per_subgroup, trials);
        if (trials.size() >= options.max_assignment_trials_per_subgroup) break;
      }

      std::optional<std::vector<Seed>> winning;
      for (const auto& trial : trials) {
        ++result.stats.reduction_trials;
        const PropagationResult propagated = propagate(nl, trial);
        if (options.trace != nullptr)
          options.trace->records.push_back(TraceRecord{
              TraceRecord::Kind::kTrial, {}, trial, propagated.feasible});
        if (!propagated.feasible) continue;

        bool all_equal = true;
        std::optional<BitSignature> first;
        for (NetId bit : subgroup.bits) {
          BitSignature sig = hasher.signature(bit, &propagated.map);
          if (!sig.root_type.has_value()) {
            all_equal = false;  // a bit became constant
            break;
          }
          if (!first) {
            first = std::move(sig);
          } else if (!first->structurally_equal(sig)) {
            all_equal = false;
            break;
          }
        }
        // A word needs at least one similar subtree left after reduction.
        if (all_equal && first && !first->subtrees.empty()) {
          winning = trial;
          break;
        }
      }

      if (winning) {
        ++result.stats.unified_subgroups;
        if (options.trace != nullptr)
          options.trace->records.push_back(TraceRecord{
              TraceRecord::Kind::kUnified, subgroup.bits, *winning, true});
        UnifiedWord unified;
        unified.bits = subgroup.bits;
        unified.assignment = *winning;
        for (const Seed& seed : *winning) used_signals.insert(seed.first);
        result.unified.push_back(std::move(unified));

        Word word;
        word.bits = std::move(subgroup.bits);
        result.words.words.push_back(std::move(word));
      } else {
        if (options.trace != nullptr)
          options.trace->records.push_back(
              TraceRecord{TraceRecord::Kind::kFallback, subgroup.bits, {}, false});
        emit_fallback_words(subgroup, sub_signatures, result.words);
      }
    }
  }

  result.used_control_signals.assign(used_signals.begin(), used_signals.end());
  std::sort(result.used_control_signals.begin(),
            result.used_control_signals.end());
  return result;
}

}  // namespace netrev::wordrec
