// The degradation ladder runner for word identification.
//
// identify_words_degradable() tries identification rungs from the configured
// technique down to the unconditional floor (see exec/degrade.h for the rung
// semantics).  A rung is abandoned only on a resource trip — the stage
// deadline fired (exec::DeadlineExceededError) or the cone-work budget
// overflowed (ResourceLimitError); the next rung then starts with a FRESH
// budget, so the rung a run finally lands on depends only on which rungs can
// finish within their budget, never on scheduling.  Cancellation
// (exec::CancelledError) and structural/input errors always propagate: a
// cancelled run is abandoned, a broken input is an error at every rung.
//
// Determinism contract: each rung's output is byte-identical at any job
// count and across cache reruns; the degrade_{level,stage,reason} fields are
// built only from constant error messages and rung names, never wall-clock
// data.  kGroupsOnly performs no cone walks and polls nothing, so it always
// answers.
#pragma once

#include "common/diagnostics.h"
#include "exec/degrade.h"
#include "wordrec/identify.h"

namespace netrev::wordrec {

// Runs the ladder.  With a disabled policy (or floor kFull) this is exactly
// identify_words(): trips propagate.  Traced runs (options.trace != nullptr)
// also bypass the ladder — a trace documents the full technique's decisions,
// and splicing rung retries into it would corrupt that record.
IdentifyResult identify_words_degradable(const netlist::Netlist& nl,
                                         const Options& options,
                                         const exec::DegradePolicy& policy);

// Reports a degraded result into a diagnostics sink (one warning naming the
// rung, the tripped stage, and the trip reason).  No-op for full results.
void report_degradation(const IdentifyResult& result,
                        diag::Diagnostics& diags);

}  // namespace netrev::wordrec
