// Functional sanity checking of candidate words.
//
// The paper notes that functional techniques "may be applied after words are
// identified using a structural technique to further improve the word
// identification process."  This module implements the cheap end of that
// spectrum: randomized-simulation screening of a candidate word for
// functional degeneracies that structural matching cannot see —
//   * stuck bits (a bit that never changes over sampled stimulus),
//   * duplicate bits (two bits that always carry equal values),
//   * complementary bits (always opposite — typically a re-encoded pair,
//     not two independent bits of one word).
// A clean data word exhibits none of these; control/state registers often
// trip them, which makes the report a useful post-filter and triage signal.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/compact.h"
#include "netlist/netlist.h"
#include "wordrec/word.h"

namespace netrev::wordrec {

struct FunctionalReport {
  std::size_t vectors = 0;
  std::vector<std::size_t> stuck_bits;  // indices into Word::bits
  std::vector<std::pair<std::size_t, std::size_t>> duplicate_pairs;
  std::vector<std::pair<std::size_t, std::size_t>> complementary_pairs;

  bool clean() const {
    return stuck_bits.empty() && duplicate_pairs.empty() &&
           complementary_pairs.empty();
  }
};

// Simulates `vector_count` random (input, state) points and screens the
// word.  Deterministic for a given seed.  An optional prebuilt CompactView
// (acyclic) lets repeated screenings of one design share a single
// flattening pass; samples are byte-identical with or without it.
FunctionalReport functional_sanity(const netlist::Netlist& nl,
                                   const Word& word,
                                   std::size_t vector_count = 64,
                                   std::uint64_t seed = 0x5EED,
                                   const netlist::CompactView* view = nullptr);

// Screens every multi-bit word of a set; returns indices (into
// words.words) of words whose report is not clean.
std::vector<std::size_t> suspicious_words(
    const netlist::Netlist& nl, const WordSet& words,
    std::size_t vector_count = 64, std::uint64_t seed = 0x5EED,
    const netlist::CompactView* view = nullptr);

}  // namespace netrev::wordrec
