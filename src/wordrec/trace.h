// Execution tracing for the identification pipeline.
//
// Reverse-engineering results need to be auditable: for every subgroup the
// identifier touches, the trace records the partial-match evidence, the
// relevant control signals §2.4 produced, each §2.5 assignment trial with
// its outcome, and whether the subgroup unified or fell back to base-style
// segmentation.  Attach an IdentifyTrace to Options::trace to collect it;
// render_trace() turns it into the narrative the CLI's --trace flag prints.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "netlist/netlist.h"

namespace netrev::wordrec {

struct TraceRecord {
  enum class Kind {
    kPartialSubgroup,   // nets = subgroup bits
    kControlSignals,    // nets = relevant control signals
    kTrial,             // assignment = tried values; flag = feasible
    kUnified,           // nets = bits; assignment = winning values
    kFallback,          // nets = subgroup bits (re-segmented base-style)
  };
  Kind kind = Kind::kPartialSubgroup;
  std::vector<netlist::NetId> nets;
  std::vector<std::pair<netlist::NetId, bool>> assignment;
  bool flag = false;
};

struct IdentifyTrace {
  std::vector<TraceRecord> records;

  std::size_t count(TraceRecord::Kind kind) const {
    std::size_t n = 0;
    for (const TraceRecord& record : records)
      if (record.kind == kind) ++n;
    return n;
  }
};

// Multi-line human-readable rendering (net ids resolved to names).
std::string render_trace(const netlist::Netlist& nl,
                         const IdentifyTrace& trace);

}  // namespace netrev::wordrec
