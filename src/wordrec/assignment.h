// Constant assignment and its propagation closure (§2.5).
//
// Given seed assignments to control signals, values are propagated "forward
// and backwards throughout the netlist": forward when a controlling input or
// a fully-assigned input set determines a gate output; backward when an
// assigned output forces its inputs (e.g. NAND output 0 forces all inputs
// to 1).  Propagation never crosses flip-flops: an assignment models a
// single-cycle combinational condition.
//
// The resulting AssignmentMap is closed under forward propagation — a
// property the virtual-reduction hashing in hash_key.cpp and the netlist
// materializer in reduce.cpp both rely on: if any input of a gate holds its
// controlling value, the gate's output is in the map too.
#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "netlist/netlist.h"

namespace netrev::wordrec {

class AssignmentMap {
 public:
  AssignmentMap() = default;

  // Returns false if the net already holds the opposite value (conflict).
  bool assign(netlist::NetId net, bool value) {
    const auto [it, inserted] = values_.try_emplace(net, value);
    return inserted ? true : it->second == value;
  }

  std::optional<bool> value(netlist::NetId net) const {
    const auto it = values_.find(net);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  bool contains(netlist::NetId net) const { return values_.contains(net); }
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const std::unordered_map<netlist::NetId, bool>& entries() const {
    return values_;
  }

 private:
  std::unordered_map<netlist::NetId, bool> values_;
};

struct PropagationResult {
  AssignmentMap map;
  // False when the seeds are contradictory (an infeasible assignment, which
  // §2.5 rules out: only "suitable and feasible" values are kept).
  bool feasible = true;
};

// Computes the propagation closure of `seeds`.  `backward` enables the
// backward (output-forces-inputs) direction.
PropagationResult propagate(
    const netlist::Netlist& nl,
    std::span<const std::pair<netlist::NetId, bool>> seeds,
    bool backward = true);

}  // namespace netrev::wordrec
