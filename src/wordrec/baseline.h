// Shape-hashing baseline ("Base" in Table 1): our reimplementation of the
// word-grouping front end of WordRev [6], as the paper itself did ("Since we
// did not have access to the source code, we wrote our own implementation").
// It uses the same §2.2 grouping and the same hash keys, but chains bits only
// on FULLY matching, unsimplified fanin-cone structure.
#pragma once

#include "wordrec/options.h"
#include "wordrec/word.h"

namespace netrev::wordrec {

WordSet identify_words_baseline(const netlist::Netlist& nl,
                                const Options& options = {});

}  // namespace netrev::wordrec
