// Relevant control-signal identification (§2.4).
//
// For a subgroup with partially-matching bits, the candidate control signals
// are the nets common to *all* recorded dissimilar subtrees, minus any net
// lying in the fanin cone of another net of that common set (its effect on
// reduction is already captured by the dominating net — the paper's U223 vs
// U201 example).  Signals appearing only in matching subtrees are never
// candidates: removing them cannot create new structural similarity.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "wordrec/matching.h"
#include "wordrec/options.h"

namespace netrev::wordrec {

// Returns the relevant control signals for the dissimilar subtrees rooted at
// `dissimilar_roots` (depth-limited to the subtree depth implied by
// options.cone_depth).  Deterministic order (ascending net id).  Empty when
// fewer than one dissimilar subtree exists or nothing is common.
std::vector<netlist::NetId> find_relevant_control_signals(
    const netlist::Netlist& nl, std::span<const netlist::NetId> dissimilar_roots,
    const Options& options);

// Convenience overload operating on a subgroup.
std::vector<netlist::NetId> find_relevant_control_signals(
    const netlist::Netlist& nl, const Subgroup& subgroup,
    const Options& options);

}  // namespace netrev::wordrec
