#include "wordrec/grouping.h"

namespace netrev::wordrec {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

namespace {

// Root gate type shared by a group (groups are formed per type).
GateType group_type(const Netlist& nl, const PotentialBitGroup& group) {
  const auto driver = nl.driver_of(group.front());
  return nl.gate(*driver).type;
}

}  // namespace

std::vector<PotentialBitGroup> merge_groups_across_gaps(
    const Netlist& nl, std::vector<PotentialBitGroup> groups,
    std::size_t max_gap_lines) {
  std::vector<PotentialBitGroup> merged;
  std::vector<bool> consumed(groups.size(), false);
  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (consumed[i]) continue;
    PotentialBitGroup current = std::move(groups[i]);
    const GateType type = group_type(nl, current);
    // Scan forward across small gaps of other-type lines.
    std::size_t gap = 0;
    for (std::size_t j = i + 1; j < groups.size(); ++j) {
      if (consumed[j]) break;
      if (group_type(nl, groups[j]) == type) {
        current.insert(current.end(), groups[j].begin(), groups[j].end());
        consumed[j] = true;
        gap = 0;
        continue;
      }
      gap += groups[j].size();
      if (gap > max_gap_lines) break;
    }
    merged.push_back(std::move(current));
  }
  return merged;
}

std::vector<PotentialBitGroup> potential_bit_groups(const Netlist& nl) {
  std::vector<PotentialBitGroup> groups;
  std::optional<GateType> previous_type;
  for (GateId g : nl.gates_in_file_order()) {
    const netlist::Gate& gate = nl.gate(g);
    if (!previous_type.has_value() || *previous_type != gate.type)
      groups.emplace_back();
    groups.back().push_back(gate.output);
    previous_type = gate.type;
  }
  return groups;
}

}  // namespace netrev::wordrec
