#include "wordrec/degrade.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/resource_guard.h"
#include "exec/cancel.h"
#include "wordrec/baseline.h"
#include "wordrec/grouping.h"

namespace netrev::wordrec {

namespace {

using exec::DegradeLevel;

// Rung options: strictly cheaper configurations of the same knobs.  Every
// rung drops any caller-shared budget so it starts with a fresh one (the
// identifier wires a local budget from max_cone_work) — a budget exhausted
// by a higher rung must not pre-trip the lower one.
Options rung_options(const Options& base, DegradeLevel level) {
  Options options = base;
  options.cone_budget = nullptr;
  if (level == DegradeLevel::kReducedDepth) {
    options.cone_depth = std::min<std::size_t>(options.cone_depth, 2);
    options.max_simultaneous_assignments =
        std::min<std::size_t>(options.max_simultaneous_assignments, 1);
  }
  return options;
}

IdentifyResult run_rung(const netlist::Netlist& nl, const Options& base,
                        DegradeLevel level) {
  switch (level) {
    case DegradeLevel::kFull:
      return identify_words(nl, base);
    case DegradeLevel::kReducedDepth:
      return identify_words(nl, rung_options(base, level));
    case DegradeLevel::kBaseline: {
      IdentifyResult result;
      result.words = identify_words_baseline(nl, rung_options(base, level));
      return result;
    }
    case DegradeLevel::kGroupsOnly: {
      // No cone walks, no hashing, no polling: the §2.2 line scan alone.
      // Every group becomes a word (singletons included) so the result is
      // still a partition of the candidate nets, as the metrics expect.
      IdentifyResult result;
      std::vector<PotentialBitGroup> groups = potential_bit_groups(nl);
      result.stats.groups = groups.size();
      result.words.words.reserve(groups.size());
      for (PotentialBitGroup& group : groups) {
        Word word;
        word.bits = std::move(group);
        result.words.words.push_back(std::move(word));
      }
      return result;
    }
  }
  return identify_words(nl, base);  // unreachable
}

}  // namespace

IdentifyResult identify_words_degradable(const netlist::Netlist& nl,
                                         const Options& options,
                                         const exec::DegradePolicy& policy) {
  const bool ladder_active = policy.enabled &&
                             policy.floor != DegradeLevel::kFull &&
                             options.trace == nullptr;
  if (!ladder_active) return identify_words(nl, options);

  DegradeLevel level = DegradeLevel::kFull;
  std::string tripped_stage;
  std::string tripped_reason;
  for (;;) {
    try {
      IdentifyResult result = run_rung(nl, options, level);
      result.degrade_level = level;
      result.degrade_stage = tripped_stage;
      result.degrade_reason = tripped_reason;
      return result;
    } catch (const exec::DeadlineExceededError& e) {
      if (level >= policy.floor) throw;
      if (tripped_stage.empty()) {
        tripped_stage = exec::degrade_level_name(level);
        tripped_reason = e.what();
      }
    } catch (const ResourceLimitError& e) {
      if (level >= policy.floor) throw;
      if (tripped_stage.empty()) {
        tripped_stage = exec::degrade_level_name(level);
        tripped_reason = e.what();
      }
    }
    level = static_cast<DegradeLevel>(static_cast<std::uint8_t>(level) + 1);
  }
}

void report_degradation(const IdentifyResult& result,
                        diag::Diagnostics& diags) {
  if (!result.degraded()) return;
  diags.warning("identification degraded to '" +
                std::string(exec::degrade_level_name(result.degrade_level)) +
                "' (rung '" + result.degrade_stage +
                "' tripped: " + result.degrade_reason + ")");
}

}  // namespace netrev::wordrec
