#include "wordrec/hash_key.h"

#include <algorithm>

#include "common/contracts.h"
#include "netlist/compact.h"
#include "perf/profile.h"
#include "wordrec/collapse.h"

namespace netrev::wordrec {

using netlist::CompactView;
using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

namespace {

// Leaf tokens.  With distinguish_leaf_kinds off, boundary leaves all share a
// token (closer to the paper's gate-types-only keys); constant leaves stay
// distinct because a constant is a genuine structural difference.
char leaf_primary_input(const Options& o) { return o.distinguish_leaf_kinds ? 'p' : '*'; }
char leaf_flop_output(const Options& o) { return o.distinguish_leaf_kinds ? 'f' : '*'; }
char leaf_depth_cut(const Options& o) { return o.distinguish_leaf_kinds ? '_' : '*'; }

// CSR twin of ConeHasher::subtree_key: same recursion, same key bytes, but
// the per-level driver/type/fanin lookups are flat array reads instead of
// optional-returning map walks.
HashKey compact_subtree_key(const CompactView& view, const Options& options,
                            std::uint32_t net, std::size_t depth,
                            const AssignmentMap* assignment) {
  if (assignment != nullptr) {
    if (const auto v = assignment->value(NetId(net)))
      return std::string(1, *v ? '1' : '0');
  }

  const std::uint32_t driver = view.driver(net);
  if (driver == CompactView::kNoGate)
    return std::string(1, leaf_primary_input(options));

  const GateType type = view.gate_type(driver);
  if (type == GateType::kDff) return std::string(1, leaf_flop_output(options));
  if (type == GateType::kConst0) return "0";
  if (type == GateType::kConst1) return "1";
  if (depth == 0) return std::string(1, leaf_depth_cut(options));

  const std::span<const std::uint32_t> inputs = view.fanin(driver);
  std::vector<std::uint32_t> live;
  live.reserve(inputs.size());
  bool dropped_parity = false;
  if (assignment == nullptr) {
    live.assign(inputs.begin(), inputs.end());
  } else {
    for (std::uint32_t in : inputs) {
      const auto v = assignment->value(NetId(in));
      if (!v) {
        live.push_back(in);
        continue;
      }
      if (const auto cv = controlling_value(type)) NETREV_ASSERT(*v != *cv);
      dropped_parity = dropped_parity != *v;
    }
  }
  NETREV_ASSERT(!live.empty() &&
                "all-constant gate must have an assigned output");

  const GateType effective =
      (live.size() == inputs.size())
          ? type
          : collapsed_type(type, live.size(), dropped_parity);

  std::vector<HashKey> child_keys;
  child_keys.reserve(live.size());
  for (std::uint32_t in : live)
    child_keys.push_back(
        compact_subtree_key(view, options, in, depth - 1, assignment));
  std::sort(child_keys.begin(), child_keys.end());

  HashKey key;
  key.reserve(2 + child_keys.size() * 4);
  key += '(';
  for (const HashKey& child : child_keys) key += child;
  key += ')';
  key += gate_type_code(effective);
  return key;
}

// CSR twin of ConeHasher::signature (sans the profiler counter, which the
// dispatching method keeps).
BitSignature compact_signature(const CompactView& view, const Options& options,
                               std::uint32_t bit,
                               const AssignmentMap* assignment) {
  BitSignature sig;
  if (assignment != nullptr && assignment->contains(NetId(bit))) return sig;

  const std::uint32_t driver = view.driver(bit);
  if (driver == CompactView::kNoGate) return sig;
  const GateType type = view.gate_type(driver);
  if (type == GateType::kDff) {
    sig.root_type = GateType::kDff;
    return sig;
  }
  if (type == GateType::kConst0 || type == GateType::kConst1) return sig;

  const std::span<const std::uint32_t> inputs = view.fanin(driver);
  std::vector<std::uint32_t> live;
  bool dropped_parity = false;
  if (assignment == nullptr) {
    live.assign(inputs.begin(), inputs.end());
  } else {
    for (std::uint32_t in : inputs) {
      const auto v = assignment->value(NetId(in));
      if (!v) {
        live.push_back(in);
        continue;
      }
      if (const auto cv = controlling_value(type)) NETREV_ASSERT(*v != *cv);
      dropped_parity = dropped_parity != *v;
    }
  }
  if (live.empty()) return sig;  // would be constant; not a word bit

  sig.root_type = (live.size() == inputs.size())
                      ? type
                      : collapsed_type(type, live.size(), dropped_parity);

  NETREV_REQUIRE(options.cone_depth >= 1);
  sig.subtrees.reserve(live.size());
  for (std::uint32_t in : live)
    sig.subtrees.push_back(SubtreeKey{
        compact_subtree_key(view, options, in, options.cone_depth - 1,
                            assignment),
        NetId(in)});
  std::sort(sig.subtrees.begin(), sig.subtrees.end(),
            [](const SubtreeKey& a, const SubtreeKey& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.root < b.root;
            });
  return sig;
}

}  // namespace

bool BitSignature::structurally_equal(const BitSignature& other) const {
  if (!root_type.has_value() || !other.root_type.has_value()) return false;
  if (*root_type != *other.root_type) return false;
  if (subtrees.size() != other.subtrees.size()) return false;
  for (std::size_t i = 0; i < subtrees.size(); ++i)
    if (subtrees[i].key != other.subtrees[i].key) return false;
  return true;
}

ConeHasher::ConeHasher(const Netlist& nl, const Options& options)
    : nl_(&nl), options_(options) {}

HashKey ConeHasher::subtree_key(NetId net, std::size_t depth,
                                const AssignmentMap* assignment) const {
  if (options_.use_compact && options_.compact != nullptr)
    return compact_subtree_key(*options_.compact, options_, net.value(), depth,
                               assignment);

  // A net assigned by the reduction is a constant leaf.  (Callers normally
  // drop assigned children before recursing; this branch covers direct
  // queries on assigned nets.)
  if (assignment != nullptr) {
    if (const auto v = assignment->value(net)) return std::string(1, *v ? '1' : '0');
  }

  const auto driver = nl_->driver_of(net);
  if (!driver) return std::string(1, leaf_primary_input(options_));

  const netlist::Gate& gate = nl_->gate(*driver);
  if (gate.type == GateType::kDff)
    return std::string(1, leaf_flop_output(options_));
  if (gate.type == GateType::kConst0) return "0";
  if (gate.type == GateType::kConst1) return "1";
  if (depth == 0) return std::string(1, leaf_depth_cut(options_));

  // Partition inputs into live and dropped-constant under the assignment.
  std::vector<NetId> live;
  live.reserve(gate.inputs.size());
  bool dropped_parity = false;
  if (assignment == nullptr) {
    live = gate.inputs;
  } else {
    for (NetId in : gate.inputs) {
      const auto v = assignment->value(in);
      if (!v) {
        live.push_back(in);
        continue;
      }
      // Closure property of propagate(): a controlling input would have
      // assigned this gate's output, and the output is unassigned here.
      if (const auto cv = controlling_value(gate.type))
        NETREV_ASSERT(*v != *cv);
      dropped_parity = dropped_parity != *v;
    }
  }
  NETREV_ASSERT(!live.empty() &&
                "all-constant gate must have an assigned output");

  const GateType effective =
      (live.size() == gate.inputs.size())
          ? gate.type
          : collapsed_type(gate.type, live.size(), dropped_parity);

  std::vector<HashKey> child_keys;
  child_keys.reserve(live.size());
  for (NetId in : live)
    child_keys.push_back(subtree_key(in, depth - 1, assignment));
  std::sort(child_keys.begin(), child_keys.end());

  HashKey key;
  key.reserve(2 + child_keys.size() * 4);
  key += '(';
  for (const HashKey& child : child_keys) key += child;
  key += ')';
  key += gate_type_code(effective);
  return key;
}

BitSignature ConeHasher::signature(NetId bit,
                                   const AssignmentMap* assignment) const {
  {
    // Cached counter: signature() is called once per bit per (re)hash, from
    // pool workers; the counter is atomic and the disabled cost is one load.
    static perf::Profiler::Counter& cones =
        perf::Profiler::global().counter("cones_hashed");
    if (perf::Profiler::global().enabled())
      cones.fetch_add(1, std::memory_order_relaxed);
  }
  if (options_.use_compact && options_.compact != nullptr)
    return compact_signature(*options_.compact, options_, bit.value(),
                             assignment);
  BitSignature sig;
  if (assignment != nullptr && assignment->contains(bit)) return sig;

  const auto driver = nl_->driver_of(bit);
  if (!driver) return sig;
  const netlist::Gate& gate = nl_->gate(*driver);
  if (gate.type == GateType::kDff) {
    sig.root_type = GateType::kDff;
    return sig;
  }
  if (gate.type == GateType::kConst0 || gate.type == GateType::kConst1)
    return sig;

  // Live second-level subtree roots under the assignment.
  std::vector<NetId> live;
  bool dropped_parity = false;
  if (assignment == nullptr) {
    live = gate.inputs;
  } else {
    for (NetId in : gate.inputs) {
      const auto v = assignment->value(in);
      if (!v) {
        live.push_back(in);
        continue;
      }
      if (const auto cv = controlling_value(gate.type))
        NETREV_ASSERT(*v != *cv);
      dropped_parity = dropped_parity != *v;
    }
  }
  if (live.empty()) return sig;  // would be constant; not a word bit

  sig.root_type = (live.size() == gate.inputs.size())
                      ? gate.type
                      : collapsed_type(gate.type, live.size(), dropped_parity);

  NETREV_REQUIRE(options_.cone_depth >= 1);
  sig.subtrees.reserve(live.size());
  for (NetId in : live)
    sig.subtrees.push_back(
        SubtreeKey{subtree_key(in, options_.cone_depth - 1, assignment), in});
  std::sort(sig.subtrees.begin(), sig.subtrees.end(),
            [](const SubtreeKey& a, const SubtreeKey& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.root < b.root;
            });
  return sig;
}

}  // namespace netrev::wordrec
