// Word types shared by the baseline and the proposed identifier.
#pragma once

#include <unordered_map>
#include <vector>

#include "netlist/netlist.h"

namespace netrev::wordrec {

// A generated word: an ordered group of nets believed to carry the bits of
// one word.  Order follows netlist file order (bit adjacency).
struct Word {
  std::vector<netlist::NetId> bits;

  std::size_t width() const { return bits.size(); }
};

// The output of an identification technique: a partition of all candidate
// nets into words (singletons included, so every candidate net is covered —
// the metrics in §3 rely on this).
struct WordSet {
  std::vector<Word> words;

  // Index of the word containing each net; nets outside any word are absent.
  std::unordered_map<netlist::NetId, std::size_t> index_of_net() const {
    std::unordered_map<netlist::NetId, std::size_t> index;
    for (std::size_t w = 0; w < words.size(); ++w)
      for (netlist::NetId bit : words[w].bits) index.emplace(bit, w);
    return index;
  }

  // Number of words of width >= min_width.
  std::size_t count_multibit(std::size_t min_width = 2) const {
    std::size_t n = 0;
    for (const Word& word : words)
      if (word.width() >= min_width) ++n;
    return n;
  }
};

}  // namespace netrev::wordrec
