#include "wordrec/funcheck.h"

#include "common/rng.h"
#include "sim/simulator.h"

namespace netrev::wordrec {

using netlist::NetId;
using netlist::Netlist;

FunctionalReport functional_sanity(const Netlist& nl, const Word& word,
                                   std::size_t vector_count,
                                   std::uint64_t seed) {
  FunctionalReport report;
  report.vectors = vector_count;
  if (word.bits.empty() || vector_count == 0) return report;

  sim::Simulator simulator(nl);
  Rng rng(seed);

  const std::size_t w = word.width();
  // Per-bit sampled value streams, packed as counts of agreements.
  std::vector<std::uint8_t> first_value(w, 0);
  std::vector<bool> ever_changed(w, false);
  // Pairwise agreement counts.
  std::vector<std::size_t> equal_count(w * w, 0);

  for (std::size_t v = 0; v < vector_count; ++v) {
    simulator.randomize_inputs(rng);
    simulator.randomize_state(rng);
    simulator.eval();
    std::vector<bool> sample(w);
    for (std::size_t i = 0; i < w; ++i) sample[i] = simulator.value(word.bits[i]);
    for (std::size_t i = 0; i < w; ++i) {
      if (v == 0)
        first_value[i] = sample[i] ? 1 : 0;
      else if (sample[i] != (first_value[i] != 0))
        ever_changed[i] = true;
      for (std::size_t j = i + 1; j < w; ++j)
        if (sample[i] == sample[j]) ++equal_count[i * w + j];
    }
  }

  for (std::size_t i = 0; i < w; ++i)
    if (!ever_changed[i]) report.stuck_bits.push_back(i);

  for (std::size_t i = 0; i < w; ++i) {
    for (std::size_t j = i + 1; j < w; ++j) {
      // Stuck bits trivially duplicate each other; report them only once
      // (as stuck), not as pairs.
      if (!ever_changed[i] || !ever_changed[j]) continue;
      const std::size_t equal = equal_count[i * w + j];
      if (equal == vector_count)
        report.duplicate_pairs.emplace_back(i, j);
      else if (equal == 0)
        report.complementary_pairs.emplace_back(i, j);
    }
  }
  return report;
}

std::vector<std::size_t> suspicious_words(const Netlist& nl,
                                          const WordSet& words,
                                          std::size_t vector_count,
                                          std::uint64_t seed) {
  std::vector<std::size_t> flagged;
  for (std::size_t w = 0; w < words.words.size(); ++w) {
    if (words.words[w].width() < 2) continue;
    if (!functional_sanity(nl, words.words[w], vector_count, seed).clean())
      flagged.push_back(w);
  }
  return flagged;
}

}  // namespace netrev::wordrec
