#include "wordrec/funcheck.h"

#include <optional>

#include "common/thread_pool.h"
#include "perf/profile.h"
#include "sim/simulator.h"

namespace netrev::wordrec {

using netlist::NetId;
using netlist::Netlist;

FunctionalReport functional_sanity(const Netlist& nl, const Word& word,
                                   std::size_t vector_count,
                                   std::uint64_t seed,
                                   const netlist::CompactView* view) {
  FunctionalReport report;
  report.vectors = vector_count;
  if (word.bits.empty() || vector_count == 0) return report;

  // Batched random simulation (parallel over fixed vector blocks, identical
  // samples at any job count — see sim::sample_random_vectors).  A caller-
  // provided view skips the per-call flattening pass inside the Netlist
  // overload.
  const std::vector<std::uint8_t> samples =
      view != nullptr && view->acyclic()
          ? sim::sample_random_vectors(*view, word.bits, vector_count, seed)
          : sim::sample_random_vectors(nl, word.bits, vector_count, seed);

  const std::size_t w = word.width();
  std::vector<std::uint8_t> first_value(w, 0);
  std::vector<bool> ever_changed(w, false);
  std::vector<std::size_t> equal_count(w * w, 0);

  for (std::size_t v = 0; v < vector_count; ++v) {
    const std::uint8_t* sample = samples.data() + v * w;
    for (std::size_t i = 0; i < w; ++i) {
      if (v == 0)
        first_value[i] = sample[i];
      else if (sample[i] != first_value[i])
        ever_changed[i] = true;
      for (std::size_t j = i + 1; j < w; ++j)
        if (sample[i] == sample[j]) ++equal_count[i * w + j];
    }
  }

  for (std::size_t i = 0; i < w; ++i)
    if (!ever_changed[i]) report.stuck_bits.push_back(i);

  for (std::size_t i = 0; i < w; ++i) {
    for (std::size_t j = i + 1; j < w; ++j) {
      // Stuck bits trivially duplicate each other; report them only once
      // (as stuck), not as pairs.
      if (!ever_changed[i] || !ever_changed[j]) continue;
      const std::size_t equal = equal_count[i * w + j];
      if (equal == vector_count)
        report.duplicate_pairs.emplace_back(i, j);
      else if (equal == 0)
        report.complementary_pairs.emplace_back(i, j);
    }
  }
  return report;
}

std::vector<std::size_t> suspicious_words(const Netlist& nl,
                                          const WordSet& words,
                                          std::size_t vector_count,
                                          std::uint64_t seed,
                                          const netlist::CompactView* view) {
  // Per-word screening is independent; run words concurrently and keep the
  // flagged list in word order.  Each word's samples depend only on (seed,
  // block index), so the outcome is job-count invariant.  One view serves
  // every word: it is immutable, so sharing it across workers is safe, and
  // without a caller-provided one we build it here rather than once per
  // word inside functional_sanity.
  std::optional<netlist::CompactView> local_view;
  if (view == nullptr && !words.words.empty()) {
    local_view.emplace(netlist::CompactView::build(nl));
    view = &*local_view;
  }
  std::vector<std::uint8_t> dirty(words.words.size(), 0);
  parallel_for(0, words.words.size(), [&](std::size_t w) {
    perf::ScopedWork work("stage.funcheck_ns");
    if (words.words[w].width() < 2) return;
    if (!functional_sanity(nl, words.words[w], vector_count, seed, view)
             .clean())
      dirty[w] = 1;
  });
  std::vector<std::size_t> flagged;
  for (std::size_t w = 0; w < dirty.size(); ++w)
    if (dirty[w] != 0) flagged.push_back(w);
  return flagged;
}

}  // namespace netrev::wordrec
