// Tunables of the word-identification procedure.  Defaults follow the paper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/resource_guard.h"
#include "exec/cancel.h"

namespace netrev::netlist {
class CompactView;
}

namespace netrev::wordrec {

struct IdentifyTrace;

struct Options {
  // Optional, non-owning: when set, identify_words() records its decisions
  // (subgroups, control signals, trials, outcomes) into this trace.  See
  // wordrec/trace.h.
  IdentifyTrace* trace = nullptr;

  // Levels of logic gates explored in a bit's fanin cone (§2.1: "fanin-cone
  // down to four levels of logic gates"; [6] uses 2 to 4).
  std::size_t cone_depth = 4;

  // Maximum number of control signals assigned simultaneously (§2.5: single
  // signals first, then "feasible assignments to any two identified control
  // signals").  The paper stops at 2 and names >2 as future work; raising
  // this implements that extension.
  std::size_t max_simultaneous_assignments = 2;

  // Distinguish leaf kinds in hash keys (primary input vs flop output vs
  // depth cut vs constant).  The paper's keys record gate types only; leaf
  // tagging is a refinement that avoids false merges across different
  // sequential boundaries.  Benchmarked as an ablation (bench/ablation).
  bool distinguish_leaf_kinds = true;

  // Remove logic left floating by the reduction (the paper's Figure 1 shows
  // the shared control cone disappearing entirely).
  bool sweep_dead_logic = true;

  // When a control signal feeds only gates without a controlling value
  // (XOR/NOT), optionally try both constants instead of skipping it.  Off by
  // default: the paper assigns controlling values only.
  bool try_both_values_without_controlling_sink = false;

  // Cross-checking among adjacent groups (§2.2 names this as the paper's
  // future improvement): when a stray netlist line splits a run of
  // same-root-type lines, the two runs are rejoined into one potential-bit
  // group if at most `cross_group_max_gap` lines intervene.  Off by default
  // (the paper's evaluated configuration).
  bool cross_group_checking = false;
  std::size_t cross_group_max_gap = 2;

  // Safety valves so adversarial netlists cannot blow up the search.
  std::size_t max_control_signals_per_subgroup = 8;
  std::size_t max_assignment_trials_per_subgroup = 128;

  // Ceiling on total cone-traversal work (nets visited across every cone
  // walk of one identify_words() run); 0 = unlimited.  Exceeding it aborts
  // the run with ResourceLimitError — a resource guard against runaway or
  // adversarial inputs, not a tuning knob.
  std::size_t max_cone_work = 0;

  // Optional, non-owning: the budget cone walks charge.  identify_words()
  // wires this up internally from max_cone_work; set it only to share one
  // budget across several calls.
  WorkBudget* cone_budget = nullptr;

  // Cancellation/deadline poll point.  identify_words() polls it at group,
  // subgroup, and trial-chunk boundaries, and attaches it to the cone
  // budget so every cone walk polls too (strided).  Observation-only:
  // excluded from the options fingerprint; degradation outcomes are keyed
  // separately (see RunConfig::exec_fingerprint).
  exec::Checkpoint checkpoint;

  // Opt-in dataflow pruning (--use-dataflow): drop provably-constant nets
  // from candidate control signals (a constant can never be toggled, so it
  // can never separate dissimilar subtrees).  Guaranteed conservative: the
  // pruned candidate list is exactly the default list minus nets the
  // ternary engine proves constant, so with the knob off — or on a design
  // with no derived constants — output is byte-identical to the default.
  bool use_dataflow = false;

  // Run cone walks, hashing recursion, and the containment/dominance filters
  // over the CSR arrays of a netlist::CompactView instead of the pointer
  // netlist (--legacy-core clears this).  Output is byte-identical either
  // way — same visit orders, same WorkBudget charge sequences — so the knob
  // is performance-only and excluded from the options fingerprint.
  bool use_compact = true;

  // Optional, non-owning prebuilt view (the Session passes its cached
  // artifact).  identify_words() builds one itself when use_compact is set
  // and this is null.  Derived purely from the netlist, so excluded from
  // the fingerprint like constant_nets below.
  const netlist::CompactView* compact = nullptr;

  // Optional, non-owning: per-net "provably constant at every cycle" mask,
  // indexed by NetId (analysis::DataflowFacts::constant_mask()).  Set by the
  // Session from its cached dataflow stage; identify_words() computes it
  // on demand when use_dataflow is set and this is null.  Derived purely
  // from the netlist, so it is not part of the options fingerprint
  // (use_dataflow is).
  const std::vector<std::uint8_t>* constant_nets = nullptr;
};

}  // namespace netrev::wordrec
