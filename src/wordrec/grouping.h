// First-level grouping of potential word bits (§2.2).
//
// One linear scan over the netlist file: each gate line defines a net (the
// gate's output); nets on consecutive lines whose fanin-cone roots (their
// driving gates) share a gate type are grouped as potential bits of a word.
// The paper stresses this stage is only a rough, extremely fast grouping —
// groups may span several words or mix in stray bits; later stages refine it.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace netrev::wordrec {

// A group of potential bits: nets of consecutive file lines with equal root
// gate type, in file order.
using PotentialBitGroup = std::vector<netlist::NetId>;

std::vector<PotentialBitGroup> potential_bit_groups(const netlist::Netlist& nl);

// Cross-group checking (§2.2's stated future improvement): rejoins groups of
// equal root gate type that are separated by at most `max_gap_lines` netlist
// lines of other types (a stray line splitting a word's root run).  The
// intervening nets keep their own groups.  Order within and across groups is
// preserved.
std::vector<PotentialBitGroup> merge_groups_across_gaps(
    const netlist::Netlist& nl, std::vector<PotentialBitGroup> groups,
    std::size_t max_gap_lines);

}  // namespace netrev::wordrec
