// Structural hash keys (§2.3).
//
// A bit's fanin cone is treeified and canonicalised: each second-level
// subtree (one per fanin of the bit's root gate) becomes a string produced by
// post-order traversal recording gate types, with fanins sorted
// lexicographically — the paper's "hash key" (a Polish-expression style
// canonical form [12]).  Two subtrees are declared structurally similar iff
// their keys are equal.
//
// Every keying function optionally takes an AssignmentMap: the key is then
// computed over the *virtually reduced* cone — assigned nets vanish, gates
// whose live fanin drops to one collapse to BUF/NOT, XOR/XNOR absorb dropped
// constants into their parity — exactly mirroring what reduce.cpp
// materializes (property-tested in tests/wordrec/).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "wordrec/assignment.h"
#include "wordrec/options.h"

namespace netrev::wordrec {

using HashKey = std::string;

// One second-level subtree of a bit: its canonical key plus the net at its
// root (the handle §2.3 stores for dissimilar subtrees).
struct SubtreeKey {
  HashKey key;
  netlist::NetId root;

  friend bool operator==(const SubtreeKey&, const SubtreeKey&) = default;
};

// The matching-relevant summary of one bit's fanin cone: the root gate type
// (level 1) and the keys of its second-level subtrees, sorted by key.
struct BitSignature {
  // Root gate type; nullopt when the bit is undriven or flop-driven (such
  // bits never match anything structurally).
  std::optional<netlist::GateType> root_type;
  std::vector<SubtreeKey> subtrees;  // sorted by key

  bool structurally_equal(const BitSignature& other) const;
};

class ConeHasher {
 public:
  ConeHasher(const netlist::Netlist& nl, const Options& options);

  const netlist::Netlist& design() const { return *nl_; }
  const Options& options() const { return options_; }

  // Key of the subtree rooted at `net`, exploring `depth` levels of gates.
  // With a non-null assignment, computes the reduced-cone key; a net that is
  // itself assigned yields the constant leaf of its value.
  HashKey subtree_key(netlist::NetId net, std::size_t depth,
                      const AssignmentMap* assignment = nullptr) const;

  // Signature of a candidate bit under cone depth options().cone_depth.
  // With an assignment under which the bit itself becomes constant, the
  // signature has root_type == nullopt.
  BitSignature signature(netlist::NetId bit,
                         const AssignmentMap* assignment = nullptr) const;

 private:
  const netlist::Netlist* nl_;
  Options options_;
};

}  // namespace netrev::wordrec
