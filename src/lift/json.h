// Serialization of a lifted word-level model to the versioned JSON
// interchange schema (schema_version 1; field-by-field reference in
// docs/FORMATS.md).  Deterministic: fixed key order, signals and operators
// in model order, net names resolved against the source netlist.
#pragma once

#include <string>

#include "lift/model.h"
#include "netlist/netlist.h"

namespace netrev::lift {

std::string lift_result_to_json(const netlist::Netlist& nl,
                                const LiftResult& model);

}  // namespace netrev::lift
