// Word-level lifting: turn an identified WordSet into a word-level model.
//
// For every lifted word the engine classifies the shared per-bit driver
// structure into a typed operator — constant, plain register, load-enable
// register (recirculating 2:1 mux, recognized through the same DeMorgan
// normalization the control-domain analysis uses), word mux, or a per-bit
// bitwise gate — and falls back to an opaque operator carrying the verbatim
// fanin cone when no pattern matches.  Operand bit-vectors that coincide
// with another identified word reference that word's signal, so lifted
// operators link up into a dataflow graph over named words.
//
// With Options::verify (the default) every operator is then bit-blasted
// back to gates with rtl/lower_ops and checked for simulation equivalence
// against the original netlist (packed sampling of the source, scalar
// simulation of each blasted operator); the verdict is recorded per operator
// and summarized on the document.
//
// Everything is deterministic: words in WordSet order, bits in word order,
// cones in file order, fixed-seed block-structured sampling.  Charges the
// profiler counter "stage.lift_ns".
#pragma once

#include "exec/cancel.h"
#include "lift/model.h"
#include "lift/options.h"
#include "netlist/netlist.h"
#include "wordrec/word.h"

namespace netrev::lift {

// Requires a validated netlist when options.verify is set (the simulators
// reject combinational cycles and dangling nets).
LiftResult lift_words(const netlist::Netlist& nl,
                      const wordrec::WordSet& words,
                      const Options& options = {},
                      const exec::Checkpoint& checkpoint = {});

}  // namespace netrev::lift
