// Options for the word-level lifting subsystem.
#pragma once

#include <cstddef>
#include <cstdint>

namespace netrev::lift {

struct Options {
  // Verify every lifted operator by bit-blasting it back to gates and
  // checking simulation equivalence against the original cone; the verdict
  // is recorded in the emitted model.  Disabling skips the check and marks
  // the document "unchecked".
  bool verify = true;

  // Random (input, state) vectors sampled per operator check.
  std::size_t verify_vectors = 64;

  // Seed for the deterministic vector stream (block-structured, so samples
  // are byte-identical at any --jobs value).
  std::uint64_t verify_seed = 0xB17B1A57;

  // Fanin-cone depth captured for opaque fallback operators; frontier nets
  // beyond the bound become operator inputs.
  std::size_t opaque_depth = 4;

  // Lift width-1 words too (default: only multi-bit words carry structure
  // worth naming).
  bool include_singletons = false;
};

}  // namespace netrev::lift
