#include "lift/lift.h"

#include <algorithm>
#include <map>
#include <optional>
#include <unordered_set>

#include "analysis/domains.h"
#include "exec/chaos.h"
#include "lift/verify.h"
#include "netlist/gate_type.h"
#include "perf/profile.h"

namespace netrev::lift {

namespace {

using netlist::Gate;
using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;
using netlist::NetId;

// Builds signals on demand and deduplicates them by exact bit vector, so an
// operand that coincides with an identified word references that word.
class SignalTable {
 public:
  explicit SignalTable(LiftResult& model) : model_(&model) {}

  std::size_t add_word(std::vector<NetId> bits, std::string name) {
    return intern(std::move(bits), std::move(name), SignalKind::kWord);
  }

  std::size_t add_operand(std::vector<NetId> bits, std::string name) {
    return intern(std::move(bits), std::move(name), SignalKind::kOperand);
  }

 private:
  std::size_t intern(std::vector<NetId> bits, std::string name,
                     SignalKind kind) {
    const auto it = by_bits_.find(bits);
    if (it != by_bits_.end()) return it->second;
    const std::size_t index = model_->signals.size();
    model_->signals.push_back(Signal{std::move(name), kind, bits});
    by_bits_.emplace(std::move(bits), index);
    return index;
  }

  LiftResult* model_;
  std::map<std::vector<NetId>, std::size_t> by_bits_;
};

// Lowercase operator name for a per-bit gate type.
const char* bitwise_name(GateType type) {
  switch (type) {
    case GateType::kBuf: return "buf";
    case GateType::kNot: return "not";
    case GateType::kAnd: return "and";
    case GateType::kNand: return "nand";
    case GateType::kOr: return "or";
    case GateType::kNor: return "nor";
    case GateType::kXor: return "xor";
    case GateType::kXnor: return "xnor";
    default: return "?";
  }
}

// The driver gate of every bit, or nullopt when any bit is undriven (a
// primary input / dangling net cannot anchor a typed operator).
std::optional<std::vector<GateId>> bit_drivers(const Netlist& nl,
                                               const Signal& word) {
  std::vector<GateId> drivers;
  drivers.reserve(word.width());
  for (NetId bit : word.bits) {
    const auto driver = nl.driver_of(bit);
    if (!driver) return std::nullopt;
    drivers.push_back(*driver);
  }
  return drivers;
}

// --- typed classification attempts ----------------------------------------

bool classify_const(const Netlist& nl, std::span<const GateId> drivers,
                    WordOp& op) {
  const GateType type = nl.gate(drivers.front()).type;
  if (type != GateType::kConst0 && type != GateType::kConst1) return false;
  for (GateId g : drivers)
    if (nl.gate(g).type != type) return false;
  op.kind = OpKind::kConst;
  op.name = "const";
  op.const_value = type == GateType::kConst1;
  op.gates_absorbed = drivers.size();
  return true;
}

// Register family: every bit a flop.  Recognizes the load-enable shape (a
// recirculating 2:1 mux with one shared select root across all bits) and
// falls back to a plain register whose data operand is the D-net vector.
bool classify_register(const Netlist& nl, const Signal& word,
                       std::span<const GateId> drivers,
                       const std::string& base, SignalTable& signals,
                       WordOp& op) {
  for (GateId g : drivers)
    if (nl.gate(g).type != GateType::kDff) return false;

  std::vector<NetId> d_nets;
  d_nets.reserve(drivers.size());
  for (GateId g : drivers) d_nets.push_back(nl.gate(g).inputs[0]);

  // Load-enable attempt: each D (wire-stripped, non-inverted) decomposes as
  // a 2:1 mux recirculating the bit's own Q, all bits agreeing on the
  // select root and the recirculating branch.
  struct BitMux {
    Control enable;
    NetId data;
  };
  std::vector<BitMux> muxes;
  bool enable_ok = true;
  for (std::size_t i = 0; i < drivers.size() && enable_ok; ++i) {
    const analysis::ControlRoot root =
        analysis::trace_control_root(nl, d_nets[i]);
    const auto mux_driver = nl.driver_of(root.net);
    if (!root.active_high || !mux_driver) {
      enable_ok = false;
      break;
    }
    const auto mux = analysis::decompose_mux2(nl, *mux_driver);
    if (!mux) {
      enable_ok = false;
      break;
    }
    const NetId q = word.bits[i];
    if (mux->when_true == q && mux->when_false != q) {
      // Holds when select is 1: enable is the select seen active-low.
      muxes.push_back(BitMux{Control{mux->select, false}, mux->when_false});
    } else if (mux->when_false == q && mux->when_true != q) {
      muxes.push_back(BitMux{Control{mux->select, true}, mux->when_true});
    } else {
      enable_ok = false;
    }
  }
  if (enable_ok && !muxes.empty()) {
    const Control enable = muxes.front().enable;
    for (const BitMux& m : muxes)
      if (m.enable.net != enable.net ||
          m.enable.active_high != enable.active_high)
        enable_ok = false;
    if (enable_ok) {
      std::vector<NetId> data;
      data.reserve(muxes.size());
      for (const BitMux& m : muxes) data.push_back(m.data);
      op.kind = OpKind::kLoadRegister;
      op.name = "load_register";
      op.control = enable;
      op.operands = {signals.add_operand(std::move(data), base + "_d")};
      op.d_nets = std::move(d_nets);
      // DFF + mux root + two product gates per bit (shared inverters and
      // buffer chains are not charged).
      op.gates_absorbed = word.width() * 4;
      return true;
    }
  }

  op.kind = OpKind::kRegister;
  op.name = "register";
  op.operands = {
      signals.add_operand(std::vector<NetId>(d_nets), base + "_d")};
  op.d_nets = std::move(d_nets);
  op.gates_absorbed = word.width();
  return true;
}

bool classify_mux2(const Netlist& nl, std::span<const GateId> drivers,
                   const std::string& base, SignalTable& signals,
                   WordOp& op) {
  std::vector<NetId> when_true;
  std::vector<NetId> when_false;
  NetId select = NetId::invalid();
  for (GateId g : drivers) {
    const auto mux = analysis::decompose_mux2(nl, g);
    if (!mux) return false;
    if (!select.is_valid()) select = mux->select;
    if (mux->select != select) return false;
    when_true.push_back(mux->when_true);
    when_false.push_back(mux->when_false);
  }
  op.kind = OpKind::kMux2;
  op.name = "mux2";
  op.control = Control{select, true};
  const std::size_t t =
      signals.add_operand(std::move(when_true), base + "_t");
  const std::size_t f =
      signals.add_operand(std::move(when_false), base + "_f");
  op.operands = {t, f};
  // Mux root + two product gates per bit.
  op.gates_absorbed = drivers.size() * 3;
  return true;
}

bool classify_bitwise(const Netlist& nl, std::span<const GateId> drivers,
                      const std::string& base, SignalTable& signals,
                      WordOp& op) {
  const GateType type = nl.gate(drivers.front()).type;
  const std::size_t arity = nl.gate(drivers.front()).inputs.size();
  if (type == GateType::kDff || type == GateType::kConst0 ||
      type == GateType::kConst1)
    return false;
  for (GateId g : drivers)
    if (nl.gate(g).type != type || nl.gate(g).inputs.size() != arity)
      return false;

  for (std::size_t j = 0; j < arity; ++j) {
    std::vector<NetId> column;
    column.reserve(drivers.size());
    for (GateId g : drivers) column.push_back(nl.gate(g).inputs[j]);
    op.operands.push_back(signals.add_operand(
        std::move(column), base + "_in" + std::to_string(j)));
  }
  op.kind = OpKind::kBitwise;
  op.name = bitwise_name(type);
  op.bitwise_type = type;
  op.gates_absorbed = drivers.size();
  return true;
}

// Opaque fallback: capture each bit's fanin cone verbatim, bounded at flop
// outputs, primary inputs, and `depth` gate levels; frontier nets become the
// operator's inputs.
void classify_opaque(const Netlist& nl, const Signal& word, std::size_t depth,
                     WordOp& op) {
  std::unordered_set<std::uint32_t> in_cone;
  std::vector<GateId> gates;
  std::vector<GateId> frontier;
  for (NetId bit : word.bits) {
    const auto driver = nl.driver_of(bit);
    if (!driver) continue;  // undriven bit: stays a leaf of the operator
    if (in_cone.insert(driver->value()).second) {
      gates.push_back(*driver);
      frontier.push_back(*driver);
    }
  }
  for (std::size_t level = 1; level < depth && !frontier.empty(); ++level) {
    std::vector<GateId> next;
    for (GateId g : frontier) {
      for (NetId in : nl.gate(g).inputs) {
        const auto driver = nl.driver_of(in);
        if (!driver) continue;
        if (nl.gate(*driver).type == GateType::kDff) continue;  // state leaf
        if (in_cone.insert(driver->value()).second) {
          gates.push_back(*driver);
          next.push_back(*driver);
        }
      }
    }
    frontier = std::move(next);
  }
  std::sort(gates.begin(), gates.end());  // ascending id == file order

  std::unordered_set<std::uint32_t> driven;
  for (GateId g : gates) driven.insert(nl.gate(g).output.value());
  std::unordered_set<std::uint32_t> seen_leaves;
  for (GateId g : gates) {
    OpaqueGate copy;
    copy.type = nl.gate(g).type;
    copy.output = nl.gate(g).output;
    copy.inputs = nl.gate(g).inputs;
    for (NetId in : copy.inputs)
      if (driven.count(in.value()) == 0 && seen_leaves.insert(in.value()).second)
        op.leaves.push_back(in);
    op.gates.push_back(std::move(copy));
  }
  for (NetId bit : word.bits)
    if (!nl.driver_of(bit) && seen_leaves.insert(bit.value()).second)
      op.leaves.push_back(bit);  // undriven bit is its own input
  op.kind = OpKind::kOpaque;
  op.name = "opaque";
  op.gates_absorbed = op.gates.size();
}

}  // namespace

LiftResult lift_words(const Netlist& nl, const wordrec::WordSet& words,
                      const Options& options,
                      const exec::Checkpoint& checkpoint) {
  perf::ScopedWork work("stage.lift_ns");
  exec::chaos_point("lift");
  LiftResult model;
  model.coverage.total_gates = nl.gate_count();
  SignalTable signals(model);

  // Register every lifted word's signal first so operand vectors that equal
  // another word resolve to that word's signal, whatever the word order.
  const std::size_t min_width = options.include_singletons ? 1 : 2;
  std::vector<std::size_t> word_signals;
  for (const wordrec::Word& word : words.words) {
    if (word.width() < min_width) continue;
    word_signals.push_back(signals.add_word(
        word.bits, "w" + std::to_string(word_signals.size())));
  }
  model.coverage.words = word_signals.size();

  for (std::size_t sig : word_signals) {
    checkpoint.poll();
    // The signal table never mutates existing entries, so this reference is
    // only used before any operand interning for the same op.
    const Signal word = model.signals[sig];
    const auto drivers = bit_drivers(nl, word);
    WordOp op;
    op.output = sig;
    bool typed = false;
    if (drivers) {
      typed = classify_const(nl, *drivers, op) ||
              classify_register(nl, word, *drivers, word.name, signals, op) ||
              classify_mux2(nl, *drivers, word.name, signals, op) ||
              classify_bitwise(nl, *drivers, word.name, signals, op);
    }
    if (!typed) classify_opaque(nl, word, options.opaque_depth, op);
    if (typed)
      ++model.coverage.typed_ops;
    else
      ++model.coverage.opaque_ops;
    model.coverage.gates_absorbed += op.gates_absorbed;
    model.ops.push_back(std::move(op));
  }

  if (options.verify)
    verify_model(nl, model, options, checkpoint);
  return model;
}

}  // namespace netrev::lift
