// Self-verification of a lifted model: bit-blast each operator back to
// gates and prove simulation equivalence against the original cones.
#pragma once

#include "exec/cancel.h"
#include "lift/model.h"
#include "lift/options.h"
#include "netlist/netlist.h"

namespace netrev::lift {

// One operator lowered to a standalone gate-level netlist, with explicit
// boundary correspondences back into the source design.  Net names inside
// the blasted netlist are synthetic; equivalence checking goes through the
// mappings, never through name matching.
struct BlastedOp {
  netlist::Netlist nl;
  // (net in blasted netlist, net in original): primary inputs to drive.
  std::vector<std::pair<netlist::NetId, netlist::NetId>> inputs;
  // (net in blasted netlist, net in original): outputs to compare.  For
  // register-family operators the original side is the flop's D net — the
  // next-state function is checked combinationally.
  std::vector<std::pair<netlist::NetId, netlist::NetId>> outputs;
};

// Lowers one operator of `model` through rtl/lower_ops.
BlastedOp bit_blast(const netlist::Netlist& nl, const LiftResult& model,
                    const WordOp& op);

// Checks every operator of `model` in place (fills checked / equivalent /
// mismatches) and sets the document verdict.  Samples the original design
// once with the packed engine (options.verify_vectors vectors, fixed seed),
// then scalar-simulates each blasted operator against the samples.
void verify_model(const netlist::Netlist& nl, LiftResult& model,
                  const Options& options, const exec::Checkpoint& checkpoint);

}  // namespace netrev::lift
