#include "lift/verify.h"

#include <optional>
#include <string>
#include <unordered_map>

#include "rtl/lower_ops.h"
#include "rtl/netnamer.h"
#include "sim/simulator.h"

namespace netrev::lift {

namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NetId;

// Builds the blasted netlist's boundary: original nets become synthetic
// "n<id>" primary inputs, created once however many operands share them.
class Boundary {
 public:
  explicit Boundary(BlastedOp& blast) : blast_(&blast) {}

  NetId pin(NetId original) {
    const auto it = pins_.find(original.value());
    if (it != pins_.end()) return it->second;
    const NetId created =
        blast_->nl.add_net("n" + std::to_string(original.value()));
    blast_->nl.mark_primary_input(created);
    blast_->inputs.push_back({created, original});
    pins_.emplace(original.value(), created);
    return created;
  }

  // True when `original` already has a blasted counterpart (pin or gate
  // output registered through alias()).
  std::optional<NetId> lookup(NetId original) const {
    const auto it = pins_.find(original.value());
    if (it == pins_.end()) return std::nullopt;
    return it->second;
  }

  // Registers a non-input correspondence (opaque cone gate outputs).
  void alias(NetId original, NetId blasted) {
    pins_.emplace(original.value(), blasted);
  }

 private:
  BlastedOp* blast_;
  std::unordered_map<std::uint32_t, NetId> pins_;
};

// A fresh output net "o<k>", mapped back to `original` for comparison.
NetId out_net(BlastedOp& blast, std::size_t k, NetId original) {
  const NetId created = blast.nl.add_net("o" + std::to_string(k));
  blast.outputs.push_back({created, original});
  return created;
}

}  // namespace

BlastedOp bit_blast(const Netlist& nl, const LiftResult& model,
                    const WordOp& op) {
  BlastedOp blast;
  blast.nl.set_name("lifted_op");
  Boundary boundary(blast);
  rtl::NetNamer namer(blast.nl);
  const Signal& word = model.signals[op.output];

  switch (op.kind) {
    case OpKind::kConst: {
      for (std::size_t i = 0; i < word.width(); ++i) {
        const NetId out = out_net(blast, i, word.bits[i]);
        blast.nl.add_gate(
            op.const_value ? GateType::kConst1 : GateType::kConst0, out, {});
      }
      break;
    }
    case OpKind::kBitwise: {
      for (std::size_t i = 0; i < word.width(); ++i) {
        rtl::GateSpec spec;
        spec.type = op.bitwise_type;
        for (std::size_t operand : op.operands)
          spec.inputs.push_back(boundary.pin(model.signals[operand].bits[i]));
        const NetId out = out_net(blast, i, word.bits[i]);
        blast.nl.add_gate(spec.type, out, spec.inputs);
      }
      break;
    }
    case OpKind::kMux2: {
      const Signal& when_true = model.signals[op.operands[0]];
      const Signal& when_false = model.signals[op.operands[1]];
      const NetId sel = boundary.pin(op.control.net);
      const NetId not_sel = rtl::make_not(namer, sel);
      for (std::size_t i = 0; i < word.width(); ++i) {
        // mux2_spec(sel, a, b): sel ? b : a.
        const rtl::GateSpec root = rtl::mux2_spec(
            namer, sel, boundary.pin(when_false.bits[i]),
            boundary.pin(when_true.bits[i]), not_sel);
        rtl::emit_onto(namer, out_net(blast, i, word.bits[i]), root);
      }
      break;
    }
    case OpKind::kRegister: {
      const Signal& data = model.signals[op.operands[0]];
      for (std::size_t i = 0; i < word.width(); ++i) {
        const NetId in = boundary.pin(data.bits[i]);
        const NetId out = out_net(blast, i, op.d_nets[i]);
        blast.nl.add_gate(GateType::kBuf, out, {in});
      }
      break;
    }
    case OpKind::kLoadRegister: {
      const Signal& data = model.signals[op.operands[0]];
      const NetId sel = boundary.pin(op.control.net);
      const NetId not_sel = rtl::make_not(namer, sel);
      for (std::size_t i = 0; i < word.width(); ++i) {
        const NetId d = boundary.pin(data.bits[i]);
        const NetId q = boundary.pin(word.bits[i]);
        // Next state: enable asserted loads data, otherwise holds Q.  With
        // an active-high enable the select-net-1 branch is data.
        const rtl::GateSpec root =
            op.control.active_high
                ? rtl::mux2_spec(namer, sel, q, d, not_sel)
                : rtl::mux2_spec(namer, sel, d, q, not_sel);
        rtl::emit_onto(namer, out_net(blast, i, op.d_nets[i]), root);
      }
      break;
    }
    case OpKind::kOpaque: {
      for (NetId leaf : op.leaves) boundary.pin(leaf);
      // Create every cone output first — the cone is in file order, which
      // need not be topological.
      for (std::size_t g = 0; g < op.gates.size(); ++g)
        boundary.alias(op.gates[g].output,
                       blast.nl.add_net("g" + std::to_string(g)));
      for (const OpaqueGate& gate : op.gates) {
        std::vector<NetId> inputs;
        inputs.reserve(gate.inputs.size());
        for (NetId in : gate.inputs) inputs.push_back(*boundary.lookup(in));
        blast.nl.add_gate(gate.type, *boundary.lookup(gate.output), inputs);
      }
      for (NetId bit : word.bits)
        if (const auto mapped = boundary.lookup(bit))
          blast.outputs.push_back({*mapped, bit});
      break;
    }
  }
  return blast;
}

void verify_model(const Netlist& nl, LiftResult& model, const Options& options,
                  const exec::Checkpoint& checkpoint) {
  model.vectors_per_op = options.verify_vectors;

  std::vector<BlastedOp> blasted;
  blasted.reserve(model.ops.size());
  for (const WordOp& op : model.ops) {
    checkpoint.poll();
    blasted.push_back(bit_blast(nl, model, op));
  }

  // One packed sampling pass over the source design covers every operator's
  // boundary and outputs.
  std::vector<NetId> probes;
  std::unordered_map<std::uint32_t, std::size_t> probe_index;
  const auto probe = [&](NetId net) {
    if (probe_index.emplace(net.value(), probes.size()).second)
      probes.push_back(net);
  };
  for (const BlastedOp& blast : blasted) {
    for (const auto& [blasted_net, original] : blast.inputs) probe(original);
    for (const auto& [blasted_net, original] : blast.outputs) probe(original);
  }
  std::vector<std::uint8_t> samples;
  if (!probes.empty())
    samples = sim::sample_random_vectors(nl, probes, options.verify_vectors,
                                         options.verify_seed);

  for (std::size_t i = 0; i < model.ops.size(); ++i) {
    checkpoint.poll();
    WordOp& op = model.ops[i];
    const BlastedOp& blast = blasted[i];
    sim::Simulator sim(blast.nl);
    std::size_t mismatches = 0;
    for (std::size_t v = 0; v < options.verify_vectors; ++v) {
      const auto sample = [&](NetId original) {
        return samples[v * probes.size() + probe_index.at(original.value())] !=
               0;
      };
      for (const auto& [blasted_net, original] : blast.inputs)
        sim.set_input(blasted_net, sample(original));
      sim.eval();
      for (const auto& [blasted_net, original] : blast.outputs)
        if (sim.value(blasted_net) != sample(original)) ++mismatches;
    }
    op.checked = true;
    op.mismatches = mismatches;
    op.equivalent = mismatches == 0;
    ++model.ops_checked;
    if (op.equivalent) ++model.ops_equivalent;
  }
  model.verdict =
      model.ops_checked == model.ops_equivalent ? "equivalent" : "not_equivalent";
}

}  // namespace netrev::lift
