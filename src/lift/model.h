// The word-level model produced by lifting: multi-bit signals plus typed
// word-level operators over them, with a per-operator equivalence verdict.
//
// The model is a *view* over one netlist — signals and operator boundaries
// reference original NetIds — and is serialized to the versioned JSON
// interchange schema by lift/json.h (documented in docs/FORMATS.md).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace netrev::lift {

enum class SignalKind {
  kWord,     // an identified word (output of some operator)
  kOperand,  // a bit-vector discovered as an operator input
};

// A multi-bit signal: an ordered vector of original nets.  Bit order follows
// the word's netlist file order (the §2.2 adjacency that defined it).
struct Signal {
  std::string name;  // "w3" for words, "w3_d" / "w3_t" / ... for operands
  SignalKind kind = SignalKind::kWord;
  std::vector<netlist::NetId> bits;

  std::size_t width() const { return bits.size(); }
};

enum class OpKind {
  kConst,         // every bit tied to the same constant
  kRegister,      // plain D flip-flop word: q' = d
  kLoadRegister,  // enable-gated register: q' = enable ? d : q
  kMux2,          // out = select ? when_true : when_false
  kBitwise,       // per-bit gate of one type/arity: out_i = op(a_i, b_i, ...)
  kOpaque,        // per-bit fallback: the original cone, serialized verbatim
};

// A polarity-normalized single-bit control wire (mux select, load enable):
// asserted when the net carries `active_high`.
struct Control {
  netlist::NetId net = netlist::NetId::invalid();
  bool active_high = true;

  bool valid() const { return net.is_valid(); }
};

// One original gate captured inside an opaque operator's cone.
struct OpaqueGate {
  netlist::GateType type = netlist::GateType::kBuf;
  netlist::NetId output = netlist::NetId::invalid();
  std::vector<netlist::NetId> inputs;
};

// A typed word-level operator.  `output` and `operands` index
// LiftResult::signals; operand ORDER is semantic (mux2: when_true then
// when_false; bitwise: gate input positions).
struct WordOp {
  OpKind kind = OpKind::kOpaque;
  std::string name;                   // "const","register","load_register",
                                      // "mux2","and","nand",...,"opaque"
  std::size_t output = 0;             // signal index
  std::vector<std::size_t> operands;  // signal indices
  Control control;                    // mux2 select / load_register enable
  bool const_value = false;           // kConst: the shared bit value
  netlist::GateType bitwise_type = netlist::GateType::kBuf;  // kBitwise

  // kRegister / kLoadRegister: the original D net of each bit's flop — the
  // next-state function verified by bit-blasting.
  std::vector<netlist::NetId> d_nets;

  // kOpaque: the captured cone (gates in file order) and its input frontier
  // (first-seen order).
  std::vector<OpaqueGate> gates;
  std::vector<netlist::NetId> leaves;

  // Equivalence verdict from bit-blast + simulation (lift/verify).
  bool checked = false;
  bool equivalent = false;
  std::size_t mismatches = 0;

  // Original gates this operator explains (root gates; buffer chains and
  // shared inverters are not charged).
  std::size_t gates_absorbed = 0;
};

struct Coverage {
  std::size_t words = 0;       // words lifted (multi-bit unless configured)
  std::size_t typed_ops = 0;   // non-opaque operators
  std::size_t opaque_ops = 0;
  std::size_t gates_absorbed = 0;
  std::size_t total_gates = 0;  // gate count of the source design
};

struct LiftResult {
  std::vector<Signal> signals;
  std::vector<WordOp> ops;  // one per lifted word, in word order
  Coverage coverage;

  // Document-level equivalence: "equivalent" when every checked operator
  // matched its cone, "not_equivalent" when any mismatched, "unchecked"
  // when verification was disabled.
  std::string verdict = "unchecked";
  std::size_t ops_checked = 0;
  std::size_t ops_equivalent = 0;
  std::size_t vectors_per_op = 0;
};

}  // namespace netrev::lift
