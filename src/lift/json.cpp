#include "lift/json.h"

#include "jsonout/jsonout.h"
#include "netlist/gate_type.h"

namespace netrev::lift {

namespace {

using netlist::Netlist;
using netlist::NetId;

std::string net_name(const Netlist& nl, NetId net) {
  return jsonout::quote(nl.net(net).name);
}

std::string names_array(const Netlist& nl, std::span<const NetId> nets) {
  std::string out = "[";
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (i > 0) out += ',';
    out += net_name(nl, nets[i]);
  }
  out += ']';
  return out;
}

std::string control_json(const Netlist& nl, const Control& control) {
  return "{\"net\":" + net_name(nl, control.net) +
         ",\"active_high\":" + (control.active_high ? "true" : "false") + "}";
}

std::string signal_json(const Netlist& nl, const Signal& signal,
                        std::size_t id) {
  std::string out = "{\"id\":" + std::to_string(id);
  out += ",\"name\":" + jsonout::quote(signal.name);
  out += ",\"kind\":";
  out += signal.kind == SignalKind::kWord ? "\"word\"" : "\"operand\"";
  out += ",\"width\":" + std::to_string(signal.width());
  out += ",\"bits\":" + names_array(nl, signal.bits);
  out += '}';
  return out;
}

std::string op_json(const Netlist& nl, const WordOp& op) {
  std::string out = "{\"op\":" + jsonout::quote(op.name);
  out += ",\"output\":" + std::to_string(op.output);
  switch (op.kind) {
    case OpKind::kConst:
      out += ",\"value\":";
      out += op.const_value ? '1' : '0';
      break;
    case OpKind::kRegister:
      out += ",\"data\":" + std::to_string(op.operands[0]);
      break;
    case OpKind::kLoadRegister:
      out += ",\"data\":" + std::to_string(op.operands[0]);
      out += ",\"enable\":" + control_json(nl, op.control);
      break;
    case OpKind::kMux2:
      out += ",\"select\":" + control_json(nl, op.control);
      out += ",\"when_true\":" + std::to_string(op.operands[0]);
      out += ",\"when_false\":" + std::to_string(op.operands[1]);
      break;
    case OpKind::kBitwise: {
      out += ",\"operands\":[";
      for (std::size_t i = 0; i < op.operands.size(); ++i) {
        if (i > 0) out += ',';
        out += std::to_string(op.operands[i]);
      }
      out += ']';
      break;
    }
    case OpKind::kOpaque: {
      out += ",\"inputs\":" + names_array(nl, op.leaves);
      out += ",\"gates\":[";
      for (std::size_t i = 0; i < op.gates.size(); ++i) {
        const OpaqueGate& gate = op.gates[i];
        if (i > 0) out += ',';
        out += "{\"type\":" +
               jsonout::quote(netlist::gate_type_name(gate.type));
        out += ",\"output\":" + net_name(nl, gate.output);
        out += ",\"inputs\":" + names_array(nl, gate.inputs);
        out += '}';
      }
      out += ']';
      break;
    }
  }
  out += ",\"gates_absorbed\":" + std::to_string(op.gates_absorbed);
  out += ",\"verified\":";
  if (!op.checked)
    out += "null";
  else
    out += op.equivalent ? "true" : "false";
  out += '}';
  return out;
}

}  // namespace

std::string lift_result_to_json(const Netlist& nl, const LiftResult& model) {
  std::string members = "\"design\":{\"name\":" + jsonout::quote(nl.name());
  members += ",\"nets\":" + std::to_string(nl.net_count());
  members += ",\"gates\":" + std::to_string(nl.gate_count());
  members += ",\"flops\":" + std::to_string(nl.flop_count());
  members += '}';

  members += ",\"signals\":[";
  for (std::size_t i = 0; i < model.signals.size(); ++i) {
    if (i > 0) members += ',';
    members += signal_json(nl, model.signals[i], i);
  }
  members += ']';

  members += ",\"ops\":[";
  for (std::size_t i = 0; i < model.ops.size(); ++i) {
    if (i > 0) members += ',';
    members += op_json(nl, model.ops[i]);
  }
  members += ']';

  members += ",\"coverage\":{\"words\":" + std::to_string(model.coverage.words);
  members += ",\"typed_ops\":" + std::to_string(model.coverage.typed_ops);
  members += ",\"opaque_ops\":" + std::to_string(model.coverage.opaque_ops);
  members +=
      ",\"gates_absorbed\":" + std::to_string(model.coverage.gates_absorbed);
  members += ",\"total_gates\":" + std::to_string(model.coverage.total_gates);
  members += '}';

  members += ",\"equivalence\":{\"verdict\":" + jsonout::quote(model.verdict);
  members += ",\"ops_checked\":" + std::to_string(model.ops_checked);
  members += ",\"ops_equivalent\":" + std::to_string(model.ops_equivalent);
  members += ",\"vectors\":" + std::to_string(model.vectors_per_op);
  members += '}';

  return jsonout::document(members);
}

}  // namespace netrev::lift
