// Internal-net naming in CAD-tool style: fresh nets get sequential "U<n>"
// names (the convention visible in the paper's Figure 1: U201, U215, ...).
#pragma once

#include <string>

#include "netlist/netlist.h"

namespace netrev::rtl {

class NetNamer {
 public:
  explicit NetNamer(netlist::Netlist& nl, std::size_t first_number = 100)
      : nl_(&nl), counter_(first_number) {}

  // A fresh internal net named U<n>.
  netlist::NetId fresh();

  // A net with an exact (register/port) name.
  netlist::NetId named(const std::string& name);

  std::size_t next_number() const { return counter_; }
  netlist::Netlist& netlist() { return *nl_; }

 private:
  netlist::Netlist* nl_;
  std::size_t counter_;
};

// Conventional bit-blasted names: "busname" for width-1 ports, otherwise
// "busname_<i>_" (flattened-bus style).
std::string bit_name(const std::string& base, std::size_t index,
                     std::size_t width);

// Flop output net name for one register bit: "<reg>_reg" or "<reg>_reg_<i>_".
std::string flop_output_name(const std::string& register_name,
                             std::size_t index, std::size_t width);

}  // namespace netrev::rtl
