#include "rtl/module.h"

#include <stdexcept>
#include <unordered_set>

namespace netrev::rtl {

ExprPtr Module::add_input(std::string name, std::size_t width) {
  for (const Port& port : inputs_)
    if (port.name == name)
      throw std::invalid_argument("duplicate input: " + name);
  inputs_.push_back(Port{name, width});
  return input(std::move(name), width);
}

ExprPtr Module::add_register(std::string name, std::size_t width) {
  for (const Register& reg : registers_)
    if (reg.name == name)
      throw std::invalid_argument("duplicate register: " + name);
  registers_.push_back(Register{name, width, nullptr});
  return reg_ref(std::move(name), width);
}

void Module::set_next(const std::string& register_name, ExprPtr next) {
  for (Register& reg : registers_) {
    if (reg.name != register_name) continue;
    if (next == nullptr || next->width() != reg.width)
      throw std::invalid_argument("next-state width mismatch for register " +
                                  register_name);
    reg.next = std::move(next);
    return;
  }
  throw std::invalid_argument("unknown register: " + register_name);
}

void Module::add_output(std::string name, ExprPtr value) {
  if (value == nullptr) throw std::invalid_argument("null output value");
  outputs_.push_back(Output{std::move(name), std::move(value)});
}

const Register* Module::find_register(const std::string& name) const {
  for (const Register& reg : registers_)
    if (reg.name == name) return &reg;
  return nullptr;
}

namespace {

void collect_references(const Expr& expr,
                        std::unordered_set<std::string>& input_refs,
                        std::unordered_set<std::string>& reg_refs) {
  if (expr.kind() == ExprKind::kInput) input_refs.insert(expr.name());
  if (expr.kind() == ExprKind::kRegRef) reg_refs.insert(expr.name());
  for (const ExprPtr& op : expr.operands())
    collect_references(*op, input_refs, reg_refs);
}

}  // namespace

void Module::check_complete() const {
  std::unordered_set<std::string> input_refs;
  std::unordered_set<std::string> reg_refs;
  for (const Register& reg : registers_) {
    if (reg.next == nullptr)
      throw std::invalid_argument("register without next-state: " + reg.name);
    collect_references(*reg.next, input_refs, reg_refs);
  }
  for (const Output& out : outputs_)
    collect_references(*out.value, input_refs, reg_refs);

  std::unordered_set<std::string> declared_inputs;
  for (const Port& port : inputs_) declared_inputs.insert(port.name);
  std::unordered_set<std::string> declared_regs;
  for (const Register& reg : registers_) declared_regs.insert(reg.name);

  for (const auto& name : input_refs)
    if (!declared_inputs.contains(name))
      throw std::invalid_argument("undeclared input referenced: " + name);
  for (const auto& name : reg_refs)
    if (!declared_regs.contains(name))
      throw std::invalid_argument("undeclared register referenced: " + name);
}

}  // namespace netrev::rtl
