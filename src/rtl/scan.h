// Scan-chain insertion.
//
// Models the paper's premise that "modern designs contain numerous control
// signals which are automatically inserted by CAD tools ... for example
// signals inserted to select scan mode".  Every flip-flop's D input is
// rewired through a NAND-based 2:1 mux selecting between the functional
// next-state (SCAN_EN = 0) and the previous flop's output (SCAN_EN = 1);
// the chain head reads a new SCAN_IN input and the tail drives SCAN_OUT.
//
// Used by tests and the ablation harness to study how DFT logic shifts the
// depth-4 matching horizon.
#pragma once

#include "netlist/netlist.h"

namespace netrev::rtl {

struct ScanInsertionResult {
  netlist::Netlist netlist;
  netlist::NetId scan_enable = netlist::NetId::invalid();
  netlist::NetId scan_in = netlist::NetId::invalid();
  netlist::NetId scan_out = netlist::NetId::invalid();
  std::size_t muxes_inserted = 0;
};

// Rebuilds `source` with a scan chain threaded through its flops in file
// order.  Net names are preserved; the scan mux cells get fresh U names.
// Throws std::invalid_argument if `source` has no flops or already declares
// SCAN_EN / SCAN_IN / SCAN_OUT nets.
ScanInsertionResult insert_scan_chain(const netlist::Netlist& source);

}  // namespace netrev::rtl
