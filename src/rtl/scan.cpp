#include "rtl/scan.h"

#include <stdexcept>
#include <unordered_map>

#include "common/contracts.h"
#include "rtl/lower_ops.h"
#include "rtl/netnamer.h"

namespace netrev::rtl {

using netlist::GateId;
using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

ScanInsertionResult insert_scan_chain(const Netlist& source) {
  if (source.flop_count() == 0)
    throw std::invalid_argument("insert_scan_chain: design has no flops");
  for (const char* reserved : {"SCAN_EN", "SCAN_IN", "SCAN_OUT"})
    if (source.find_net(reserved))
      throw std::invalid_argument(std::string("insert_scan_chain: net '") +
                                  reserved + "' already exists");

  ScanInsertionResult result;
  Netlist& nl = result.netlist;
  nl.set_name(source.name() + "_scan");

  // Copy every net, preserving names and port directions.
  std::vector<NetId> remap(source.net_count());
  for (std::size_t i = 0; i < source.net_count(); ++i) {
    const netlist::Net& net = source.net(source.net_id_at(i));
    remap[i] = nl.add_net(net.name);
    if (net.is_primary_input) nl.mark_primary_input(remap[i]);
    if (net.is_primary_output) nl.mark_primary_output(remap[i]);
  }
  result.scan_enable = nl.add_net("SCAN_EN");
  result.scan_in = nl.add_net("SCAN_IN");
  nl.mark_primary_input(result.scan_enable);
  nl.mark_primary_input(result.scan_in);

  // Combinational gates copy unchanged, in file order.
  std::vector<GateId> flops;
  for (GateId g : source.gates_in_file_order()) {
    const netlist::Gate& gate = source.gate(g);
    if (gate.type == GateType::kDff) {
      flops.push_back(g);
      continue;
    }
    std::vector<NetId> inputs;
    inputs.reserve(gate.inputs.size());
    for (NetId in : gate.inputs) inputs.push_back(remap[in.value()]);
    nl.add_gate(gate.type, remap[gate.output.value()], inputs);
  }

  // Scan muxes, then the flops (DFT tools append the test logic in a
  // batch): inner mux gates first, then every mux root on consecutive
  // lines — the new D nets form one root run exactly like a word's.
  NetNamer namer(nl, 800000);
  const NetId not_se = make_not(namer, result.scan_enable);
  NetId chain = result.scan_in;
  std::vector<GateSpec> roots(flops.size());
  for (std::size_t k = 0; k < flops.size(); ++k) {
    const netlist::Gate& flop = source.gate(flops[k]);
    const NetId functional_d = remap[flop.inputs[0].value()];
    roots[k] =
        mux2_spec(namer, result.scan_enable, functional_d, chain, not_se);
    chain = remap[flop.output.value()];
    ++result.muxes_inserted;
  }
  std::vector<NetId> new_d(flops.size());
  for (std::size_t k = 0; k < flops.size(); ++k)
    new_d[k] = emit(namer, roots[k]);
  for (std::size_t k = 0; k < flops.size(); ++k) {
    const netlist::Gate& flop = source.gate(flops[k]);
    nl.add_gate(GateType::kDff, remap[flop.output.value()], {new_d[k]});
  }

  result.scan_out = nl.add_net("SCAN_OUT");
  nl.add_gate(GateType::kBuf, result.scan_out, {chain});
  nl.mark_primary_output(result.scan_out);

  NETREV_ENSURE(nl.flop_count() == source.flop_count());
  return result;
}

}  // namespace netrev::rtl
