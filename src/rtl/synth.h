// RTL-to-gate synthesis.
//
// Lowers a word-level Module into a flattened gate-level Netlist the way a
// synthesis flow would leave it for the reverse engineer:
//   * buses are bit-blasted; internal nets get anonymous U<n> names;
//   * register names survive only on flip-flop output nets
//     ("<reg>_reg_<i>_"), the property the paper's golden reference relies on;
//   * shared subexpressions are emitted once (gate sharing);
//   * the per-bit root gates of each register's next-state logic land on
//     consecutive netlist lines (deeper logic is emitted first), matching the
//     adjacency assumption of the §2.2 grouping pass.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.h"
#include "rtl/module.h"

namespace netrev::rtl {

struct SynthesisResult {
  netlist::Netlist netlist;
  // D-input nets of each register, by register name (LSB first) — handy for
  // tests that want ground truth without re-parsing names.
  std::unordered_map<std::string, std::vector<netlist::NetId>> register_d_nets;
};

// Throws std::invalid_argument on incomplete or inconsistent modules.
SynthesisResult synthesize(const Module& module);

}  // namespace netrev::rtl
