#include "rtl/expr.h"

#include <stdexcept>

#include "common/contracts.h"

namespace netrev::rtl {

namespace {

void require_width(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(std::string("rtl: ") + what);
}

std::uint64_t mask(std::size_t width) {
  return width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}

}  // namespace

ExprPtr constant(std::uint64_t value, std::size_t width) {
  require_width(width >= 1 && width <= 64, "constant width must be 1..64");
  return std::make_shared<Expr>(ExprKind::kConst, width,
                                std::vector<ExprPtr>{}, value & mask(width));
}

ExprPtr input(std::string name, std::size_t width) {
  require_width(width >= 1 && width <= 64, "input width must be 1..64");
  require_width(!name.empty(), "input name must not be empty");
  return std::make_shared<Expr>(ExprKind::kInput, width,
                                std::vector<ExprPtr>{}, 0, std::move(name));
}

ExprPtr reg_ref(std::string name, std::size_t width) {
  require_width(width >= 1 && width <= 64, "register width must be 1..64");
  require_width(!name.empty(), "register name must not be empty");
  return std::make_shared<Expr>(ExprKind::kRegRef, width,
                                std::vector<ExprPtr>{}, 0, std::move(name));
}

ExprPtr bit_not(ExprPtr a) {
  require_width(a != nullptr, "null operand");
  const std::size_t width = a->width();
  return std::make_shared<Expr>(ExprKind::kNot, width,
                                std::vector<ExprPtr>{std::move(a)});
}

namespace {
ExprPtr binary(ExprKind kind, ExprPtr a, ExprPtr b, std::size_t width) {
  require_width(a != nullptr && b != nullptr, "null operand");
  require_width(a->width() == b->width(), "operand widths differ");
  return std::make_shared<Expr>(kind, width,
                                std::vector<ExprPtr>{std::move(a), std::move(b)});
}
}  // namespace

ExprPtr bit_and(ExprPtr a, ExprPtr b) {
  const std::size_t w = a ? a->width() : 0;
  return binary(ExprKind::kAnd, std::move(a), std::move(b), w);
}
ExprPtr bit_or(ExprPtr a, ExprPtr b) {
  const std::size_t w = a ? a->width() : 0;
  return binary(ExprKind::kOr, std::move(a), std::move(b), w);
}
ExprPtr bit_xor(ExprPtr a, ExprPtr b) {
  const std::size_t w = a ? a->width() : 0;
  return binary(ExprKind::kXor, std::move(a), std::move(b), w);
}
ExprPtr add(ExprPtr a, ExprPtr b) {
  const std::size_t w = a ? a->width() : 0;
  return binary(ExprKind::kAdd, std::move(a), std::move(b), w);
}
ExprPtr sub(ExprPtr a, ExprPtr b) {
  const std::size_t w = a ? a->width() : 0;
  return binary(ExprKind::kSub, std::move(a), std::move(b), w);
}
ExprPtr eq(ExprPtr a, ExprPtr b) {
  return binary(ExprKind::kEq, std::move(a), std::move(b), 1);
}
ExprPtr lt(ExprPtr a, ExprPtr b) {
  return binary(ExprKind::kLt, std::move(a), std::move(b), 1);
}

ExprPtr mux(ExprPtr sel, ExprPtr when0, ExprPtr when1) {
  require_width(sel != nullptr && when0 != nullptr && when1 != nullptr,
                "null operand");
  require_width(sel->width() == 1, "mux select must be 1 bit");
  require_width(when0->width() == when1->width(), "mux arm widths differ");
  const std::size_t width = when0->width();
  return std::make_shared<Expr>(
      ExprKind::kMux, width,
      std::vector<ExprPtr>{std::move(sel), std::move(when0), std::move(when1)});
}

ExprPtr slice(ExprPtr value, std::size_t lo, std::size_t width) {
  require_width(value != nullptr, "null operand");
  require_width(width >= 1 && lo + width <= value->width(),
                "slice out of range");
  return std::make_shared<Expr>(ExprKind::kSlice, width,
                                std::vector<ExprPtr>{std::move(value)}, 0,
                                std::string{}, lo);
}

ExprPtr concat(ExprPtr low, ExprPtr high) {
  require_width(low != nullptr && high != nullptr, "null operand");
  const std::size_t width = low->width() + high->width();
  require_width(width <= 64, "concat result too wide");
  return std::make_shared<Expr>(
      ExprKind::kConcat, width,
      std::vector<ExprPtr>{std::move(low), std::move(high)});
}

namespace {
ExprPtr shift(ExprKind kind, ExprPtr value, std::size_t amount) {
  require_width(value != nullptr, "null operand");
  require_width(amount < value->width(), "shift amount exceeds width");
  const std::size_t width = value->width();
  return std::make_shared<Expr>(kind, width,
                                std::vector<ExprPtr>{std::move(value)}, 0,
                                std::string{}, amount);
}
}  // namespace

ExprPtr shl(ExprPtr value, std::size_t amount) {
  return shift(ExprKind::kShl, std::move(value), amount);
}
ExprPtr shr(ExprPtr value, std::size_t amount) {
  return shift(ExprKind::kShr, std::move(value), amount);
}

std::uint64_t evaluate(const Expr& expr, const EvalEnv& env) {
  const auto value_of = [&](const ExprPtr& e) { return evaluate(*e, env); };
  const std::uint64_t m = mask(expr.width());
  switch (expr.kind()) {
    case ExprKind::kConst: return expr.const_value() & m;
    case ExprKind::kInput:
      NETREV_REQUIRE(env.lookup_input != nullptr);
      return env.lookup_input(expr.name(), env.context) & m;
    case ExprKind::kRegRef:
      NETREV_REQUIRE(env.lookup_reg != nullptr);
      return env.lookup_reg(expr.name(), env.context) & m;
    case ExprKind::kNot: return ~value_of(expr.operands()[0]) & m;
    case ExprKind::kAnd:
      return (value_of(expr.operands()[0]) & value_of(expr.operands()[1])) & m;
    case ExprKind::kOr:
      return (value_of(expr.operands()[0]) | value_of(expr.operands()[1])) & m;
    case ExprKind::kXor:
      return (value_of(expr.operands()[0]) ^ value_of(expr.operands()[1])) & m;
    case ExprKind::kAdd:
      return (value_of(expr.operands()[0]) + value_of(expr.operands()[1])) & m;
    case ExprKind::kSub:
      return (value_of(expr.operands()[0]) - value_of(expr.operands()[1])) & m;
    case ExprKind::kEq:
      return value_of(expr.operands()[0]) == value_of(expr.operands()[1]) ? 1
                                                                          : 0;
    case ExprKind::kLt:
      return value_of(expr.operands()[0]) < value_of(expr.operands()[1]) ? 1
                                                                         : 0;
    case ExprKind::kMux:
      return (value_of(expr.operands()[0]) != 0
                  ? value_of(expr.operands()[2])
                  : value_of(expr.operands()[1])) &
             m;
    case ExprKind::kSlice:
      return (value_of(expr.operands()[0]) >> expr.slice_lo()) & m;
    case ExprKind::kConcat: {
      const std::uint64_t low = value_of(expr.operands()[0]);
      const std::uint64_t high = value_of(expr.operands()[1]);
      return (low | (high << expr.operands()[0]->width())) & m;
    }
    case ExprKind::kShl:
      return (value_of(expr.operands()[0]) << expr.slice_lo()) & m;
    case ExprKind::kShr:
      return (value_of(expr.operands()[0]) >> expr.slice_lo()) & m;
  }
  NETREV_ASSERT(false && "unreachable expr kind");
  return 0;
}

}  // namespace netrev::rtl
