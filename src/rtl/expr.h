// Word-level RTL expression IR.
//
// A small immutable expression DAG over multi-bit values: enough vocabulary
// (registers, inputs, constants, bitwise logic, add/sub, compare, mux) to
// describe ITC99-style control/datapath circuits, which the synthesizer in
// synth.h lowers to a flattened gate-level netlist.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace netrev::rtl {

enum class ExprKind {
  kConst,   // literal value, `width` bits
  kInput,   // module input, by name
  kRegRef,  // current value of a register, by name
  kNot,     // bitwise
  kAnd,
  kOr,
  kXor,
  kAdd,     // modulo 2^width
  kSub,
  kEq,      // 1-bit result
  kLt,      // unsigned less-than, 1-bit result
  kMux,     // operands: sel (1 bit), a (sel=0), b (sel=1)
  kSlice,   // operands: value; [lo, lo+width)
  kConcat,  // low-order operand first
  kShl,     // shift left by a constant (slice_lo), zero fill
  kShr,     // logical shift right by a constant (slice_lo), zero fill
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  Expr(ExprKind kind, std::size_t width, std::vector<ExprPtr> operands,
       std::uint64_t const_value = 0, std::string name = {},
       std::size_t slice_lo = 0)
      : kind_(kind),
        width_(width),
        operands_(std::move(operands)),
        const_value_(const_value),
        name_(std::move(name)),
        slice_lo_(slice_lo) {}

  ExprKind kind() const { return kind_; }
  std::size_t width() const { return width_; }
  const std::vector<ExprPtr>& operands() const { return operands_; }
  std::uint64_t const_value() const { return const_value_; }
  const std::string& name() const { return name_; }
  std::size_t slice_lo() const { return slice_lo_; }

 private:
  ExprKind kind_;
  std::size_t width_;
  std::vector<ExprPtr> operands_;
  std::uint64_t const_value_;  // kConst
  std::string name_;           // kInput / kRegRef
  std::size_t slice_lo_;       // kSlice
};

// Factories.  All validate widths (throwing std::invalid_argument) so that
// malformed RTL is rejected at construction time.
ExprPtr constant(std::uint64_t value, std::size_t width);
ExprPtr input(std::string name, std::size_t width);
ExprPtr reg_ref(std::string name, std::size_t width);
ExprPtr bit_not(ExprPtr a);
ExprPtr bit_and(ExprPtr a, ExprPtr b);
ExprPtr bit_or(ExprPtr a, ExprPtr b);
ExprPtr bit_xor(ExprPtr a, ExprPtr b);
ExprPtr add(ExprPtr a, ExprPtr b);
ExprPtr sub(ExprPtr a, ExprPtr b);
ExprPtr eq(ExprPtr a, ExprPtr b);
ExprPtr lt(ExprPtr a, ExprPtr b);  // unsigned
ExprPtr mux(ExprPtr sel, ExprPtr when0, ExprPtr when1);
ExprPtr slice(ExprPtr value, std::size_t lo, std::size_t width);
ExprPtr concat(ExprPtr low, ExprPtr high);
ExprPtr shl(ExprPtr value, std::size_t amount);  // zero fill, same width
ExprPtr shr(ExprPtr value, std::size_t amount);  // logical, same width

// Reference interpreter used by tests: evaluates an expression given maps
// from input/register names to values (values are truncated to width).
struct EvalEnv {
  std::uint64_t (*lookup_input)(const std::string&, void*) = nullptr;
  std::uint64_t (*lookup_reg)(const std::string&, void*) = nullptr;
  void* context = nullptr;
};
std::uint64_t evaluate(const Expr& expr, const EvalEnv& env);

}  // namespace netrev::rtl
