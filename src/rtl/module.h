// RTL module: named inputs, registers with next-state expressions, outputs.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "rtl/expr.h"

namespace netrev::rtl {

struct Port {
  std::string name;
  std::size_t width = 1;
};

struct Register {
  std::string name;
  std::size_t width = 1;
  ExprPtr next;  // must be set before synthesis
};

struct Output {
  std::string name;
  ExprPtr value;
};

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Declares an input and returns an expression reading it.
  ExprPtr add_input(std::string name, std::size_t width);

  // Declares a register and returns an expression reading its current value.
  ExprPtr add_register(std::string name, std::size_t width);

  // Sets a register's next-state expression (width must match).
  void set_next(const std::string& register_name, ExprPtr next);

  void add_output(std::string name, ExprPtr value);

  const std::vector<Port>& inputs() const { return inputs_; }
  const std::vector<Register>& registers() const { return registers_; }
  const std::vector<Output>& outputs() const { return outputs_; }

  const Register* find_register(const std::string& name) const;

  // Throws std::invalid_argument when some register lacks a next-state
  // expression or references are unresolved.
  void check_complete() const;

 private:
  std::string name_;
  std::vector<Port> inputs_;
  std::vector<Register> registers_;
  std::vector<Output> outputs_;
};

}  // namespace netrev::rtl
