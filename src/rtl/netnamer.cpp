#include "rtl/netnamer.h"

namespace netrev::rtl {

netlist::NetId NetNamer::fresh() {
  // Skip numbers already taken (e.g. when extending a parsed netlist).
  while (true) {
    const std::string name = "U" + std::to_string(counter_++);
    if (!nl_->find_net(name)) return nl_->add_net(name);
  }
}

netlist::NetId NetNamer::named(const std::string& name) {
  return nl_->add_net(name);
}

std::string bit_name(const std::string& base, std::size_t index,
                     std::size_t width) {
  if (width == 1) return base;
  return base + "_" + std::to_string(index) + "_";
}

std::string flop_output_name(const std::string& register_name,
                             std::size_t index, std::size_t width) {
  if (width == 1) return register_name + "_reg";
  return register_name + "_reg_" + std::to_string(index) + "_";
}

}  // namespace netrev::rtl
