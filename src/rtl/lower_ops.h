// Gate-level construction helpers shared by the RTL synthesizer and the
// ITC99-style benchmark generator.
//
// A GateSpec is a gate that has not been emitted yet: the synthesizer lowers
// a word's operand logic eagerly but holds back the per-bit *root* gates so
// it can emit them on consecutive netlist lines — reproducing the layout
// synthesized netlists exhibit and that the §2.2 grouping pass keys on.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "rtl/netnamer.h"

namespace netrev::rtl {

struct GateSpec {
  netlist::GateType type = netlist::GateType::kBuf;
  std::vector<netlist::NetId> inputs;
};

// Emits the spec into a fresh U-named net; returns the output net.
netlist::NetId emit(NetNamer& namer, const GateSpec& spec);

// Emits the spec driving an existing (already created, undriven) net.
void emit_onto(NetNamer& namer, netlist::NetId output, const GateSpec& spec);

// Convenience immediate-emission builders.
netlist::NetId make_gate(NetNamer& namer, netlist::GateType type,
                         std::span<const netlist::NetId> inputs);
netlist::NetId make_not(NetNamer& namer, netlist::NetId a);
netlist::NetId make_buf(NetNamer& namer, netlist::NetId a);
netlist::NetId make_and(NetNamer& namer, netlist::NetId a, netlist::NetId b);
netlist::NetId make_nand(NetNamer& namer, netlist::NetId a, netlist::NetId b);
netlist::NetId make_or(NetNamer& namer, netlist::NetId a, netlist::NetId b);
netlist::NetId make_nor(NetNamer& namer, netlist::NetId a, netlist::NetId b);
netlist::NetId make_xor(NetNamer& namer, netlist::NetId a, netlist::NetId b);
netlist::NetId make_xnor(NetNamer& namer, netlist::NetId a, netlist::NetId b);

// NAND-based 2:1 mux (the structure Figure 1's similar subtrees exhibit):
// emits NOT(sel), NAND(a, !sel), NAND(b, sel) and returns the *pending* root
// NAND.  `not_sel` may be passed in to share the inverter across bits.
GateSpec mux2_spec(NetNamer& namer, netlist::NetId sel, netlist::NetId a,
                   netlist::NetId b, netlist::NetId not_sel);

// Balanced AND-tree over `nets`; emits all but the final gate and returns the
// pending root.  `nets` must not be empty; a single net yields a BUF spec.
GateSpec and_tree_spec(NetNamer& namer, std::span<const netlist::NetId> nets);

}  // namespace netrev::rtl
