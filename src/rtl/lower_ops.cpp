#include "rtl/lower_ops.h"

#include "common/contracts.h"

namespace netrev::rtl {

using netlist::GateType;
using netlist::NetId;

NetId emit(NetNamer& namer, const GateSpec& spec) {
  const NetId out = namer.fresh();
  namer.netlist().add_gate(spec.type, out, spec.inputs);
  return out;
}

void emit_onto(NetNamer& namer, NetId output, const GateSpec& spec) {
  namer.netlist().add_gate(spec.type, output, spec.inputs);
}

NetId make_gate(NetNamer& namer, GateType type,
                std::span<const NetId> inputs) {
  GateSpec spec;
  spec.type = type;
  spec.inputs.assign(inputs.begin(), inputs.end());
  return emit(namer, spec);
}

NetId make_not(NetNamer& namer, NetId a) {
  const NetId ins[] = {a};
  return make_gate(namer, GateType::kNot, ins);
}
NetId make_buf(NetNamer& namer, NetId a) {
  const NetId ins[] = {a};
  return make_gate(namer, GateType::kBuf, ins);
}
NetId make_and(NetNamer& namer, NetId a, NetId b) {
  const NetId ins[] = {a, b};
  return make_gate(namer, GateType::kAnd, ins);
}
NetId make_nand(NetNamer& namer, NetId a, NetId b) {
  const NetId ins[] = {a, b};
  return make_gate(namer, GateType::kNand, ins);
}
NetId make_or(NetNamer& namer, NetId a, NetId b) {
  const NetId ins[] = {a, b};
  return make_gate(namer, GateType::kOr, ins);
}
NetId make_nor(NetNamer& namer, NetId a, NetId b) {
  const NetId ins[] = {a, b};
  return make_gate(namer, GateType::kNor, ins);
}
NetId make_xor(NetNamer& namer, NetId a, NetId b) {
  const NetId ins[] = {a, b};
  return make_gate(namer, GateType::kXor, ins);
}
NetId make_xnor(NetNamer& namer, NetId a, NetId b) {
  const NetId ins[] = {a, b};
  return make_gate(namer, GateType::kXnor, ins);
}

GateSpec mux2_spec(NetNamer& namer, NetId sel, NetId a, NetId b,
                   NetId not_sel) {
  const NetId n0 = make_nand(namer, a, not_sel);
  const NetId n1 = make_nand(namer, b, sel);
  GateSpec root;
  root.type = GateType::kNand;
  root.inputs = {n0, n1};
  return root;
}

GateSpec and_tree_spec(NetNamer& namer, std::span<const NetId> nets) {
  NETREV_REQUIRE(!nets.empty());
  std::vector<NetId> level(nets.begin(), nets.end());
  while (level.size() > 2) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(make_and(namer, level[i], level[i + 1]));
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  GateSpec root;
  if (level.size() == 1) {
    root.type = GateType::kBuf;
    root.inputs = {level[0]};
  } else {
    root.type = GateType::kAnd;
    root.inputs = {level[0], level[1]};
  }
  return root;
}

}  // namespace netrev::rtl
