#include "rtl/synth.h"

#include <stdexcept>

#include "common/contracts.h"
#include "rtl/lower_ops.h"

namespace netrev::rtl {

using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

namespace {

class Lowerer {
 public:
  explicit Lowerer(NetNamer& namer) : namer_(&namer) {}

  void declare_input(const Port& port) {
    std::vector<NetId> bits;
    for (std::size_t i = 0; i < port.width; ++i) {
      const NetId net = namer_->named(bit_name(port.name, i, port.width));
      namer_->netlist().mark_primary_input(net);
      bits.push_back(net);
    }
    inputs_.emplace(port.name, std::move(bits));
  }

  void declare_register(const Register& reg) {
    std::vector<NetId> bits;
    for (std::size_t i = 0; i < reg.width; ++i)
      bits.push_back(namer_->named(flop_output_name(reg.name, i, reg.width)));
    registers_.emplace(reg.name, std::move(bits));
  }

  const std::vector<NetId>& register_q_nets(const std::string& name) const {
    return registers_.at(name);
  }

  // Full lowering: emits everything, returns per-bit nets (LSB first).
  // Pass-through kinds return their source nets directly (no buffer copies).
  std::vector<NetId> lower(const ExprPtr& expr) {
    NETREV_REQUIRE(expr != nullptr);
    const auto cached = cache_.find(expr.get());
    if (cached != cache_.end()) return cached->second;

    std::vector<NetId> bits;
    switch (expr->kind()) {
      case ExprKind::kConst:
        for (std::size_t i = 0; i < expr->width(); ++i)
          bits.push_back(const_net((expr->const_value() >> i) & 1));
        break;
      case ExprKind::kInput:
        bits = inputs_.at(expr->name());
        break;
      case ExprKind::kRegRef:
        bits = registers_.at(expr->name());
        break;
      case ExprKind::kSlice: {
        const auto value = lower(expr->operands()[0]);
        bits.assign(value.begin() + static_cast<std::ptrdiff_t>(expr->slice_lo()),
                    value.begin() + static_cast<std::ptrdiff_t>(expr->slice_lo() +
                                                                expr->width()));
        break;
      }
      case ExprKind::kConcat: {
        bits = lower(expr->operands()[0]);
        const auto high = lower(expr->operands()[1]);
        bits.insert(bits.end(), high.begin(), high.end());
        break;
      }
      case ExprKind::kShl:
      case ExprKind::kShr:
        bits = shifted_bits(expr);
        break;
      default:
        for (GateSpec& spec : lower_top(expr)) bits.push_back(materialize(spec));
        break;
    }
    cache_.emplace(expr.get(), bits);
    return bits;
  }

  // Lowers all operand logic but returns the per-bit root gates unemitted,
  // so the caller can place them on consecutive lines.  Results of this
  // entry point are NOT cached (the caller owns the roots).
  std::vector<GateSpec> lower_top(const ExprPtr& expr) {
    NETREV_REQUIRE(expr != nullptr);
    switch (expr->kind()) {
      case ExprKind::kConst: {
        std::vector<GateSpec> specs;
        for (std::size_t i = 0; i < expr->width(); ++i)
          specs.push_back(buf_spec(const_net((expr->const_value() >> i) & 1)));
        return specs;
      }
      case ExprKind::kInput: {
        const auto it = inputs_.find(expr->name());
        if (it == inputs_.end())
          throw std::invalid_argument("undeclared input: " + expr->name());
        return buf_specs(it->second, expr->width());
      }
      case ExprKind::kRegRef: {
        const auto it = registers_.find(expr->name());
        if (it == registers_.end())
          throw std::invalid_argument("undeclared register: " + expr->name());
        return buf_specs(it->second, expr->width());
      }
      case ExprKind::kNot: {
        const auto a = lower(expr->operands()[0]);
        std::vector<GateSpec> specs;
        for (NetId net : a)
          specs.push_back(GateSpec{GateType::kNot, {net}});
        return specs;
      }
      case ExprKind::kAnd:
      case ExprKind::kOr:
      case ExprKind::kXor: {
        const GateType type = expr->kind() == ExprKind::kAnd ? GateType::kAnd
                              : expr->kind() == ExprKind::kOr ? GateType::kOr
                                                              : GateType::kXor;
        const auto a = lower(expr->operands()[0]);
        const auto b = lower(expr->operands()[1]);
        std::vector<GateSpec> specs;
        for (std::size_t i = 0; i < expr->width(); ++i)
          specs.push_back(GateSpec{type, {a[i], b[i]}});
        return specs;
      }
      case ExprKind::kAdd: return lower_add(expr);
      case ExprKind::kSub: return lower_sub(expr);
      case ExprKind::kEq: return lower_eq(expr);
      case ExprKind::kLt: return lower_lt(expr);
      case ExprKind::kMux: return lower_mux(expr);
      case ExprKind::kSlice: {
        const auto value = lower(expr->operands()[0]);
        std::vector<NetId> bits(value.begin() + static_cast<std::ptrdiff_t>(expr->slice_lo()),
                                value.begin() + static_cast<std::ptrdiff_t>(expr->slice_lo() + expr->width()));
        return buf_specs(bits, expr->width());
      }
      case ExprKind::kConcat: {
        auto low = lower(expr->operands()[0]);
        const auto high = lower(expr->operands()[1]);
        low.insert(low.end(), high.begin(), high.end());
        return buf_specs(low, expr->width());
      }
      case ExprKind::kShl:
      case ExprKind::kShr:
        return buf_specs(shifted_bits(expr), expr->width());
    }
    NETREV_ASSERT(false && "unreachable expr kind");
    return {};
  }

  NetId materialize(const GateSpec& spec) { return emit(*namer_, spec); }

 private:
  GateSpec buf_spec(NetId net) { return GateSpec{GateType::kBuf, {net}}; }

  std::vector<GateSpec> buf_specs(const std::vector<NetId>& bits,
                                  std::size_t width) {
    NETREV_REQUIRE(bits.size() == width);
    std::vector<GateSpec> specs;
    specs.reserve(width);
    for (NetId net : bits) specs.push_back(buf_spec(net));
    return specs;
  }

  NetId const_net(bool value) {
    NetId& slot = value ? const1_ : const0_;
    if (!slot.is_valid()) {
      slot = namer_->fresh();
      namer_->netlist().add_gate(
          value ? GateType::kConst1 : GateType::kConst0, slot, {});
    }
    return slot;
  }

  std::vector<GateSpec> lower_add(const ExprPtr& expr) {
    const auto a = lower(expr->operands()[0]);
    const auto b = lower(expr->operands()[1]);
    const std::size_t w = expr->width();
    // Ripple-carry: p_i = a^b, g_i = a&b, c_{i+1} = g_i | (p_i & c_i).
    std::vector<NetId> p(w), c(w);
    for (std::size_t i = 0; i < w; ++i) {
      // p[0] is not needed (sum_0 gets its own root XOR; the first carry is
      // just g_0), but every later bit uses p both in its sum root and in
      // the carry chain.
      if (i >= 1) p[i] = make_xor(*namer_, a[i], b[i]);
      if (i == 0) continue;
      const NetId g_prev = make_and(*namer_, a[i - 1], b[i - 1]);
      if (i == 1) {
        c[1] = g_prev;
      } else {
        const NetId t = make_and(*namer_, p[i - 1], c[i - 1]);
        c[i] = make_or(*namer_, g_prev, t);
      }
    }
    std::vector<GateSpec> specs;
    specs.reserve(w);
    specs.push_back(GateSpec{GateType::kXor, {a[0], b[0]}});
    for (std::size_t i = 1; i < w; ++i)
      specs.push_back(GateSpec{GateType::kXor, {p[i], c[i]}});
    return specs;
  }

  std::vector<GateSpec> lower_sub(const ExprPtr& expr) {
    // a - b = a + ~b + 1 (carry-in fixed at 1, folded into the chain).
    const auto a = lower(expr->operands()[0]);
    const auto b = lower(expr->operands()[1]);
    const std::size_t w = expr->width();
    std::vector<NetId> nb(w), p(w), c(w);
    for (std::size_t i = 0; i < w; ++i) nb[i] = make_not(*namer_, b[i]);
    // p[0] feeds the first carry (carry-in is 1); later p's feed both the
    // carry chain and the sum roots.  A 1-bit subtract needs no p at all.
    for (std::size_t i = 0; w > 1 && i < w; ++i)
      p[i] = make_xor(*namer_, a[i], nb[i]);
    for (std::size_t i = 1; i < w; ++i) {
      const NetId g_prev = make_and(*namer_, a[i - 1], nb[i - 1]);
      if (i == 1) {
        // c_1 = g_0 | (p_0 & 1) = g_0 | p_0.
        c[1] = make_or(*namer_, g_prev, p[0]);
      } else {
        const NetId t = make_and(*namer_, p[i - 1], c[i - 1]);
        c[i] = make_or(*namer_, g_prev, t);
      }
    }
    std::vector<GateSpec> specs;
    specs.reserve(w);
    // sum_0 = a_0 ^ ~b_0 ^ 1 = XNOR(a_0, ~b_0).
    specs.push_back(GateSpec{GateType::kXnor, {a[0], nb[0]}});
    for (std::size_t i = 1; i < w; ++i)
      specs.push_back(GateSpec{GateType::kXor, {p[i], c[i]}});
    return specs;
  }

  // Constant shifts are pure wiring plus zero fill.
  std::vector<NetId> shifted_bits(const ExprPtr& expr) {
    const auto value = lower(expr->operands()[0]);
    const std::size_t w = expr->width();
    const std::size_t amount = expr->slice_lo();
    std::vector<NetId> bits(w);
    for (std::size_t i = 0; i < w; ++i) {
      if (expr->kind() == ExprKind::kShl)
        bits[i] = i < amount ? const_net(false) : value[i - amount];
      else
        bits[i] = i + amount < w ? value[i + amount] : const_net(false);
    }
    return bits;
  }

  std::vector<GateSpec> lower_lt(const ExprPtr& expr) {
    // Unsigned borrow chain: borrow_{i+1} = (~a_i & b_i) |
    // ((~a_i | b_i) & borrow_i); lt = borrow_w.
    const auto a = lower(expr->operands()[0]);
    const auto b = lower(expr->operands()[1]);
    const std::size_t w = a.size();
    NetId borrow = NetId::invalid();
    GateSpec root;
    for (std::size_t i = 0; i < w; ++i) {
      const NetId na = make_not(*namer_, a[i]);
      const NetId t1 = make_and(*namer_, na, b[i]);
      if (!borrow.is_valid()) {
        // borrow_1 = ~a_0 & b_0.
        if (w == 1) return {GateSpec{GateType::kAnd, {na, b[0]}}};
        borrow = t1;
        continue;
      }
      const NetId t2 = make_or(*namer_, na, b[i]);
      const NetId t3 = make_and(*namer_, t2, borrow);
      if (i + 1 == w) {
        root = GateSpec{GateType::kOr, {t1, t3}};
      } else {
        borrow = make_or(*namer_, t1, t3);
      }
    }
    return {root};
  }

  std::vector<GateSpec> lower_eq(const ExprPtr& expr) {
    const auto a = lower(expr->operands()[0]);
    const auto b = lower(expr->operands()[1]);
    std::vector<NetId> eq_bits;
    eq_bits.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
      eq_bits.push_back(make_xnor(*namer_, a[i], b[i]));
    return {and_tree_spec(*namer_, eq_bits)};
  }

  std::vector<GateSpec> lower_mux(const ExprPtr& expr) {
    const auto sel = lower(expr->operands()[0]);
    const auto a = lower(expr->operands()[1]);
    const auto b = lower(expr->operands()[2]);
    const NetId not_sel = make_not(*namer_, sel[0]);
    std::vector<GateSpec> specs;
    specs.reserve(expr->width());
    for (std::size_t i = 0; i < expr->width(); ++i)
      specs.push_back(mux2_spec(*namer_, sel[0], a[i], b[i], not_sel));
    return specs;
  }

  NetNamer* namer_;
  std::unordered_map<const Expr*, std::vector<NetId>> cache_;
  std::unordered_map<std::string, std::vector<NetId>> inputs_;
  std::unordered_map<std::string, std::vector<NetId>> registers_;
  NetId const0_ = NetId::invalid();
  NetId const1_ = NetId::invalid();
};

}  // namespace

SynthesisResult synthesize(const Module& module) {
  module.check_complete();

  SynthesisResult result;
  result.netlist.set_name(module.name());
  NetNamer namer(result.netlist, 100);
  Lowerer lowerer(namer);

  for (const Port& port : module.inputs()) lowerer.declare_input(port);
  for (const Register& reg : module.registers()) lowerer.declare_register(reg);

  // Next-state logic: operand cones first, then each word's root gates on
  // consecutive lines.
  for (const Register& reg : module.registers()) {
    std::vector<GateSpec> roots = lowerer.lower_top(reg.next);
    std::vector<NetId> d_nets;
    d_nets.reserve(roots.size());
    for (const GateSpec& root : roots) d_nets.push_back(lowerer.materialize(root));
    result.register_d_nets.emplace(reg.name, std::move(d_nets));
  }

  // Outputs: named nets buffered from their logic.
  for (const Output& out : module.outputs()) {
    const std::vector<NetId> bits = lowerer.lower(out.value);
    for (std::size_t i = 0; i < bits.size(); ++i) {
      const NetId net =
          result.netlist.add_net(bit_name(out.name, i, bits.size()));
      result.netlist.add_gate(GateType::kBuf, net, {bits[i]});
      result.netlist.mark_primary_output(net);
    }
  }

  // Flops last (tools cluster them); Q nets carry the register names.
  for (const Register& reg : module.registers()) {
    const auto& q_nets = lowerer.register_q_nets(reg.name);
    const auto& d_nets = result.register_d_nets.at(reg.name);
    for (std::size_t i = 0; i < q_nets.size(); ++i)
      result.netlist.add_gate(GateType::kDff, q_nets[i], {d_nets[i]});
  }

  return result;
}

}  // namespace netrev::rtl
