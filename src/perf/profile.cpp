#include "perf/profile.h"

#include <iomanip>
#include <sstream>

namespace netrev::perf {

thread_local Profiler::TlsStage Profiler::tls_stage_;

namespace {

std::string format_ms(std::uint64_t nanos) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(3)
      << static_cast<double>(nanos) / 1e6 << " ms";
  return out.str();
}

bool is_duration_counter(const std::string& name) {
  return name.size() > 3 && name.compare(name.size() - 3, 3, "_ns") == 0;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

Profiler& Profiler::global() {
  static Profiler profiler;
  return profiler;
}

void Profiler::enable() {
  reset();
  enabled_at_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Profiler::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  root_.children.clear();
  root_.nanos = 0;
  root_.calls = 0;
  for (auto& counter : counters_) counter->value.store(0);
}

Profiler::Counter& Profiler::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& existing : counters_)
    if (existing->name == name) return existing->value;
  counters_.push_back(std::make_unique<NamedCounter>());
  counters_.back()->name = std::string(name);
  return counters_.back()->value;
}

void Profiler::count(std::string_view name, std::uint64_t delta) {
  if (!enabled()) return;
  counter(name).fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t Profiler::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& existing : counters_)
    if (existing->name == name) return existing->value.load();
  return 0;
}

Profiler::Node* Profiler::enter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Node* parent =
      tls_stage_.owner == this && tls_stage_.node != nullptr ? tls_stage_.node
                                                           : &root_;
  for (auto& child : parent->children)
    if (child->name == name) return child.get();
  parent->children.push_back(std::make_unique<Node>());
  parent->children.back()->name = std::string(name);
  return parent->children.back().get();
}

void Profiler::exit(Node* node, std::uint64_t nanos) {
  std::lock_guard<std::mutex> lock(mutex_);
  node->nanos += nanos;
  node->calls += 1;
}

std::uint64_t Profiler::top_level_stage_nanos() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t sum = 0;
  for (const auto& child : root_.children) sum += child->nanos;
  return sum;
}

std::uint64_t Profiler::total_nanos() const {
  if (enabled_at_ == std::chrono::steady_clock::time_point{}) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - enabled_at_)
          .count());
}

std::string Profiler::render_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t total = total_nanos();
  std::ostringstream out;
  out << "profile (total " << format_ms(total) << "):\n";

  // Recursive stage render; percentage is of the parent's time.
  const auto render = [&](const auto& self, const Node& node,
                          std::uint64_t parent_nanos, int indent) -> void {
    for (const auto& child : node.children) {
      const double pct =
          parent_nanos > 0
              ? 100.0 * static_cast<double>(child->nanos) /
                    static_cast<double>(parent_nanos)
              : 0.0;
      out << std::string(static_cast<std::size_t>(indent) * 2, ' ') << "- "
          << child->name << ": " << format_ms(child->nanos) << " ("
          << std::fixed << std::setprecision(1) << pct << "%, "
          << child->calls << " call" << (child->calls == 1 ? "" : "s")
          << ")\n";
      self(self, *child, child->nanos, indent + 1);
    }
  };
  render(render, root_, total, 1);

  bool header = false;
  for (const auto& counter : counters_) {
    const std::uint64_t value = counter->value.load();
    if (value == 0) continue;
    if (!header) {
      out << "counters:\n";
      header = true;
    }
    out << "  " << counter->name << ": ";
    if (is_duration_counter(counter->name))
      out << format_ms(value) << " (cpu, summed across workers)";
    else
      out << value;
    out << '\n';
  }
  return out.str();
}

std::string Profiler::render_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  const auto render = [&](const auto& self, const Node& node) -> void {
    out << "{\"name\":\"" << json_escape(node.name) << "\",\"ns\":"
        << node.nanos << ",\"calls\":" << node.calls << ",\"children\":[";
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      if (i > 0) out << ',';
      self(self, *node.children[i]);
    }
    out << "]}";
  };
  out << "{\"total_ns\":" << total_nanos() << ",\"stages\":[";
  for (std::size_t i = 0; i < root_.children.size(); ++i) {
    if (i > 0) out << ',';
    render(render, *root_.children[i]);
  }
  out << "],\"counters\":{";
  bool first = true;
  for (const auto& counter : counters_) {
    const std::uint64_t value = counter->value.load();
    if (value == 0) continue;
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(counter->name) << "\":" << value;
  }
  out << "}}";
  return out.str();
}

Stage::Stage(std::string_view name, Profiler& profiler) {
  if (!profiler.enabled()) return;
  profiler_ = &profiler;
  node_ = profiler.enter(name);
  parent_ = Profiler::tls_stage_.owner == &profiler ? Profiler::tls_stage_.node
                                                    : nullptr;
  Profiler::tls_stage_ = {&profiler, node_};
  start_ = std::chrono::steady_clock::now();
}

Stage::~Stage() {
  if (profiler_ == nullptr) return;
  const auto nanos = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  profiler_->exit(node_, nanos);
  Profiler::tls_stage_ = {profiler_, parent_};
}

ScopedWork::ScopedWork(std::string_view name, Profiler& profiler) {
  if (!profiler.enabled()) return;
  counter_ = &profiler.counter(name);
  start_ = std::chrono::steady_clock::now();
}

ScopedWork::~ScopedWork() {
  if (counter_ == nullptr) return;
  const auto nanos = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  counter_->fetch_add(nanos, std::memory_order_relaxed);
}

}  // namespace netrev::perf
