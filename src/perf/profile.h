// Stage profiling for the identification pipeline.
//
// Two complementary instruments (docs/PERFORMANCE.md describes when to use
// which):
//   * perf::Stage — a nestable RAII wall-clock timer.  Stages opened on the
//     same thread nest into a tree ("evaluate" > "identify" > "grouping"),
//     which `netrev ... --profile` renders as text or JSON.  Stages are for
//     the *sequential* phase structure on the orchestrating thread; their
//     child times sum to (almost) the parent's wall time.
//   * counters — named atomic counters for work done inside parallel
//     regions: cones hashed, pairs compared, subtrees diffed, sim vectors
//     run, plus per-stage CPU-nanosecond accumulators (counter names ending
//     in "_ns" render as durations).  Counter totals are exact at any job
//     count; CPU-time counters sum across workers, so they can legitimately
//     exceed the enclosing stage's wall time — the ratio is the parallel
//     speedup actually achieved.
//
// Everything is a no-op (one relaxed atomic load) while the profiler is
// disabled, so instrumentation stays compiled into release builds.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace netrev::perf {

class Profiler {
 public:
  using Counter = std::atomic<std::uint64_t>;

  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // The process-wide profiler the pipeline instruments against.
  static Profiler& global();

  // enable() also resets all stages and counters, and starts the total-time
  // clock that render_*() reports against.
  void enable();
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void reset();

  // Named atomic counter; created on first use, address stable for the
  // profiler's lifetime (call sites may cache the pointer).
  Counter& counter(std::string_view name);

  // Adds `delta` to `name` iff enabled (the common hot-path form).
  void count(std::string_view name, std::uint64_t delta);

  // Snapshot of one counter (0 if it does not exist).
  std::uint64_t counter_value(std::string_view name) const;

  // Rendering.  Text: an indented stage tree with percentages plus the
  // counter table.  JSON: {"total_ns":..,"stages":[...],"counters":{...}}.
  std::string render_text() const;
  std::string render_json() const;

  // Sum of wall nanoseconds of top-level stages / total elapsed since
  // enable().  Tests assert coverage (the stage tree accounts for the run).
  std::uint64_t top_level_stage_nanos() const;
  std::uint64_t total_nanos() const;

 private:
  friend class Stage;
  friend class ScopedWork;

  struct Node {
    std::string name;
    std::uint64_t nanos = 0;
    std::uint64_t calls = 0;
    std::vector<std::unique_ptr<Node>> children;
  };
  struct NamedCounter {
    std::string name;
    Counter value{0};
  };

  Node* enter(std::string_view name);
  void exit(Node* node, std::uint64_t nanos);

  // Innermost open stage of the current thread, per profiler.  Only enabled
  // profilers touch this, and one thread interleaves stages of at most one
  // enabled profiler at a time (the global one in production; a local one
  // in tests).
  struct TlsStage {
    Profiler* owner = nullptr;
    Node* node = nullptr;
  };
  static thread_local TlsStage tls_stage_;

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point enabled_at_{};

  mutable std::mutex mutex_;  // guards the stage tree and counter list
  Node root_{"total", 0, 0, {}};
  std::vector<std::unique_ptr<NamedCounter>> counters_;
};

// RAII stage timer.  Opens a child of the current thread's innermost open
// stage (or of the root).  No-op while the profiler is disabled — a stage
// opened before enable() or after disable() records nothing.
class Stage {
 public:
  explicit Stage(std::string_view name, Profiler& profiler = Profiler::global());
  ~Stage();
  Stage(const Stage&) = delete;
  Stage& operator=(const Stage&) = delete;

 private:
  Profiler* profiler_ = nullptr;        // null => disabled at entry
  Profiler::Node* node_ = nullptr;
  Profiler::Node* parent_ = nullptr;    // thread-local parent to restore
  std::chrono::steady_clock::time_point start_{};
};

// RAII CPU-time accumulator for parallel regions: adds the elapsed
// nanoseconds of its scope to counter `name` (e.g. "stage.matching_ns").
// Safe to use concurrently from worker threads.
class ScopedWork {
 public:
  explicit ScopedWork(std::string_view name,
                      Profiler& profiler = Profiler::global());
  ~ScopedWork();
  ScopedWork(const ScopedWork&) = delete;
  ScopedWork& operator=(const ScopedWork&) = delete;

 private:
  Profiler::Counter* counter_ = nullptr;  // null => disabled at entry
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace netrev::perf
