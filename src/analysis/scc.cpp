#include "analysis/scc.h"

#include <algorithm>

namespace netrev::analysis {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

namespace {

// Dependency edges of gate `g`: the drivers of its inputs, minus flip-flop
// drivers (previous-cycle state) and invalid drivers (primary inputs or
// dangling nets).  Calls `visit(dependency_gate_index)` per edge.
template <typename Visit>
void for_each_dependency(const Netlist& nl, std::size_t g, Visit visit) {
  const netlist::Gate& gate = nl.gate(nl.gate_id_at(g));
  for (netlist::NetId in : gate.inputs) {
    const auto drv = nl.driver_of(in);
    if (!drv) continue;
    if (nl.gate(*drv).type == GateType::kDff) continue;
    visit(drv->value());
  }
}

}  // namespace

std::vector<CombinationalScc> combinational_sccs(const Netlist& nl) {
  // Iterative Tarjan.  kUnvisited sentinel in `index`; `on_stack` marks the
  // current component stack.
  const std::size_t n = nl.gate_count();
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> index(n, kUnvisited);
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::size_t next_index = 0;

  std::vector<CombinationalScc> result;

  // DFS frame: (gate, position in its dependency list).  Dependencies are
  // materialized per frame so the walk is resumable.
  struct Frame {
    std::size_t gate;
    std::vector<std::size_t> deps;
    std::size_t pos = 0;
  };

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;

    std::vector<Frame> frames;
    const auto open = [&](std::size_t g) {
      index[g] = lowlink[g] = next_index++;
      stack.push_back(g);
      on_stack[g] = true;
      Frame frame;
      frame.gate = g;
      for_each_dependency(nl, g,
                          [&](std::size_t d) { frame.deps.push_back(d); });
      frames.push_back(std::move(frame));
    };
    open(root);

    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.pos < frame.deps.size()) {
        const std::size_t d = frame.deps[frame.pos++];
        if (index[d] == kUnvisited) {
          open(d);
        } else if (on_stack[d]) {
          lowlink[frame.gate] = std::min(lowlink[frame.gate], index[d]);
        }
        continue;
      }

      // Frame exhausted: pop a component if this is its root.
      const std::size_t g = frame.gate;
      if (lowlink[g] == index[g]) {
        std::vector<std::size_t> members;
        while (true) {
          const std::size_t m = stack.back();
          stack.pop_back();
          on_stack[m] = false;
          members.push_back(m);
          if (m == g) break;
        }
        // Nontrivial: several gates, or one gate reading its own output.
        bool self_loop = false;
        if (members.size() == 1) {
          const netlist::Gate& gate = nl.gate(nl.gate_id_at(members[0]));
          for (netlist::NetId in : gate.inputs)
            if (in == gate.output) self_loop = true;
        }
        if (members.size() > 1 || self_loop) {
          std::sort(members.begin(), members.end());
          CombinationalScc scc;
          for (std::size_t m : members) {
            scc.gates.push_back(nl.gate_id_at(m));
            scc.nets.push_back(nl.gate(nl.gate_id_at(m)).output);
          }
          result.push_back(std::move(scc));
        }
      }
      frames.pop_back();
      if (!frames.empty()) {
        Frame& parent = frames.back();
        lowlink[parent.gate] = std::min(lowlink[parent.gate], lowlink[g]);
      }
    }
  }

  std::sort(result.begin(), result.end(),
            [](const CombinationalScc& a, const CombinationalScc& b) {
              return a.gates.front() < b.gates.front();
            });
  return result;
}

std::string describe_cycle(const Netlist& nl, const CombinationalScc& scc,
                           std::size_t max_names) {
  std::string out;
  const std::size_t shown = std::min(scc.nets.size(), max_names);
  for (std::size_t i = 0; i < shown; ++i) {
    if (i > 0) out += " -> ";
    out += nl.net(scc.nets[i]).name;
  }
  if (scc.nets.size() > max_names) out += " -> ...";
  out += " -> " + nl.net(scc.nets.front()).name;
  return out;
}

}  // namespace netrev::analysis
