#include "analysis/dataflow.h"

#include <cstddef>
#include <deque>
#include <unordered_map>

#include "common/thread_pool.h"
#include "netlist/compact.h"
#include "perf/profile.h"

namespace netrev::analysis {

namespace {

using netlist::CompactView;
using netlist::Gate;
using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;
using netlist::NetId;

// Hot loops poll the checkpoint once per stride; an unarmed checkpoint makes
// the poll itself a single branch, so the stride only amortizes the armed
// (clock-reading) case.
constexpr std::size_t kPollStride = 256;

Ternary ternary_not(Ternary v) {
  switch (v) {
    case Ternary::kZero:
      return Ternary::kOne;
    case Ternary::kOne:
      return Ternary::kZero;
    default:
      return Ternary::kX;
  }
}

Ternary norm(Ternary v) {
  return v == Ternary::kBottom ? Ternary::kX : v;
}

// Computes the greatest fixpoint of the combinational transfer functions
// with flop outputs held at `flop_values` (or X when null).  Values start at
// X and only ever refine (X -> 0/1), so the iteration is monotone and
// terminates even on combinational cycles.  `order` is the fixpoint seed:
// on acyclic logic one sweep converges; cycle members just requeue.
//
// The transfer loop iterates the CompactView's CSR arrays — fanin span,
// output id, fanout span — instead of per-gate heap vectors; the queue
// discipline (FIFO seeded by `order`, readers appended in fanout order) is
// unchanged, so the fixpoint values are identical to the pre-CSR engine's.
std::vector<Ternary> propagate(const CompactView& view,
                               const std::vector<std::uint32_t>& order,
                               const std::vector<Ternary>* flop_values,
                               const exec::Checkpoint& checkpoint) {
  std::vector<Ternary> values(view.net_count(), Ternary::kX);

  // An undriven non-input net is never produced: bottom, not unknown.
  for (std::uint32_t n = 0; n < view.net_count(); ++n)
    if (view.driver(n) == CompactView::kNoGate && !view.is_primary_input(n))
      values[n] = Ternary::kBottom;
  for (std::uint32_t g = 0; g < view.gate_count(); ++g) {
    const GateType type = view.gate_type(g);
    if (type == GateType::kConst0)
      values[view.gate_output(g)] = Ternary::kZero;
    else if (type == GateType::kConst1)
      values[view.gate_output(g)] = Ternary::kOne;
    else if (type == GateType::kDff)
      values[view.gate_output(g)] =
          flop_values ? norm((*flop_values)[view.gate_output(g)]) : Ternary::kX;
  }

  std::deque<std::uint32_t> queue(order.begin(), order.end());
  std::vector<std::uint8_t> in_queue(view.gate_count(), 0);
  for (std::uint32_t g : order) in_queue[g] = 1;

  std::vector<Ternary> ins;
  std::size_t steps = 0;
  while (!queue.empty()) {
    if (++steps % kPollStride == 0) checkpoint.poll();
    const std::uint32_t g = queue.front();
    queue.pop_front();
    in_queue[g] = 0;

    ins.clear();
    for (std::uint32_t in : view.fanin(g)) ins.push_back(values[in]);
    const Ternary out = eval_gate_ternary(view.gate_type(g), ins);
    Ternary& cur = values[view.gate_output(g)];
    // Monotone refinement: a driven output starts at X and settles at most
    // once; anything else would mean a non-monotone transfer function.
    if (out == cur || cur != Ternary::kX) continue;
    cur = out;
    for (std::uint32_t reader : view.fanout(view.gate_output(g))) {
      if (!is_combinational(view.gate_type(reader))) continue;
      if (in_queue[reader]) continue;
      in_queue[reader] = 1;
      queue.push_back(reader);
    }
  }
  return values;
}

// Evaluates `target` in the world `base` refined by the single assumption
// `pin = pin_value`.  Only the forward cone of `pin` is recomputed, into a
// sparse overlay; the fixpoint is monotone (the assumption is a refinement
// of `base`), order-independent, and therefore deterministic regardless of
// which worker thread runs it.
Ternary eval_with_pin(const CompactView& view,
                      const std::vector<Ternary>& base, std::uint32_t pin,
                      Ternary pin_value, std::uint32_t target,
                      const exec::Checkpoint& checkpoint) {
  if (pin == target) return pin_value;

  std::unordered_map<std::uint32_t, Ternary> overlay;
  overlay.emplace(pin, pin_value);
  const auto value_of = [&](std::uint32_t n) {
    const auto it = overlay.find(n);
    return it != overlay.end() ? it->second : base[n];
  };

  std::deque<std::uint32_t> queue;
  std::vector<std::uint8_t> in_queue;  // lazily sized: only touched on push
  const auto push_readers = [&](std::uint32_t net) {
    for (std::uint32_t reader : view.fanout(net)) {
      if (!is_combinational(view.gate_type(reader))) continue;
      if (in_queue.empty()) in_queue.assign(view.gate_count(), 0);
      if (in_queue[reader]) continue;
      in_queue[reader] = 1;
      queue.push_back(reader);
    }
  };
  push_readers(pin);

  std::vector<Ternary> ins;
  std::size_t steps = 0;
  while (!queue.empty()) {
    if (++steps % kPollStride == 0) checkpoint.poll();
    const std::uint32_t g = queue.front();
    queue.pop_front();
    in_queue[g] = 0;

    ins.clear();
    for (std::uint32_t in : view.fanin(g)) ins.push_back(value_of(in));
    const Ternary out = eval_gate_ternary(view.gate_type(g), ins);
    const Ternary cur = value_of(view.gate_output(g));
    // The assumption can only refine X values; a net already constant in
    // `base` keeps that constant under any refinement.
    if (out == cur || cur != Ternary::kX) continue;
    overlay[view.gate_output(g)] = out;
    push_readers(view.gate_output(g));
  }
  return norm(value_of(target));
}

}  // namespace

Ternary ternary_join(Ternary a, Ternary b) {
  if (a == b) return a;
  if (a == Ternary::kBottom) return b;
  if (b == Ternary::kBottom) return a;
  return Ternary::kX;  // 0 ⊔ 1, or anything with X
}

char ternary_code(Ternary v) {
  switch (v) {
    case Ternary::kBottom:
      return '_';
    case Ternary::kZero:
      return '0';
    case Ternary::kOne:
      return '1';
    case Ternary::kX:
      return 'X';
  }
  return '?';
}

Ternary eval_gate_ternary(GateType type, std::span<const Ternary> inputs) {
  switch (type) {
    case GateType::kConst0:
      return Ternary::kZero;
    case GateType::kConst1:
      return Ternary::kOne;
    case GateType::kBuf:
    case GateType::kDff:
      return inputs.empty() ? Ternary::kX : norm(inputs[0]);
    case GateType::kNot:
      return inputs.empty() ? Ternary::kX : ternary_not(norm(inputs[0]));
    case GateType::kAnd:
    case GateType::kNand: {
      bool any_zero = false;
      bool any_x = false;
      for (Ternary v : inputs) {
        v = norm(v);
        if (v == Ternary::kZero) any_zero = true;
        else if (v == Ternary::kX) any_x = true;
      }
      const Ternary out = any_zero ? Ternary::kZero
                          : any_x  ? Ternary::kX
                                   : Ternary::kOne;
      return type == GateType::kNand ? ternary_not(out) : out;
    }
    case GateType::kOr:
    case GateType::kNor: {
      bool any_one = false;
      bool any_x = false;
      for (Ternary v : inputs) {
        v = norm(v);
        if (v == Ternary::kOne) any_one = true;
        else if (v == Ternary::kX) any_x = true;
      }
      const Ternary out = any_one ? Ternary::kOne
                          : any_x ? Ternary::kX
                                  : Ternary::kZero;
      return type == GateType::kNor ? ternary_not(out) : out;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      bool parity = false;
      for (Ternary v : inputs) {
        v = norm(v);
        if (v == Ternary::kX) return Ternary::kX;
        parity ^= (v == Ternary::kOne);
      }
      const Ternary out = parity ? Ternary::kOne : Ternary::kZero;
      return type == GateType::kXnor ? ternary_not(out) : out;
    }
  }
  return Ternary::kX;
}

std::vector<GateId> combinational_order(const Netlist& nl) {
  // Kahn over combinational gates only; flop outputs, primary inputs,
  // constants and undriven nets are all sources.
  std::vector<std::uint32_t> indegree(nl.gate_count(), 0);
  std::vector<std::uint8_t> comb(nl.gate_count(), 0);
  for (std::size_t i = 0; i < nl.gate_count(); ++i) {
    const Gate& gate = nl.gate(nl.gate_id_at(i));
    if (!is_combinational(gate.type)) continue;
    comb[i] = 1;
    for (NetId in : gate.inputs) {
      const auto driver = nl.driver_of(in);
      if (driver && is_combinational(nl.gate(*driver).type)) ++indegree[i];
    }
  }

  std::vector<GateId> order;
  order.reserve(nl.gate_count());
  std::deque<GateId> ready;
  for (std::size_t i = 0; i < nl.gate_count(); ++i)
    if (comb[i] && indegree[i] == 0) ready.push_back(nl.gate_id_at(i));

  std::vector<std::uint8_t> emitted(nl.gate_count(), 0);
  while (!ready.empty()) {
    const GateId g = ready.front();
    ready.pop_front();
    order.push_back(g);
    emitted[g.value()] = 1;
    for (GateId reader : nl.net(nl.gate(g).output).fanouts) {
      if (!comb[reader.value()]) continue;
      if (--indegree[reader.value()] == 0) ready.push_back(reader);
    }
  }
  // Gates caught in combinational cycles never reach indegree 0; append them
  // in file order so the fixpoint still visits them.
  for (std::size_t i = 0; i < nl.gate_count(); ++i)
    if (comb[i] && !emitted[i]) order.push_back(nl.gate_id_at(i));
  return order;
}

std::vector<std::uint8_t> DataflowFacts::constant_mask() const {
  std::vector<std::uint8_t> mask(always.size(), 0);
  for (std::size_t i = 0; i < always.size(); ++i)
    mask[i] = is_ternary_const(always[i]) ? 1 : 0;
  return mask;
}

DataflowFacts run_dataflow(const Netlist& nl, const DataflowOptions& options) {
  perf::ScopedWork work("stage.dataflow_ns");
  const exec::Checkpoint& checkpoint = options.checkpoint;
  checkpoint.poll();

  // One flattening pass; every fixpoint sweep below then iterates CSR
  // arrays.  The build is O(E) while the sweeps are O(E) *per round*, so it
  // pays for itself on the first propagate call.
  const CompactView view = CompactView::build(nl);

  const std::vector<GateId> order_ids = combinational_order(nl);
  std::vector<std::uint32_t> order(order_ids.size());
  for (std::size_t i = 0; i < order_ids.size(); ++i)
    order[i] = order_ids[i].value();

  DataflowFacts facts;
  facts.always = propagate(view, order, nullptr, checkpoint);

  // Flop replace-iteration toward a steady state.  Each round computes every
  // flop's next value synchronously from the previous round, then
  // re-propagates the combinational logic.  A flop whose next value
  // conflicts with an already-refined one oscillates: freeze it at X.
  std::vector<GateId> flops;
  for (GateId g : nl.gates_in_file_order())
    if (nl.gate(g).type == GateType::kDff) flops.push_back(g);

  facts.steady = facts.always;
  std::vector<std::uint8_t> frozen(flops.size(), 0);
  for (std::size_t round = 0; round < options.max_iterations; ++round) {
    checkpoint.poll();
    std::vector<Ternary> next(flops.size());
    for (std::size_t i = 0; i < flops.size(); ++i)
      next[i] = norm(facts.steady[nl.gate(flops[i]).inputs[0].value()]);

    bool changed = false;
    for (std::size_t i = 0; i < flops.size(); ++i) {
      if (frozen[i]) continue;
      Ternary& cur = facts.steady[nl.gate(flops[i]).output.value()];
      if (next[i] == cur) continue;
      if (cur == Ternary::kX) {
        cur = next[i];
      } else {
        cur = Ternary::kX;
        frozen[i] = 1;
      }
      changed = true;
    }
    facts.iterations = round + 1;
    if (!changed) {
      facts.converged = true;
      break;
    }
    facts.steady = propagate(view, order, &facts.steady, checkpoint);
  }
  if (!facts.converged) facts.steady = facts.always;  // stay sound

  // Per-flop stuck detection: independent D-cone evaluations under Q=0 and
  // Q=1, fanned out per flop with index-addressed slots so the result is
  // byte-identical at any job count.
  std::vector<StuckFlop> slots(flops.size());
  ThreadPool::global().parallel_for(
      0, flops.size(),
      [&](std::size_t i) {
        checkpoint.poll();
        const Gate& gate = nl.gate(flops[i]);
        StuckFlop stuck;
        stuck.flop = flops[i];
        const Ternary steady = facts.steady[gate.output.value()];
        if (facts.converged && is_ternary_const(steady))
          stuck.settles_to = steady;
        const Ternary v0 = eval_with_pin(view, facts.always,
                                         gate.output.value(), Ternary::kZero,
                                         gate.inputs[0].value(), checkpoint);
        const Ternary v1 = eval_with_pin(view, facts.always,
                                         gate.output.value(), Ternary::kOne,
                                         gate.inputs[0].value(), checkpoint);
        stuck.holds_state = v0 == Ternary::kZero && v1 == Ternary::kOne;
        slots[i] = stuck;
      },
      /*grain=*/8);

  for (const StuckFlop& stuck : slots)
    if (stuck.holds_state || is_ternary_const(stuck.settles_to))
      facts.stuck_flops.push_back(stuck);
  return facts;
}

}  // namespace netrev::analysis
