// Control-domain inference for flip-flops.
//
// The paper's premise is that control signals (clock/enable/set/reset)
// betray word structure: every bit of a word is wired to the *same* control
// roots.  The netlist model keeps the clock implicit (every kDff shares it),
// so a flop's observable control domain is carried entirely by the structure
// of its D-input logic:
//
//   * enable — D is a 2-way mux (sum-of-products or NAND-NAND form, found
//     through DeMorgan normalization) where one branch recirculates the
//     flop's own Q: the mux select is the load-enable.
//   * sync set — D is an OR-form whose term list contains a direct wire
//     (buffer/inverter chain) to a control root: asserting that root forces
//     D to 1.
//   * sync reset — D is an AND-form with a direct-wire term: deasserting
//     the wired level forces D to 0.
//
// Every wire is traced back through buffer/inverter chains with polarity to
// its *root driver net* (a primary input, flop output, or undriven net), so
// per-bit buffering differences collapse onto the same ControlRoot.  A root
// only counts as control when its fanout reaches `min_control_fanout` —
// genuine enables/resets fan out across the word, per-bit data wires do not.
//
// Flops are grouped by their full DomainSignature; the groups (and the
// mixed-domain-word lint rule built on them) are deterministic: inference is
// per-flop and side-effect free, so it fans out on the ThreadPool into
// index-addressed slots, and groups are ordered by first member in netlist
// file order.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "exec/cancel.h"
#include "netlist/netlist.h"

namespace netrev::analysis {

// A control pin's root: the net reached by walking driver chains back
// through BUF/NOT, plus the root level that *asserts* the control.
struct ControlRoot {
  netlist::NetId net = netlist::NetId::invalid();
  bool active_high = true;

  bool valid() const { return net.is_valid(); }

  friend bool operator==(const ControlRoot&, const ControlRoot&) = default;
  friend auto operator<=>(const ControlRoot&, const ControlRoot&) = default;
};

struct DomainSignature {
  ControlRoot enable;               // invalid => no enable mux detected
  std::vector<ControlRoot> sets;    // sorted, deduplicated
  std::vector<ControlRoot> resets;  // sorted, deduplicated

  bool trivial() const {
    return !enable.valid() && sets.empty() && resets.empty();
  }

  friend bool operator==(const DomainSignature&,
                         const DomainSignature&) = default;
  friend auto operator<=>(const DomainSignature&,
                          const DomainSignature&) = default;

  // "enable=load_en set=!s reset=r1,r2" / "none"; net names resolved
  // against `nl`, '!' marks active-low roots.
  std::string describe(const netlist::Netlist& nl) const;
};

struct FlopDomain {
  netlist::GateId flop;
  DomainSignature signature;
};

struct DomainGroup {
  DomainSignature signature;
  std::vector<netlist::GateId> flops;  // netlist file order
};

struct DomainAnalysis {
  std::vector<FlopDomain> flops;    // one per kDff, netlist file order
  std::vector<DomainGroup> groups;  // ordered by first member flop
};

struct DomainOptions {
  // A traced root only counts as a control root when its net feeds at least
  // this many gates; genuine control fans out, per-bit data does not.
  std::size_t min_control_fanout = 3;
  exec::Checkpoint checkpoint;
};

// Traces `net` back through BUF/NOT chains to its root driver net.
// `active_high` is the polarity at `net` being traced (true: asserting the
// root's returned level makes `net` 1).  Cycle-guarded; accumulates CPU
// time on "stage.domains_ns" only via analyze_domains.
ControlRoot trace_control_root(const netlist::Netlist& nl, netlist::NetId net,
                               bool active_high = true);

DomainAnalysis analyze_domains(const netlist::Netlist& nl,
                               const DomainOptions& options = {});

// Structural 2-way mux detection on one gate, viewed output-positive: an
// OR-form (plain OR, or NAND-of-products — found through the same DeMorgan
// normalization the enable detector uses) of exactly two AND-form products
// sharing one opposite-polarity literal.  Returns that select net.  Used by
// the redundant-mux lint rule; no recirculation requirement.
std::optional<netlist::NetId> detect_mux_select(const netlist::Netlist& nl,
                                                netlist::GateId gate);

// A fully resolved 2-way mux: out = select ? when_true : when_false, with
// `select` always viewed active-high.  Both data branches are the roots of
// plain (non-inverted) wire chains.
struct MuxBranches {
  netlist::NetId select = netlist::NetId::invalid();
  netlist::NetId when_true = netlist::NetId::invalid();
  netlist::NetId when_false = netlist::NetId::invalid();
};

// Like detect_mux_select but demands the branch structure the word-level
// lifter can express: each product is exactly (select literal, data wire)
// with the data wire non-negated after DeMorgan normalization.  Used by the
// lift subsystem to recover mux-word and load-enable-register operators.
std::optional<MuxBranches> decompose_mux2(const netlist::Netlist& nl,
                                          netlist::GateId gate);

}  // namespace netrev::analysis
