// Findings produced by the static-analysis engine.
//
// A Finding is one concrete defect (or advisory) located in a netlist: which
// rule produced it, how severe it is, a human-readable message, an optional
// fix hint, and the nets involved.  Findings reuse diag::Severity so they
// render through the netrev::diag sink (text or JSON) without translation.
#pragma once

#include <string>
#include <vector>

#include "common/diagnostics.h"
#include "netlist/netlist.h"

namespace netrev::analysis {

// Coarse grouping of rules, for documentation and reporting.
enum class Category {
  kStructure,  // graph-level defects: cycles, drivers, connectivity
  kLogic,      // locally simplifiable or suspicious logic
  kSignal,     // signal-role advisories (control/clock/reset candidates)
};

std::string_view category_name(Category category);

// Static description of a rule: stable id, what it checks, how to fix what
// it finds, and the severity its findings carry.
struct RuleInfo {
  std::string id;        // stable kebab-case id, e.g. "comb-cycle"
  std::string summary;   // one-line description of the check
  std::string fix_hint;  // generic remediation advice
  diag::Severity severity = diag::Severity::kWarning;
  Category category = Category::kStructure;
};

struct Finding {
  std::string rule;  // RuleInfo::id of the producing rule
  diag::Severity severity = diag::Severity::kWarning;
  std::string message;
  std::string fix_hint;                // copied from the rule; may be empty
  std::vector<netlist::NetId> nets;   // nets involved (may be empty)

  // "error[comb-cycle]: combinational cycle: x -> y -> x"
  std::string to_string() const;
};

}  // namespace netrev::analysis
