#include "analysis/domains.h"

#include <algorithm>
#include <map>
#include <optional>

#include "common/thread_pool.h"
#include "perf/profile.h"

namespace netrev::analysis {

namespace {

using netlist::Gate;
using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;
using netlist::NetId;

// A polarity-tracked wire: value = negated ? !v(net) : v(net).
struct Literal {
  NetId net = NetId::invalid();
  bool negated = false;
};

// Walks driver chains back through BUF/NOT, folding the inversions into the
// literal.  Stops at the first non-wire driver (or after net_count hops, so
// a buffer cycle in a broken netlist cannot hang the walk).
Literal strip_wires(const Netlist& nl, NetId net, bool negated) {
  for (std::size_t guard = 0; guard <= nl.net_count(); ++guard) {
    const auto driver = nl.driver_of(net);
    if (!driver) return {net, negated};
    const Gate& gate = nl.gate(*driver);
    if (gate.type == GateType::kBuf) {
      net = gate.inputs[0];
    } else if (gate.type == GateType::kNot) {
      net = gate.inputs[0];
      negated = !negated;
    } else {
      return {net, negated};
    }
  }
  return {net, negated};
}

// True when the literal reached an actual root: a primary input / undriven
// net or a flop output.  Constant-driven nets are not domains (they are the
// dataflow engine's business), and a comb-driven net means the pin is logic,
// not a wired control.
bool is_root_literal(const Netlist& nl, const Literal& lit) {
  const auto driver = nl.driver_of(lit.net);
  if (!driver) return true;
  return nl.gate(*driver).type == GateType::kDff;
}

// A gate seen through a possibly-negated wire, DeMorgan-normalized: either
// an OR of literals or an AND of literals, with `input_flip` folded into
// every input literal.
struct FormView {
  bool valid = false;
  bool or_form = false;  // false => and-form
  GateId gate = GateId::invalid();
  bool input_flip = false;
};

FormView classify(const Netlist& nl, const Literal& lit) {
  const auto driver = nl.driver_of(lit.net);
  if (!driver) return {};
  const bool neg = lit.negated;
  switch (nl.gate(*driver).type) {
    case GateType::kAnd:
      return {true, /*or_form=*/neg, *driver, /*input_flip=*/neg};
    case GateType::kNand:
      return {true, !neg, *driver, !neg};
    case GateType::kOr:
      return {true, !neg, *driver, neg};
    case GateType::kNor:
      return {true, neg, *driver, !neg};
    default:
      return {};
  }
}

std::vector<Literal> literals_of(const Netlist& nl, const FormView& view) {
  std::vector<Literal> lits;
  for (NetId in : nl.gate(view.gate).inputs)
    lits.push_back(strip_wires(nl, in, view.input_flip));
  return lits;
}

// A mux decomposed into its shared select and the two product-term literal
// lists: an OR-form of exactly two AND-form products sharing one
// opposite-polarity literal.  Covers AND-OR, NAND-NAND and every
// inverter-sprinkled variant via the DeMorgan normalization above.
struct MuxParts {
  NetId select;
  std::vector<Literal> lits0, lits1;
};

std::optional<MuxParts> mux_parts(const Netlist& nl, const FormView& top) {
  if (!top.valid || !top.or_form || nl.gate(top.gate).inputs.size() != 2)
    return std::nullopt;
  const FormView product0 = classify(
      nl, strip_wires(nl, nl.gate(top.gate).inputs[0], top.input_flip));
  const FormView product1 = classify(
      nl, strip_wires(nl, nl.gate(top.gate).inputs[1], top.input_flip));
  if (!product0.valid || product0.or_form) return std::nullopt;
  if (!product1.valid || product1.or_form) return std::nullopt;

  MuxParts parts{NetId::invalid(), literals_of(nl, product0),
                 literals_of(nl, product1)};
  // The select appears in both products with opposite polarity; pick the
  // lowest net id when the shape is ambiguous, for determinism.
  for (const Literal& a : parts.lits0)
    for (const Literal& b : parts.lits1)
      if (a.net == b.net && a.negated != b.negated)
        if (!parts.select.is_valid() || a.net < parts.select)
          parts.select = a.net;
  if (!parts.select.is_valid()) return std::nullopt;
  return parts;
}

// The load-enable shape: a mux where exactly one product recirculates the
// flop's own Q.
std::optional<ControlRoot> detect_enable_mux(const Netlist& nl,
                                             const FormView& top, NetId q,
                                             std::size_t min_fanout) {
  const auto parts = mux_parts(nl, top);
  if (!parts) return std::nullopt;
  if (nl.net(parts->select).fanouts.size() < min_fanout) return std::nullopt;

  const auto recirculates = [&](const std::vector<Literal>& lits) {
    return std::any_of(lits.begin(), lits.end(), [&](const Literal& l) {
      return l.net == q && l.net != parts->select;
    });
  };
  const bool hold0 = recirculates(parts->lits0);
  const bool hold1 = recirculates(parts->lits1);
  if (hold0 == hold1) return std::nullopt;  // need exactly one hold branch

  // Enable is asserted when the *data* branch is selected.
  const std::vector<Literal>& data_lits = hold0 ? parts->lits1 : parts->lits0;
  for (const Literal& l : data_lits)
    if (l.net == parts->select) return ControlRoot{parts->select, !l.negated};
  return std::nullopt;
}

DomainSignature infer_signature(const Netlist& nl, const Gate& flop,
                                const DomainOptions& options) {
  DomainSignature sig;
  const NetId q = flop.output;
  const FormView top = classify(nl, strip_wires(nl, flop.inputs[0], false));
  if (!top.valid) return sig;  // wire/shift/XOR-driven: no visible control

  if (auto enable =
          detect_enable_mux(nl, top, q, options.min_control_fanout)) {
    sig.enable = *enable;
    return sig;
  }

  for (const Literal& lit : literals_of(nl, top)) {
    if (lit.net == q) continue;  // recirculation, not control
    if (!is_root_literal(nl, lit)) continue;
    if (nl.net(lit.net).fanouts.size() < options.min_control_fanout) continue;
    if (top.or_form) {
      // OR-term at 1 forces D to 1: a sync set, asserted at level !negated.
      sig.sets.push_back(ControlRoot{lit.net, !lit.negated});
    } else {
      // AND-term at 0 forces D to 0: a sync reset, asserted at the level
      // that zeroes the literal.
      sig.resets.push_back(ControlRoot{lit.net, lit.negated});
    }
  }
  const auto dedup = [](std::vector<ControlRoot>& roots) {
    std::sort(roots.begin(), roots.end());
    roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  };
  dedup(sig.sets);
  dedup(sig.resets);
  return sig;
}

}  // namespace

ControlRoot trace_control_root(const Netlist& nl, NetId net, bool active_high) {
  const Literal lit = strip_wires(nl, net, !active_high);
  return ControlRoot{lit.net, !lit.negated};
}

std::string DomainSignature::describe(const Netlist& nl) const {
  if (trivial()) return "none";
  const auto root_name = [&](const ControlRoot& root) {
    std::string text = root.active_high ? "" : "!";
    text += nl.net(root.net).name;
    return text;
  };
  const auto join = [&](const std::vector<ControlRoot>& roots) {
    std::string text;
    for (const ControlRoot& root : roots) {
      if (!text.empty()) text += ',';
      text += root_name(root);
    }
    return text;
  };
  std::string out;
  if (enable.valid()) out += "enable=" + root_name(enable);
  if (!sets.empty()) {
    if (!out.empty()) out += ' ';
    out += "set=" + join(sets);
  }
  if (!resets.empty()) {
    if (!out.empty()) out += ' ';
    out += "reset=" + join(resets);
  }
  return out;
}

std::optional<NetId> detect_mux_select(const Netlist& nl,
                                       netlist::GateId gate) {
  const auto parts =
      mux_parts(nl, classify(nl, Literal{nl.gate(gate).output, false}));
  if (!parts) return std::nullopt;
  return parts->select;
}

std::optional<MuxBranches> decompose_mux2(const Netlist& nl,
                                          netlist::GateId gate) {
  const auto parts =
      mux_parts(nl, classify(nl, Literal{nl.gate(gate).output, false}));
  if (!parts) return std::nullopt;
  if (parts->lits0.size() != 2 || parts->lits1.size() != 2)
    return std::nullopt;

  // Splits a product into (select polarity, data net); the data literal must
  // be a distinct, non-negated wire for the branch to be expressible.
  const auto split =
      [&](const std::vector<Literal>& lits)
      -> std::optional<std::pair<bool, NetId>> {
    const Literal* sel = nullptr;
    const Literal* data = nullptr;
    for (const Literal& lit : lits) {
      if (lit.net == parts->select && sel == nullptr)
        sel = &lit;
      else
        data = &lit;
    }
    if (sel == nullptr || data == nullptr) return std::nullopt;
    if (data->negated || data->net == parts->select) return std::nullopt;
    return std::make_pair(!sel->negated, data->net);
  };

  const auto p0 = split(parts->lits0);
  const auto p1 = split(parts->lits1);
  if (!p0 || !p1 || p0->first == p1->first) return std::nullopt;
  MuxBranches out;
  out.select = parts->select;
  out.when_true = p0->first ? p0->second : p1->second;
  out.when_false = p0->first ? p1->second : p0->second;
  return out;
}

DomainAnalysis analyze_domains(const Netlist& nl,
                               const DomainOptions& options) {
  perf::ScopedWork work("stage.domains_ns");
  options.checkpoint.poll();

  std::vector<GateId> flops;
  for (GateId g : nl.gates_in_file_order())
    if (nl.gate(g).type == GateType::kDff) flops.push_back(g);

  DomainAnalysis analysis;
  analysis.flops.resize(flops.size());
  // Inference is per-flop and read-only on the netlist: fan out with
  // index-addressed slots, byte-identical at any job count.
  ThreadPool::global().parallel_for(
      0, flops.size(),
      [&](std::size_t i) {
        options.checkpoint.poll();
        analysis.flops[i] = FlopDomain{
            flops[i], infer_signature(nl, nl.gate(flops[i]), options)};
      },
      /*grain=*/16);

  // Group by signature; groups appear in first-member file order.
  std::map<DomainSignature, std::size_t> group_of;
  for (const FlopDomain& flop : analysis.flops) {
    const auto [it, inserted] =
        group_of.try_emplace(flop.signature, analysis.groups.size());
    if (inserted)
      analysis.groups.push_back(DomainGroup{flop.signature, {}});
    analysis.groups[it->second].flops.push_back(flop.flop);
  }
  return analysis;
}

}  // namespace netrev::analysis
