// Combinational strongly connected components.
//
// The dependency graph is the one sim::levelize evaluates: a gate depends on
// the drivers of its inputs unless that driver is a flip-flop (whose output
// is previous-cycle state).  Any nontrivial SCC of this graph — more than one
// gate, or a single gate reading its own output — is a combinational cycle
// that breaks levelization, simulation, and cone hashing.  The comb-cycle
// lint rule, levelize's error reporting, and the permissive cycle-breaking
// repair all consume this one implementation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace netrev::analysis {

struct CombinationalScc {
  // Member gates in ascending id (= file) order.
  std::vector<netlist::GateId> gates;
  // The nets those gates drive, in the same order.
  std::vector<netlist::NetId> nets;
};

// All nontrivial combinational SCCs, deterministic order (by smallest member
// gate id).  Empty result == the combinational logic is acyclic.
std::vector<CombinationalScc> combinational_sccs(const netlist::Netlist& nl);

// "x -> y -> z -> x" over the SCC's driven net names; long cycles elide the
// middle ("x -> y -> ... -> x", `max_names` names shown).
std::string describe_cycle(const netlist::Netlist& nl,
                           const CombinationalScc& scc,
                           std::size_t max_names = 8);

}  // namespace netrev::analysis
