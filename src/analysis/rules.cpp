// The stock rule set.  Each rule is a small stateless class; shared graph
// work (combinational SCCs, reverse reachability) lives in its run() so a
// filtered run pays only for the rules it enables.
#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "analysis/registry.h"
#include "analysis/scc.h"
#include "netlist/gate_type.h"

namespace netrev::analysis {

namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;
using netlist::NetId;

// Bounded finding sink: keeps at most `cap` findings for one rule and folds
// the overflow into a final summary finding.
class Collector {
 public:
  Collector(const RuleInfo& info, std::size_t cap, std::vector<Finding>& out)
      : info_(info), cap_(cap), out_(out) {}

  void add(std::string message, std::vector<NetId> nets = {}) {
    ++total_;
    if (cap_ != 0 && kept_ >= cap_) return;
    ++kept_;
    Finding finding;
    finding.rule = info_.id;
    finding.severity = info_.severity;
    finding.message = std::move(message);
    finding.fix_hint = info_.fix_hint;
    finding.nets = std::move(nets);
    out_.push_back(std::move(finding));
  }

  ~Collector() {
    if (total_ <= kept_) return;
    Finding finding;
    finding.rule = info_.id;
    finding.severity = info_.severity;
    finding.message = std::to_string(total_ - kept_) + " further " + info_.id +
                      " finding(s) suppressed (cap " + std::to_string(cap_) +
                      " per rule)";
    out_.push_back(std::move(finding));
  }

 private:
  const RuleInfo& info_;
  std::size_t cap_;
  std::vector<Finding>& out_;
  std::size_t total_ = 0;
  std::size_t kept_ = 0;
};

// --- comb-cycle ------------------------------------------------------------

class CombCycleRule final : public AnalysisRule {
 public:
  const RuleInfo& info() const override {
    static const RuleInfo kInfo{
        "comb-cycle",
        "combinational logic forms a cycle (breaks levelization, simulation, "
        "and cone hashing)",
        "insert a flip-flop on the loop or rewire the feedback path",
        diag::Severity::kError, Category::kStructure};
    return kInfo;
  }

  void run(const AnalysisContext& context,
           std::vector<Finding>& out) const override {
    Collector collect(info(), context.options.max_findings_per_rule, out);
    for (const CombinationalScc& scc : combinational_sccs(context.netlist)) {
      collect.add("combinational cycle of " + std::to_string(scc.gates.size()) +
                      " gate(s): " + describe_cycle(context.netlist, scc),
                  scc.nets);
    }
  }
};

// --- multi-driven ----------------------------------------------------------

// The in-memory Netlist keeps exactly one driver per net (add_gate rejects a
// second), so a multi-driven net in the source survives only as the parser's
// keep-first recovery diagnostic.  This rule folds those parse facts back
// into findings; the structural scan below is a consistency backstop.
class MultiDrivenRule final : public AnalysisRule {
 public:
  const RuleInfo& info() const override {
    static const RuleInfo kInfo{
        "multi-driven",
        "a net is driven by more than one gate (later drivers were dropped "
        "keep-first during recovery)",
        "remove or rename the conflicting driver",
        diag::Severity::kError, Category::kStructure};
    return kInfo;
  }

  void run(const AnalysisContext& context,
           std::vector<Finding>& out) const override {
    Collector collect(info(), context.options.max_findings_per_rule, out);
    const Netlist& nl = context.netlist;

    // Parse facts: "net already driven: NAME; gate dropped" per extra driver.
    if (context.parse_diags != nullptr) {
      static constexpr std::string_view kPrefix = "net already driven: ";
      std::unordered_map<std::string, std::size_t> extra_drivers;
      std::vector<std::string> order;
      for (const diag::Diagnostic& entry : context.parse_diags->entries()) {
        if (entry.message.rfind(kPrefix, 0) != 0) continue;
        std::string name = entry.message.substr(kPrefix.size());
        if (const auto semi = name.find(';'); semi != std::string::npos)
          name.resize(semi);
        if (extra_drivers[name]++ == 0) order.push_back(name);
      }
      for (const std::string& name : order) {
        std::vector<NetId> nets;
        if (const auto net = nl.find_net(name)) nets.push_back(*net);
        collect.add("net '" + name + "' has " +
                        std::to_string(extra_drivers[name] + 1) +
                        " drivers; all but the first were dropped",
                    std::move(nets));
      }
    }

    // Structural backstop: a gate whose output net does not record it as the
    // driver indicates an inconsistent (externally mutated) graph.
    for (std::size_t g = 0; g < nl.gate_count(); ++g) {
      const GateId id = nl.gate_id_at(g);
      const NetId output = nl.gate(id).output;
      if (nl.net(output).driver != id)
        collect.add("net '" + nl.net(output).name +
                        "' is driven by a gate it does not record as driver",
                    {output});
    }
  }
};

// --- undriven-net ----------------------------------------------------------

class UndrivenNetRule final : public AnalysisRule {
 public:
  const RuleInfo& info() const override {
    static const RuleInfo kInfo{
        "undriven-net",
        "a net that is not a primary input has no driver (floating input to "
        "its readers)",
        "declare the net as an input or drive it (repair ties it to 0)",
        diag::Severity::kError, Category::kStructure};
    return kInfo;
  }

  void run(const AnalysisContext& context,
           std::vector<Finding>& out) const override {
    Collector collect(info(), context.options.max_findings_per_rule, out);
    const Netlist& nl = context.netlist;
    for (std::size_t i = 0; i < nl.net_count(); ++i) {
      const NetId id = nl.net_id_at(i);
      const netlist::Net& net = nl.net(id);
      if (net.driver.is_valid() || net.is_primary_input) continue;
      collect.add("net '" + net.name + "' has no driver and is not a primary "
                                       "input (" +
                      std::to_string(net.fanouts.size()) + " reader(s))",
                  {id});
    }
  }
};

// --- dead-logic ------------------------------------------------------------

class DeadLogicRule final : public AnalysisRule {
 public:
  const RuleInfo& info() const override {
    static const RuleInfo kInfo{
        "dead-logic",
        "logic that cannot reach any primary output (reverse reachability)",
        "remove the dead cone or expose its root as an output",
        diag::Severity::kWarning, Category::kStructure};
    return kInfo;
  }

  void run(const AnalysisContext& context,
           std::vector<Finding>& out) const override {
    Collector collect(info(), context.options.max_findings_per_rule, out);
    const Netlist& nl = context.netlist;
    if (nl.gate_count() == 0) return;

    const std::vector<NetId> outputs = nl.primary_outputs();
    if (outputs.empty()) {
      collect.add("design has no primary outputs; every gate is unobservable");
      return;
    }

    // Reverse reachability from the PO drivers, crossing flops (a flop whose
    // output is observable keeps its whole next-state cone alive).
    std::vector<bool> live(nl.gate_count(), false);
    std::vector<std::size_t> queue;
    const auto enqueue = [&](NetId net) {
      const auto drv = nl.driver_of(net);
      if (!drv || live[drv->value()]) return;
      live[drv->value()] = true;
      queue.push_back(drv->value());
    };
    for (NetId po : outputs) enqueue(po);
    while (!queue.empty()) {
      const std::size_t g = queue.back();
      queue.pop_back();
      for (NetId in : nl.gate(nl.gate_id_at(g)).inputs) enqueue(in);
    }

    for (std::size_t g = 0; g < nl.gate_count(); ++g) {
      if (live[g]) continue;
      const netlist::Gate& gate = nl.gate(nl.gate_id_at(g));
      collect.add("gate " + std::string(gate_type_name(gate.type)) +
                      " driving '" + nl.net(gate.output).name +
                      "' cannot reach any primary output",
                  {gate.output});
    }
  }
};

// --- const-foldable --------------------------------------------------------

class ConstFoldableRule final : public AnalysisRule {
 public:
  const RuleInfo& info() const override {
    static const RuleInfo kInfo{
        "const-foldable",
        "a gate whose output is fixed by constant inputs (all-constant fanin "
        "or a controlling constant)",
        "fold the constant through and remove the gate",
        diag::Severity::kWarning, Category::kLogic};
    return kInfo;
  }

  void run(const AnalysisContext& context,
           std::vector<Finding>& out) const override {
    Collector collect(info(), context.options.max_findings_per_rule, out);
    const Netlist& nl = context.netlist;
    const auto const_value = [&](NetId net) -> std::optional<bool> {
      const auto drv = nl.driver_of(net);
      if (!drv) return std::nullopt;
      const GateType type = nl.gate(*drv).type;
      if (type == GateType::kConst0) return false;
      if (type == GateType::kConst1) return true;
      return std::nullopt;
    };

    for (std::size_t g = 0; g < nl.gate_count(); ++g) {
      const netlist::Gate& gate = nl.gate(nl.gate_id_at(g));
      if (!netlist::is_combinational(gate.type) ||
          gate.type == GateType::kConst0 || gate.type == GateType::kConst1)
        continue;
      bool all_const = !gate.inputs.empty();
      bool controlling_const = false;
      const auto controlling = netlist::controlling_value(gate.type);
      for (NetId in : gate.inputs) {
        const auto value = const_value(in);
        if (!value) {
          all_const = false;
        } else if (controlling && *value == *controlling) {
          controlling_const = true;
        }
      }
      if (all_const) {
        collect.add("gate " + std::string(gate_type_name(gate.type)) +
                        " driving '" + nl.net(gate.output).name +
                        "' has all inputs tied to constants",
                    {gate.output});
      } else if (controlling_const) {
        collect.add("gate " + std::string(gate_type_name(gate.type)) +
                        " driving '" + nl.net(gate.output).name +
                        "' has a controlling constant input; output is fixed",
                    {gate.output});
      }
    }
  }
};

// --- degenerate-gate -------------------------------------------------------

class DegenerateGateRule final : public AnalysisRule {
 public:
  const RuleInfo& info() const override {
    static const RuleInfo kInfo{
        "degenerate-gate",
        "a gate reading the same net twice or reading its own output",
        "deduplicate the fanin (XOR/XNOR pairs cancel) or cut the self-edge",
        diag::Severity::kWarning, Category::kLogic};
    return kInfo;
  }

  void run(const AnalysisContext& context,
           std::vector<Finding>& out) const override {
    Collector collect(info(), context.options.max_findings_per_rule, out);
    const Netlist& nl = context.netlist;
    for (std::size_t g = 0; g < nl.gate_count(); ++g) {
      const netlist::Gate& gate = nl.gate(nl.gate_id_at(g));
      std::unordered_set<std::uint32_t> seen;
      bool reported = false;
      for (NetId in : gate.inputs) {
        if (in == gate.output && !reported) {
          collect.add("gate " + std::string(gate_type_name(gate.type)) +
                          " driving '" + nl.net(gate.output).name +
                          "' reads its own output",
                      {gate.output});
          reported = true;
        } else if (!seen.insert(in.value()).second && !reported) {
          collect.add("gate " + std::string(gate_type_name(gate.type)) +
                          " driving '" + nl.net(gate.output).name +
                          "' reads net '" + nl.net(in).name + "' twice",
                      {gate.output, in});
          reported = true;
        }
      }
    }
  }
};

// --- high-fanout -----------------------------------------------------------

class HighFanoutRule final : public AnalysisRule {
 public:
  const RuleInfo& info() const override {
    static const RuleInfo kInfo{
        "high-fanout",
        "a net whose fanout is far above the design's distribution — a "
        "candidate clock/reset/control signal (the kind §2.4 ranks)",
        "confirm the net's role; control-signal identification treats it "
        "specially",
        diag::Severity::kNote, Category::kSignal};
    return kInfo;
  }

  void run(const AnalysisContext& context,
           std::vector<Finding>& out) const override {
    Collector collect(info(), context.options.max_findings_per_rule, out);
    const Netlist& nl = context.netlist;

    std::vector<std::size_t> fanouts;
    for (std::size_t i = 0; i < nl.net_count(); ++i) {
      const std::size_t f = nl.net(nl.net_id_at(i)).fanouts.size();
      if (f > 0) fanouts.push_back(f);
    }
    if (fanouts.empty()) return;
    std::sort(fanouts.begin(), fanouts.end());
    const double p =
        std::clamp(context.options.fanout_percentile, 0.0, 100.0) / 100.0;
    const auto index = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(fanouts.size())));
    const std::size_t percentile_value =
        fanouts[std::min(index == 0 ? 0 : index - 1, fanouts.size() - 1)];
    const std::size_t threshold =
        std::max(percentile_value, context.options.min_flagged_fanout);

    for (std::size_t i = 0; i < nl.net_count(); ++i) {
      const NetId id = nl.net_id_at(i);
      const std::size_t f = nl.net(id).fanouts.size();
      if (f < threshold) continue;
      collect.add("net '" + nl.net(id).name + "' drives " + std::to_string(f) +
                      " gate(s) (p" +
                      std::to_string(
                          static_cast<int>(context.options.fanout_percentile)) +
                      " of this design is " +
                      std::to_string(percentile_value) +
                      "): candidate clock/reset/control signal",
                  {id});
    }
  }
};

// --- dff-self-loop ---------------------------------------------------------

// A flop whose D input recirculates its own output through buffers only can
// never change state (a toggle through an inverter is legitimate and common;
// this flags the degenerate hold case, which usually indicates a stitched or
// damaged netlist).
class DffSelfLoopRule final : public AnalysisRule {
 public:
  const RuleInfo& info() const override {
    static const RuleInfo kInfo{
        "dff-self-loop",
        "a flip-flop recirculating its own output through buffers only (its "
        "state can never change)",
        "tie the flop to its real next-state logic or replace it with a "
        "constant",
        diag::Severity::kWarning, Category::kLogic};
    return kInfo;
  }

  void run(const AnalysisContext& context,
           std::vector<Finding>& out) const override {
    Collector collect(info(), context.options.max_findings_per_rule, out);
    const Netlist& nl = context.netlist;
    for (std::size_t g = 0; g < nl.gate_count(); ++g) {
      const netlist::Gate& gate = nl.gate(nl.gate_id_at(g));
      if (gate.type != GateType::kDff) continue;
      // Follow the D net backward through BUF gates; a visited set guards
      // against buffer rings.
      std::unordered_set<std::uint32_t> visited;
      NetId current = gate.inputs.front();
      while (visited.insert(current.value()).second) {
        if (current == gate.output) {
          collect.add("flop '" + nl.net(gate.output).name +
                          "' recirculates its own output through buffers "
                          "only; its state can never change",
                      {gate.output});
          break;
        }
        const auto drv = nl.driver_of(current);
        if (!drv || nl.gate(*drv).type != GateType::kBuf) break;
        current = nl.gate(*drv).inputs.front();
      }
    }
  }
};

}  // namespace

void register_builtin_rules(RuleRegistry& registry) {
  registry.add(std::make_unique<CombCycleRule>());
  registry.add(std::make_unique<MultiDrivenRule>());
  registry.add(std::make_unique<UndrivenNetRule>());
  registry.add(std::make_unique<DeadLogicRule>());
  registry.add(std::make_unique<ConstFoldableRule>());
  registry.add(std::make_unique<DegenerateGateRule>());
  registry.add(std::make_unique<HighFanoutRule>());
  registry.add(std::make_unique<DffSelfLoopRule>());
  register_dataflow_rules(registry);
}

}  // namespace netrev::analysis
