#include "analysis/finding.h"

namespace netrev::analysis {

std::string_view category_name(Category category) {
  switch (category) {
    case Category::kStructure: return "structure";
    case Category::kLogic: return "logic";
    case Category::kSignal: return "signal";
  }
  return "unknown";
}

std::string Finding::to_string() const {
  std::string out(diag::severity_name(severity));
  out += '[';
  out += rule;
  out += "]: ";
  out += message;
  return out;
}

}  // namespace netrev::analysis
