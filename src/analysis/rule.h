// The pluggable rule interface of the static-analysis engine.
//
// A rule inspects a netlist (plus optional parse-time diagnostics, for
// defects the in-memory model cannot represent, such as multi-driven nets
// resolved keep-first during recovery) and appends Findings.  Rules are
// stateless and shared; all per-run state lives in the AnalysisContext.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "analysis/finding.h"
#include "common/diagnostics.h"
#include "exec/cancel.h"
#include "netlist/netlist.h"

namespace netrev::analysis {

struct DataflowFacts;
struct DomainAnalysis;

struct AnalysisOptions {
  // Run only these rule ids; empty = every registered rule.
  std::vector<std::string> enabled_rules;

  // high-fanout: flag nets whose fanout reaches this percentile of the
  // design's nonzero fanout distribution...
  double fanout_percentile = 99.0;
  // ...but never below this absolute floor (small designs have tiny tails).
  std::size_t min_flagged_fanout = 16;

  // Ceiling on findings kept per rule; overflow collapses into one summary
  // finding so a pathological input cannot produce unbounded output.
  std::size_t max_findings_per_rule = 32;

  // Dataflow engine knobs (analysis/dataflow.h, analysis/domains.h).
  std::size_t dataflow_max_iterations = 8;
  std::size_t min_control_fanout = 3;

  // Observation-only (excluded from the options fingerprint): polled by the
  // dataflow engine and the SCC passes the rules run.
  exec::Checkpoint checkpoint;
};

struct AnalysisContext {
  const netlist::Netlist& netlist;
  const AnalysisOptions& options;
  // Optional parse-time diagnostics from a permissive load.  Rules that
  // detect defects dropped during recovery (duplicate drivers) read these;
  // nullptr means "analysis of an in-memory netlist, no parse facts".
  const diag::Diagnostics* parse_diags = nullptr;

  // Precomputed dataflow facts / domain analysis (the Session passes its
  // ArtifactCache-backed stage results here).  nullptr => rules that need
  // them compute once per run into the mutable lazy slots below, via
  // dataflow_facts() / domain_analysis().  Rules stay stateless: all per-run
  // state lives in this context.
  const DataflowFacts* dataflow = nullptr;
  const DomainAnalysis* domains = nullptr;
  mutable std::shared_ptr<const DataflowFacts> lazy_dataflow;
  mutable std::shared_ptr<const DomainAnalysis> lazy_domains;
};

// Shared-fact accessors: the precomputed pointer when present, else a
// lazily-computed (and context-cached) run of the engine with this context's
// options.  analyze() runs rules serially, so the lazy fill needs no lock.
const DataflowFacts& dataflow_facts(const AnalysisContext& context);
const DomainAnalysis& domain_analysis(const AnalysisContext& context);

class AnalysisRule {
 public:
  virtual ~AnalysisRule() = default;
  virtual const RuleInfo& info() const = 0;
  virtual void run(const AnalysisContext& context,
                   std::vector<Finding>& out) const = 0;
};

}  // namespace netrev::analysis
