// The pluggable rule interface of the static-analysis engine.
//
// A rule inspects a netlist (plus optional parse-time diagnostics, for
// defects the in-memory model cannot represent, such as multi-driven nets
// resolved keep-first during recovery) and appends Findings.  Rules are
// stateless and shared; all per-run state lives in the AnalysisContext.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/finding.h"
#include "common/diagnostics.h"
#include "netlist/netlist.h"

namespace netrev::analysis {

struct AnalysisOptions {
  // Run only these rule ids; empty = every registered rule.
  std::vector<std::string> enabled_rules;

  // high-fanout: flag nets whose fanout reaches this percentile of the
  // design's nonzero fanout distribution...
  double fanout_percentile = 99.0;
  // ...but never below this absolute floor (small designs have tiny tails).
  std::size_t min_flagged_fanout = 16;

  // Ceiling on findings kept per rule; overflow collapses into one summary
  // finding so a pathological input cannot produce unbounded output.
  std::size_t max_findings_per_rule = 32;
};

struct AnalysisContext {
  const netlist::Netlist& netlist;
  const AnalysisOptions& options;
  // Optional parse-time diagnostics from a permissive load.  Rules that
  // detect defects dropped during recovery (duplicate drivers) read these;
  // nullptr means "analysis of an in-memory netlist, no parse facts".
  const diag::Diagnostics* parse_diags = nullptr;
};

class AnalysisRule {
 public:
  virtual ~AnalysisRule() = default;
  virtual const RuleInfo& info() const = 0;
  virtual void run(const AnalysisContext& context,
                   std::vector<Finding>& out) const = 0;
};

}  // namespace netrev::analysis
