// Ternary constant-propagation dataflow engine over the gate-level netlist.
//
// The lattice is {⊥, 0, 1, X} ordered ⊥ < 0,1 < X.  ⊥ ("bottom") marks a
// value that was never produced; X is "unknown / either".  The engine
// computes two valuations, both indexed by NetId:
//
//   * `always` — holds at EVERY clock cycle from ANY flop state.  Flip-flop
//     outputs are pinned to X and constants are propagated through the
//     combinational logic to a greatest fixpoint.  Evaluation starts from
//     the all-X valuation and only ever *refines* (X → 0/1), which is a
//     monotone descending iteration on a finite lattice: it terminates even
//     on netlists with combinational cycles (cycle nets simply stay X unless
//     a refined side input forces them), so the engine is safe to run on the
//     broken inputs `netrev lint` accepts.
//
//   * `steady` — a steady-state valuation reached by bounded flop
//     iteration: starting from `always`, each round replaces every flop's
//     output value with the previous round's value of its D input
//     (synchronously), then re-propagates the combinational logic.  A flop
//     whose D conflicts with an already-refined output value (it oscillates)
//     is frozen at X.  Round r's valuation over-approximates every concrete
//     valuation at cycles >= r, so if the iteration converges within
//     `max_iterations` rounds the converged constants hold at every cycle
//     beyond the convergence round — "eventually constant" facts.  If it
//     does not converge, `steady` falls back to `always` (still sound).
//
// Per-flop facts (stuck detection) evaluate each flop's D cone under the
// assumption Q=0 and Q=1; those cone evaluations are independent and run on
// the global ThreadPool with index-addressed result slots, so results are
// byte-identical at any --jobs count.  All loops poll the caller's
// exec::Checkpoint.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "exec/cancel.h"
#include "netlist/netlist.h"

namespace netrev::analysis {

// Lattice values.  The numeric order is not the lattice order; use
// ternary_join / is_ternary_const.
enum class Ternary : std::uint8_t {
  kBottom = 0,  // never produced (undriven, unreached)
  kZero = 1,
  kOne = 2,
  kX = 3,  // unknown / either
};

// Least upper bound: ⊥ is the identity, 0 ⊔ 1 = X, X absorbs everything.
Ternary ternary_join(Ternary a, Ternary b);

inline bool is_ternary_const(Ternary v) {
  return v == Ternary::kZero || v == Ternary::kOne;
}

// One printable character per value: '_', '0', '1', 'X'.
char ternary_code(Ternary v);

// Per-gate-type transfer function.  ⊥ inputs are treated as X (a net that
// was never produced proves nothing).  DFF transfers as a wire; the engine
// itself never evaluates flops through this (state is handled by the flop
// iteration), but cone evaluators may.
Ternary eval_gate_ternary(netlist::GateType type,
                          std::span<const Ternary> inputs);

struct DataflowOptions {
  // Bound on flop replace-iteration rounds for the steady valuation.
  std::size_t max_iterations = 8;
  // Polled at engine-defined strides; default unarmed checkpoint costs one
  // branch per poll.
  exec::Checkpoint checkpoint;
};

// A flop with provably degenerate next-state behaviour.
struct StuckFlop {
  netlist::GateId flop;
  // D provably equals Q: under the sound `always` valuation, pinning Q=0
  // evaluates D to 0 and pinning Q=1 evaluates D to 1.  The flop can never
  // leave whatever state it powers up in.
  bool holds_state = false;
  // Steady-state constant the flop settles to (kX when it does not settle).
  Ternary settles_to = Ternary::kX;
};

struct DataflowFacts {
  // Valuations indexed by NetId::value(); see the file comment.
  std::vector<Ternary> always;
  std::vector<Ternary> steady;

  // Whether the flop iteration converged within max_iterations, and the
  // number of rounds it used.  When !converged, steady == always.
  bool converged = false;
  std::size_t iterations = 0;

  std::vector<StuckFlop> stuck_flops;  // netlist file order

  bool always_constant(netlist::NetId net) const {
    return net.value() < always.size() && is_ternary_const(always[net.value()]);
  }
  bool steady_constant(netlist::NetId net) const {
    return net.value() < steady.size() && is_ternary_const(steady[net.value()]);
  }

  // Per-net mask of `always_constant`, the form wordrec's candidate pruning
  // consumes (wordrec::Options::constant_nets).
  std::vector<std::uint8_t> constant_mask() const;
};

// Runs the engine.  Accumulates its CPU time on the "stage.dataflow_ns"
// profiler counter.
DataflowFacts run_dataflow(const netlist::Netlist& nl,
                           const DataflowOptions& options = {});

// Combinational gates in dependency order (a gate after the drivers of its
// inputs), computed with Kahn's algorithm from flop outputs / primary inputs
// / constants.  Gates stuck in combinational cycles are appended afterwards
// in file order — the order is a fixpoint-seeding hint, not a validity
// claim, so this never throws on cyclic netlists.
std::vector<netlist::GateId> combinational_order(const netlist::Netlist& nl);

}  // namespace netrev::analysis
