#include "analysis/registry.h"

#include <stdexcept>
#include <string>

namespace netrev::analysis {

void RuleRegistry::add(std::unique_ptr<AnalysisRule> rule) {
  if (rule == nullptr) throw std::invalid_argument("null analysis rule");
  const std::string& id = rule->info().id;
  if (id.empty()) throw std::invalid_argument("analysis rule with empty id");
  if (find(id) != nullptr)
    throw std::invalid_argument("duplicate analysis rule id: " + id);
  rules_.push_back(std::move(rule));
}

const AnalysisRule* RuleRegistry::find(std::string_view id) const {
  for (const auto& rule : rules_)
    if (rule->info().id == id) return rule.get();
  return nullptr;
}

const RuleRegistry& RuleRegistry::builtin() {
  static const RuleRegistry* const registry = [] {
    auto* r = new RuleRegistry;
    register_builtin_rules(*r);
    return r;
  }();
  return *registry;
}

}  // namespace netrev::analysis
