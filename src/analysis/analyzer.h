// The static-analysis engine driver.
//
// analyze() runs a rule set over a netlist and returns the findings plus
// per-severity counts; emit() renders them into a netrev::diag sink so the
// CLI's text/JSON diagnostics machinery (including --max-errors caps) applies
// unchanged.  require_acyclic() is the cheap mandatory pre-pass word
// recovery runs before touching levelization or cone hashing, and
// break_combinational_cycles() is the matching --permissive repair.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/finding.h"
#include "analysis/registry.h"
#include "analysis/rule.h"
#include "common/diagnostics.h"
#include "netlist/netlist.h"

namespace netrev::analysis {

struct AnalysisResult {
  std::vector<Finding> findings;
  std::size_t rules_run = 0;

  std::size_t count(diag::Severity severity) const;
  std::size_t note_count() const { return count(diag::Severity::kNote); }
  std::size_t warning_count() const { return count(diag::Severity::kWarning); }
  std::size_t error_count() const { return count(diag::Severity::kError); }

  // True if any finding is at least as severe as `threshold`.
  bool has_finding_at_least(diag::Severity threshold) const;

  // "2 finding(s): 1 error(s), 1 warning(s), 0 note(s); 8 rule(s) run"
  std::string summary() const;
};

// Runs `options.enabled_rules` (all rules when empty) from `registry` over
// the netlist.  `parse_diags` optionally carries parse-time recovery facts
// (see AnalysisContext).  `dataflow` optionally hands the dataflow-backed
// rules precomputed engine facts (the Session passes its cached stage);
// when null, rules that need them compute once per run.  Throws
// std::invalid_argument if an enabled rule id is unknown.
AnalysisResult analyze(const netlist::Netlist& nl,
                       const AnalysisOptions& options = {},
                       const diag::Diagnostics* parse_diags = nullptr,
                       const RuleRegistry& registry = RuleRegistry::builtin(),
                       const DataflowFacts* dataflow = nullptr);

// Renders every finding into `diags` as "[rule] message (fix: hint)" at the
// finding's severity, located at `file` (no line: findings are netlist-level).
void emit(const AnalysisResult& result, diag::Diagnostics& diags,
          const std::string& file = {});

// Thrown by require_acyclic(): the netlist has a structural defect that word
// recovery cannot run on.  The message names the offending nets.
class StructuralDefectError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Cheap structural gate (one SCC pass) for pipeline entry points.  Throws
// StructuralDefectError naming the first cycle if the combinational logic is
// cyclic.
void require_acyclic(const netlist::Netlist& nl);

struct CycleBreakResult {
  netlist::Netlist netlist;
  std::size_t cycles_broken = 0;
};

// Permissive repair for cyclic inputs: every combinational cycle is cut by
// rewiring one in-cycle input of its first gate (file order) to a fresh
// constant-0 net.  Original gate file order is preserved (tie-off constants
// append at the end); every cut is reported into `diags` as a warning.
CycleBreakResult break_combinational_cycles(const netlist::Netlist& nl,
                                            diag::Diagnostics& diags);

}  // namespace netrev::analysis
