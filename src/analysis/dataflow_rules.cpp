// Rules built on the dataflow engine (analysis/dataflow.h) and the
// control-domain inference (analysis/domains.h):
//
//   const-net         — a comb-driven net provably constant at every cycle
//   stuck-ff          — a flop that provably holds state or settles constant
//   redundant-mux     — a structural mux whose select folds to a constant
//   mixed-domain-word — one named register whose bits span control domains
//
// The expensive shared facts are computed once per analyze() run through the
// AnalysisContext lazy slots (or taken precomputed from the Session's
// ArtifactCache stage), so enabling several of these rules pays for one
// engine run.
#include <map>
#include <string>

#include "analysis/dataflow.h"
#include "analysis/domains.h"
#include "analysis/registry.h"
#include "common/text.h"
#include "netlist/gate_type.h"

namespace netrev::analysis {

const DataflowFacts& dataflow_facts(const AnalysisContext& context) {
  if (context.dataflow) return *context.dataflow;
  if (!context.lazy_dataflow) {
    DataflowOptions options;
    options.max_iterations = context.options.dataflow_max_iterations;
    options.checkpoint = context.options.checkpoint;
    context.lazy_dataflow = std::make_shared<const DataflowFacts>(
        run_dataflow(context.netlist, options));
  }
  return *context.lazy_dataflow;
}

const DomainAnalysis& domain_analysis(const AnalysisContext& context) {
  if (context.domains) return *context.domains;
  if (!context.lazy_domains) {
    DomainOptions options;
    options.min_control_fanout = context.options.min_control_fanout;
    options.checkpoint = context.options.checkpoint;
    context.lazy_domains = std::make_shared<const DomainAnalysis>(
        analyze_domains(context.netlist, options));
  }
  return *context.lazy_domains;
}

namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;
using netlist::NetId;

// Bounded finding sink, same contract as the Collector in rules.cpp: keeps
// at most `cap` findings and folds the overflow into one summary finding.
class Collector {
 public:
  Collector(const RuleInfo& info, std::size_t cap, std::vector<Finding>& out)
      : info_(info), cap_(cap), out_(out) {}

  void add(std::string message, std::vector<NetId> nets = {}) {
    ++total_;
    if (cap_ != 0 && kept_ >= cap_) return;
    ++kept_;
    Finding finding;
    finding.rule = info_.id;
    finding.severity = info_.severity;
    finding.message = std::move(message);
    finding.fix_hint = info_.fix_hint;
    finding.nets = std::move(nets);
    out_.push_back(std::move(finding));
  }

  ~Collector() {
    if (total_ <= kept_) return;
    Finding finding;
    finding.rule = info_.id;
    finding.severity = info_.severity;
    finding.message = std::to_string(total_ - kept_) + " further " + info_.id +
                      " finding(s) suppressed (cap " + std::to_string(cap_) +
                      " per rule)";
    out_.push_back(std::move(finding));
  }

 private:
  const RuleInfo& info_;
  std::size_t cap_;
  std::vector<Finding>& out_;
  std::size_t total_ = 0;
  std::size_t kept_ = 0;
};

// --- const-net -------------------------------------------------------------

class ConstNetRule final : public AnalysisRule {
 public:
  const RuleInfo& info() const override {
    static const RuleInfo kInfo{
        "const-net",
        "a gate-driven net is provably constant at every cycle, from any "
        "flop state (ternary constant propagation)",
        "replace the driving logic with a constant tie, or remove it",
        diag::Severity::kWarning, Category::kLogic};
    return kInfo;
  }

  void run(const AnalysisContext& context,
           std::vector<Finding>& out) const override {
    Collector collect(info(), context.options.max_findings_per_rule, out);
    const Netlist& nl = context.netlist;
    const DataflowFacts& facts = dataflow_facts(context);
    for (std::size_t i = 0; i < nl.net_count(); ++i) {
      const NetId net = nl.net_id_at(i);
      if (!facts.always_constant(net)) continue;
      // Only *derived* constants are findings: a net wired to a constant
      // gate says what it means.
      const auto driver = nl.driver_of(net);
      if (!driver) continue;
      const GateType type = nl.gate(*driver).type;
      if (type == GateType::kConst0 || type == GateType::kConst1) continue;
      collect.add("net '" + nl.net(net).name + "' is provably constant " +
                      ternary_code(facts.always[net.value()]) +
                      " at every cycle",
                  {net});
    }
  }
};

// --- stuck-ff --------------------------------------------------------------

class StuckFfRule final : public AnalysisRule {
 public:
  const RuleInfo& info() const override {
    static const RuleInfo kInfo{
        "stuck-ff",
        "a flop's next-state provably equals its current state (it can never "
        "change), or its value settles to a constant from any start state",
        "remove the flop or fix the feedback logic that pins it",
        diag::Severity::kWarning, Category::kLogic};
    return kInfo;
  }

  void run(const AnalysisContext& context,
           std::vector<Finding>& out) const override {
    Collector collect(info(), context.options.max_findings_per_rule, out);
    const Netlist& nl = context.netlist;
    const DataflowFacts& facts = dataflow_facts(context);
    for (const StuckFlop& stuck : facts.stuck_flops) {
      const NetId q = nl.gate(stuck.flop).output;
      if (stuck.holds_state) {
        collect.add("flop '" + nl.net(q).name +
                        "' can never change state: its next-state function "
                        "provably equals its current state",
                    {q});
      } else if (is_ternary_const(stuck.settles_to)) {
        collect.add("flop '" + nl.net(q).name + "' settles to constant " +
                        ternary_code(stuck.settles_to) + " within " +
                        std::to_string(facts.iterations) +
                        " cycle(s) from any start state",
                    {q});
      }
    }
  }
};

// --- redundant-mux ---------------------------------------------------------

class RedundantMuxRule final : public AnalysisRule {
 public:
  const RuleInfo& info() const override {
    static const RuleInfo kInfo{
        "redundant-mux",
        "a structural 2-way mux has a provably constant select: one branch "
        "is never passed",
        "wire the always-selected branch through directly",
        diag::Severity::kWarning, Category::kLogic};
    return kInfo;
  }

  void run(const AnalysisContext& context,
           std::vector<Finding>& out) const override {
    Collector collect(info(), context.options.max_findings_per_rule, out);
    const Netlist& nl = context.netlist;
    const DataflowFacts& facts = dataflow_facts(context);
    for (std::size_t i = 0; i < nl.gate_count(); ++i) {
      const GateId g = nl.gate_id_at(i);
      if (!is_combinational(nl.gate(g).type)) continue;
      const auto select = detect_mux_select(nl, g);
      if (!select || !facts.always_constant(*select)) continue;
      collect.add("mux driving '" + nl.net(nl.gate(g).output).name +
                      "' has a provably constant select '" +
                      nl.net(*select).name + "' (=" +
                      ternary_code(facts.always[select->value()]) +
                      "); one branch is never passed",
                  {nl.gate(g).output, *select});
    }
  }
};

// --- mixed-domain-word -----------------------------------------------------

class MixedDomainWordRule final : public AnalysisRule {
 public:
  const RuleInfo& info() const override {
    static const RuleInfo kInfo{
        "mixed-domain-word",
        "a minority of one named register's bits deviate from the dominant "
        "control domain (enable/set/reset roots) of the other bits — the "
        "word may be misgrouped",
        "check whether the outlier bits really belong to the register",
        diag::Severity::kWarning, Category::kSignal};
    return kInfo;
  }

  void run(const AnalysisContext& context,
           std::vector<Finding>& out) const override {
    Collector collect(info(), context.options.max_findings_per_rule, out);
    const Netlist& nl = context.netlist;
    const DomainAnalysis& domains = domain_analysis(context);

    // Candidate words come from flop-output names, the same convention the
    // eval reference extractor uses; ordered map for deterministic output.
    std::map<std::string, std::vector<const FlopDomain*>> words;
    for (const FlopDomain& flop : domains.flops) {
      const auto parsed =
          parse_indexed_name(nl.net(nl.gate(flop.flop).output).name);
      if (parsed) words[parsed->base].push_back(&flop);
    }

    for (const auto& [base, bits] : words) {
      if (bits.size() < 2) continue;
      std::map<DomainSignature, std::size_t> counts;
      for (const FlopDomain* flop : bits) ++counts[flop->signature];
      if (counts.size() < 2) continue;
      // Only a dominant-domain-with-outliers split is suspicious.  A state
      // register whose every bit carries its own next-state terms (all
      // signatures distinct, or an even split) is normal sequential logic,
      // not a misgrouped word — firing there would drown the signal.
      const DomainSignature* dominant = nullptr;
      std::size_t dominant_count = 0;
      for (const auto& [signature, count] : counts) {
        if (count > dominant_count) {
          dominant = &signature;
          dominant_count = count;
        }
      }
      if (dominant_count * 2 <= bits.size()) continue;
      std::vector<NetId> outliers;
      for (const FlopDomain* flop : bits)
        if (!(flop->signature == *dominant))
          outliers.push_back(nl.gate(flop->flop).output);
      std::string named;
      for (NetId net : outliers) {
        if (!named.empty()) named += ", ";
        named += "'" + nl.net(net).name + "'";
      }
      collect.add("register '" + base + "' (" + std::to_string(bits.size()) +
                      " bits): " + std::to_string(outliers.size()) +
                      " bit(s) deviate from the dominant control domain (" +
                      dominant->describe(nl) + "): " + named,
                  std::move(outliers));
    }
  }
};

}  // namespace

void register_dataflow_rules(RuleRegistry& registry) {
  registry.add(std::make_unique<ConstNetRule>());
  registry.add(std::make_unique<StuckFfRule>());
  registry.add(std::make_unique<RedundantMuxRule>());
  registry.add(std::make_unique<MixedDomainWordRule>());
}

}  // namespace netrev::analysis
