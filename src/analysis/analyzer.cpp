#include "analysis/analyzer.h"

#include <unordered_map>
#include <unordered_set>

#include "analysis/scc.h"

namespace netrev::analysis {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;
using netlist::NetId;

std::size_t AnalysisResult::count(diag::Severity severity) const {
  std::size_t n = 0;
  for (const Finding& finding : findings)
    if (finding.severity == severity) ++n;
  return n;
}

bool AnalysisResult::has_finding_at_least(diag::Severity threshold) const {
  for (const Finding& finding : findings)
    if (finding.severity >= threshold) return true;
  return false;
}

std::string AnalysisResult::summary() const {
  return std::to_string(findings.size()) + " finding(s): " +
         std::to_string(error_count()) + " error(s), " +
         std::to_string(warning_count()) + " warning(s), " +
         std::to_string(note_count()) + " note(s); " +
         std::to_string(rules_run) + " rule(s) run";
}

AnalysisResult analyze(const Netlist& nl, const AnalysisOptions& options,
                       const diag::Diagnostics* parse_diags,
                       const RuleRegistry& registry,
                       const DataflowFacts* dataflow) {
  std::vector<const AnalysisRule*> selected;
  if (options.enabled_rules.empty()) {
    for (const auto& rule : registry.rules()) selected.push_back(rule.get());
  } else {
    for (const std::string& id : options.enabled_rules) {
      const AnalysisRule* rule = registry.find(id);
      if (rule == nullptr) {
        std::string known;
        for (const auto& r : registry.rules()) {
          if (!known.empty()) known += ", ";
          known += r->info().id;
        }
        throw std::invalid_argument("unknown analysis rule '" + id +
                                    "' (known rules: " + known + ")");
      }
      selected.push_back(rule);
    }
  }

  AnalysisContext context{nl, options, parse_diags};
  context.dataflow = dataflow;
  AnalysisResult result;
  for (const AnalysisRule* rule : selected) {
    rule->run(context, result.findings);
    ++result.rules_run;
  }
  return result;
}

void emit(const AnalysisResult& result, diag::Diagnostics& diags,
          const std::string& file) {
  for (const Finding& finding : result.findings) {
    std::string message = "[" + finding.rule + "] " + finding.message;
    if (!finding.fix_hint.empty()) message += " (fix: " + finding.fix_hint + ")";
    diags.report(finding.severity, std::move(message), {file, 0, 0});
  }
}

void require_acyclic(const Netlist& nl) {
  const std::vector<CombinationalScc> sccs = combinational_sccs(nl);
  if (sccs.empty()) return;
  throw StructuralDefectError(
      "netlist has " + std::to_string(sccs.size()) +
      " combinational cycle(s); first: " + describe_cycle(nl, sccs.front()) +
      " (run 'netrev lint' for the full report, or load with --permissive to "
      "break cycles)");
}

CycleBreakResult break_combinational_cycles(const Netlist& nl,
                                            diag::Diagnostics& diags) {
  CycleBreakResult result;
  Netlist& out = result.netlist;
  out.set_name(nl.name());

  // Nets first, preserving ids, names, and port roles.
  for (std::size_t i = 0; i < nl.net_count(); ++i) {
    const netlist::Net& net = nl.net(nl.net_id_at(i));
    const NetId id = out.add_net(net.name);
    if (net.is_primary_input) out.mark_primary_input(id);
    if (net.is_primary_output) out.mark_primary_output(id);
  }

  // One cut per cycle: the first in-cycle input of the cycle's first gate is
  // rewired to a fresh constant-0 net.
  struct Cut {
    std::size_t input_pos;
    NetId replacement;
  };
  std::unordered_map<std::uint32_t, Cut> cuts;  // keyed by gate id
  std::vector<NetId> cut_nets;
  for (const CombinationalScc& scc : combinational_sccs(nl)) {
    std::unordered_set<std::uint32_t> members;
    for (GateId g : scc.gates) members.insert(g.value());

    const GateId victim = scc.gates.front();
    const netlist::Gate& gate = nl.gate(victim);
    for (std::size_t pos = 0; pos < gate.inputs.size(); ++pos) {
      const auto drv = nl.driver_of(gate.inputs[pos]);
      if (!drv || !members.contains(drv->value())) continue;

      std::string name = "__cut" + std::to_string(result.cycles_broken);
      while (out.find_net(name)) name += "_";
      const NetId replacement = out.add_net(name);
      cuts.emplace(victim.value(), Cut{pos, replacement});
      cut_nets.push_back(replacement);
      ++result.cycles_broken;
      diags.warning("broke combinational cycle of " +
                    std::to_string(scc.gates.size()) +
                    " gate(s) (" + describe_cycle(nl, scc) +
                    "): input '" + nl.net(gate.inputs[pos]).name +
                    "' of the gate driving '" + nl.net(gate.output).name +
                    "' rewired to constant 0");
      break;
    }
  }

  // Gates in original file order (grouping depends on it); the tie-off
  // constants append after, so no original line shifts.
  for (std::size_t g = 0; g < nl.gate_count(); ++g) {
    const netlist::Gate& gate = nl.gate(nl.gate_id_at(g));
    std::vector<NetId> inputs = gate.inputs;
    if (const auto cut = cuts.find(static_cast<std::uint32_t>(g));
        cut != cuts.end())
      inputs[cut->second.input_pos] = cut->second.replacement;
    out.add_gate(gate.type, gate.output, inputs);
  }
  for (NetId net : cut_nets) out.add_gate(GateType::kConst0, net, {});
  return result;
}

}  // namespace netrev::analysis
