// Rule registry: owns AnalysisRule instances, preserves registration order,
// and rejects duplicate ids.  `builtin()` is the engine's stock rule set
// (~8 structural/logic/signal checks); callers compose their own registry to
// add project-specific rules.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "analysis/rule.h"

namespace netrev::analysis {

class RuleRegistry {
 public:
  // Throws std::invalid_argument if a rule with the same id is registered.
  void add(std::unique_ptr<AnalysisRule> rule);

  // nullptr if no rule has this id.
  const AnalysisRule* find(std::string_view id) const;

  // All rules in registration order.
  const std::vector<std::unique_ptr<AnalysisRule>>& rules() const {
    return rules_;
  }

  // The stock rule set, constructed once per process:
  //   comb-cycle, multi-driven, undriven-net, dead-logic, const-foldable,
  //   degenerate-gate, high-fanout, dff-self-loop, plus the dataflow-backed
  //   rules const-net, stuck-ff, redundant-mux, mixed-domain-word
  static const RuleRegistry& builtin();

 private:
  std::vector<std::unique_ptr<AnalysisRule>> rules_;
};

// Registers the stock rules into `registry` (exposed so custom registries can
// start from the builtin set).  Includes the dataflow rules below.
void register_builtin_rules(RuleRegistry& registry);

// Registers only the rules built on the dataflow/domain engines
// (dataflow_rules.cpp): const-net, stuck-ff, redundant-mux,
// mixed-domain-word.
void register_dataflow_rules(RuleRegistry& registry);

}  // namespace netrev::analysis
