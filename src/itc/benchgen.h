// Assembly of one synthetic ITC99-style benchmark from its profile:
// primary inputs, pre-created flop-output nets (register names preserved),
// word blocks separated by glue logic and scalar registers, decoy control
// structures, size top-up filler, output reduction trees, and the flops.
#pragma once

#include <unordered_map>

#include "itc/profile.h"
#include "itc/wordgen.h"
#include "netlist/netlist.h"

namespace netrev::itc {

struct GeneratedBenchmark {
  netlist::Netlist netlist;
  BenchmarkProfile profile;
  // Ground truth for tests: D-input nets of each planned word, by name.
  // The identification algorithms never see this — they work from the
  // netlist alone.
  std::unordered_map<std::string, std::vector<netlist::NetId>> word_bits;
  // Control signals embedded in word structures (for tests/examples).
  std::vector<netlist::NetId> embedded_controls;
};

// Deterministic: equal profiles (including seed) give identical netlists.
// Throws std::invalid_argument on invalid profiles; the produced netlist is
// guaranteed to pass netlist::validate().
GeneratedBenchmark generate_benchmark(const BenchmarkProfile& profile);

}  // namespace netrev::itc
