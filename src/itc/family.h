// The synthetic ITC99-style benchmark family b03s..b18s.
//
// Each profile is calibrated to its Table 1 row (see DESIGN.md §3): size
// targets, number of reference words, word widths, and — through the word
// kinds — the Base/Ours outcome mix the paper reports for that benchmark.
#pragma once

#include <string>
#include <vector>

#include "itc/benchgen.h"
#include "itc/profile.h"

namespace netrev::itc {

// All twelve profiles in the paper's row order.
std::vector<BenchmarkProfile> itc99s_profiles();

// The giant scaling family b19s..b21s (~260K, ~1M, and ~2M gates).  These
// exist for performance work — the million-gate identify sweeps in
// BENCH_core.json and the check.sh smoke gate — and have no Table 1 row, so
// they are deliberately NOT part of itc99s_profiles() (the Table 1 harness
// iterates that list).  Resolve them by name via profile_by_name /
// build_benchmark like any other benchmark.
std::vector<BenchmarkProfile> giant_profiles();

// Profile by name ("b03s".."b18s" plus the giants "b19s".."b21s"); throws
// std::invalid_argument on unknown names.
BenchmarkProfile profile_by_name(const std::string& name);

// Convenience: generate one benchmark by name.
GeneratedBenchmark build_benchmark(const std::string& name);

}  // namespace netrev::itc
