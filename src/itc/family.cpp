#include "itc/family.h"

#include <stdexcept>

namespace netrev::itc {

namespace {

// Shorthand constructors for word plans.
WordPlan clean(std::string name, std::size_t width) {
  WordPlan plan;
  plan.kind = WordKind::kClean;
  plan.name = std::move(name);
  plan.width = width;
  return plan;
}

WordPlan ctrl_from_partial(std::string name, std::size_t width,
                           std::size_t plain_bits) {
  WordPlan plan;
  plan.kind = WordKind::kControlFromPartial;
  plan.name = std::move(name);
  plan.width = width;
  plan.plain_bits = plain_bits;
  return plan;
}

WordPlan ctrl_from_nf(std::string name, std::size_t width) {
  WordPlan plan;
  plan.kind = WordKind::kControlFromNotFound;
  plan.name = std::move(name);
  plan.width = width;
  return plan;
}

WordPlan ctrl_pair_from_partial(std::string name, std::size_t width,
                                std::size_t plain_bits) {
  WordPlan plan;
  plan.kind = WordKind::kControlPairFromPartial;
  plan.name = std::move(name);
  plan.width = width;
  plan.plain_bits = plain_bits;
  return plan;
}

WordPlan partial_both(std::string name, std::size_t width,
                      std::size_t pieces) {
  WordPlan plan;
  plan.kind = WordKind::kPartialBoth;
  plan.name = std::move(name);
  plan.width = width;
  plan.pieces = pieces;
  return plan;
}

WordPlan partial_improved(std::string name, std::size_t width,
                          std::size_t plain_bits) {
  WordPlan plan;
  plan.kind = WordKind::kPartialImproved;
  plan.name = std::move(name);
  plan.width = width;
  plan.plain_bits = plain_bits;
  return plan;
}

WordPlan rescued(std::string name, std::size_t width,
                 std::size_t ctrl_cluster_bits) {
  WordPlan plan;
  plan.kind = WordKind::kRescuedToPartial;
  plan.name = std::move(name);
  plan.width = width;
  plan.plain_bits = ctrl_cluster_bits;
  return plan;
}

WordPlan hetero(std::string name, std::size_t width) {
  WordPlan plan;
  plan.kind = WordKind::kNotFoundBoth;
  plan.name = std::move(name);
  plan.width = width;
  return plan;
}

// Adds `count` clean words named <stem>0.. with widths cycling over `widths`.
void add_clean_batch(BenchmarkProfile& profile, const std::string& stem,
                     std::size_t count,
                     const std::vector<std::size_t>& widths) {
  for (std::size_t i = 0; i < count; ++i)
    profile.words.push_back(
        clean(stem + std::to_string(i), widths[i % widths.size()]));
}

BenchmarkProfile b03s() {
  BenchmarkProfile p;
  p.name = "b03s";
  p.seed = 0xB03;
  p.target_gates = 122;
  p.target_flops = 30;
  p.scalar_registers = 8;
  p.words = {clean("CODA0", 3), clean("CODA1", 3), clean("RU2", 3),
             clean("RU3", 3),   clean("GRANT", 3),
             ctrl_from_partial("CODA_OUT", 3, 2), hetero("STATO", 4)};
  return p;
}

BenchmarkProfile b04s() {
  BenchmarkProfile p;
  p.name = "b04s";
  p.seed = 0xB04;
  p.target_gates = 652;
  p.target_flops = 66;
  p.scalar_registers = 0;
  p.words = {clean("RMAX", 8),  clean("RMIN", 8),    clean("RLAST", 8),
             clean("REG1", 7),  clean("REG2", 7),    clean("REG3", 7),
             clean("REG4", 7),  ctrl_from_partial("DATO_OUT", 8, 5),
             hetero("STATO", 6)};
  return p;
}

BenchmarkProfile b05s() {
  BenchmarkProfile p;
  p.name = "b05s";
  p.seed = 0xB05;
  p.target_gates = 927;
  p.target_flops = 34;
  p.scalar_registers = 3;
  p.words = {clean("RES", 7), clean("CONT1", 6), clean("CONT2", 6),
             clean("TEMP", 6), hetero("STATO", 6)};
  return p;
}

BenchmarkProfile b07s() {
  BenchmarkProfile p;
  p.name = "b07s";
  p.seed = 0xB07;
  p.target_gates = 383;
  p.target_flops = 49;
  p.scalar_registers = 0;
  p.decoy_control_words = 1;
  p.words = {clean("PUNTI", 8),  clean("CAR", 8),  clean("LOSS", 7),
             clean("TEMP", 7),   partial_both("X1", 6, 2),
             partial_both("X2", 6, 2), hetero("STATO", 7)};
  return p;
}

BenchmarkProfile b08s() {
  BenchmarkProfile p;
  p.name = "b08s";
  p.seed = 0xB08;
  p.target_gates = 149;
  p.target_flops = 21;
  p.scalar_registers = 0;
  p.decoy_control_words = 1;
  p.words = {clean("IN_R", 4), clean("OUT_R", 4),
             ctrl_from_partial("MAR", 4, 2), ctrl_from_partial("MBR", 5, 3),
             hetero("STATO", 4)};
  return p;
}

BenchmarkProfile b11s() {
  BenchmarkProfile p;
  p.name = "b11s";
  p.seed = 0xB11;
  p.target_gates = 726;
  p.target_flops = 31;
  p.scalar_registers = 0;
  p.words = {clean("R1", 6), clean("R2", 6), clean("CONT", 6),
             partial_both("X_REGI", 6, 3), partial_both("STATO_D", 7, 4)};
  return p;
}

BenchmarkProfile b12s() {
  BenchmarkProfile p;
  p.name = "b12s";
  p.seed = 0xB12;
  p.target_gates = 944;
  p.target_flops = 121;
  p.scalar_registers = 5;
  p.decoy_control_words = 2;
  // 38 clean words: 9 of width 3, 29 of width 2 (85 bits).
  for (std::size_t i = 0; i < 9; ++i)
    p.words.push_back(clean("GAMMA" + std::to_string(i), 3));
  for (std::size_t i = 0; i < 29; ++i)
    p.words.push_back(clean("WL" + std::to_string(i), 2));
  p.words.push_back(ctrl_from_partial("SOUND", 4, 3));
  p.words.push_back(ctrl_from_partial("PLAY", 4, 3));
  p.words.push_back(ctrl_from_partial("COUNT", 4, 3));
  p.words.push_back(ctrl_from_nf("ADDR", 3));
  p.words.push_back(partial_both("SCAN", 4, 2));
  p.words.push_back(rescued("MEMDATA", 6, 5));
  p.words.push_back(hetero("STATE1", 3));
  p.words.push_back(hetero("STATE2", 3));
  return p;
}

BenchmarkProfile b13s() {
  BenchmarkProfile p;
  p.name = "b13s";
  p.seed = 0xB13;
  p.target_gates = 289;
  p.target_flops = 53;
  p.scalar_registers = 16;
  p.words = {clean("DOUT", 5),
             clean("SHIFTREG", 5),
             ctrl_from_nf("CANALE", 4),
             partial_both("CONTA_TMP", 4, 3),
             partial_both("ITFC_STATE", 4, 3),
             partial_improved("LOAD_R", 5, 2),
             hetero("STATO", 10)};
  return p;
}

BenchmarkProfile b14s() {
  BenchmarkProfile p;
  p.name = "b14s";
  p.seed = 0xB14;
  p.target_gates = 9767;
  p.target_flops = 245;
  p.scalar_registers = 4;
  p.decoy_control_words = 3;
  p.words = {clean("REG0", 30),  clean("REG1", 30), clean("REG2", 30),
             clean("REG3", 30),  ctrl_from_partial("DATAOUT", 32, 28),
             partial_both("ADDR_R", 30, 3), partial_both("B", 30, 3),
             partial_both("DMEM", 29, 3)};
  return p;
}

BenchmarkProfile b15s() {
  BenchmarkProfile p;
  p.name = "b15s";
  p.seed = 0xB15;
  p.target_gates = 8367;
  p.target_flops = 449;
  p.scalar_registers = 11;
  add_clean_batch(p, "EREG", 22, {14});
  p.words.push_back(ctrl_from_partial("DATAOUT0", 14, 13));
  p.words.push_back(ctrl_from_partial("DATAOUT1", 14, 13));
  p.words.push_back(ctrl_from_nf("PRELD0", 13));
  p.words.push_back(ctrl_from_nf("PRELD1", 13));
  p.words.push_back(partial_both("QREG0", 13, 3));
  p.words.push_back(partial_both("QREG1", 13, 3));
  p.words.push_back(partial_both("QREG2", 13, 3));
  p.words.push_back(partial_both("QREG3", 13, 3));
  p.words.push_back(partial_both("QREG4", 12, 3));
  p.words.push_back(partial_both("QREG5", 12, 3));
  return p;
}

BenchmarkProfile b17s() {
  BenchmarkProfile p;
  p.name = "b17s";
  p.seed = 0xB17;
  p.target_gates = 30777;
  p.target_flops = 1415;
  p.scalar_registers = 37;
  p.decoy_control_words = 12;
  add_clean_batch(p, "CREG", 36, {15});
  add_clean_batch(p, "DREG", 32, {14});
  p.words.push_back(ctrl_from_partial("DATAOUT", 14, 12));
  for (std::size_t i = 0; i < 4; ++i)
    p.words.push_back(ctrl_from_nf("PRELD" + std::to_string(i), 13));
  p.words.push_back(rescued("MARADDR", 12, 3));
  for (std::size_t i = 0; i < 23; ++i)
    p.words.push_back(partial_both("QREG" + std::to_string(i), 13, 3));
  p.words.push_back(hetero("CSTATE", 13));
  return p;
}

BenchmarkProfile b18s() {
  BenchmarkProfile p;
  p.name = "b18s";
  p.seed = 0xB18;
  p.target_gates = 111241;
  p.target_flops = 3320;
  p.scalar_registers = 172;
  p.decoy_control_words = 21;
  add_clean_batch(p, "CREG", 112, {15});
  for (std::size_t i = 0; i < 7; ++i)
    p.words.push_back(
        ctrl_from_partial("DOUT" + std::to_string(i), 15, 12));
  for (std::size_t i = 0; i < 3; ++i)
    p.words.push_back(
        ctrl_pair_from_partial("GATED" + std::to_string(i), 15, 12));
  p.words.push_back(ctrl_from_nf("PRELD0", 14));
  p.words.push_back(ctrl_from_nf("PRELD1", 14));
  for (std::size_t i = 0; i < 78; ++i)
    p.words.push_back(partial_both("QREG" + std::to_string(i), 15, 3));
  for (std::size_t i = 0; i < 10; ++i)
    p.words.push_back(hetero("FSM" + std::to_string(i), 12));
  return p;
}

// One giant scaling profile.  The word-plan mix mirrors the large Table 1
// rows (mostly clean words, a sprinkle of control-unified and fragmented
// ones) scaled by `word_groups`; everything past the words is size top-up
// filler, so target_gates — not the plan — dictates the netlist size.
BenchmarkProfile giant(std::string name, std::uint64_t seed,
                       std::size_t target_gates, std::size_t word_groups) {
  BenchmarkProfile p;
  p.name = std::move(name);
  p.seed = seed;
  p.target_gates = target_gates;
  p.scalar_registers = 64;
  p.decoy_control_words = 4;
  add_clean_batch(p, "GREG", word_groups, {16, 12, 8});
  for (std::size_t i = 0; i < word_groups / 8; ++i)
    p.words.push_back(
        ctrl_from_partial("GDOUT" + std::to_string(i), 16, 12));
  for (std::size_t i = 0; i < word_groups / 8; ++i)
    p.words.push_back(partial_both("GQREG" + std::to_string(i), 12, 3));
  p.words.push_back(ctrl_from_nf("GPRELD", 14));
  p.words.push_back(hetero("GFSM", 12));
  p.target_flops = p.reference_bit_count() + p.scalar_registers;
  return p;
}

}  // namespace

std::vector<BenchmarkProfile> itc99s_profiles() {
  return {b03s(), b04s(), b05s(), b07s(), b08s(), b11s(),
          b12s(), b13s(), b14s(), b15s(), b17s(), b18s()};
}

std::vector<BenchmarkProfile> giant_profiles() {
  return {giant("b19s", 0xB19, 262144, 96),
          giant("b20s", 0xB20, 1048576, 256),
          giant("b21s", 0xB21, 2097152, 384)};
}

BenchmarkProfile profile_by_name(const std::string& name) {
  for (BenchmarkProfile& profile : itc99s_profiles())
    if (profile.name == name) return profile;
  for (BenchmarkProfile& profile : giant_profiles())
    if (profile.name == name) return profile;
  throw std::invalid_argument("unknown benchmark: " + name);
}

GeneratedBenchmark build_benchmark(const std::string& name) {
  return generate_benchmark(profile_by_name(name));
}

}  // namespace netrev::itc
