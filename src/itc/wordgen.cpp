#include "itc/wordgen.h"

#include "common/contracts.h"

namespace netrev::itc {

using netlist::GateType;
using netlist::NetId;
using rtl::GateSpec;
using rtl::make_and;
using rtl::make_nand;
using rtl::make_nor;
using rtl::make_not;
using rtl::make_or;
using rtl::make_xnor;
using rtl::make_xor;

// Per-cluster shape state: the shared select cone and a stable window into
// the source pools.
struct WordForge::ClusterContext {
  std::size_t shape = 0;
  NetId sel = NetId::invalid();
  NetId not_sel = NetId::invalid();
  std::size_t src_off = 0;
};

void WordForge::set_pools(std::vector<NetId> flop_pool,
                          std::vector<NetId> pi_pool) {
  NETREV_REQUIRE(flop_pool.size() >= 8);
  NETREV_REQUIRE(pi_pool.size() >= 8);
  flop_pool_ = std::move(flop_pool);
  pi_pool_ = std::move(pi_pool);
}

namespace {

NetId pick(const std::vector<NetId>& pool, std::size_t k) {
  NETREV_REQUIRE(!pool.empty());
  return pool[k % pool.size()];
}

}  // namespace

NetId WordForge::make_control_signal() {
  const NetId p1 = pick(pi_pool_, pi_offset_++);
  const NetId p2 = pick(pi_pool_, pi_offset_++);
  const NetId p3 = pick(pi_pool_, pi_offset_++);
  const NetId t = make_nand(*namer_, p1, p2);
  return make_nor(*namer_, t, p3);
}

namespace {

// The six mutually-alien plain cone shapes (see wordgen.h).  Each returns
// the two second-level subtree roots for one bit.
struct PlainShapeInputs {
  NetId x, y, x2, y2;   // flop-pool sources, bit-indexed
  NetId sel, not_sel;   // shared across the cluster
};

std::pair<NetId, NetId> emit_plain_shape(rtl::NetNamer& namer,
                                         std::size_t shape,
                                         const PlainShapeInputs& in) {
  switch (shape % WordForge::kPlainShapeCount) {
    case 0:  // mux-nand (Figure 1's similar subtrees)
      return {make_nand(namer, in.x, in.not_sel), make_nand(namer, in.y, in.sel)};
    case 1:  // nor-mux
      return {make_nor(namer, in.x, in.sel), make_nor(namer, in.y, in.not_sel)};
    case 2:  // and/or blend
      return {make_and(namer, in.x, in.y), make_or(namer, in.x2, in.y2)};
    case 3:  // xor + masked nand
      return {make_xor(namer, in.x, in.y),
              make_nand(namer, in.x2, make_not(namer, in.y2))};
    case 4:  // masked and + nor
      return {make_and(namer, in.x, make_not(namer, in.y)),
              make_nor(namer, in.x2, in.y2)};
    default:  // xnor + masked or
      return {make_xnor(namer, in.x, in.y),
              make_or(namer, in.x2, make_not(namer, in.y2))};
  }
}

}  // namespace

namespace {
constexpr std::size_t kGarnishVariants = 6;
}

EmittedWord WordForge::emit_word(const WordPlan& plan, std::size_t word_index) {
  EmittedWord out;
  std::vector<GateSpec> roots(plan.width);

  const auto make_cluster = [&](std::size_t shape) {
    ClusterContext cx;
    cx.shape = shape % kPlainShapeCount;
    cx.sel = pick(pi_pool_, pi_offset_++);
    cx.not_sel = make_not(*namer_, cx.sel);
    cx.src_off = source_offset_;
    source_offset_ += plan.width + 3;
    return cx;
  };

  const auto plain_pair = [&](const ClusterContext& cx, std::size_t bit) {
    PlainShapeInputs in;
    in.x = pick(flop_pool_, cx.src_off + bit);
    in.y = pick(flop_pool_, cx.src_off + bit + 7);
    in.x2 = pick(flop_pool_, cx.src_off + bit + 13);
    in.y2 = pick(flop_pool_, cx.src_off + bit + 19);
    in.sel = cx.sel;
    in.not_sel = cx.not_sel;
    return emit_plain_shape(*namer_, cx.shape, in);
  };

  // Per-bit garnish g over PI sources; the variant rotates so adjacent bits
  // never share a dissimilar-subtree shape.
  const auto garnish_term = [&](std::size_t variant) {
    const NetId z1 = pick(pi_pool_, pi_offset_++);
    const NetId z2 = pick(pi_pool_, pi_offset_++);
    switch (variant % kGarnishVariants) {
      case 0: return z1;
      case 1: return make_not(*namer_, z1);
      case 2: return make_and(*namer_, z1, z2);
      case 3: return make_or(*namer_, z1, z2);
      case 4: return make_xor(*namer_, z1, z2);
      default: return make_nor(*namer_, z1, z2);
    }
  };

  // Dissimilar subtree killed by ctrl = 0 (its NAND goes to constant 1,
  // which the root NAND then drops).
  const auto single_garnish = [&](NetId ctrl, std::size_t variant) {
    return make_nand(*namer_, ctrl, garnish_term(variant));
  };

  // Dissimilar subtree killed only by ctrl_a = 0 AND ctrl_b = 0.
  const auto pair_garnish = [&](NetId ctrl_a, NetId ctrl_b,
                                std::size_t variant) {
    const NetId ea = make_nand(*namer_, ctrl_a, garnish_term(variant));
    const NetId eb = make_nand(*namer_, ctrl_b, garnish_term(variant + 2));
    return make_and(*namer_, ea, eb);
  };

  // Heterogeneous one-off cone; returns the pending root NAND(u, v).
  const auto hetero_root = [&](std::size_t bit) {
    NETREV_REQUIRE(bit < 24 && "hetero shape family supports 24 distinct bits");
    NetId u = pick(pi_pool_, pi_offset_++);
    for (std::size_t d = 0; d <= bit % 3; ++d) u = make_not(*namer_, u);
    const NetId a = pick(pi_pool_, pi_offset_++);
    const NetId b = pick(pi_pool_, pi_offset_++);
    NetId v;
    switch (bit % 4) {
      case 0: v = make_and(*namer_, a, b); break;
      case 1: v = make_or(*namer_, a, b); break;
      case 2: v = make_xor(*namer_, a, b); break;
      default: v = make_nor(*namer_, a, b); break;
    }
    if (bit >= 12) v = make_not(*namer_, v);
    return GateSpec{GateType::kNand, {u, v}};
  };

  const auto plain_root = [](std::pair<NetId, NetId> subtrees) {
    return GateSpec{GateType::kNand, {subtrees.first, subtrees.second}};
  };
  const auto garnished_root = [](std::pair<NetId, NetId> subtrees, NetId e) {
    return GateSpec{GateType::kNand, {subtrees.first, subtrees.second, e}};
  };

  switch (plan.kind) {
    case WordKind::kClean: {
      const ClusterContext cx = make_cluster(word_index);
      for (std::size_t i = 0; i < plan.width; ++i)
        roots[i] = plain_root(plain_pair(cx, i));
      break;
    }

    case WordKind::kControlFromPartial:
    case WordKind::kControlFromNotFound: {
      const std::size_t plain_bits =
          plan.kind == WordKind::kControlFromPartial ? plan.plain_bits : 0;
      const NetId ctrl = make_control_signal();
      out.controls_used.push_back(ctrl);
      const ClusterContext cx = make_cluster(word_index);
      for (std::size_t i = 0; i < plan.width; ++i) {
        auto subtrees = plain_pair(cx, i);
        if (i < plain_bits)
          roots[i] = plain_root(subtrees);
        else
          roots[i] = garnished_root(subtrees, single_garnish(ctrl, i));
      }
      break;
    }

    case WordKind::kControlPair:
    case WordKind::kControlPairFromPartial: {
      const std::size_t plain_bits =
          plan.kind == WordKind::kControlPairFromPartial ? plan.plain_bits : 0;
      const NetId ctrl_a = make_control_signal();
      const NetId ctrl_b = make_control_signal();
      out.controls_used.push_back(ctrl_a);
      out.controls_used.push_back(ctrl_b);
      const ClusterContext cx = make_cluster(word_index);
      for (std::size_t i = 0; i < plan.width; ++i) {
        auto subtrees = plain_pair(cx, i);
        if (i < plain_bits)
          roots[i] = plain_root(subtrees);
        else
          roots[i] = garnished_root(subtrees, pair_garnish(ctrl_a, ctrl_b, i));
      }
      break;
    }

    case WordKind::kPartialBoth: {
      // `pieces` clusters of near-equal size with pairwise-alien shapes.
      std::size_t bit = 0;
      for (std::size_t c = 0; c < plan.pieces; ++c) {
        const std::size_t remaining_pieces = plan.pieces - c;
        const std::size_t size =
            (plan.width - bit + remaining_pieces - 1) / remaining_pieces;
        const ClusterContext cx = make_cluster(word_index + c);
        for (std::size_t j = 0; j < size; ++j, ++bit)
          roots[bit] = plain_root(plain_pair(cx, bit));
      }
      break;
    }

    case WordKind::kPartialImproved: {
      const ClusterContext cx1 = make_cluster(word_index);
      for (std::size_t i = 0; i < plan.plain_bits; ++i)
        roots[i] = plain_root(plain_pair(cx1, i));
      const NetId ctrl = make_control_signal();
      out.controls_used.push_back(ctrl);
      const ClusterContext cx2 = make_cluster(word_index + 1);
      for (std::size_t i = plan.plain_bits; i < plan.width; ++i)
        roots[i] =
            garnished_root(plain_pair(cx2, i), single_garnish(ctrl, i));
      break;
    }

    case WordKind::kRescuedToPartial: {
      const NetId ctrl = make_control_signal();
      out.controls_used.push_back(ctrl);
      const ClusterContext cx = make_cluster(word_index);
      for (std::size_t i = 0; i < plan.plain_bits; ++i)
        roots[i] = garnished_root(plain_pair(cx, i), single_garnish(ctrl, i));
      for (std::size_t i = plan.plain_bits; i < plan.width; ++i)
        roots[i] = hetero_root(i - plan.plain_bits);
      break;
    }

    case WordKind::kNotFoundBoth: {
      for (std::size_t i = 0; i < plan.width; ++i) roots[i] = hetero_root(i);
      break;
    }
  }

  // Root gates on consecutive lines — the netlist layout §2.2 keys on.
  out.d_nets.reserve(plan.width);
  for (const GateSpec& root : roots)
    out.d_nets.push_back(rtl::emit(*namer_, root));
  return out;
}

EmittedWord WordForge::emit_decoy_control_word(std::size_t width,
                                               std::size_t word_index) {
  WordPlan plan;
  plan.kind = WordKind::kControlFromNotFound;
  plan.name = "decoy";
  plan.width = width;
  return emit_word(plan, word_index);
}

void WordForge::emit_filler(std::size_t count) {
  if (count == 0) return;
  // Glue logic: a meandering chain over PIs and recent filler nets.  Types
  // exclude NAND so filler lines never extend a word-root group run.
  static constexpr GateType kFillerTypes[] = {
      GateType::kAnd, GateType::kOr,  GateType::kXor,
      GateType::kNor, GateType::kXnor};
  std::vector<NetId> recent;
  NetId last = pick(pi_pool_, pi_offset_++);
  for (std::size_t i = 0; i < count; ++i) {
    const GateType type =
        kFillerTypes[rng_->next_below(std::size(kFillerTypes))];
    const NetId other =
        (recent.size() > 4 && rng_->chance(1, 2))
            ? recent[rng_->next_below(recent.size())]
            : pick(pi_pool_, pi_offset_ + rng_->next_below(pi_pool_.size()));
    if (other == last) {
      const NetId inv = make_not(*namer_, last);
      last = inv;
      continue;
    }
    const NetId ins[] = {last, other};
    last = rtl::make_gate(*namer_, type, ins);
    recent.push_back(last);
    if (recent.size() > 12) recent.erase(recent.begin());
  }
  loose_nets_.push_back(last);
}

netlist::NetId WordForge::emit_scalar_next(NetId q_net) {
  // A toggle-style separator line: D = NOT(Q).
  return make_not(*namer_, q_net);
}

}  // namespace netrev::itc
