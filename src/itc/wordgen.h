// Gate-level word-structure forge.
//
// Emits the fanin-cone structures behind each WordPlan kind (see profile.h)
// directly at gate level, the way they appear in synthesized-and-optimized
// netlists:
//   * a library of mutually-alien "plain" cone shapes (mux-, nor-, and/or-,
//     xor-flavoured) for clean words and fragment clusters;
//   * Figure-1-style dissimilar subtrees NAND-fed by shared internal control
//     signals (single or pair), with per-bit variant combinational garnish so
//     adjacent bits never fully match;
//   * heterogeneous one-off cones for state/control registers.
// Every word's per-bit root gates are emitted on consecutive netlist lines
// (operand logic first), matching the adjacency the §2.2 grouping expects.
#pragma once

#include <vector>

#include "common/rng.h"
#include "itc/profile.h"
#include "rtl/lower_ops.h"
#include "rtl/netnamer.h"

namespace netrev::itc {

struct EmittedWord {
  std::vector<netlist::NetId> d_nets;          // per-bit roots, LSB first
  std::vector<netlist::NetId> controls_used;   // embedded control signals
};

class WordForge {
 public:
  WordForge(rtl::NetNamer& namer, Rng& rng) : namer_(&namer), rng_(&rng) {}

  // Source pools.  `flop_pool` feeds the plain shapes (flop-output leaves);
  // `pi_pool` feeds control cones and garnish (primary-input leaves).  Both
  // must hold at least 8 nets.
  void set_pools(std::vector<netlist::NetId> flop_pool,
                 std::vector<netlist::NetId> pi_pool);

  // A fresh internal control signal: NOR(NAND(p1, p2), p3) over pool PIs —
  // a small cone so the §2.4 dominance filter has something to prune.
  netlist::NetId make_control_signal();

  // Emits the bit cones + consecutive root gates for one word plan.
  // `word_index` seeds shape rotation so neighbouring words differ.
  EmittedWord emit_word(const WordPlan& plan, std::size_t word_index);

  // A control-word structure not tied to flops; returns its root nets (the
  // caller gives them a sink).  Consumes one fresh control signal.
  EmittedWord emit_decoy_control_word(std::size_t width,
                                      std::size_t word_index);

  // `count` gates of miscellaneous glue logic (never NAND, so filler does
  // not extend word-root line runs).  The block's sink net is appended to
  // loose_nets().
  void emit_filler(std::size_t count);

  // Scalar-register next-state logic (a separator line); returns the D net.
  netlist::NetId emit_scalar_next(netlist::NetId q_net);

  const std::vector<netlist::NetId>& loose_nets() const { return loose_nets_; }

  static constexpr std::size_t kPlainShapeCount = 6;

 private:
  struct ClusterContext;  // see wordgen.cpp

  rtl::NetNamer* namer_;
  Rng* rng_;
  std::vector<netlist::NetId> flop_pool_;
  std::vector<netlist::NetId> pi_pool_;
  std::vector<netlist::NetId> loose_nets_;
  std::size_t source_offset_ = 0;
  std::size_t pi_offset_ = 0;
  std::size_t recent_window_start_ = 0;
};

}  // namespace netrev::itc
