#include "itc/profile.h"

#include <stdexcept>

namespace netrev::itc {

std::size_t BenchmarkProfile::expected_control_signals() const {
  std::size_t signals = decoy_control_words;  // one each
  for (const WordPlan& plan : words) {
    switch (plan.kind) {
      case WordKind::kControlFromPartial:
      case WordKind::kControlFromNotFound:
      case WordKind::kPartialImproved:
      case WordKind::kRescuedToPartial:
        signals += 1;
        break;
      case WordKind::kControlPair:
      case WordKind::kControlPairFromPartial:
        signals += 2;
        break;
      default:
        break;
    }
  }
  return signals;
}

void validate_profile(const BenchmarkProfile& profile) {
  const auto fail = [&](const std::string& what) {
    throw std::invalid_argument("profile " + profile.name + ": " + what);
  };
  if (profile.name.empty()) fail("empty name");

  std::size_t flops = profile.scalar_registers;
  for (const WordPlan& plan : profile.words) {
    if (plan.name.empty()) fail("unnamed word");
    if (plan.width < 2) fail("word " + plan.name + " narrower than 2 bits");
    flops += plan.width;
    switch (plan.kind) {
      case WordKind::kControlFromPartial:
      case WordKind::kControlPairFromPartial:
      case WordKind::kPartialImproved:
      case WordKind::kRescuedToPartial:
        if (plan.plain_bits < 1 || plan.plain_bits >= plan.width)
          fail("word " + plan.name + " needs 1 <= plain_bits < width");
        break;
      case WordKind::kPartialBoth:
        if (plan.pieces < 2 || plan.pieces > plan.width)
          fail("word " + plan.name + " needs 2 <= pieces <= width");
        break;
      default:
        break;
    }
  }
  if (profile.target_flops != 0 && flops > profile.target_flops)
    fail("flop budget exceeded: plan needs " + std::to_string(flops) +
         ", target is " + std::to_string(profile.target_flops));
}

}  // namespace netrev::itc
