#include "itc/benchgen.h"

#include <algorithm>

#include "common/contracts.h"
#include "netlist/validate.h"

namespace netrev::itc {

using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

namespace {

// OR-reduce a chunked set of nets into named primary outputs so no logic is
// left floating.
void reduce_to_outputs(Netlist& nl, rtl::NetNamer& namer,
                       const std::vector<NetId>& nets,
                       const std::string& prefix) {
  constexpr std::size_t kChunk = 8;
  std::size_t output_index = 0;
  for (std::size_t start = 0; start < nets.size(); start += kChunk) {
    const std::size_t end = std::min(nets.size(), start + kChunk);
    const std::size_t n = end - start;
    const NetId out =
        nl.add_net(prefix + "_" + std::to_string(output_index++));
    if (n == 1) {
      nl.add_gate(GateType::kBuf, out, {nets[start]});
    } else {
      std::vector<NetId> ins(nets.begin() + static_cast<std::ptrdiff_t>(start),
                             nets.begin() + static_cast<std::ptrdiff_t>(end));
      nl.add_gate(GateType::kOr, out, ins);
    }
    nl.mark_primary_output(out);
  }
  (void)namer;
}

}  // namespace

GeneratedBenchmark generate_benchmark(const BenchmarkProfile& profile) {
  validate_profile(profile);

  GeneratedBenchmark result;
  result.profile = profile;
  Netlist& nl = result.netlist;
  nl.set_name(profile.name);

  rtl::NetNamer namer(nl, 200);
  Rng rng(profile.seed);

  // Primary inputs: a data/control pool sized with the design.
  const std::size_t pi_count =
      std::max<std::size_t>(16, profile.words.size() / 4 + 12);
  std::vector<NetId> pis;
  pis.reserve(pi_count);
  for (std::size_t i = 0; i < pi_count; ++i) {
    const NetId pi = nl.add_net("IN" + std::to_string(i));
    nl.mark_primary_input(pi);
    pis.push_back(pi);
  }

  // Pre-create every flop output net so word cones can read register values
  // regardless of emission order (as the real netlists do).
  std::vector<NetId> flop_pool;
  std::vector<std::pair<NetId, const WordPlan*>> word_q_nets;  // per bit
  for (const WordPlan& plan : profile.words) {
    for (std::size_t i = 0; i < plan.width; ++i) {
      const NetId q =
          namer.named(rtl::flop_output_name(plan.name, i, plan.width));
      flop_pool.push_back(q);
      word_q_nets.emplace_back(q, &plan);
    }
  }
  std::vector<NetId> scalar_q_nets;
  for (std::size_t k = 0; k < profile.scalar_registers; ++k)
    scalar_q_nets.push_back(
        namer.named(rtl::flop_output_name("TFLAG" + std::to_string(k), 0, 1)));

  WordForge forge(namer, rng);
  forge.set_pools(flop_pool, pis);

  // --- word blocks with separators ---------------------------------------
  std::vector<std::pair<NetId, NetId>> pending_flops;  // (Q, D)
  std::vector<NetId> decoy_roots;
  std::size_t scalar_index = 0;
  std::size_t decoys_left = profile.decoy_control_words;
  std::size_t q_cursor = 0;

  for (std::size_t wi = 0; wi < profile.words.size(); ++wi) {
    const WordPlan& plan = profile.words[wi];

    forge.emit_filler(4 + rng.next_below(5));

    if (scalar_index < scalar_q_nets.size() && wi % 2 == 0) {
      const NetId q = scalar_q_nets[scalar_index++];
      pending_flops.emplace_back(q, forge.emit_scalar_next(q));
    }
    if (decoys_left > 0 && wi % 3 == 1) {
      --decoys_left;
      EmittedWord decoy = forge.emit_decoy_control_word(
          3 + (decoys_left % 2), profile.words.size() + decoys_left);
      decoy_roots.insert(decoy_roots.end(), decoy.d_nets.begin(),
                         decoy.d_nets.end());
      result.embedded_controls.insert(result.embedded_controls.end(),
                                      decoy.controls_used.begin(),
                                      decoy.controls_used.end());
      // Keep decoy root runs from extending into the word block's NANDs.
      forge.emit_filler(3);
    }

    EmittedWord word = forge.emit_word(plan, wi);
    NETREV_ASSERT(word.d_nets.size() == plan.width);
    for (std::size_t i = 0; i < plan.width; ++i)
      pending_flops.emplace_back(word_q_nets[q_cursor + i].first,
                                 word.d_nets[i]);
    q_cursor += plan.width;
    result.word_bits.emplace(plan.name, std::move(word.d_nets));
    result.embedded_controls.insert(result.embedded_controls.end(),
                                    word.controls_used.begin(),
                                    word.controls_used.end());
  }

  // Remaining scalars and decoys.
  while (scalar_index < scalar_q_nets.size()) {
    const NetId q = scalar_q_nets[scalar_index++];
    pending_flops.emplace_back(q, forge.emit_scalar_next(q));
  }
  while (decoys_left > 0) {
    --decoys_left;
    EmittedWord decoy = forge.emit_decoy_control_word(
        3 + (decoys_left % 2), profile.words.size() + decoys_left);
    decoy_roots.insert(decoy_roots.end(), decoy.d_nets.begin(),
                       decoy.d_nets.end());
    result.embedded_controls.insert(result.embedded_controls.end(),
                                    decoy.controls_used.begin(),
                                    decoy.controls_used.end());
    forge.emit_filler(3);
  }

  // --- size top-up --------------------------------------------------------
  // Fill toward the Table 1 combinational gate target (the flops land on
  // top of this).
  while (nl.gate_count() + pending_flops.size() < profile.target_gates) {
    const std::size_t deficit =
        profile.target_gates - nl.gate_count() - pending_flops.size();
    forge.emit_filler(std::min<std::size_t>(deficit, 400));
  }

  // --- sinks and flops -----------------------------------------------------
  std::vector<NetId> loose = forge.loose_nets();
  loose.insert(loose.end(), decoy_roots.begin(), decoy_roots.end());
  reduce_to_outputs(nl, namer, loose, "TESTO");

  for (const auto& [q, d] : pending_flops)
    nl.add_gate(GateType::kDff, q, {d});

  // Expose unloaded driven nets (word bits no cone happens to read, unread
  // register outputs) as primary outputs, as the real ITC99 netlists do via
  // their port lists.  Without this the designs carry dead logic that the
  // static-analysis engine would rightly flag.
  for (std::size_t i = 0; i < nl.net_count(); ++i) {
    const netlist::NetId id = nl.net_id_at(i);
    const netlist::Net& net = nl.net(id);
    if (net.fanouts.empty() && !net.is_primary_output && !net.is_primary_input)
      nl.mark_primary_output(id);
  }

  // Registers must also be architecturally observable.  The real circuits
  // read every register out through some output cone; this generator's word
  // registers often feed only each other, leaving whole register loops
  // invisible from the ports.  Promote unobservable flop outputs to primary
  // outputs until reverse reachability from the POs (crossing flops) covers
  // the design, so clean benchmarks carry no dead logic.
  while (true) {
    std::vector<bool> live(nl.gate_count(), false);
    std::vector<std::size_t> queue;
    const auto enqueue = [&](NetId net) {
      const auto drv = nl.driver_of(net);
      if (!drv || live[drv->value()]) return;
      live[drv->value()] = true;
      queue.push_back(drv->value());
    };
    for (NetId po : nl.primary_outputs()) enqueue(po);
    while (!queue.empty()) {
      const std::size_t g = queue.back();
      queue.pop_back();
      for (NetId in : nl.gate(nl.gate_id_at(g)).inputs) enqueue(in);
    }
    bool changed = false;
    for (std::size_t g = 0; g < nl.gate_count(); ++g) {
      const netlist::Gate& gate = nl.gate(nl.gate_id_at(g));
      if (live[g] || gate.type != GateType::kDff) continue;
      nl.mark_primary_output(gate.output);
      changed = true;
    }
    if (!changed) break;
  }

  const netlist::ValidationReport report = netlist::validate(nl);
  NETREV_ENSURE(report.ok());
  return result;
}

}  // namespace netrev::itc
