// Calibration profiles for the synthetic ITC99-style benchmark family.
//
// The paper evaluates on the ITC99 gate-level netlists (downloaded from
// cad.polito.it), which are not available in this offline environment.  Per
// DESIGN.md §3 we substitute a deterministic synthetic family b03s..b18s:
// each profile fixes the benchmark's size targets (#gates/#FF from Table 1)
// and — crucially — its *population of word structures*, chosen so that the
// reference-word mix matches what the paper reports per benchmark (how many
// words are cleanly matched, how many need control-signal reduction, how
// many are fragmented or heterogeneous).  The identification algorithms get
// no oracle access to any of this; they see only the flattened netlist.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace netrev::itc {

// How one reference word is realised at the gate level.  The expected
// Base/Ours outcomes below describe the *intent* of each shape; the measured
// outcome always comes from running the real algorithms.
enum class WordKind {
  // All bits share one fanin-cone shape.  Base: full; Ours: full.
  kClean,
  // `plain_bits` leading bits are clean; the rest carry per-bit distinct
  // dissimilar subtrees that one shared control signal (at its controlling
  // value) removes.  Base: partial; Ours: full via 1 signal.
  kControlFromPartial,
  // Every bit carries a distinct control-fed subtree (Figure 1's shape).
  // Base: not found; Ours: full via 1 signal.
  kControlFromNotFound,
  // Like kControlFromNotFound but the subtrees die only when TWO control
  // signals are simultaneously assigned.  Base: not found; Ours: full via a
  // pair assignment (§2.5's two-signal step).
  kControlPair,
  // Like kControlFromPartial but the dissimilar subtrees need a pair.
  kControlPairFromPartial,
  // `pieces` clusters of bits with mutually alien shapes.  Base and Ours
  // both find `pieces` fragments.
  kPartialBoth,
  // A clean cluster of `plain_bits` plus a second cluster (alien shape)
  // unified by a control signal.  Base: 1 + (width - plain_bits) pieces;
  // Ours: 2 pieces.  Improves fragmentation and uses 1 signal.
  kPartialImproved,
  // A control-word cluster of `plain_bits` bits plus heterogeneous loners.
  // Base: not found (all singletons); Ours: partial via 1 signal.
  kRescuedToPartial,
  // Every bit has a unique shape.  Base and Ours: not found.
  kNotFoundBoth,
};

struct WordPlan {
  WordKind kind = WordKind::kClean;
  std::string name;          // register base name
  std::size_t width = 4;
  std::size_t plain_bits = 0;  // see the per-kind meaning above
  std::size_t pieces = 2;      // kPartialBoth only
};

struct BenchmarkProfile {
  std::string name;   // "b03s"
  std::uint64_t seed; // drives filler shapes and source shuffling
  std::size_t target_gates = 0;   // Table 1 "#gates" (approximate target)
  std::size_t target_flops = 0;   // Table 1 "#FF"
  std::size_t scalar_registers = 0;  // single-bit regs (excluded from words)
  // Control-word structures not tied to any named register (their bits feed
  // primary outputs).  Ours unifies them and spends one control signal each;
  // they model CAD-inserted structures outside the golden reference, letting
  // a benchmark report control signals without metric gains (paper's b07).
  std::size_t decoy_control_words = 0;
  std::vector<WordPlan> words;

  std::size_t reference_bit_count() const {
    std::size_t bits = 0;
    for (const WordPlan& plan : words) bits += plan.width;
    return bits;
  }
  // Expected distinct control signals consumed by Ours.
  std::size_t expected_control_signals() const;
};

// Sanity checks (widths vs plain_bits, pieces bounds, flop budget).  Throws
// std::invalid_argument on inconsistency.
void validate_profile(const BenchmarkProfile& profile);

}  // namespace netrev::itc
