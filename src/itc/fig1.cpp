#include "itc/fig1.h"

#include "common/contracts.h"
#include "netlist/validate.h"

namespace netrev::itc {

using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

Fig1Circuit build_fig1_circuit() {
  Fig1Circuit fig;
  Netlist& nl = fig.netlist;
  nl.set_name("b03_fig1");

  const auto pi = [&](const std::string& name) {
    const NetId net = nl.add_net(name);
    nl.mark_primary_input(net);
    return net;
  };
  const auto wire = [&](const std::string& name) { return nl.add_net(name); };
  const auto gate = [&](GateType type, NetId out,
                        std::initializer_list<NetId> ins) {
    nl.add_gate(type, out, ins);
    return out;
  };

  // Primary inputs feeding the shared control cone and the selects.
  const NetId in1 = pi("IN1"), in2 = pi("IN2"), in3 = pi("IN3");
  const NetId in4 = pi("IN4"), in5 = pi("IN5"), in6 = pi("IN6");

  // Source registers visible in the figure: CODA0/CODA1 (selected by the
  // similar subtrees) and RU2/RU3 (selected by the dissimilar ones).  Their
  // own next-state logic is simple XOR roots so they group separately.
  struct SourceReg {
    std::string name;
    NetId q[3];
    NetId d[3];
  };
  SourceReg sources[4] = {{"CODA0", {}, {}}, {"CODA1", {}, {}},
                          {"RU2", {}, {}},   {"RU3", {}, {}}};
  for (auto& src : sources)
    for (int i = 0; i < 3; ++i)
      src.q[i] = wire(src.name + "_reg_" + std::to_string(i) + "_");

  // The red-circled common fanin cone: U223 feeds both control signals, so
  // §2.4 must drop it as dominated.  Both drivers are NORs so that assigning
  // either signal to 0 implies nothing about the other (backward propagation
  // of a 0 through a NOR forces no single input).
  fig.u223 = gate(GateType::kNand, wire("U223"), {in1, in2});
  fig.u201 = gate(GateType::kNor, wire("U201"), {fig.u223, in3});
  fig.u221 = gate(GateType::kNor, wire("U221"), {fig.u223, in4});

  // Selects of the similar (blue-circled) subtrees.
  fig.u202 = gate(GateType::kNot, wire("U202"), {in5});
  fig.u255 = gate(GateType::kNot, wire("U255"), {fig.u202});

  // Similar subtrees per bit: NAND(CODA0_i, U202) and NAND(CODA1_i, U255).
  NetId sim0[3], sim1[3];
  for (int i = 0; i < 3; ++i) {
    sim0[i] = gate(GateType::kNand, wire("U23" + std::to_string(i)),
                   {sources[0].q[i], fig.u202});
    sim1[i] = gate(GateType::kNand, wire("U24" + std::to_string(i)),
                   {sources[1].q[i], fig.u255});
  }

  // Dissimilar subtrees: U201/U221 combined differently per bit.
  //   bit 0: NAND(U201, U221, RU2_0)            -- dies if U201=0 or U221=0
  //   bit 1: NAND(U201, U221, RU3_1, IN6)       -- dies if U201=0 or U221=0
  //   bit 2: NAND(U201, OR(U221, RU3_2))        -- dies only if U201=0
  NetId dis[3];
  dis[0] = gate(GateType::kNand, wire("U250"),
                {fig.u201, fig.u221, sources[2].q[0]});
  dis[1] = gate(GateType::kNand, wire("U251"),
                {fig.u201, fig.u221, sources[3].q[1], in6});
  const NetId or2 =
      gate(GateType::kOr, wire("U252"), {fig.u221, sources[3].q[2]});
  dis[2] = gate(GateType::kNand, wire("U253"), {fig.u201, or2});

  // The three word bits: 3-input NAND roots on consecutive lines.
  for (int i = 0; i < 3; ++i) {
    const NetId bit = gate(GateType::kNand,
                           wire("U21" + std::to_string(5 + i)),
                           {sim0[i], sim1[i], dis[i]});
    fig.word_bits.push_back(bit);
  }

  // Two stray nets on the adjacent lines (U218, U219 in §2.2's narrative):
  // same root gate type, alien structure.
  const NetId stray_a = gate(GateType::kNand, wire("U218"), {in1, in5});
  const NetId stray_b =
      gate(GateType::kNand, wire("U219"), {in2, in4, in5});
  nl.mark_primary_output(stray_a);
  nl.mark_primary_output(stray_b);

  // Next-state logic for the source registers (XOR roots, separate groups).
  for (auto& src : sources)
    for (int i = 0; i < 3; ++i)
      src.d[i] = gate(GateType::kXor,
                      wire(src.name + "_D" + std::to_string(i)),
                      {src.q[i], in3});

  // Flops: the identified word CODA_OUT plus the four source registers.
  for (int i = 0; i < 3; ++i) {
    const NetId q = wire("CODA_OUT_reg_" + std::to_string(i) + "_");
    nl.add_gate(GateType::kDff, q, {fig.word_bits[static_cast<std::size_t>(i)]});
    nl.mark_primary_output(q);
  }
  for (auto& src : sources)
    for (int i = 0; i < 3; ++i)
      nl.add_gate(GateType::kDff, src.q[i], {src.d[i]});

  NETREV_ENSURE(netlist::validate(nl).ok());
  return fig;
}

}  // namespace netrev::itc
