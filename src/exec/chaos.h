// Chaos harness: compiled-in fault-injection checkpoints for proving the
// process-isolation recovery paths with REAL crashes, not simulations.
//
// A chaos spec comes from the NETREV_CHAOS environment variable:
//
//   NETREV_CHAOS=<mode>@<stage>[:<match>]
//
//   mode:  abort  — std::abort() (SIGABRT; survives sanitizer handlers)
//          segv   — raise(SIGSEGV) (note: ASan intercepts this into exit(1))
//          hang   — pause forever (exercises the supervisor watchdog)
//          oom    — allocate-and-touch until the allocator gives up
//                   (exercises RLIMIT_AS; terminates via bad_alloc/SIGKILL)
//   stage: a checkpoint name — "parse", "identify", or "lift"
//   match: optional substring filter against the current chaos scope (the
//          design spec being processed); empty = every hit fires
//
// chaos_point(stage) is called at the entry of each instrumented stage; it
// re-reads the environment on every call (checkpoints sit at stage entry,
// never in hot loops) so tests can setenv/unsetenv around individual runs.
// The scope is thread-local and set via ChaosScope RAII by the batch engine
// (per entry) and the protocol executor (per request), which is what lets a
// single chaos spec poison exactly one entry of a multi-design batch.
//
// The harness is always compiled in: the cost is one getenv per stage entry,
// and a fault path that only exists in special builds is a fault path that
// rots.  With NETREV_CHAOS unset every checkpoint is a cheap no-op.
#pragma once

#include <optional>
#include <string>

namespace netrev::exec {

struct ChaosSpec {
  enum class Mode { kAbort, kSegv, kHang, kOom };
  Mode mode = Mode::kAbort;
  std::string stage;
  std::string match;  // substring of the scope; empty matches everything
};

// Parses "<mode>@<stage>[:<match>]"; nullopt on malformed specs (a typo'd
// spec must never silently disable injection AND never crash the process —
// callers treat nullopt as "no chaos").
std::optional<ChaosSpec> parse_chaos_spec(const std::string& text);

// True when `spec` should fire at checkpoint `stage` under `scope`.
bool chaos_matches(const ChaosSpec& spec, const std::string& stage,
                   const std::string& scope);

// Names the thread's current work item (the design spec) for match filters.
// Nests; restores the previous scope on destruction.
class ChaosScope {
 public:
  explicit ChaosScope(const std::string& scope);
  ~ChaosScope();
  ChaosScope(const ChaosScope&) = delete;
  ChaosScope& operator=(const ChaosScope&) = delete;

 private:
  std::string previous_;
};

const std::string& chaos_scope();

// The checkpoint: reads NETREV_CHAOS and, when the spec matches this stage
// and the thread's scope, injects the configured fault.  abort/segv/oom do
// not return; hang never returns (SIGKILL from the watchdog ends it).
void chaos_point(const char* stage);

}  // namespace netrev::exec
