#include "exec/chaos.h"

#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

namespace netrev::exec {

namespace {

thread_local std::string t_chaos_scope;

[[noreturn]] void inject(ChaosSpec::Mode mode) {
  switch (mode) {
    case ChaosSpec::Mode::kAbort:
      std::abort();
    case ChaosSpec::Mode::kSegv:
      // raise() instead of a null dereference: the crash is the point, UB is
      // not, and sanitizers report a raised signal faithfully.
      std::raise(SIGSEGV);
      std::abort();  // SIGSEGV ignored/blocked: still die loudly
    case ChaosSpec::Mode::kHang:
      // Burn no CPU while hanging so RLIMIT_CPU never rescues a hung worker
      // — only the supervisor's wall-clock watchdog can.
      for (;;) pause();
    case ChaosSpec::Mode::kOom: {
      // Touch every page so the kernel actually commits the allocations;
      // under RLIMIT_AS this ends in bad_alloc (-> std::terminate ->
      // SIGABRT), without it the OOM killer's SIGKILL ends it.
      std::vector<char*> blocks;
      for (;;) {
        char* block = new char[64 << 20];
        std::memset(block, 0xa5, 64 << 20);
        blocks.push_back(block);
      }
    }
  }
  std::abort();
}

}  // namespace

std::optional<ChaosSpec> parse_chaos_spec(const std::string& text) {
  const auto at = text.find('@');
  if (at == std::string::npos || at == 0 || at + 1 == text.size())
    return std::nullopt;
  ChaosSpec spec;
  const std::string mode = text.substr(0, at);
  if (mode == "abort") {
    spec.mode = ChaosSpec::Mode::kAbort;
  } else if (mode == "segv") {
    spec.mode = ChaosSpec::Mode::kSegv;
  } else if (mode == "hang") {
    spec.mode = ChaosSpec::Mode::kHang;
  } else if (mode == "oom") {
    spec.mode = ChaosSpec::Mode::kOom;
  } else {
    return std::nullopt;
  }
  std::string rest = text.substr(at + 1);
  const auto colon = rest.find(':');
  if (colon != std::string::npos) {
    spec.match = rest.substr(colon + 1);
    rest.resize(colon);
  }
  // A stage with a stray '@' can never name a checkpoint; reject it so the
  // typo is loud (nullopt) rather than a silently-dead injection.
  if (rest.empty() || rest.find('@') != std::string::npos) return std::nullopt;
  spec.stage = std::move(rest);
  return spec;
}

bool chaos_matches(const ChaosSpec& spec, const std::string& stage,
                   const std::string& scope) {
  if (spec.stage != stage) return false;
  if (spec.match.empty()) return true;
  return scope.find(spec.match) != std::string::npos;
}

ChaosScope::ChaosScope(const std::string& scope)
    : previous_(std::move(t_chaos_scope)) {
  t_chaos_scope = scope;
}

ChaosScope::~ChaosScope() { t_chaos_scope = std::move(previous_); }

const std::string& chaos_scope() { return t_chaos_scope; }

void chaos_point(const char* stage) {
  const char* env = std::getenv("NETREV_CHAOS");
  if (env == nullptr || *env == '\0') return;
  const auto spec = parse_chaos_spec(env);
  if (!spec) return;
  if (chaos_matches(*spec, stage, t_chaos_scope)) inject(spec->mode);
}

}  // namespace netrev::exec
