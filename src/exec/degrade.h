// The graceful degradation ladder.
//
// When a stage's deadline or work budget trips, identification does not have
// to fail: the paper's own design already orders its machinery by cost, and
// prior art (WordRev, HOST'13) falls back to pure shape-hash grouping when
// deeper matching is unaffordable.  The ladder makes that fallback explicit
// and deterministic — each rung is a strictly cheaper identification
// configuration, tried in order until one completes:
//
//   kFull          the configured technique (depth-4 partial matching with
//                  control-signal reduction — §2 of the paper)
//   kReducedDepth  cone depth capped at 2, single-signal assignments only
//   kBaseline      shape-hash grouping only (the paper's "Base" column)
//   kGroupsOnly    potential-bit groups from the §2.2 line scan — no cone
//                  walks at all, so this rung never trips and always answers
//
// Only resource trips degrade (DeadlineExceededError, ResourceLimitError);
// cancellation and real errors (structural defects, bad input) propagate.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace netrev::exec {

enum class DegradeLevel : std::uint8_t {
  kFull = 0,
  kReducedDepth = 1,
  kBaseline = 2,
  kGroupsOnly = 3,
};

// Stable names used in CLI flags, JSON output, and diagnostics:
// "full", "depth", "baseline", "groups".
const char* degrade_level_name(DegradeLevel level);

// Parses a --degrade value ("off" | "full" | "depth" | "baseline" |
// "groups"); nullopt when the name is unknown.  "off" parses to a disabled
// policy, every other name to an enabled policy with that floor.
struct DegradePolicy;
std::optional<DegradePolicy> parse_degrade_policy(const std::string& name);

// How far identification may fall.  The floor is the lowest rung allowed;
// a disabled policy (or floor == kFull) means trips propagate as errors —
// the pre-ladder behavior.
struct DegradePolicy {
  bool enabled = true;
  DegradeLevel floor = DegradeLevel::kGroupsOnly;

  bool allows(DegradeLevel level) const {
    return enabled && level <= floor;
  }
};

}  // namespace netrev::exec
