// netrev::exec — cooperative cancellation and deadlines.
//
// A long-running pipeline stage must be interruptible for two reasons: the
// caller gave it a wall-clock budget (a Deadline), or an external event
// (SIGINT, a dropped client) asked the whole run to stop (a CancelToken).
// Both are combined into a Checkpoint, the poll point threaded through
// WorkBudget charges, ThreadPool task bodies, parser loops, and every
// wordrec stage.  Polling is cooperative: code calls poll() at natural
// boundaries (a netlist line, a fanin-cone node, an assignment trial) and
// the poll throws CancelledError or DeadlineExceededError, which unwinds
// through parallel_for's deterministic lowest-index rethrow like any other
// stage failure.
//
// Cost model: an unarmed Checkpoint (no token, no deadline — the default
// everywhere) polls in one branch.  Cancellation is one relaxed atomic
// load.  Only an armed deadline reads the clock, so poll points may sit on
// hot paths as long as the *unarmed* cost is what they pay by default;
// ultra-hot paths (per-net cone charges) additionally stride their polls
// (see WorkBudget).
//
// Deadline trips are wall-clock events and therefore not deterministic
// across machines; determinism contracts are phrased one level up (the
// degradation ladder, exec/degrade.h): whatever rung a run lands on, the
// bytes it produces are identical at any job count.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>

namespace netrev::exec {

// Thrown by Checkpoint::poll() when the run's CancelToken was triggered
// (SIGINT, caller shutdown).  Never converted into degraded results: a
// cancelled run is abandoned, not approximated.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("operation cancelled") {}
};

// Thrown by Checkpoint::poll() when the armed deadline has passed.  The
// message is deliberately constant (no elapsed times) so a deadline trip
// recorded in diagnostics or JSON is byte-stable.
class DeadlineExceededError : public std::runtime_error {
 public:
  DeadlineExceededError() : std::runtime_error("deadline exceeded") {}
};

enum class StopReason { kNone, kCancelled, kDeadline };

// Shared cancellation flag.  Copies observe the same flag; the flag is a
// lock-free atomic so request_cancel() is safe from a signal handler
// (provided the token outlives the handler's window — the CLI keeps the
// batch token alive for the whole command).
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return flag_->load(std::memory_order_relaxed);
  }

  // The raw flag, for contexts restricted to async-signal-safe operations
  // (the CLI's SIGINT handler stores through this pointer directly).
  std::atomic<bool>* flag() { return flag_.get(); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

// A wall-clock deadline on the steady clock.  Default-constructed =
// unlimited.  Value type, trivially copyable.
class Deadline {
 public:
  Deadline() = default;

  // A deadline `budget` from now; a zero or negative budget means
  // "unlimited" (the CLI's 0 = no timeout convention).
  static Deadline after(std::chrono::milliseconds budget) {
    Deadline d;
    if (budget.count() > 0) {
      d.limited_ = true;
      d.at_ = std::chrono::steady_clock::now() + budget;
    }
    return d;
  }

  // The earlier of two deadlines (unlimited loses to any limited one).
  static Deadline sooner(const Deadline& a, const Deadline& b) {
    if (!a.limited_) return b;
    if (!b.limited_) return a;
    return a.at_ <= b.at_ ? a : b;
  }

  bool limited() const { return limited_; }
  bool expired() const {
    return limited_ && std::chrono::steady_clock::now() >= at_;
  }

 private:
  bool limited_ = false;
  std::chrono::steady_clock::time_point at_{};
};

// The poll point.  Combines a CancelToken and a Deadline; default
// constructed it is unarmed and polls are a single branch.
class Checkpoint {
 public:
  Checkpoint() = default;
  Checkpoint(CancelToken token, Deadline deadline)
      : token_(std::move(token)), deadline_(deadline), armed_(true) {}

  // True when this checkpoint can ever stop anything — the fast-path guard
  // hot loops test before paying for a clock read.
  bool armed() const { return armed_; }

  StopReason stop_requested() const {
    if (!armed_) return StopReason::kNone;
    if (token_.cancel_requested()) return StopReason::kCancelled;
    if (deadline_.expired()) return StopReason::kDeadline;
    return StopReason::kNone;
  }

  // Throws CancelledError / DeadlineExceededError when a stop is due.
  void poll() const {
    switch (stop_requested()) {
      case StopReason::kNone:
        return;
      case StopReason::kCancelled:
        throw CancelledError();
      case StopReason::kDeadline:
        throw DeadlineExceededError();
    }
  }

 private:
  CancelToken token_;
  Deadline deadline_;
  bool armed_ = false;
};

}  // namespace netrev::exec
