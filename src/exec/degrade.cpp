#include "exec/degrade.h"

namespace netrev::exec {

const char* degrade_level_name(DegradeLevel level) {
  switch (level) {
    case DegradeLevel::kFull:
      return "full";
    case DegradeLevel::kReducedDepth:
      return "depth";
    case DegradeLevel::kBaseline:
      return "baseline";
    case DegradeLevel::kGroupsOnly:
      return "groups";
  }
  return "unknown";
}

std::optional<DegradePolicy> parse_degrade_policy(const std::string& name) {
  DegradePolicy policy;
  if (name == "off") {
    policy.enabled = false;
    return policy;
  }
  if (name == "full") {
    policy.floor = DegradeLevel::kFull;
    return policy;
  }
  if (name == "depth") {
    policy.floor = DegradeLevel::kReducedDepth;
    return policy;
  }
  if (name == "baseline") {
    policy.floor = DegradeLevel::kBaseline;
    return policy;
  }
  if (name == "groups") {
    policy.floor = DegradeLevel::kGroupsOnly;
    return policy;
  }
  return std::nullopt;
}

}  // namespace netrev::exec
