// Simulation-based soundness checks for the circuit-reduction machinery.
//
// The reduction step of the paper (§2.5) assumes a control-signal value and
// derives net constants by forward/backward propagation.  These checkers
// validate, by randomized simulation, that (a) every derived implication is
// logically sound, and (b) a materialized reduced netlist agrees with the
// original whenever the assumption holds.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>

#include "netlist/netlist.h"

namespace netrev::sim {

struct ImplicationCheckResult {
  std::size_t vectors_tried = 0;
  std::size_t vectors_applicable = 0;  // seed assumption held
  std::size_t violations = 0;          // implied value disagreed

  bool ok() const { return violations == 0; }
};

// Samples `vector_count` random (input, state) points.  For each point where
// all `seeds` nets evaluate to their seeded value, verifies that every net in
// `implied` evaluates to its implied value.
ImplicationCheckResult check_implications(
    const netlist::Netlist& nl,
    std::span<const std::pair<netlist::NetId, bool>> seeds,
    const std::unordered_map<netlist::NetId, bool>& implied,
    std::size_t vector_count, std::uint64_t rng_seed);

struct ReductionCheckResult {
  std::size_t vectors_tried = 0;
  std::size_t vectors_applicable = 0;
  std::size_t mismatches = 0;  // a shared net disagreed

  bool ok() const { return mismatches == 0; }
};

// For each sampled point of `original` where the seed assumption holds, drive
// `reduced` with the original's values on the reduced netlist's primary
// inputs and flop outputs (matched by name), and require every net present in
// both designs to carry equal values.
ReductionCheckResult check_reduction_equivalence(
    const netlist::Netlist& original, const netlist::Netlist& reduced,
    std::span<const std::pair<netlist::NetId, bool>> seeds,
    std::size_t vector_count, std::uint64_t rng_seed);

}  // namespace netrev::sim
