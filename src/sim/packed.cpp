#include "sim/packed.h"

#include "common/contracts.h"

namespace netrev::sim {

using netlist::CompactView;
using netlist::GateType;

PackedSimulator::PackedSimulator(const CompactView& view) : view_(&view) {
  NETREV_REQUIRE(view.acyclic());
  values_.assign(view.net_count(), 0);
  next_state_.resize(view.flop_gates().size());
}

void PackedSimulator::set_input_word(std::uint32_t net, std::uint64_t lanes) {
  NETREV_REQUIRE(view_->is_primary_input(net));
  values_[net] = lanes;
}

void PackedSimulator::set_state_word(std::uint32_t q_net,
                                     std::uint64_t lanes) {
  NETREV_REQUIRE(view_->is_flop_output(q_net));
  values_[q_net] = lanes;
}

void PackedSimulator::eval() {
  const CompactView& view = *view_;
  std::uint64_t* values = values_.data();
  for (std::uint32_t g : view.comb_order()) {
    const auto inputs = view.fanin(g);
    std::uint64_t acc;
    switch (view.gate_type(g)) {
      case GateType::kBuf:
        acc = values[inputs[0]];
        break;
      case GateType::kNot:
        acc = ~values[inputs[0]];
        break;
      case GateType::kAnd:
      case GateType::kNand:
        acc = ~std::uint64_t{0};
        for (std::uint32_t in : inputs) acc &= values[in];
        if (view.gate_type(g) == GateType::kNand) acc = ~acc;
        break;
      case GateType::kOr:
      case GateType::kNor:
        acc = 0;
        for (std::uint32_t in : inputs) acc |= values[in];
        if (view.gate_type(g) == GateType::kNor) acc = ~acc;
        break;
      case GateType::kXor:
      case GateType::kXnor:
        acc = 0;
        for (std::uint32_t in : inputs) acc ^= values[in];
        if (view.gate_type(g) == GateType::kXnor) acc = ~acc;
        break;
      case GateType::kConst0:
        acc = 0;
        break;
      case GateType::kConst1:
        acc = ~std::uint64_t{0};
        break;
      case GateType::kDff:
      default:
        continue;  // state nets are inputs to eval, never outputs
    }
    values[view.gate_output(g)] = acc;
  }
}

void PackedSimulator::step() {
  const auto flops = view_->flop_gates();
  // Sample every D word before committing so flop-to-flop paths read
  // pre-edge state on all lanes (same two-phase commit as the scalar
  // simulator).
  for (std::size_t i = 0; i < flops.size(); ++i)
    next_state_[i] = values_[view_->fanin(flops[i])[0]];
  for (std::size_t i = 0; i < flops.size(); ++i)
    values_[view_->gate_output(flops[i])] = next_state_[i];
  eval();
}

}  // namespace netrev::sim
