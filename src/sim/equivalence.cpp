#include "sim/equivalence.h"

#include "common/rng.h"
#include "sim/simulator.h"

namespace netrev::sim {

using netlist::NetId;
using netlist::Netlist;

ImplicationCheckResult check_implications(
    const Netlist& nl, std::span<const std::pair<NetId, bool>> seeds,
    const std::unordered_map<NetId, bool>& implied, std::size_t vector_count,
    std::uint64_t rng_seed) {
  Simulator simulator(nl);
  Rng rng(rng_seed);
  ImplicationCheckResult result;
  for (std::size_t v = 0; v < vector_count; ++v) {
    ++result.vectors_tried;
    simulator.randomize_inputs(rng);
    simulator.randomize_state(rng);
    simulator.eval();
    bool applicable = true;
    for (const auto& [net, value] : seeds) {
      if (simulator.value(net) != value) {
        applicable = false;
        break;
      }
    }
    if (!applicable) continue;
    ++result.vectors_applicable;
    for (const auto& [net, value] : implied)
      if (simulator.value(net) != value) ++result.violations;
  }
  return result;
}

ReductionCheckResult check_reduction_equivalence(
    const Netlist& original, const Netlist& reduced,
    std::span<const std::pair<NetId, bool>> seeds, std::size_t vector_count,
    std::uint64_t rng_seed) {
  Simulator sim_orig(original);
  Simulator sim_red(reduced);
  Rng rng(rng_seed);
  ReductionCheckResult result;

  // Pre-resolve name correspondences.
  struct SharedNet {
    NetId in_original;
    NetId in_reduced;
  };
  std::vector<SharedNet> shared;
  std::vector<SharedNet> reduced_sources;  // reduced PIs / flop outputs
  for (std::size_t i = 0; i < reduced.net_count(); ++i) {
    const NetId red_id = reduced.net_id_at(i);
    const auto orig_id = original.find_net(reduced.net(red_id).name);
    if (!orig_id) continue;
    shared.push_back({*orig_id, red_id});
    if (reduced.net(red_id).is_primary_input ||
        reduced.is_flop_output(red_id))
      reduced_sources.push_back({*orig_id, red_id});
  }

  for (std::size_t v = 0; v < vector_count; ++v) {
    ++result.vectors_tried;
    sim_orig.randomize_inputs(rng);
    sim_orig.randomize_state(rng);
    sim_orig.eval();
    bool applicable = true;
    for (const auto& [net, value] : seeds) {
      if (sim_orig.value(net) != value) {
        applicable = false;
        break;
      }
    }
    if (!applicable) continue;
    ++result.vectors_applicable;

    for (const auto& source : reduced_sources) {
      const bool value = sim_orig.value(source.in_original);
      if (reduced.net(source.in_reduced).is_primary_input)
        sim_red.set_input(source.in_reduced, value);
      else
        sim_red.set_state(source.in_reduced, value);
    }
    sim_red.eval();
    for (const auto& net : shared)
      if (sim_orig.value(net.in_original) != sim_red.value(net.in_reduced))
        ++result.mismatches;
  }
  return result;
}

}  // namespace netrev::sim
