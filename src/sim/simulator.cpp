#include "sim/simulator.h"

#include <algorithm>

#include "common/contracts.h"
#include "common/thread_pool.h"
#include "perf/profile.h"
#include "sim/levelize.h"

namespace netrev::sim {

using netlist::GateId;
using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

Simulator::Simulator(const Netlist& nl) : nl_(&nl) {
  for (GateId g : levelize(nl)) {
    if (nl.gate(g).type == GateType::kDff)
      flops_.push_back(g);
    else
      order_.push_back(g);
  }
  values_.assign(nl.net_count(), 0);
}

void Simulator::set_input(NetId net, bool value) {
  NETREV_REQUIRE(nl_->net(net).is_primary_input);
  values_[net.value()] = value ? 1 : 0;
}

void Simulator::set_state(NetId q_net, bool value) {
  NETREV_REQUIRE(nl_->is_flop_output(q_net));
  values_[q_net.value()] = value ? 1 : 0;
}

void Simulator::randomize_inputs(Rng& rng) {
  for (NetId net : nl_->primary_inputs())
    values_[net.value()] = rng.next_bool() ? 1 : 0;
}

void Simulator::randomize_state(Rng& rng) {
  for (GateId g : flops_)
    values_[nl_->gate(g).output.value()] = rng.next_bool() ? 1 : 0;
}

void Simulator::eval() {
  for (GateId g : order_) {
    const netlist::Gate& gate = nl_->gate(g);
    if (scratch_capacity_ < gate.inputs.size()) {
      scratch_capacity_ = std::max<std::size_t>(16, gate.inputs.size() * 2);
      scratch_ = std::make_unique<bool[]>(scratch_capacity_);
    }
    for (std::size_t i = 0; i < gate.inputs.size(); ++i)
      scratch_[i] = values_[gate.inputs[i].value()] != 0;
    values_[gate.output.value()] =
        eval_gate(gate.type,
                  std::span<const bool>(scratch_.get(), gate.inputs.size()))
            ? 1
            : 0;
  }
}

void Simulator::step() {
  // Sample all D inputs first so flop-to-flop paths use pre-edge state.
  std::vector<std::uint8_t> next;
  next.reserve(flops_.size());
  for (GateId g : flops_) next.push_back(values_[nl_->gate(g).inputs[0].value()]);
  for (std::size_t i = 0; i < flops_.size(); ++i)
    values_[nl_->gate(flops_[i]).output.value()] = next[i];
  eval();
}

bool Simulator::value(NetId net) const {
  NETREV_REQUIRE(net.value() < values_.size());
  return values_[net.value()] != 0;
}

std::vector<std::uint8_t> sample_random_vectors(const Netlist& nl,
                                                std::span<const NetId> probes,
                                                std::size_t vector_count,
                                                std::uint64_t seed) {
  std::vector<std::uint8_t> samples(vector_count * probes.size(), 0);
  if (vector_count == 0 || probes.empty()) return samples;

  const std::size_t blocks =
      (vector_count + kRandomSimBlock - 1) / kRandomSimBlock;
  parallel_for(0, blocks, [&](std::size_t block) {
    // Private simulator and stream per block: nothing shared but the (const)
    // netlist and disjoint slices of `samples`.
    Simulator simulator(nl);
    Rng rng = Rng::stream(seed, block);
    const std::size_t begin = block * kRandomSimBlock;
    const std::size_t end = std::min(begin + kRandomSimBlock, vector_count);
    for (std::size_t v = begin; v < end; ++v) {
      simulator.randomize_inputs(rng);
      simulator.randomize_state(rng);
      simulator.eval();
      std::uint8_t* row = samples.data() + v * probes.size();
      for (std::size_t i = 0; i < probes.size(); ++i)
        row[i] = simulator.value(probes[i]) ? 1 : 0;
    }
    perf::Profiler::global().count("sim_vectors_run", end - begin);
  });
  return samples;
}

}  // namespace netrev::sim
