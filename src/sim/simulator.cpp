#include "sim/simulator.h"

#include <algorithm>

#include "common/contracts.h"
#include "common/thread_pool.h"
#include "perf/profile.h"
#include "sim/levelize.h"
#include "sim/packed.h"

namespace netrev::sim {

using netlist::GateId;
using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

Simulator::Simulator(const Netlist& nl) : nl_(&nl) {
  for (GateId g : levelize(nl)) {
    if (nl.gate(g).type == GateType::kDff)
      flops_.push_back(g);
    else
      order_.push_back(g);
  }
  values_.assign(nl.net_count(), 0);
}

void Simulator::set_input(NetId net, bool value) {
  NETREV_REQUIRE(nl_->net(net).is_primary_input);
  values_[net.value()] = value ? 1 : 0;
}

void Simulator::set_state(NetId q_net, bool value) {
  NETREV_REQUIRE(nl_->is_flop_output(q_net));
  values_[q_net.value()] = value ? 1 : 0;
}

void Simulator::randomize_inputs(Rng& rng) {
  for (NetId net : nl_->primary_inputs())
    values_[net.value()] = rng.next_bool() ? 1 : 0;
}

void Simulator::randomize_state(Rng& rng) {
  for (GateId g : flops_)
    values_[nl_->gate(g).output.value()] = rng.next_bool() ? 1 : 0;
}

void Simulator::eval() {
  for (GateId g : order_) {
    const netlist::Gate& gate = nl_->gate(g);
    if (scratch_capacity_ < gate.inputs.size()) {
      scratch_capacity_ = std::max<std::size_t>(16, gate.inputs.size() * 2);
      scratch_ = std::make_unique<bool[]>(scratch_capacity_);
    }
    for (std::size_t i = 0; i < gate.inputs.size(); ++i)
      scratch_[i] = values_[gate.inputs[i].value()] != 0;
    values_[gate.output.value()] =
        eval_gate(gate.type,
                  std::span<const bool>(scratch_.get(), gate.inputs.size()))
            ? 1
            : 0;
  }
}

void Simulator::step() {
  // Sample all D inputs first so flop-to-flop paths use pre-edge state.
  std::vector<std::uint8_t> next;
  next.reserve(flops_.size());
  for (GateId g : flops_) next.push_back(values_[nl_->gate(g).inputs[0].value()]);
  for (std::size_t i = 0; i < flops_.size(); ++i)
    values_[nl_->gate(flops_[i]).output.value()] = next[i];
  eval();
}

bool Simulator::value(NetId net) const {
  NETREV_REQUIRE(net.value() < values_.size());
  return values_[net.value()] != 0;
}

std::vector<std::uint8_t> sample_random_vectors_scalar(
    const Netlist& nl, std::span<const NetId> probes, std::size_t vector_count,
    std::uint64_t seed) {
  std::vector<std::uint8_t> samples(vector_count * probes.size(), 0);
  if (vector_count == 0 || probes.empty()) return samples;

  const std::size_t blocks =
      (vector_count + kRandomSimBlock - 1) / kRandomSimBlock;
  parallel_for(0, blocks, [&](std::size_t block) {
    // Private simulator and stream per block: nothing shared but the (const)
    // netlist and disjoint slices of `samples`.
    Simulator simulator(nl);
    Rng rng = Rng::stream(seed, block);
    const std::size_t begin = block * kRandomSimBlock;
    const std::size_t end = std::min(begin + kRandomSimBlock, vector_count);
    for (std::size_t v = begin; v < end; ++v) {
      simulator.randomize_inputs(rng);
      simulator.randomize_state(rng);
      simulator.eval();
      std::uint8_t* row = samples.data() + v * probes.size();
      for (std::size_t i = 0; i < probes.size(); ++i)
        row[i] = simulator.value(probes[i]) ? 1 : 0;
    }
    perf::Profiler::global().count("sim_vectors_run", end - begin);
  });
  return samples;
}

std::vector<std::uint8_t> sample_random_vectors(
    const netlist::CompactView& view, std::span<const NetId> probes,
    std::size_t vector_count, std::uint64_t seed) {
  std::vector<std::uint8_t> samples(vector_count * probes.size(), 0);
  if (vector_count == 0 || probes.empty()) return samples;
  NETREV_REQUIRE(view.acyclic());

  // Each 64-lane word covers a fixed run of RNG blocks; the block size and
  // per-block streams are unchanged from the scalar path, so the stimulus —
  // and therefore every sample byte — is identical to
  // sample_random_vectors_scalar at any --jobs value.
  static_assert(64 % kRandomSimBlock == 0);
  constexpr std::size_t kBlocksPerWord = 64 / kRandomSimBlock;
  const auto inputs = view.primary_inputs();
  const auto flops = view.flop_gates();
  const std::size_t words = (vector_count + 63) / 64;
  parallel_for(0, words, [&](std::size_t word_index) {
    PackedSimulator simulator(view);
    std::vector<std::uint64_t> in_words(inputs.size(), 0);
    std::vector<std::uint64_t> state_words(flops.size(), 0);
    const std::size_t word_begin = word_index * 64;
    const std::size_t word_end = std::min(word_begin + 64, vector_count);
    // Lane l is vector word_begin + l.  Every lane draws its stimulus in
    // the scalar order (all primary inputs, then all flops in levelize
    // order) from the block stream the scalar path would use.
    for (std::size_t half = 0; half < kBlocksPerWord; ++half) {
      const std::size_t block = word_index * kBlocksPerWord + half;
      const std::size_t begin = block * kRandomSimBlock;
      const std::size_t end = std::min(begin + kRandomSimBlock, vector_count);
      if (begin >= end) break;
      Rng rng = Rng::stream(seed, block);
      for (std::size_t v = begin; v < end; ++v) {
        const std::uint64_t bit = std::uint64_t{1} << (v - word_begin);
        for (std::size_t i = 0; i < inputs.size(); ++i)
          if (rng.next_bool()) in_words[i] |= bit;
        for (std::size_t i = 0; i < flops.size(); ++i)
          if (rng.next_bool()) state_words[i] |= bit;
      }
    }
    for (std::size_t i = 0; i < inputs.size(); ++i)
      simulator.set_input_word(inputs[i], in_words[i]);
    for (std::size_t i = 0; i < flops.size(); ++i)
      simulator.set_state_word(view.gate_output(flops[i]), state_words[i]);
    simulator.eval();
    for (std::size_t i = 0; i < probes.size(); ++i) {
      const std::uint64_t word = simulator.value_word(probes[i].value());
      for (std::size_t v = word_begin; v < word_end; ++v)
        samples[v * probes.size() + i] =
            static_cast<std::uint8_t>((word >> (v - word_begin)) & 1);
    }
    perf::Profiler::global().count("sim_vectors_run", word_end - word_begin);
  });
  return samples;
}

std::vector<std::uint8_t> sample_random_vectors(const Netlist& nl,
                                                std::span<const NetId> probes,
                                                std::size_t vector_count,
                                                std::uint64_t seed) {
  if (vector_count == 0 || probes.empty())
    return std::vector<std::uint8_t>(vector_count * probes.size(), 0);
  const netlist::CompactView view = netlist::CompactView::build(nl);
  // Cyclic designs take the scalar path so the caller sees the levelizer's
  // diagnostic, same as before the bit-parallel engine existed.
  if (!view.acyclic())
    return sample_random_vectors_scalar(nl, probes, vector_count, seed);
  return sample_random_vectors(view, probes, vector_count, seed);
}

}  // namespace netrev::sim
