// Two-value cycle-accurate netlist simulator.
//
// Semantics: flip-flop output nets hold the current state; eval() propagates
// primary inputs and state through the combinational logic; step() samples
// every flop's D input and commits it as the new state (a positive clock
// edge).  All nets are readable after eval().
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "netlist/compact.h"
#include "netlist/netlist.h"

namespace netrev::sim {

class Simulator {
 public:
  // Requires a validated netlist (no combinational cycles, no dangling nets).
  explicit Simulator(const netlist::Netlist& nl);

  const netlist::Netlist& design() const { return *nl_; }

  // Primary-input control.  `net` must be a primary input.
  void set_input(netlist::NetId net, bool value);

  // Directly overwrite a flop's state.  `q_net` must be a flop output.
  void set_state(netlist::NetId q_net, bool value);

  void randomize_inputs(Rng& rng);
  void randomize_state(Rng& rng);

  // Recompute all combinational nets from inputs + state.
  void eval();

  // Clock edge: commit D values into flop outputs.  Requires eval() since the
  // last input/state change; step() re-evaluates afterwards.
  void step();

  // Value of any net; valid after eval().
  bool value(netlist::NetId net) const;

 private:
  const netlist::Netlist* nl_;
  std::vector<netlist::GateId> order_;        // combinational gates, topo order
  std::vector<netlist::GateId> flops_;
  std::vector<std::uint8_t> values_;  // indexed by NetId
  // Grow-only scratch input buffer for eval(); raw bools so it can be
  // spanned (std::vector<bool> cannot).
  std::unique_ptr<bool[]> scratch_;
  std::size_t scratch_capacity_ = 0;
};

// Vectors per block of batched random simulation (see below).  The block
// size is part of the deterministic contract — changing it changes which
// stream every vector draws from, and therefore the sampled values.
inline constexpr std::size_t kRandomSimBlock = 32;

// Batched random simulation: evaluates `vector_count` independent random
// (input, state) points on the design and records the value of every net in
// `probes`, vector-major (result[v * probes.size() + i] is probe i under
// vector v).
//
// Vectors are partitioned into fixed blocks of kRandomSimBlock; block b
// draws its stimulus from Rng::stream(seed, b).  Because the block
// decomposition and per-block streams are independent of the job count, the
// returned samples are byte-identical at any --jobs value.  Charges the
// profiler counter "sim_vectors_run".
//
// This is the bit-parallel fast path: two RNG blocks fill the 64 lanes of
// one PackedSimulator word (lanes 0..31 from stream 2p, 32..63 from stream
// 2p+1, each lane drawing all primary inputs then all flops in the scalar
// simulator's order), so one CSR schedule pass evaluates 64 vectors and the
// output is still bit-for-bit what the scalar path produces — asserted
// against sample_random_vectors_scalar in tests/sim/test_packed.cpp.
std::vector<std::uint8_t> sample_random_vectors(
    const netlist::Netlist& nl, std::span<const netlist::NetId> probes,
    std::size_t vector_count, std::uint64_t seed);

// Same contract, reusing a prebuilt CompactView (the Session's cached
// artifact) so repeated sampling of one design skips the flattening pass.
std::vector<std::uint8_t> sample_random_vectors(
    const netlist::CompactView& view, std::span<const netlist::NetId> probes,
    std::size_t vector_count, std::uint64_t seed);

// The scalar reference path (one Simulator per block, one vector at a
// time).  Kept as the semantics oracle for the packed engine and as the
// --legacy-core sampling path; byte-identical to the overloads above.
std::vector<std::uint8_t> sample_random_vectors_scalar(
    const netlist::Netlist& nl, std::span<const netlist::NetId> probes,
    std::size_t vector_count, std::uint64_t seed);

}  // namespace netrev::sim
