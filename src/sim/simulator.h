// Two-value cycle-accurate netlist simulator.
//
// Semantics: flip-flop output nets hold the current state; eval() propagates
// primary inputs and state through the combinational logic; step() samples
// every flop's D input and commits it as the new state (a positive clock
// edge).  All nets are readable after eval().
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "netlist/netlist.h"

namespace netrev::sim {

class Simulator {
 public:
  // Requires a validated netlist (no combinational cycles, no dangling nets).
  explicit Simulator(const netlist::Netlist& nl);

  const netlist::Netlist& design() const { return *nl_; }

  // Primary-input control.  `net` must be a primary input.
  void set_input(netlist::NetId net, bool value);

  // Directly overwrite a flop's state.  `q_net` must be a flop output.
  void set_state(netlist::NetId q_net, bool value);

  void randomize_inputs(Rng& rng);
  void randomize_state(Rng& rng);

  // Recompute all combinational nets from inputs + state.
  void eval();

  // Clock edge: commit D values into flop outputs.  Requires eval() since the
  // last input/state change; step() re-evaluates afterwards.
  void step();

  // Value of any net; valid after eval().
  bool value(netlist::NetId net) const;

 private:
  const netlist::Netlist* nl_;
  std::vector<netlist::GateId> order_;        // combinational gates, topo order
  std::vector<netlist::GateId> flops_;
  std::vector<std::uint8_t> values_;  // indexed by NetId
  // Grow-only scratch input buffer for eval(); raw bools so it can be
  // spanned (std::vector<bool> cannot).
  std::unique_ptr<bool[]> scratch_;
  std::size_t scratch_capacity_ = 0;
};

}  // namespace netrev::sim
