// Topological ordering of the combinational portion of a netlist.
// Flip-flop outputs and primary inputs are treated as sources; the order
// contains every gate (flops included, placed after their D-input logic so a
// single pass can sample next-state values).
#pragma once

#include <vector>

#include "common/diagnostics.h"
#include "netlist/netlist.h"

namespace netrev::sim {

// Returns all gates in a valid evaluation order.  Throws std::runtime_error
// if the combinational logic is cyclic; the message names the member nets of
// the first cycle (via the analysis engine's SCC pass), and when `diags` is
// given every cycle is also reported there as an error before throwing.
std::vector<netlist::GateId> levelize(const netlist::Netlist& nl,
                                      diag::Diagnostics* diags = nullptr);

}  // namespace netrev::sim
