// 64-way bit-parallel netlist evaluation.
//
// A PackedSimulator holds one uint64_t per net; bit `l` of every word is an
// independent simulation lane, so a single pass over the levelized gate
// schedule evaluates 64 (input, state) points at once with plain bitwise
// ops (AND gate = `&`, XOR = `^`, inverting types complement the result).
// There is no per-gate dispatch allocation and no pointer chasing: the
// schedule and the fanin lists are CompactView CSR arrays.
//
// The packed engine is the fast path behind sim::sample_random_vectors; the
// scalar Simulator remains the semantics oracle, and the sampling layer is
// arranged so packed output is byte-identical to the scalar path (see
// simulator.h — two kRandomSimBlock RNG blocks fill one 64-lane word, each
// lane drawing its stimulus in exactly the scalar order).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/compact.h"

namespace netrev::sim {

class PackedSimulator {
 public:
  // Requires an acyclic view (view.acyclic()); the schedule is its
  // levelized comb order.  The view must outlive the simulator.
  explicit PackedSimulator(const netlist::CompactView& view);

  const netlist::CompactView& design() const { return *view_; }

  // Lane-packed access.  `net` must be a primary input (set_input_word) or
  // a flop output (set_state_word); bit l is lane l's value.
  void set_input_word(std::uint32_t net, std::uint64_t lanes);
  void set_state_word(std::uint32_t q_net, std::uint64_t lanes);

  // Recomputes every combinational net across all 64 lanes.
  void eval();

  // Clock edge on every lane: samples each flop's D word, commits it as the
  // new state, re-evaluates.
  void step();

  // Lane-packed value of any net; valid after eval().
  std::uint64_t value_word(std::uint32_t net) const {
    return values_[net];
  }

 private:
  const netlist::CompactView* view_;
  std::vector<std::uint64_t> values_;  // indexed by net id
  std::vector<std::uint64_t> next_state_;  // step() scratch, one per flop
};

}  // namespace netrev::sim
