#include "sim/levelize.h"

#include <stdexcept>

#include "analysis/scc.h"

namespace netrev::sim {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

std::vector<GateId> levelize(const Netlist& nl, diag::Diagnostics* diags) {
  // Kahn's algorithm over combinational dependencies.  A gate depends on the
  // drivers of its inputs unless that driver is a flop (state from the
  // previous cycle) — flops themselves depend on their D logic.
  const std::size_t n = nl.gate_count();
  std::vector<std::size_t> pending(n, 0);
  std::vector<std::vector<std::size_t>> dependents(n);

  for (std::size_t g = 0; g < n; ++g) {
    const netlist::Gate& gate = nl.gate(nl.gate_id_at(g));
    for (netlist::NetId in : gate.inputs) {
      const auto drv = nl.driver_of(in);
      if (!drv) continue;
      if (nl.gate(*drv).type == GateType::kDff) continue;
      ++pending[g];
      dependents[drv->value()].push_back(g);
    }
  }

  std::vector<std::size_t> ready;
  for (std::size_t g = 0; g < n; ++g)
    if (pending[g] == 0) ready.push_back(g);

  std::vector<GateId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::size_t g = ready.back();
    ready.pop_back();
    order.push_back(nl.gate_id_at(g));
    for (std::size_t dep : dependents[g])
      if (--pending[dep] == 0) ready.push_back(dep);
  }
  if (order.size() != n) {
    // Leftover gates sit on (or behind) a combinational cycle; name the
    // actual loops so the user sees which nets broke levelization.
    const auto sccs = analysis::combinational_sccs(nl);
    std::string message = "levelize: combinational cycle detected";
    if (!sccs.empty())
      message += " (" + std::to_string(sccs.size()) +
                 " cycle(s); first: " + describe_cycle(nl, sccs.front()) + ")";
    if (diags != nullptr)
      for (const auto& scc : sccs)
        diags->error("levelize blocked by combinational cycle of " +
                     std::to_string(scc.gates.size()) +
                     " gate(s): " + describe_cycle(nl, scc));
    throw std::runtime_error(message);
  }
  return order;
}

}  // namespace netrev::sim
