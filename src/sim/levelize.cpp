#include "sim/levelize.h"

#include <stdexcept>

namespace netrev::sim {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

std::vector<GateId> levelize(const Netlist& nl) {
  // Kahn's algorithm over combinational dependencies.  A gate depends on the
  // drivers of its inputs unless that driver is a flop (state from the
  // previous cycle) — flops themselves depend on their D logic.
  const std::size_t n = nl.gate_count();
  std::vector<std::size_t> pending(n, 0);
  std::vector<std::vector<std::size_t>> dependents(n);

  for (std::size_t g = 0; g < n; ++g) {
    const netlist::Gate& gate = nl.gate(nl.gate_id_at(g));
    for (netlist::NetId in : gate.inputs) {
      const auto drv = nl.driver_of(in);
      if (!drv) continue;
      if (nl.gate(*drv).type == GateType::kDff) continue;
      ++pending[g];
      dependents[drv->value()].push_back(g);
    }
  }

  std::vector<std::size_t> ready;
  for (std::size_t g = 0; g < n; ++g)
    if (pending[g] == 0) ready.push_back(g);

  std::vector<GateId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::size_t g = ready.back();
    ready.pop_back();
    order.push_back(nl.gate_id_at(g));
    for (std::size_t dep : dependents[g])
      if (--pending[dep] == 0) ready.push_back(dep);
  }
  if (order.size() != n)
    throw std::runtime_error("levelize: combinational cycle detected");
  return order;
}

}  // namespace netrev::sim
