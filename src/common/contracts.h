// Contract-checking macros used across the library.
//
// Following CppCoreGuidelines I.5/I.7/P.7, preconditions and invariants are
// checked eagerly and loudly.  Violations indicate programmer error (not bad
// input), so they throw netrev::ContractViolation which carries the failing
// expression and source location; callers that feed untrusted input (parsers,
// CLI tools) validate separately and throw domain errors instead.
#pragma once

#include <stdexcept>
#include <string>

namespace netrev {

// Thrown when an internal invariant or precondition is violated.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}

}  // namespace netrev

#define NETREV_REQUIRE(expr)                                            \
  do {                                                                  \
    if (!(expr))                                                        \
      ::netrev::contract_fail("precondition", #expr, __FILE__, __LINE__); \
  } while (false)

#define NETREV_ENSURE(expr)                                              \
  do {                                                                   \
    if (!(expr))                                                         \
      ::netrev::contract_fail("postcondition", #expr, __FILE__, __LINE__); \
  } while (false)

#define NETREV_ASSERT(expr)                                           \
  do {                                                                \
    if (!(expr))                                                      \
      ::netrev::contract_fail("invariant", #expr, __FILE__, __LINE__); \
  } while (false)
