// Named process exit codes.
//
// Every path out of the `netrev` binary reports one of these codes; scripts
// (scripts/check.sh, CI gates, batch drivers) branch on the numeric values,
// so they are part of the CLI's stable interface and must never be renumbered
// — only appended to.  The CLI and the serve daemon both map their outcomes
// through this enum instead of scattering magic numbers.
#pragma once

namespace netrev {

enum class ExitCode : int {
  kOk = 0,                 // success
  kError = 1,              // generic failure (bad input, per-entry failures)
  kUsage = 2,              // unknown command / malformed flags
  kRecoveredWithWarnings = 3,  // --permissive run succeeded but reported
                               // diagnostics (recovered, not clean)
  kUnusableInput = 4,      // permissive recovery produced nothing usable
  kDeadline = 5,           // --timeout tripped with degradation off
  kDrained = 6,            // serve: graceful drain finished every admitted
                           // request before --drain-timeout
  kDrainTimeout = 7,       // serve: drain window expired; remaining work was
                           // cancelled (each still received a response)
  kOverloaded = 8,         // client: the server shed the request
                           // (admission queue full or draining) — retry later
  kWorkerCrashed = 9,      // isolated execution: one or more entries (batch
                           // --isolate) or the request (client, serve
                           // --isolate) crashed their worker process and
                           // were quarantined
  kInterrupted = 130,      // SIGINT, cooperatively cancelled (128 + SIGINT)
};

constexpr int exit_code(ExitCode code) { return static_cast<int>(code); }

// Stable name for logs and tests ("ok", "drained", ...).
inline const char* exit_code_name(ExitCode code) {
  switch (code) {
    case ExitCode::kOk:
      return "ok";
    case ExitCode::kError:
      return "error";
    case ExitCode::kUsage:
      return "usage";
    case ExitCode::kRecoveredWithWarnings:
      return "recovered-with-warnings";
    case ExitCode::kUnusableInput:
      return "unusable-input";
    case ExitCode::kDeadline:
      return "deadline";
    case ExitCode::kDrained:
      return "drained";
    case ExitCode::kDrainTimeout:
      return "drain-timeout";
    case ExitCode::kOverloaded:
      return "overloaded";
    case ExitCode::kWorkerCrashed:
      return "worker-crashed";
    case ExitCode::kInterrupted:
      return "interrupted";
  }
  return "unknown";
}

}  // namespace netrev
