// Build identity, injected by CMake from project(netrev VERSION ...).
//
// Batch JSON records this string per run so corpus results can always be
// traced back to the build that produced them (`netrev --version` prints it).
#pragma once

namespace netrev {

// "MAJOR.MINOR.PATCH" of the build, e.g. "0.4.0".
const char* version();

}  // namespace netrev
