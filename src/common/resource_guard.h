// Resource ceilings for untrusted inputs.
//
// Parsers check file size and net/gate counts against ResourceLimits, and
// graph traversals charge a WorkBudget, so a runaway or adversarial netlist
// produces a clean ResourceLimitError (which the CLI turns into a diagnostic
// and a distinct exit code) instead of an OOM kill or a hang.
#pragma once

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>

namespace netrev {

// Thrown when an input exceeds a configured resource ceiling.  Deliberately a
// domain error (not ContractViolation): hitting a limit means bad input, not
// a programming bug.
class ResourceLimitError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Ceilings applied while ingesting a netlist.  The defaults are far above any
// legitimate design this library targets.
struct ResourceLimits {
  std::size_t max_file_bytes = 256ull << 20;  // 256 MiB of netlist text
  std::size_t max_nets = 8'000'000;
  std::size_t max_gates = 8'000'000;
};

// Metered work counter for graph traversals.  charge() every visited node;
// once the limit is exceeded the traversal is aborted via ResourceLimitError.
// A default-constructed budget is unlimited.
//
// Thread-safe: one budget is shared by every cone walk of an
// identify_words() run, and those walks execute on pool workers.  The total
// charged is exact at any job count; which traversal observes the overflow
// first may differ between job counts, but every run past the limit aborts
// with the same error either way.
class WorkBudget {
 public:
  WorkBudget() = default;
  explicit WorkBudget(std::size_t limit) : limit_(limit) {}

  void charge(std::size_t units = 1) {
    const std::size_t spent =
        spent_.fetch_add(units, std::memory_order_relaxed) + units;
    if (limit_ != 0 && spent > limit_)
      throw ResourceLimitError("cone traversal work limit exceeded (" +
                               std::to_string(limit_) + " nodes)");
  }

  bool limited() const { return limit_ != 0; }
  std::size_t spent() const {
    return spent_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t limit_ = 0;  // 0 = unlimited
  std::atomic<std::size_t> spent_{0};
};

}  // namespace netrev
