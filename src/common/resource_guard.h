// Resource ceilings for untrusted inputs.
//
// Parsers check file size and net/gate counts against ResourceLimits, and
// graph traversals charge a WorkBudget, so a runaway or adversarial netlist
// produces a clean ResourceLimitError (which the CLI turns into a diagnostic
// and a distinct exit code) instead of an OOM kill or a hang.
#pragma once

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "exec/cancel.h"

namespace netrev {

// Thrown when an input exceeds a configured resource ceiling.  Deliberately a
// domain error (not ContractViolation): hitting a limit means bad input, not
// a programming bug.
class ResourceLimitError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Ceilings applied while ingesting a netlist.  The defaults are far above any
// legitimate design this library targets.
struct ResourceLimits {
  std::size_t max_file_bytes = 256ull << 20;  // 256 MiB of netlist text
  std::size_t max_nets = 8'000'000;
  std::size_t max_gates = 8'000'000;
};

// Metered work counter for graph traversals.  charge() every visited node;
// once the limit is exceeded the traversal is aborted via ResourceLimitError.
// A default-constructed budget is unlimited.
//
// Thread-safe: one budget is shared by every cone walk of an
// identify_words() run, and those walks execute on pool workers.  The total
// charged is exact at any job count; which traversal observes the overflow
// first may differ between job counts, but every run past the limit aborts
// with the same error either way.
class WorkBudget {
 public:
  // charge() polls the attached checkpoint once per this many units, so a
  // deadline clock read never sits on the per-net hot path.
  static constexpr std::size_t kPollStride = 1024;

  WorkBudget() = default;
  explicit WorkBudget(std::size_t limit) : limit_(limit) {}

  // Attaches a cancellation/deadline poll point (non-owning; must outlive
  // the budget's use).  Cone walks thereby become interruptible without any
  // signature change: everything that charges the budget polls.
  void set_checkpoint(const exec::Checkpoint* checkpoint) {
    checkpoint_ = checkpoint != nullptr && checkpoint->armed() ? checkpoint
                                                               : nullptr;
  }

  void charge(std::size_t units = 1) {
    const std::size_t spent =
        spent_.fetch_add(units, std::memory_order_relaxed) + units;
    if (limit_ != 0 && spent > limit_)
      throw ResourceLimitError("cone traversal work limit exceeded (" +
                               std::to_string(limit_) + " nodes)");
    // Strided poll: checks roughly every kPollStride charged units.  The
    // stride is approximate under concurrency, which is fine — polls decide
    // *whether* to keep going, never *what* is computed.
    if (checkpoint_ != nullptr && (spent & (kPollStride - 1)) < units)
      checkpoint_->poll();
  }

  bool limited() const { return limit_ != 0; }
  std::size_t spent() const {
    return spent_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t limit_ = 0;  // 0 = unlimited
  const exec::Checkpoint* checkpoint_ = nullptr;  // non-owning
  std::atomic<std::size_t> spent_{0};
};

}  // namespace netrev
