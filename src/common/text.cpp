#include "common/text.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/contracts.h"

namespace netrev {

std::string format_fixed(double value, int decimals) {
  NETREV_REQUIRE(decimals >= 0 && decimals <= 9);
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

std::string format_pct(double fraction_0_to_1) {
  return format_fixed(fraction_0_to_1 * 100.0, 1);
}

std::string pad_left(std::string_view text, std::size_t width) {
  std::string out;
  if (text.size() < width) out.assign(width - text.size(), ' ');
  out.append(text);
  return out;
}

std::string pad_right(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      return fields;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!text.empty() && is_space(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && is_space(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    NETREV_REQUIRE(row.size() == header.size());
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += (c == 0) ? "| " : " | ";
      out += pad_right(row[c], widths[c]);
    }
    out += " |\n";
  };
  emit_row(header);
  for (std::size_t c = 0; c < header.size(); ++c) {
    out += (c == 0) ? "|-" : "-|-";
    out.append(widths[c], '-');
  }
  out += "-|\n";
  for (const auto& row : rows) emit_row(row);
  return out;
}

namespace {

bool all_digits(std::string_view text) {
  if (text.empty()) return false;
  return std::all_of(text.begin(), text.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

}  // namespace

std::optional<IndexedName> parse_indexed_name(std::string_view name) {
  // COUNT_REG[5]
  if (!name.empty() && name.back() == ']') {
    const std::size_t open = name.rfind('[');
    if (open != std::string_view::npos) {
      const std::string_view digits =
          name.substr(open + 1, name.size() - open - 2);
      if (all_digits(digits) && open > 0)
        return IndexedName{
            std::string(name.substr(0, open)),
            static_cast<std::size_t>(std::stoul(std::string(digits)))};
    }
    return std::nullopt;
  }
  // COUNT_REG_5_
  if (!name.empty() && name.back() == '_') {
    const std::string_view body = name.substr(0, name.size() - 1);
    const std::size_t underscore = body.rfind('_');
    if (underscore != std::string_view::npos) {
      const std::string_view digits = body.substr(underscore + 1);
      if (all_digits(digits) && underscore > 0)
        return IndexedName{
            std::string(body.substr(0, underscore)),
            static_cast<std::size_t>(std::stoul(std::string(digits)))};
    }
    return std::nullopt;
  }
  // COUNT_REG_5
  const std::size_t underscore = name.rfind('_');
  if (underscore != std::string_view::npos && underscore > 0) {
    const std::string_view digits = name.substr(underscore + 1);
    if (all_digits(digits))
      return IndexedName{
          std::string(name.substr(0, underscore)),
          static_cast<std::size_t>(std::stoul(std::string(digits)))};
  }
  return std::nullopt;
}

}  // namespace netrev
