// Diagnostics collection for the ingestion path.
//
// Netlists arrive from third-party CAD flows and are routinely malformed;
// instead of throwing on the first problem, recovering parsers and the repair
// pass report every issue into a Diagnostics sink carrying severity, message,
// and a real source location (file/line/column).  The sink enforces per-run
// caps so a pathological input cannot produce unbounded diagnostics, and
// renders to text or JSON for the CLI's --diag-json mode.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace netrev::diag {

struct SourceLocation {
  std::string file;        // empty = not file-backed (in-memory source)
  std::size_t line = 0;    // 1-based; 0 = no position
  std::size_t column = 0;  // 1-based; 0 = no position

  bool has_position() const { return line != 0; }
  // "file:line:column", omitting absent parts ("file", "line 3, column 7").
  std::string to_string() const;
};

enum class Severity {
  kNote,     // informational (repair actions, recovery summaries)
  kWarning,  // input was suspicious but unambiguously recoverable
  kError,    // a construct was dropped or rewritten during recovery
  kFatal,    // the input is unusable (resource limit, unreadable file)
};

std::string_view severity_name(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string message;
  SourceLocation location;

  // "error: expected '=' at b03s.bench:4:7"
  std::string to_string() const;
};

// Bounded sink.  Every report() is counted; only the first `max_total`
// diagnostics are stored, and parsers stop recovering once `max_errors`
// errors have been reported (at_error_limit()).
class Diagnostics {
 public:
  static constexpr std::size_t kDefaultMaxErrors = 64;
  static constexpr std::size_t kDefaultMaxTotal = 256;

  Diagnostics() = default;
  explicit Diagnostics(std::size_t max_errors,
                       std::size_t max_total = kDefaultMaxTotal)
      : max_errors_(max_errors), max_total_(max_total) {}

  void set_max_errors(std::size_t max_errors) { max_errors_ = max_errors; }
  std::size_t max_errors() const { return max_errors_; }
  std::size_t max_total() const { return max_total_; }

  // Returns false if the diagnostic was counted but not stored (cap hit).
  bool report(Severity severity, std::string message,
              SourceLocation location = {});

  void note(std::string message, SourceLocation location = {}) {
    report(Severity::kNote, std::move(message), std::move(location));
  }
  void warning(std::string message, SourceLocation location = {}) {
    report(Severity::kWarning, std::move(message), std::move(location));
  }
  void error(std::string message, SourceLocation location = {}) {
    report(Severity::kError, std::move(message), std::move(location));
  }
  void fatal(std::string message, SourceLocation location = {}) {
    report(Severity::kFatal, std::move(message), std::move(location));
  }

  const std::vector<Diagnostic>& entries() const { return entries_; }
  bool empty() const { return reported_ == 0; }
  std::size_t size() const { return entries_.size(); }

  std::size_t note_count() const { return counts_[0]; }
  std::size_t warning_count() const { return counts_[1]; }
  std::size_t error_count() const { return counts_[2]; }
  std::size_t fatal_count() const { return counts_[3]; }
  // Diagnostics counted but not stored because max_total was reached.
  std::size_t suppressed_count() const { return reported_ - entries_.size(); }

  // True once the error budget is spent; recovering parsers give up (with a
  // final note) instead of producing unbounded noise.
  bool at_error_limit() const {
    return error_count() + fatal_count() >= max_errors_;
  }
  // True if any diagnostic marks the input as unusable.
  bool usable() const { return fatal_count() == 0; }

  // One diagnostic per line, in report order.
  std::string to_string() const;
  // {"schema_version":1,"diagnostics":[...],"notes":N,"warnings":N,
  //  "errors":N,"fatal":N,"suppressed":N}
  std::string to_json() const;

 private:
  std::size_t max_errors_ = kDefaultMaxErrors;
  std::size_t max_total_ = kDefaultMaxTotal;
  std::vector<Diagnostic> entries_;
  std::size_t reported_ = 0;
  std::size_t counts_[4] = {};  // indexed by Severity
};

}  // namespace netrev::diag
