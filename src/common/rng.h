// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (benchmark generation, random
// test vectors) takes an explicit seed and uses this engine, so any two runs
// with the same seed are byte-identical (see DESIGN.md §6, "Determinism
// everywhere").  We implement SplitMix64 (for seeding) and xoshiro256**
// rather than relying on std::mt19937 so the stream is stable across
// standard-library implementations.
#pragma once

#include <cstdint>
#include <vector>

#include "common/contracts.h"

namespace netrev {

// SplitMix64: used to expand one 64-bit seed into engine state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna: fast, high quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  // Independently-seeded stream `index` of logical seed `seed`.  Parallel
  // stages give each fixed-size work block (NOT each thread) its own stream,
  // so the vectors a block draws are a function of (seed, block index) alone
  // and simulation results are identical at any --jobs count.  The stream
  // seed is derived by running the block index through SplitMix64 keyed by
  // the seed, so streams are decorrelated even for adjacent indices.
  static Rng stream(std::uint64_t seed, std::uint64_t index) {
    std::uint64_t sm = seed;
    const std::uint64_t keyed = splitmix64(sm) ^ (index + 0x9E3779B97F4A7C15ULL);
    std::uint64_t sm2 = keyed;
    return Rng(splitmix64(sm2));
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound).  bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    NETREV_REQUIRE(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
    std::uint64_t draw = next_u64();
    while (draw >= limit) draw = next_u64();
    return draw % bound;
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    NETREV_REQUIRE(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool next_bool() { return (next_u64() & 1) != 0; }

  // True with probability numerator/denominator.
  bool chance(std::uint64_t numerator, std::uint64_t denominator) {
    NETREV_REQUIRE(denominator > 0);
    return next_below(denominator) < numerator;
  }

  // Fisher-Yates shuffle, stable across platforms.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace netrev
