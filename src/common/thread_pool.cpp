#include "common/thread_pool.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>

namespace netrev {

namespace {

// True on threads currently executing pool work; nested parallel_for calls
// from such threads run inline instead of re-entering the pool.
thread_local bool tls_in_pool_task = false;

std::size_t jobs_from_environment() {
  if (const char* env = std::getenv("NETREV_JOBS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0)
      return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t jobs) {
  if (jobs == 0) jobs = jobs_from_environment();
  workers_.reserve(jobs > 0 ? jobs - 1 : 0);
  for (std::size_t i = 0; i + 1 < jobs; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t last_seq = 0;  // sequence of the last job this worker ran
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return stopping_ || (job_ != nullptr && job_seq_ != last_seq);
      });
      if (stopping_) return;
      job = job_;
      last_seq = job_seq_;
      ++job->active;
    }
    tls_in_pool_task = true;
    // Workers join as participant 1..N-1; participant index only seeds the
    // preferred shard, so several workers sharing an index is harmless.
    run_participant(*job, 1 + (job->shards.size() > 2
                                   ? std::hash<std::thread::id>{}(
                                         std::this_thread::get_id()) %
                                         (job->shards.size() - 1)
                                   : 0));
    tls_in_pool_task = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --job->active;
    }
    work_done_.notify_all();
  }
}

void ThreadPool::record_exception(Job& job, std::size_t index) {
  // Caller holds no lock; shard_mutex doubles as the exception lock.
  std::lock_guard<std::mutex> lock(job.shard_mutex);
  if (!job.exception || index < job.exception_index) {
    job.exception = std::current_exception();
    job.exception_index = index;
  }
  job.cancelled = true;
}

void ThreadPool::run_participant(Job& job, std::size_t self) {
  const std::size_t shard_count = job.shards.size();
  std::size_t begin = 0, end = 0;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(job.shard_mutex);
      if (job.cancelled) {
        // Deterministic winner: an index below the recorded exception could
        // still throw at a lower index, so that work must run; only the
        // indices at or above the current winner are abandoned.
        for (Shard& shard : job.shards) {
          shard.end = std::min(shard.end, job.exception_index);
          shard.next = std::min(shard.next, shard.end);
        }
      }
      Shard& own = job.shards[self % shard_count];
      if (own.next < own.end) {
        begin = own.next;
        end = std::min(own.next + job.grain, own.end);
        own.next = end;
      } else {
        // Steal the back half of the fullest shard.
        Shard* victim = nullptr;
        std::size_t best = 0;
        for (Shard& shard : job.shards) {
          const std::size_t avail = shard.end - shard.next;
          if (avail > best) {
            best = avail;
            victim = &shard;
          }
        }
        if (victim == nullptr) return;  // every shard drained
        const std::size_t take = (best + 1) / 2;
        end = victim->end;
        begin = end - take;
        victim->end = begin;
        Shard& own_shard = job.shards[self % shard_count];
        own_shard.next = begin;
        own_shard.end = end;
        end = std::min(begin + job.grain, end);
        own_shard.next = end;
      }
    }
    for (std::size_t i = begin; i < end; ++i) {
      try {
        (*job.body)(i);
      } catch (...) {
        record_exception(job, i);
        return;
      }
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t count = end - begin;

  // Serial fast paths: a 1-job pool, a tiny range, or a nested call from
  // inside a pool task (inline execution avoids self-deadlock).
  if (jobs() <= 1 || count == 1 || tls_in_pool_task) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  const std::size_t participants = std::min(jobs(), (count + grain - 1) / grain);
  auto job = std::make_unique<Job>();
  job->body = &body;
  job->grain = grain;
  job->shards.resize(participants);
  const std::size_t per_shard = count / participants;
  std::size_t cursor = begin;
  for (std::size_t s = 0; s < participants; ++s) {
    job->shards[s].next = cursor;
    cursor += per_shard + (s < count % participants ? 1 : 0);
    job->shards[s].end = cursor;
  }

  {
    // One job at a time; a second top-level parallel_for waits its turn.
    std::unique_lock<std::mutex> lock(mutex_);
    work_done_.wait(lock, [&] { return job_ == nullptr; });
    job_ = job.get();
    ++job_seq_;
    job->active = 1;  // the caller
  }
  work_ready_.notify_all();

  tls_in_pool_task = true;
  run_participant(*job, 0);
  tls_in_pool_task = false;

  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (job_ == job.get()) job_ = nullptr;  // stop further joiners
    --job->active;
    // Wait until no worker still references the job (workers that joined
    // before we cleared job_ may still be draining their shards).
    work_done_.wait(lock, [&] { return job->active == 0; });
  }
  work_done_.notify_all();

  if (job->exception) std::rethrow_exception(job->exception);
}

namespace {

std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool =
      std::make_unique<ThreadPool>(jobs_from_environment());
  return pool;
}

}  // namespace

ThreadPool& ThreadPool::global() { return *global_pool_slot(); }

void ThreadPool::set_global_jobs(std::size_t jobs) {
  global_pool_slot() = std::make_unique<ThreadPool>(
      jobs == 0 ? jobs_from_environment() : jobs);
}

std::size_t ThreadPool::global_jobs() { return global().jobs(); }

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  ThreadPool::global().parallel_for(begin, end, body, grain);
}

}  // namespace netrev
