#include "common/atomic_file.h"

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>

#if defined(_WIN32)
#include <process.h>
#else
#include <unistd.h>
#endif

namespace netrev::io {

namespace {

// The PID distinguishes processes sharing a directory; the counter
// distinguishes concurrent writers of the same target within one process.
std::atomic<std::uint64_t> temp_counter{0};

std::string temp_path_for(const std::string& path) {
#if defined(_WIN32)
  const auto pid = static_cast<long>(_getpid());
#else
  const auto pid = static_cast<long>(::getpid());
#endif
  return path + ".tmp." + std::to_string(pid) + "." +
         std::to_string(temp_counter.fetch_add(1));
}

}  // namespace

void write_file_atomic(const std::string& path, std::string_view contents) {
  const std::string temp = temp_path_for(path);
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cannot open file for writing: " + path);
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(temp, ec);
      throw std::runtime_error("write failed: " + path);
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::error_code cleanup;
    std::filesystem::remove(temp, cleanup);
    throw std::runtime_error("cannot replace file: " + path + " (" +
                             ec.message() + ")");
  }
}

}  // namespace netrev::io
