// Small text-formatting helpers shared by the table writers and reports.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace netrev {

// Fixed-point formatting with the given number of decimals ("3.14", "0.67").
std::string format_fixed(double value, int decimals);

// Percentage with one decimal, no trailing '%' ("71.4").
std::string format_pct(double fraction_0_to_1);

// Left/right padding to a column width.
std::string pad_left(std::string_view text, std::size_t width);
std::string pad_right(std::string_view text, std::size_t width);

// Splits on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view text, char sep);

// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

// Render a simple aligned ASCII table.  Each row must have the same number of
// columns as `header`.
std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows);

// A bus-bit style name split into its base and index.  Recognised shapes
// (all produced by common netlist writers; see docs/ANALYSIS.md):
//   COUNT_REG_5_   (Synopsys flattened bus bit)
//   COUNT_REG[5]   (bracketed bus bit)
//   COUNT_REG_5    (plain trailing index)
struct IndexedName {
  std::string base;
  std::size_t index = 0;
};

// Parses one indexed name; nullopt when no index pattern matches (e.g. a
// scalar name like "stato_reg").
std::optional<IndexedName> parse_indexed_name(std::string_view name);

}  // namespace netrev
