// Strongly-typed integer identifiers (CppCoreGuidelines I.4: make interfaces
// precisely and strongly typed).  NetId and GateId must not be mixable.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace netrev {

// A type-safe wrapper around a 32-bit index.  Tag is a phantom type used only
// to distinguish id families at compile time.
template <typename Tag>
class StrongId {
 public:
  using underlying_type = std::uint32_t;

  constexpr StrongId() = default;
  constexpr explicit StrongId(underlying_type value) : value_(value) {}

  // The reserved "no object" value.
  static constexpr StrongId invalid() {
    return StrongId(std::numeric_limits<underlying_type>::max());
  }

  constexpr bool is_valid() const { return value_ != invalid().value_; }
  constexpr underlying_type value() const { return value_; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

 private:
  underlying_type value_ = std::numeric_limits<underlying_type>::max();
};

}  // namespace netrev

// Hash support so strong ids can key unordered containers.
template <typename Tag>
struct std::hash<netrev::StrongId<Tag>> {
  std::size_t operator()(netrev::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
