// Work-stealing thread pool and the `parallel_for` primitive every parallel
// stage of the identification pipeline runs on.
//
// Design constraints (see docs/PERFORMANCE.md):
//   * Determinism is the caller's contract: tasks write results into
//     index-addressed slots and the caller merges in index order, so the
//     output is byte-identical at any job count.  parallel_for itself only
//     guarantees that f(i) runs exactly once per index.
//   * The caller participates: a pool of N jobs uses N-1 worker threads plus
//     the calling thread, so jobs=1 runs entirely inline (no threads, no
//     synchronization) and is the exact serial algorithm.
//   * Nested parallel_for calls (a parallel stage invoked from inside a
//     worker task) run inline on the calling worker — no new tasks are
//     enqueued, so nesting can never deadlock the pool.
//   * Work stealing: the index range is pre-split into one contiguous shard
//     per participant; a participant that drains its shard steals the back
//     half of the fullest remaining shard.  Imbalanced iteration costs (one
//     group with a huge fanin cone) therefore do not serialize the stage.
//   * Exceptions: after the join, the exception thrown at the lowest
//     iteration index is rethrown on the caller — deterministically: once an
//     exception is recorded, only the indices above it are abandoned, so any
//     lower-index throw still gets its chance to become the winner.  At
//     jobs=1 this degenerates to ordinary serial throw semantics.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace netrev {

class ThreadPool {
 public:
  // jobs = total parallelism including the calling thread; 0 means
  // "one per hardware thread".  A pool with jobs<=1 spawns no threads.
  explicit ThreadPool(std::size_t jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total parallelism of this pool (worker threads + the caller).
  std::size_t jobs() const { return workers_.size() + 1; }

  // Runs f(i) exactly once for every i in [begin, end), distributing
  // iterations over the pool's workers and the calling thread.  Iterations
  // are claimed in chunks of `grain` (use a larger grain for very cheap
  // bodies).  Blocks until every iteration finished; rethrows the captured
  // exception with the lowest index if any body threw.  Safe to call from
  // inside a task (runs inline).  Concurrent top-level calls from different
  // threads serialize on the pool.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  // The process-wide pool used by the pipeline stages.  Sized from
  // NETREV_JOBS (if set and positive) else std::thread::hardware_concurrency.
  // set_global_jobs() resizes it (the CLI's --jobs flag); resizing while a
  // parallel_for is in flight is a caller error.
  static ThreadPool& global();
  static void set_global_jobs(std::size_t jobs);
  static std::size_t global_jobs();

 private:
  struct Shard {
    std::size_t next = 0;
    std::size_t end = 0;
  };
  struct Job {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t grain = 1;
    std::vector<Shard> shards;      // one per participant
    std::mutex shard_mutex;         // guards all shards
    std::size_t active = 0;         // participants still running
    bool cancelled = false;         // an exception was captured
    std::exception_ptr exception;   // lowest-index exception so far
    std::size_t exception_index = 0;
  };

  void worker_loop();
  void run_participant(Job& job, std::size_t self);
  static void record_exception(Job& job, std::size_t index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  Job* job_ = nullptr;   // current job, if any
  std::uint64_t job_seq_ = 0;  // bumps per published job (anti-rejoin)
  bool stopping_ = false;
};

// parallel_for over the global pool (the form pipeline stages use).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

}  // namespace netrev
