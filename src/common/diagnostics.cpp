#include "common/diagnostics.h"

#include "jsonout/jsonout.h"

namespace netrev::diag {

namespace {

// Diagnostics quote arbitrary net names; escaping is the shared policy's.
std::string json_escape(std::string_view text) {
  return jsonout::escape(text);
}

}  // namespace

std::string SourceLocation::to_string() const {
  if (file.empty() && !has_position()) return {};
  if (file.empty())
    return "line " + std::to_string(line) + ", column " + std::to_string(column);
  if (!has_position()) return file;
  return file + ":" + std::to_string(line) + ":" + std::to_string(column);
}

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
    case Severity::kFatal: return "fatal";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::string out(severity_name(severity));
  out += ": ";
  out += message;
  const std::string where = location.to_string();
  if (!where.empty()) {
    out += " at ";
    out += where;
  }
  return out;
}

bool Diagnostics::report(Severity severity, std::string message,
                         SourceLocation location) {
  ++reported_;
  ++counts_[static_cast<std::size_t>(severity)];
  if (entries_.size() >= max_total_) return false;
  entries_.push_back(
      Diagnostic{severity, std::move(message), std::move(location)});
  return true;
}

std::string Diagnostics::to_string() const {
  std::string out;
  for (const Diagnostic& entry : entries_) {
    out += entry.to_string();
    out += '\n';
  }
  if (suppressed_count() > 0)
    out += "(" + std::to_string(suppressed_count()) +
           " further diagnostic(s) suppressed)\n";
  return out;
}

std::string Diagnostics::to_json() const {
  std::string out = "{" + jsonout::version_field() + ",\"diagnostics\":[";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Diagnostic& entry = entries_[i];
    if (i > 0) out += ',';
    out += "{\"severity\":\"";
    out += severity_name(entry.severity);
    out += "\",\"message\":\"" + json_escape(entry.message) + "\"";
    if (!entry.location.file.empty())
      out += ",\"file\":\"" + json_escape(entry.location.file) + "\"";
    if (entry.location.has_position()) {
      out += ",\"line\":" + std::to_string(entry.location.line);
      out += ",\"column\":" + std::to_string(entry.location.column);
    }
    out += '}';
  }
  out += "],\"notes\":" + std::to_string(note_count());
  out += ",\"warnings\":" + std::to_string(warning_count());
  out += ",\"errors\":" + std::to_string(error_count());
  out += ",\"fatal\":" + std::to_string(fatal_count());
  out += ",\"suppressed\":" + std::to_string(suppressed_count());
  out += '}';
  return out;
}

}  // namespace netrev::diag
