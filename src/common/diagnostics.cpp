#include "common/diagnostics.h"

namespace netrev::diag {

namespace {

// Minimal JSON string escaping (diagnostics may quote arbitrary net names).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string SourceLocation::to_string() const {
  if (file.empty() && !has_position()) return {};
  if (file.empty())
    return "line " + std::to_string(line) + ", column " + std::to_string(column);
  if (!has_position()) return file;
  return file + ":" + std::to_string(line) + ":" + std::to_string(column);
}

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
    case Severity::kFatal: return "fatal";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::string out(severity_name(severity));
  out += ": ";
  out += message;
  const std::string where = location.to_string();
  if (!where.empty()) {
    out += " at ";
    out += where;
  }
  return out;
}

bool Diagnostics::report(Severity severity, std::string message,
                         SourceLocation location) {
  ++reported_;
  ++counts_[static_cast<std::size_t>(severity)];
  if (entries_.size() >= max_total_) return false;
  entries_.push_back(
      Diagnostic{severity, std::move(message), std::move(location)});
  return true;
}

std::string Diagnostics::to_string() const {
  std::string out;
  for (const Diagnostic& entry : entries_) {
    out += entry.to_string();
    out += '\n';
  }
  if (suppressed_count() > 0)
    out += "(" + std::to_string(suppressed_count()) +
           " further diagnostic(s) suppressed)\n";
  return out;
}

std::string Diagnostics::to_json() const {
  std::string out = "{\"diagnostics\":[";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Diagnostic& entry = entries_[i];
    if (i > 0) out += ',';
    out += "{\"severity\":\"";
    out += severity_name(entry.severity);
    out += "\",\"message\":\"" + json_escape(entry.message) + "\"";
    if (!entry.location.file.empty())
      out += ",\"file\":\"" + json_escape(entry.location.file) + "\"";
    if (entry.location.has_position()) {
      out += ",\"line\":" + std::to_string(entry.location.line);
      out += ",\"column\":" + std::to_string(entry.location.column);
    }
    out += '}';
  }
  out += "],\"notes\":" + std::to_string(note_count());
  out += ",\"warnings\":" + std::to_string(warning_count());
  out += ",\"errors\":" + std::to_string(error_count());
  out += ",\"fatal\":" + std::to_string(fatal_count());
  out += ",\"suppressed\":" + std::to_string(suppressed_count());
  out += '}';
  return out;
}

}  // namespace netrev::diag
