// Crash-safe file output.
//
// A bare `std::ofstream(path) << contents` that dies mid-write (crash,
// SIGKILL, full disk) leaves a truncated artifact behind that looks like a
// complete file.  write_file_atomic writes to a sibling temporary file and
// renames it over the target, so the target path only ever holds either its
// previous contents or the complete new contents — never a torn write.
#pragma once

#include <string>
#include <string_view>

namespace netrev::io {

// Writes `contents` to `path` via a unique temp file in the same directory
// plus an atomic rename.  Throws std::runtime_error when the temp file
// cannot be created, written, or renamed; the temp file is removed on every
// failure path, the target is untouched.
void write_file_atomic(const std::string& path, std::string_view contents);

}  // namespace netrev::io
