// Fanin-cone traversals.
//
// The paper's structural matching operates on bounded-depth fanin cones
// ("fanin-cone down to four levels of logic gates", §2.1) that stop at
// sequential boundaries, and its control-signal dominance test (§2.4) needs
// unbounded backward reachability ("we remove the ones which are in the
// fanin-cones of the other nets in the set").
#pragma once

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "common/resource_guard.h"
#include "netlist/netlist.h"

namespace netrev::netlist {

// Every traversal takes an optional WorkBudget and charges it one unit per
// visited net; a limited budget turns a pathologically deep/wide cone into a
// clean ResourceLimitError instead of an unbounded walk.

// Nets visited walking backward from `root` through at most `max_depth`
// levels of combinational gates.  `root` itself is included (depth 0).  The
// walk does not go through flip-flops: a flop-driven net is a cone leaf.
// Result is in deterministic BFS order, deduplicated.
std::vector<NetId> fanin_cone_nets(const Netlist& nl, NetId root,
                                   std::size_t max_depth,
                                   WorkBudget* budget = nullptr);

// Unbounded combinational fanin cone of `root`, excluding `root` itself.
// Stops at flop outputs and primary inputs (which are included as leaves).
std::unordered_set<NetId> fanin_cone_unbounded(const Netlist& nl, NetId root,
                                               WorkBudget* budget = nullptr);

// True if `candidate` lies in the (unbounded, combinational) fanin cone of
// `root`, excluding root itself.
bool in_fanin_cone(const Netlist& nl, NetId root, NetId candidate,
                   WorkBudget* budget = nullptr);

// The nets at the boundary of a bounded cone: flop outputs, primary inputs,
// and nets whose depth equals max_depth (i.e. left unexpanded).
std::vector<NetId> cone_leaves(const Netlist& nl, NetId root,
                               std::size_t max_depth,
                               WorkBudget* budget = nullptr);

}  // namespace netrev::netlist
