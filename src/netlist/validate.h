// Structural well-formedness checks for netlists.
//
// Parsers and generators call this after construction; tests use it to gate
// every synthetic benchmark.  Checks are diagnostic (they collect all issues)
// rather than fail-fast.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace netrev::netlist {

struct ValidationIssue {
  enum class Severity { kWarning, kError };
  Severity severity = Severity::kError;
  std::string message;
};

struct ValidationReport {
  std::vector<ValidationIssue> issues;

  bool ok() const {
    for (const auto& issue : issues)
      if (issue.severity == ValidationIssue::Severity::kError) return false;
    return true;
  }
  std::size_t error_count() const;
  std::size_t warning_count() const;
  std::string to_string() const;
};

// Checks:
//  * every non-primary-input net has a driver (error; dangling inputs)
//  * no combinational cycles (error)
//  * gate arities within bounds (error; normally unconstructible)
//  * nets with no fanout that are not primary outputs (warning)
//  * duplicate inputs on a gate (warning)
ValidationReport validate(const Netlist& nl);

}  // namespace netrev::netlist
