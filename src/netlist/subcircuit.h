// Extraction of standalone sub-netlists from fanin cones.
//
// Used by the examples ("show me the circuitry behind this word") and by the
// integration layer that hands reduced circuits to downstream reverse-
// engineering tools (§2.1: "the simplified circuit can also be fed as input
// to existing structural or functional word-identification techniques").
#pragma once

#include <span>

#include "netlist/netlist.h"

namespace netrev::netlist {

// Builds a self-contained netlist containing the union of the bounded fanin
// cones of `roots`.  Cone leaves become primary inputs of the extract; roots
// become primary outputs.  Net names are preserved.  Gates are emitted in
// the same relative file order as the source netlist.
Netlist extract_cones(const Netlist& source, std::span<const NetId> roots,
                      std::size_t max_depth);

Netlist extract_cone(const Netlist& source, NetId root, std::size_t max_depth);

}  // namespace netrev::netlist
