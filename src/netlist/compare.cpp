#include "netlist/compare.h"

namespace netrev::netlist {

std::optional<std::string> structural_difference(const Netlist& a,
                                                 const Netlist& b) {
  if (a.net_count() != b.net_count())
    return "net counts differ: " + std::to_string(a.net_count()) + " vs " +
           std::to_string(b.net_count());
  if (a.gate_count() != b.gate_count())
    return "gate counts differ: " + std::to_string(a.gate_count()) + " vs " +
           std::to_string(b.gate_count());

  for (std::size_t i = 0; i < a.net_count(); ++i) {
    const Net& net = a.net(a.net_id_at(i));
    const auto other = b.find_net(net.name);
    if (!other) return "net missing in second design: " + net.name;
    if (net.is_primary_input != b.net(*other).is_primary_input)
      return "primary-input flag differs for net: " + net.name;
    if (net.is_primary_output != b.net(*other).is_primary_output)
      return "primary-output flag differs for net: " + net.name;
  }

  const auto order_a = a.gates_in_file_order();
  const auto order_b = b.gates_in_file_order();
  for (std::size_t i = 0; i < order_a.size(); ++i) {
    const Gate& ga = a.gate(order_a[i]);
    const Gate& gb = b.gate(order_b[i]);
    const std::string where = "gate " + std::to_string(i) + " (driving '" +
                              a.net(ga.output).name + "')";
    if (ga.type != gb.type) return where + ": type differs";
    if (a.net(ga.output).name != b.net(gb.output).name)
      return where + ": output differs";
    if (ga.inputs.size() != gb.inputs.size()) return where + ": arity differs";
    for (std::size_t k = 0; k < ga.inputs.size(); ++k)
      if (a.net(ga.inputs[k]).name != b.net(gb.inputs[k]).name)
        return where + ": input " + std::to_string(k) + " differs";
  }
  return std::nullopt;
}

}  // namespace netrev::netlist
