#include "netlist/stats.h"

#include <algorithm>

#include "common/text.h"

namespace netrev::netlist {

std::string NetlistStats::to_string() const {
  std::string out;
  out += "gates=" + std::to_string(gates);
  out += " nets=" + std::to_string(nets);
  out += " flops=" + std::to_string(flops);
  out += " PIs=" + std::to_string(primary_inputs);
  out += " POs=" + std::to_string(primary_outputs);
  for (int i = 0; i < kGateTypeCount; ++i) {
    if (by_type[static_cast<std::size_t>(i)] == 0) continue;
    out += ' ';
    out += gate_type_name(static_cast<GateType>(i));
    out += '=';
    out += std::to_string(by_type[static_cast<std::size_t>(i)]);
  }
  return out;
}

NetlistStats compute_stats(const Netlist& nl) {
  NetlistStats stats;
  stats.gates = nl.gate_count();
  stats.nets = nl.net_count();
  for (std::size_t i = 0; i < nl.gate_count(); ++i) {
    const Gate& g = nl.gate(nl.gate_id_at(i));
    ++stats.by_type[static_cast<std::size_t>(g.type)];
    if (g.type == GateType::kDff) ++stats.flops;
  }
  for (std::size_t i = 0; i < nl.net_count(); ++i) {
    const Net& n = nl.net(nl.net_id_at(i));
    if (n.is_primary_input) ++stats.primary_inputs;
    if (n.is_primary_output) ++stats.primary_outputs;
  }
  return stats;
}

FaninProfile compute_fanin_profile(const Netlist& nl) {
  FaninProfile profile;
  std::size_t total = 0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < nl.gate_count(); ++i) {
    const Gate& g = nl.gate(nl.gate_id_at(i));
    if (g.type == GateType::kDff) continue;
    profile.max_fanin = std::max(profile.max_fanin, g.inputs.size());
    total += g.inputs.size();
    ++count;
  }
  if (count > 0) profile.average_fanin = static_cast<double>(total) / static_cast<double>(count);
  return profile;
}

std::size_t combinational_depth(const Netlist& nl) {
  // Longest path via memoized DFS over the combinational DAG.
  std::vector<int> depth(nl.gate_count(), -1);
  std::size_t best = 0;

  // Iterative post-order evaluation.
  for (std::size_t start = 0; start < nl.gate_count(); ++start) {
    if (depth[start] >= 0) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack{{start, 0}};
    while (!stack.empty()) {
      auto& [g, pos] = stack.back();
      const Gate& gate = nl.gate(nl.gate_id_at(g));
      if (gate.type == GateType::kDff) {
        depth[g] = 0;
        stack.pop_back();
        continue;
      }
      bool descended = false;
      while (pos < gate.inputs.size()) {
        const auto drv = nl.driver_of(gate.inputs[pos]);
        ++pos;
        if (!drv) continue;
        const std::size_t d = drv->value();
        if (nl.gate(*drv).type == GateType::kDff) continue;
        if (depth[d] < 0) {
          stack.emplace_back(d, 0);
          descended = true;
          break;
        }
      }
      if (descended) continue;
      int self = 1;
      for (NetId in : gate.inputs) {
        const auto drv = nl.driver_of(in);
        if (!drv || nl.gate(*drv).type == GateType::kDff) continue;
        self = std::max(self, depth[drv->value()] + 1);
      }
      depth[g] = self;
      best = std::max(best, static_cast<std::size_t>(self));
      stack.pop_back();
    }
  }
  return best;
}

}  // namespace netrev::netlist
