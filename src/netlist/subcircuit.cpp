#include "netlist/subcircuit.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "netlist/cone.h"

namespace netrev::netlist {

Netlist extract_cones(const Netlist& source, std::span<const NetId> roots,
                      std::size_t max_depth) {
  // Gather the union of cone nets and classify each as internal (driver kept)
  // or boundary (becomes a primary input).
  std::unordered_set<NetId> cone_nets;
  std::unordered_set<NetId> boundary;
  for (NetId root : roots) {
    for (NetId net : fanin_cone_nets(source, root, max_depth))
      cone_nets.insert(net);
    for (NetId leaf : cone_leaves(source, root, max_depth))
      boundary.insert(leaf);
  }
  // A net that some cone expands but another cone cuts is internal: keep its
  // driver if every input of that driver is also inside the union.
  std::unordered_set<GateId> kept_gates;
  for (NetId net : cone_nets) {
    if (boundary.contains(net)) continue;
    const auto drv = source.driver_of(net);
    if (!drv) continue;
    const Gate& gate = source.gate(*drv);
    const bool all_inside = std::all_of(
        gate.inputs.begin(), gate.inputs.end(),
        [&](NetId in) { return cone_nets.contains(in); });
    if (all_inside) kept_gates.insert(*drv);
  }

  Netlist extract(source.name() + "_extract");
  std::unordered_map<NetId, NetId> remap;
  const auto map_net = [&](NetId id) {
    const auto it = remap.find(id);
    if (it != remap.end()) return it->second;
    const NetId fresh = extract.add_net(source.net(id).name);
    remap.emplace(id, fresh);
    return fresh;
  };

  // Emit gates in source file order so §2.2-style grouping on the extract
  // behaves like it would on the full netlist.
  for (GateId g : source.gates_in_file_order()) {
    if (!kept_gates.contains(g)) continue;
    const Gate& gate = source.gate(g);
    const NetId out = map_net(gate.output);
    std::vector<NetId> ins;
    ins.reserve(gate.inputs.size());
    for (NetId in : gate.inputs) ins.push_back(map_net(in));
    extract.add_gate(gate.type, out, ins);
  }

  // Boundary nets and any cone net that ended up driverless become PIs.
  for (NetId net : cone_nets) {
    const NetId mapped = map_net(net);
    if (!extract.net(mapped).driver.is_valid() &&
        !extract.net(mapped).is_primary_input)
      extract.mark_primary_input(mapped);
  }
  for (NetId root : roots) extract.mark_primary_output(map_net(root));
  return extract;
}

Netlist extract_cone(const Netlist& source, NetId root, std::size_t max_depth) {
  const NetId roots[] = {root};
  return extract_cones(source, roots, max_depth);
}

}  // namespace netrev::netlist
