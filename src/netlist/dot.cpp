#include "netlist/dot.h"

#include <unordered_map>
#include <unordered_set>

#include "netlist/cone.h"

namespace netrev::netlist {

namespace {

// DOT identifiers for nets; names may contain arbitrary characters, so use
// stable ids and put names in labels.
std::string node_id(NetId net) { return "n" + std::to_string(net.value()); }

std::string escape_label(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string to_dot(const Netlist& nl, const DotOptions& options) {
  // Which nets to draw.
  std::unordered_set<NetId> visible;
  if (options.cone_depth == 0 || options.highlights.empty()) {
    for (std::size_t i = 0; i < nl.net_count(); ++i)
      visible.insert(nl.net_id_at(i));
  } else {
    for (const auto& highlight : options.highlights)
      for (NetId root : highlight.nets)
        for (NetId net : fanin_cone_nets(nl, root, options.cone_depth))
          visible.insert(net);
  }

  std::unordered_map<NetId, std::size_t> highlight_of;
  for (std::size_t h = 0; h < options.highlights.size(); ++h)
    for (NetId net : options.highlights[h].nets) highlight_of.emplace(net, h);

  static constexpr const char* kPalette[] = {
      "lightblue", "lightsalmon", "palegreen", "plum", "khaki", "lightcyan"};

  std::string out = "digraph netlist {\n  rankdir=LR;\n  node [shape=box];\n";
  // Nodes: one per visible net, labelled "TYPE\nname" (driver type).
  for (NetId net : visible) {
    std::string label;
    const auto driver = nl.driver_of(net);
    label = driver ? std::string(gate_type_name(nl.gate(*driver).type))
                   : std::string("INPUT");
    if (options.show_net_names) label += "\\n" + escape_label(nl.net(net).name);

    std::string attrs = "label=\"" + label + "\"";
    const auto h = highlight_of.find(net);
    if (h != highlight_of.end()) {
      attrs += ", style=filled, fillcolor=";
      attrs += kPalette[h->second % std::size(kPalette)];
    } else if (!driver) {
      attrs += ", shape=ellipse";
    }
    out += "  " + node_id(net) + " [" + attrs + "];\n";
  }
  // Edges: gate input -> gate output, where both ends are visible.
  for (std::size_t g = 0; g < nl.gate_count(); ++g) {
    const Gate& gate = nl.gate(nl.gate_id_at(g));
    if (!visible.contains(gate.output)) continue;
    for (NetId in : gate.inputs) {
      if (!visible.contains(in)) continue;
      out += "  " + node_id(in) + " -> " + node_id(gate.output);
      if (gate.type == GateType::kDff) out += " [style=dashed]";
      out += ";\n";
    }
  }
  // Legend for highlights.
  for (std::size_t h = 0; h < options.highlights.size(); ++h) {
    out += "  legend" + std::to_string(h) + " [label=\"" +
           escape_label(options.highlights[h].label) +
           "\", style=filled, fillcolor=" +
           kPalette[h % std::size(kPalette)] + "];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace netrev::netlist
