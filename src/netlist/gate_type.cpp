#include "netlist/gate_type.h"

#include <algorithm>
#include <cctype>
#include <string>

#include "common/contracts.h"

namespace netrev::netlist {

std::string_view gate_type_name(GateType type) {
  switch (type) {
    case GateType::kBuf: return "BUF";
    case GateType::kNot: return "NOT";
    case GateType::kAnd: return "AND";
    case GateType::kNand: return "NAND";
    case GateType::kOr: return "OR";
    case GateType::kNor: return "NOR";
    case GateType::kXor: return "XOR";
    case GateType::kXnor: return "XNOR";
    case GateType::kDff: return "DFF";
    case GateType::kConst0: return "CONST0";
    case GateType::kConst1: return "CONST1";
  }
  NETREV_ASSERT(false && "unreachable gate type");
  return {};
}

std::optional<GateType> gate_type_from_name(std::string_view name) {
  std::string upper(name);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  for (int i = 0; i < kGateTypeCount; ++i) {
    const auto type = static_cast<GateType>(i);
    if (upper == gate_type_name(type)) return type;
  }
  // Accept the common Verilog primitive spellings too.
  if (upper == "INV") return GateType::kNot;
  if (upper == "BUFF") return GateType::kBuf;
  return std::nullopt;
}

char gate_type_code(GateType type) {
  switch (type) {
    case GateType::kBuf: return 'B';
    case GateType::kNot: return 'I';
    case GateType::kAnd: return 'A';
    case GateType::kNand: return 'N';
    case GateType::kOr: return 'O';
    case GateType::kNor: return 'R';
    case GateType::kXor: return 'X';
    case GateType::kXnor: return 'Y';
    case GateType::kDff: return 'D';
    case GateType::kConst0: return '0';
    case GateType::kConst1: return '1';
  }
  NETREV_ASSERT(false && "unreachable gate type");
  return '?';
}

bool is_combinational(GateType type) {
  return type != GateType::kDff;
}

int min_arity(GateType type) {
  switch (type) {
    case GateType::kConst0:
    case GateType::kConst1: return 0;
    case GateType::kBuf:
    case GateType::kNot:
    case GateType::kDff: return 1;
    default: return 2;
  }
}

int max_arity(GateType type) {
  switch (type) {
    case GateType::kConst0:
    case GateType::kConst1: return 0;
    case GateType::kBuf:
    case GateType::kNot:
    case GateType::kDff: return 1;
    default: return 1 << 16;  // n-ary; bounded only for sanity
  }
}

std::optional<bool> controlling_value(GateType type) {
  switch (type) {
    case GateType::kAnd:
    case GateType::kNand: return false;
    case GateType::kOr:
    case GateType::kNor: return true;
    default: return std::nullopt;
  }
}

bool controlled_output(GateType type) {
  switch (type) {
    case GateType::kAnd: return false;   // controlling 0 -> output 0
    case GateType::kNand: return true;   // controlling 0 -> output 1
    case GateType::kOr: return true;     // controlling 1 -> output 1
    case GateType::kNor: return false;   // controlling 1 -> output 0
    default:
      NETREV_REQUIRE(false && "gate has no controlling value");
      return false;
  }
}

bool base_inversion(GateType type) {
  switch (type) {
    case GateType::kNot:
    case GateType::kNand:
    case GateType::kNor:
    case GateType::kXnor: return true;
    default: return false;
  }
}

bool eval_gate(GateType type, std::span<const bool> inputs) {
  const auto n = inputs.size();
  NETREV_REQUIRE(static_cast<int>(n) >= min_arity(type) &&
                 static_cast<int>(n) <= max_arity(type));
  switch (type) {
    case GateType::kBuf:
    case GateType::kDff: return inputs[0];
    case GateType::kNot: return !inputs[0];
    case GateType::kConst0: return false;
    case GateType::kConst1: return true;
    case GateType::kAnd:
    case GateType::kNand: {
      bool acc = true;
      for (bool v : inputs) acc = acc && v;
      return type == GateType::kAnd ? acc : !acc;
    }
    case GateType::kOr:
    case GateType::kNor: {
      bool acc = false;
      for (bool v : inputs) acc = acc || v;
      return type == GateType::kOr ? acc : !acc;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      bool acc = false;
      for (bool v : inputs) acc = acc != v;
      return type == GateType::kXor ? acc : !acc;
    }
  }
  NETREV_ASSERT(false && "unreachable gate type");
  return false;
}

}  // namespace netrev::netlist
