// GraphViz (DOT) export for netlists and word overlays — the visualization
// used in docs and by `netrev` for inspecting recovered structure (the
// paper's Figure 1 is exactly such a cone drawing).
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace netrev::netlist {

struct DotOptions {
  // Cluster and color these net groups (e.g. recovered word bits).
  struct Highlight {
    std::string label;
    std::vector<NetId> nets;
  };
  std::vector<Highlight> highlights;
  bool show_net_names = true;
  // Limit output to the bounded fanin cones of the highlighted nets
  // (0 = whole design).
  std::size_t cone_depth = 0;
};

// Renders gates as nodes (labelled by type) and nets as edges.
std::string to_dot(const Netlist& nl, const DotOptions& options = {});

}  // namespace netrev::netlist
