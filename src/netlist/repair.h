// Structural repair for recovered netlists.
//
// A permissive parse of a damaged netlist can leave dangling nets (references
// to constructs that were dropped) and floating logic (gates whose reader was
// dropped).  repair() rebuilds the netlist into something identify can run
// on: dangling non-primary-input nets are tied off to constant 0, and
// floating combinational gates (transitively unread, non-primary-output) are
// pruned.  All edits are deterministic — gate file order is preserved, tie-off
// constants are appended in net-id order — and every edit is reported into
// the Diagnostics sink.
#pragma once

#include "common/diagnostics.h"
#include "netlist/netlist.h"

namespace netrev::netlist {

struct RepairOptions {
  // Drive every undriven non-primary-input net with a CONST0 gate.
  bool tie_off_dangling = true;
  // Drop combinational gates whose output transitively feeds nothing
  // (flip-flops are kept: they are architectural state).
  bool prune_floating = true;
};

struct RepairStats {
  std::size_t dangling_tied = 0;    // nets tied off to constant 0
  std::size_t floating_pruned = 0;  // combinational gates removed
  std::size_t nets_dropped = 0;     // nets left with no role at all

  bool changed() const {
    return dangling_tied != 0 || floating_pruned != 0 || nets_dropped != 0;
  }
};

struct RepairResult {
  Netlist netlist;
  RepairStats stats;
};

RepairResult repair(const Netlist& nl, diag::Diagnostics& diags,
                    const RepairOptions& options = {});

}  // namespace netrev::netlist
