// Random valid netlist generation for fuzz-style property tests.
//
// Produces arbitrary (but always well-formed and acyclic) sequential
// circuits: random gate types and fanins over primary inputs, flop outputs,
// and earlier gates.  Used to exercise parsers, the simulator, constant
// propagation, reduction, and identification far away from the benchmark
// family's structured shapes.
#pragma once

#include <cstdint>

#include "netlist/netlist.h"

namespace netrev::netlist {

struct RandomNetlistSpec {
  std::size_t primary_inputs = 8;
  std::size_t combinational_gates = 100;
  std::size_t flops = 8;
  std::size_t max_fanin = 4;   // >= 2
  bool include_constants = false;
  std::uint64_t seed = 1;
};

// Deterministic per spec (including seed).  The result always passes
// validate(): every net driven or a PI, no combinational cycles, every
// fanout-free net marked as a primary output.
Netlist random_netlist(const RandomNetlistSpec& spec);

}  // namespace netrev::netlist
