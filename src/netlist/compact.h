// CompactView — the flat, data-oriented image of a Netlist.
//
// The pointer/string representation in netlist.h is the construction and
// mutation surface; CompactView is the *analysis* surface.  One build pass
// flattens the whole design into struct-of-arrays form — 32-bit gate/net
// ids, CSR (compressed sparse row) fanin and fanout adjacency, one shared
// name arena — so the hot traversals (cone walks, levelization, dominator
// filtering, dataflow transfer loops, bit-parallel simulation) iterate
// cache-linear arrays instead of chasing per-gate heap vectors and hashing
// strings.  The view is immutable and self-contained: it copies everything
// it needs, holds no reference to the source Netlist, and is therefore safe
// to cache as a Session artifact keyed by the design's identity.
//
// Invalidation rule: a CompactView describes the Netlist *as of the build*.
// Any mutation (add_net/add_gate/mark_*) invalidates every outstanding view
// of that netlist; rebuild after mutating.  The pipeline never mutates a
// loaded design, so one build per design identity suffices.
//
// Determinism contract: the CSR traversals below visit nets in exactly the
// order the legacy walks in cone.h do, and charge an attached WorkBudget in
// exactly the same sequence, so switching between the legacy and compact
// cores never changes any output byte — including which walk trips a
// resource limit (asserted by tests/netlist/test_compact.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/resource_guard.h"
#include "netlist/gate_type.h"
#include "netlist/netlist.h"

namespace netrev::netlist {

// Reusable visited-stamp scratch for CSR traversals.  A walk bumps the
// epoch instead of clearing the whole array, so repeated cone walks on one
// thread cost O(visited), not O(nets).  Not thread-safe: use one scratch
// per thread (walks on pool workers each bring their own).
class ConeScratch {
 public:
  // Prepares for a walk over a universe of `size` ids and returns the fresh
  // epoch.  Amortized O(1): the stamp array is grown once and reset only on
  // epoch wrap-around.
  void begin(std::size_t size) {
    if (stamp_.size() < size) stamp_.resize(size, 0);
    if (++epoch_ == 0) {  // wrapped: all stale stamps must die
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }

  // Marks `id` visited; true if it was not yet visited this epoch.
  bool mark(std::uint32_t id) {
    if (stamp_[id] == epoch_) return false;
    stamp_[id] = epoch_;
    return true;
  }

  bool marked(std::uint32_t id) const { return stamp_[id] == epoch_; }

  // Shared traversal worklist (cleared per walk; reuses capacity).
  std::vector<std::uint32_t>& worklist() { return worklist_; }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> worklist_;
};

class CompactView {
 public:
  static constexpr std::uint32_t kNoGate = 0xFFFFFFFFu;

  // Net flag bits (net_flags()).
  static constexpr std::uint8_t kPrimaryInput = 1u << 0;
  static constexpr std::uint8_t kPrimaryOutput = 1u << 1;
  static constexpr std::uint8_t kFlopOutput = 1u << 2;
  static constexpr std::uint8_t kFeedsFlop = 1u << 3;

  // One flattening pass over the netlist; O(nets + gates + edges + name
  // bytes).  Never throws on combinational cycles — acyclic() reports
  // whether the levelized orders below exist.
  static CompactView build(const Netlist& nl);

  CompactView() = default;

  std::uint32_t net_count() const {
    return static_cast<std::uint32_t>(net_driver_.size());
  }
  std::uint32_t gate_count() const {
    return static_cast<std::uint32_t>(gate_type_.size());
  }

  // --- gates ---------------------------------------------------------------

  GateType gate_type(std::uint32_t gate) const { return gate_type_[gate]; }
  std::uint32_t gate_output(std::uint32_t gate) const {
    return gate_output_[gate];
  }
  // Fanin net ids of `gate`, in declaration order (same as Gate::inputs).
  std::span<const std::uint32_t> fanin(std::uint32_t gate) const {
    return {fanin_.data() + fanin_offset_[gate],
            fanin_offset_[gate + 1] - fanin_offset_[gate]};
  }

  // --- nets ----------------------------------------------------------------

  // Driving gate id, or kNoGate for primary inputs / dangling nets.
  std::uint32_t driver(std::uint32_t net) const { return net_driver_[net]; }
  // Reader gate ids, in the order gates were added (same as Net::fanouts).
  std::span<const std::uint32_t> fanout(std::uint32_t net) const {
    return {fanout_.data() + fanout_offset_[net],
            fanout_offset_[net + 1] - fanout_offset_[net]};
  }
  std::uint8_t net_flags(std::uint32_t net) const { return net_flags_[net]; }
  bool is_primary_input(std::uint32_t net) const {
    return (net_flags_[net] & kPrimaryInput) != 0;
  }
  bool is_primary_output(std::uint32_t net) const {
    return (net_flags_[net] & kPrimaryOutput) != 0;
  }
  bool is_flop_output(std::uint32_t net) const {
    return (net_flags_[net] & kFlopOutput) != 0;
  }
  bool feeds_flop(std::uint32_t net) const {
    return (net_flags_[net] & kFeedsFlop) != 0;
  }
  // Interned name (view into the arena; valid for the view's lifetime).
  // Ids are the only currency inside the core; names exist solely at the
  // reporting boundary.
  std::string_view net_name(std::uint32_t net) const {
    return std::string_view(name_arena_)
        .substr(name_offset_[net], name_offset_[net + 1] - name_offset_[net]);
  }

  // --- levelization --------------------------------------------------------

  // False when the combinational logic is cyclic; the order spans below are
  // then empty (lint still works off the adjacency arrays).
  bool acyclic() const { return acyclic_; }
  // All gates in evaluation order — bit-for-bit the order sim::levelize()
  // returns (the scalar simulator's contract).
  std::span<const std::uint32_t> topo_order() const { return topo_order_; }
  // topo_order() minus flops: the combinational evaluation schedule.
  std::span<const std::uint32_t> comb_order() const { return comb_order_; }
  // DFF gate ids in topo order — the order the scalar simulator samples and
  // randomizes state in (bit-parallel stimulus must draw in this order to
  // stay byte-identical).
  std::span<const std::uint32_t> flop_gates() const { return flop_gates_; }
  // Net ids, ascending (same order as Netlist::primary_inputs()).
  std::span<const std::uint32_t> primary_inputs() const {
    return primary_inputs_;
  }
  std::span<const std::uint32_t> primary_outputs() const {
    return primary_outputs_;
  }

  // Total heap footprint of the view (the docs/PERFORMANCE.md
  // bytes-per-gate table is computed from this).
  std::size_t memory_bytes() const;

  // --- CSR cone walks ------------------------------------------------------
  //
  // Exact ports of the walks in cone.h: same visit order, same dedup
  // semantics, same one-charge-per-visited-net budget sequence.  `scratch`
  // carries the visited stamps and the worklist; one scratch per thread.

  // Bounded-depth backward BFS from `root` (included, depth 0), stopping at
  // flop outputs / primary inputs; deterministic BFS order, deduplicated.
  std::vector<std::uint32_t> fanin_cone_nets(std::uint32_t root,
                                             std::size_t max_depth,
                                             ConeScratch& scratch,
                                             WorkBudget* budget = nullptr) const;

  // True iff `candidate` lies in the unbounded combinational fanin cone of
  // `root` (root excluded).  Early-exit DFS.
  bool in_fanin_cone(std::uint32_t root, std::uint32_t candidate,
                     ConeScratch& scratch, WorkBudget* budget = nullptr) const;

 private:
  // True if a walk may expand through this net's driver (combinational,
  // non-flop driver).
  bool expandable(std::uint32_t net) const {
    const std::uint32_t gate = net_driver_[net];
    return gate != kNoGate && gate_type_[gate] != GateType::kDff;
  }

  // Gates (SoA).
  std::vector<GateType> gate_type_;
  std::vector<std::uint32_t> gate_output_;
  std::vector<std::uint32_t> fanin_offset_;  // gate_count()+1
  std::vector<std::uint32_t> fanin_;         // flat net ids

  // Nets (SoA).
  std::vector<std::uint32_t> net_driver_;
  std::vector<std::uint32_t> fanout_offset_;  // net_count()+1
  std::vector<std::uint32_t> fanout_;         // flat gate ids
  std::vector<std::uint8_t> net_flags_;

  // Interned names.
  std::string name_arena_;
  std::vector<std::uint32_t> name_offset_;  // net_count()+1

  // Levelization.
  bool acyclic_ = true;
  std::vector<std::uint32_t> topo_order_;
  std::vector<std::uint32_t> comb_order_;
  std::vector<std::uint32_t> flop_gates_;
  std::vector<std::uint32_t> primary_inputs_;
  std::vector<std::uint32_t> primary_outputs_;
};

}  // namespace netrev::netlist
