#include "netlist/random_netlist.h"

#include <algorithm>

#include "common/contracts.h"
#include "common/rng.h"

namespace netrev::netlist {

Netlist random_netlist(const RandomNetlistSpec& spec) {
  NETREV_REQUIRE(spec.primary_inputs >= 1);
  NETREV_REQUIRE(spec.max_fanin >= 2);
  Rng rng(spec.seed);

  Netlist nl("random_" + std::to_string(spec.seed));

  std::vector<NetId> sources;  // anything a gate may read
  for (std::size_t i = 0; i < spec.primary_inputs; ++i) {
    const NetId pi = nl.add_net("pi" + std::to_string(i));
    nl.mark_primary_input(pi);
    sources.push_back(pi);
  }
  std::vector<NetId> q_nets;
  for (std::size_t i = 0; i < spec.flops; ++i) {
    const NetId q = nl.add_net("q_reg_" + std::to_string(i) + "_");
    q_nets.push_back(q);
    sources.push_back(q);
  }
  if (spec.include_constants) {
    const NetId zero = nl.add_net("const0");
    nl.add_gate(GateType::kConst0, zero, {});
    const NetId one = nl.add_net("const1");
    nl.add_gate(GateType::kConst1, one, {});
    sources.push_back(zero);
    sources.push_back(one);
  }

  static constexpr GateType kCombTypes[] = {
      GateType::kBuf, GateType::kNot, GateType::kAnd, GateType::kNand,
      GateType::kOr,  GateType::kNor, GateType::kXor, GateType::kXnor};

  std::vector<NetId> comb_outputs;
  for (std::size_t g = 0; g < spec.combinational_gates; ++g) {
    const GateType type =
        kCombTypes[rng.next_below(std::size(kCombTypes))];
    const std::size_t arity =
        max_arity(type) == 1
            ? 1
            : 2 + rng.next_below(spec.max_fanin - 1);
    std::vector<NetId> inputs;
    while (inputs.size() < arity) {
      const NetId pick = sources[rng.next_below(sources.size())];
      // Avoid duplicate fanins (validation warning; also keeps XORs honest).
      if (std::find(inputs.begin(), inputs.end(), pick) == inputs.end())
        inputs.push_back(pick);
      else if (sources.size() <= arity)
        break;  // tiny pools: accept fewer inputs
    }
    if (static_cast<int>(inputs.size()) < min_arity(type)) {
      // Degenerate tiny pool; fall back to a NOT of any source.
      inputs.assign(1, sources[rng.next_below(sources.size())]);
      const NetId out = nl.add_net("n" + std::to_string(g));
      nl.add_gate(GateType::kNot, out, inputs);
      sources.push_back(out);
      comb_outputs.push_back(out);
      continue;
    }
    const NetId out = nl.add_net("n" + std::to_string(g));
    nl.add_gate(type, out, inputs);
    sources.push_back(out);
    comb_outputs.push_back(out);
  }

  // Flop D inputs: random combinational outputs (or PIs if none).
  for (std::size_t i = 0; i < spec.flops; ++i) {
    const NetId d = comb_outputs.empty()
                        ? sources[rng.next_below(spec.primary_inputs)]
                        : comb_outputs[rng.next_below(comb_outputs.size())];
    nl.add_gate(GateType::kDff, q_nets[i], {d});
  }

  // Everything without fanout becomes a primary output.
  for (std::size_t i = 0; i < nl.net_count(); ++i) {
    const NetId id = nl.net_id_at(i);
    if (nl.net(id).fanouts.empty() && !nl.net(id).is_primary_output)
      nl.mark_primary_output(id);
  }
  return nl;
}

}  // namespace netrev::netlist
