// Name-based structural comparison of two netlists: same nets with the same
// port directions, same gates in the same file order with the same typed
// connectivity.  Used by round-trip tests and by tools that verify an
// emitted file re-reads to the identical design.
#pragma once

#include <optional>
#include <string>

#include "netlist/netlist.h"

namespace netrev::netlist {

// Returns nullopt when equal; otherwise a human-readable description of the
// first difference found.
std::optional<std::string> structural_difference(const Netlist& a,
                                                 const Netlist& b);

inline bool structurally_equal(const Netlist& a, const Netlist& b) {
  return !structural_difference(a, b).has_value();
}

}  // namespace netrev::netlist
