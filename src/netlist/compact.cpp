#include "netlist/compact.h"

#include <algorithm>

namespace netrev::netlist {

namespace {

void charge(WorkBudget* budget) {
  if (budget != nullptr) budget->charge();
}

}  // namespace

CompactView CompactView::build(const Netlist& nl) {
  CompactView view;
  const std::uint32_t nets = static_cast<std::uint32_t>(nl.net_count());
  const std::uint32_t gates = static_cast<std::uint32_t>(nl.gate_count());

  // --- gates: types, outputs, CSR fanin -----------------------------------
  view.gate_type_.resize(gates);
  view.gate_output_.resize(gates);
  view.fanin_offset_.resize(gates + 1, 0);
  std::size_t fanin_total = 0;
  for (std::uint32_t g = 0; g < gates; ++g) {
    const Gate& gate = nl.gate(GateId(g));
    view.gate_type_[g] = gate.type;
    view.gate_output_[g] = gate.output.value();
    view.fanin_offset_[g] = static_cast<std::uint32_t>(fanin_total);
    fanin_total += gate.inputs.size();
  }
  view.fanin_offset_[gates] = static_cast<std::uint32_t>(fanin_total);
  view.fanin_.reserve(fanin_total);
  for (std::uint32_t g = 0; g < gates; ++g)
    for (NetId in : nl.gate(GateId(g)).inputs)
      view.fanin_.push_back(in.value());

  // --- nets: driver, CSR fanout, flags, name arena -------------------------
  view.net_driver_.resize(nets);
  view.fanout_offset_.resize(nets + 1, 0);
  view.net_flags_.resize(nets, 0);
  view.name_offset_.resize(nets + 1, 0);
  std::size_t fanout_total = 0;
  std::size_t name_total = 0;
  for (std::uint32_t n = 0; n < nets; ++n) {
    const Net& net = nl.net(NetId(n));
    view.net_driver_[n] = net.driver.is_valid() ? net.driver.value() : kNoGate;
    view.fanout_offset_[n] = static_cast<std::uint32_t>(fanout_total);
    fanout_total += net.fanouts.size();
    view.name_offset_[n] = static_cast<std::uint32_t>(name_total);
    name_total += net.name.size();
    std::uint8_t flags = 0;
    if (net.is_primary_input) flags |= kPrimaryInput;
    if (net.is_primary_output) flags |= kPrimaryOutput;
    view.net_flags_[n] = flags;
  }
  view.fanout_offset_[nets] = static_cast<std::uint32_t>(fanout_total);
  view.name_offset_[nets] = static_cast<std::uint32_t>(name_total);
  view.fanout_.reserve(fanout_total);
  view.name_arena_.reserve(name_total);
  for (std::uint32_t n = 0; n < nets; ++n) {
    const Net& net = nl.net(NetId(n));
    for (GateId reader : net.fanouts) view.fanout_.push_back(reader.value());
    view.name_arena_ += net.name;
  }

  // Derived flags off the flattened arrays.
  for (std::uint32_t g = 0; g < gates; ++g) {
    if (view.gate_type_[g] != GateType::kDff) continue;
    view.net_flags_[view.gate_output_[g]] |= kFlopOutput;
    for (std::uint32_t in : view.fanin(g)) view.net_flags_[in] |= kFeedsFlop;
  }
  for (std::uint32_t n = 0; n < nets; ++n) {
    if (view.is_primary_input(n)) view.primary_inputs_.push_back(n);
    if (view.is_primary_output(n)) view.primary_outputs_.push_back(n);
  }

  // --- levelization: exact port of sim::levelize over the CSR arrays ------
  // Kahn's algorithm; a gate depends on the combinational drivers of its
  // inputs, flop drivers break the dependency (previous-cycle state).  The
  // dependents list is built in the same append order and consumed with the
  // same LIFO ready stack as sim::levelize, so the emitted order is
  // bit-for-bit identical (the scalar simulator's flop order derives from
  // it, which the bit-parallel stimulus order must match).
  std::vector<std::uint32_t> pending(gates, 0);
  std::vector<std::uint32_t> dep_offset(gates + 1, 0);
  for (std::uint32_t g = 0; g < gates; ++g) {
    for (std::uint32_t in : view.fanin(g)) {
      const std::uint32_t drv = view.net_driver_[in];
      if (drv == kNoGate || view.gate_type_[drv] == GateType::kDff) continue;
      ++pending[g];
      ++dep_offset[drv + 1];
    }
  }
  for (std::uint32_t g = 0; g < gates; ++g) dep_offset[g + 1] += dep_offset[g];
  std::vector<std::uint32_t> dependents(dep_offset[gates]);
  {
    std::vector<std::uint32_t> cursor(dep_offset.begin(),
                                      dep_offset.end() - 1);
    for (std::uint32_t g = 0; g < gates; ++g) {
      for (std::uint32_t in : view.fanin(g)) {
        const std::uint32_t drv = view.net_driver_[in];
        if (drv == kNoGate || view.gate_type_[drv] == GateType::kDff) continue;
        dependents[cursor[drv]++] = g;
      }
    }
  }

  std::vector<std::uint32_t> ready;
  for (std::uint32_t g = 0; g < gates; ++g)
    if (pending[g] == 0) ready.push_back(g);
  view.topo_order_.reserve(gates);
  while (!ready.empty()) {
    const std::uint32_t g = ready.back();
    ready.pop_back();
    view.topo_order_.push_back(g);
    for (std::uint32_t d = dep_offset[g]; d < dep_offset[g + 1]; ++d)
      if (--pending[dependents[d]] == 0) ready.push_back(dependents[d]);
  }
  if (view.topo_order_.size() != gates) {
    view.acyclic_ = false;
    view.topo_order_.clear();
  } else {
    view.comb_order_.reserve(gates);
    for (std::uint32_t g : view.topo_order_) {
      if (view.gate_type_[g] == GateType::kDff)
        view.flop_gates_.push_back(g);
      else
        view.comb_order_.push_back(g);
    }
  }
  return view;
}

std::size_t CompactView::memory_bytes() const {
  const auto bytes = [](const auto& v) {
    return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  return bytes(gate_type_) + bytes(gate_output_) + bytes(fanin_offset_) +
         bytes(fanin_) + bytes(net_driver_) + bytes(fanout_offset_) +
         bytes(fanout_) + bytes(net_flags_) + name_arena_.capacity() +
         bytes(name_offset_) + bytes(topo_order_) + bytes(comb_order_) +
         bytes(flop_gates_) + bytes(primary_inputs_) + bytes(primary_outputs_);
}

std::vector<std::uint32_t> CompactView::fanin_cone_nets(
    std::uint32_t root, std::size_t max_depth, ConeScratch& scratch,
    WorkBudget* budget) const {
  // BFS identical to netlist::fanin_cone_nets: the worklist stores
  // (net, depth) pairs consumed front-to-back; depth fits the high half
  // because cones never go deeper than the gate count.
  std::vector<std::uint32_t> order;
  scratch.begin(net_count());
  std::vector<std::uint32_t>& queue = scratch.worklist();
  queue.clear();
  std::vector<std::uint32_t> depths;
  queue.push_back(root);
  depths.push_back(0);
  scratch.mark(root);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t net = queue[head];
    const std::size_t depth = depths[head];
    charge(budget);
    order.push_back(net);
    if (depth >= max_depth || !expandable(net)) continue;
    for (std::uint32_t in : fanin(net_driver_[net])) {
      if (!scratch.mark(in)) continue;
      queue.push_back(in);
      depths.push_back(static_cast<std::uint32_t>(depth + 1));
    }
  }
  return order;
}

bool CompactView::in_fanin_cone(std::uint32_t root, std::uint32_t candidate,
                                ConeScratch& scratch,
                                WorkBudget* budget) const {
  if (root == candidate) return false;
  // Targeted DFS with early exit, mirroring netlist::in_fanin_cone: the
  // root's inputs seed the stack (root itself unmarked and uncharged), one
  // budget unit per popped net.
  scratch.begin(net_count());
  std::vector<std::uint32_t>& stack = scratch.worklist();
  stack.clear();
  const auto push_inputs = [&](std::uint32_t net) {
    if (!expandable(net)) return;
    for (std::uint32_t in : fanin(net_driver_[net]))
      if (scratch.mark(in)) stack.push_back(in);
  };
  push_inputs(root);
  while (!stack.empty()) {
    const std::uint32_t net = stack.back();
    stack.pop_back();
    charge(budget);
    if (net == candidate) return true;
    push_inputs(net);
  }
  return false;
}

}  // namespace netrev::netlist
