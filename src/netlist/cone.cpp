#include "netlist/cone.h"

#include <deque>

namespace netrev::netlist {

namespace {

// True if the walk may expand through this net's driver.
bool expandable(const Netlist& nl, NetId net) {
  const auto drv = nl.driver_of(net);
  return drv.has_value() && nl.gate(*drv).type != GateType::kDff;
}

void charge(WorkBudget* budget) {
  if (budget != nullptr) budget->charge();
}

}  // namespace

std::vector<NetId> fanin_cone_nets(const Netlist& nl, NetId root,
                                   std::size_t max_depth, WorkBudget* budget) {
  std::vector<NetId> order;
  std::unordered_set<NetId> seen;
  std::deque<std::pair<NetId, std::size_t>> queue{{root, 0}};
  seen.insert(root);
  while (!queue.empty()) {
    const auto [net, depth] = queue.front();
    queue.pop_front();
    charge(budget);
    order.push_back(net);
    if (depth >= max_depth || !expandable(nl, net)) continue;
    const Gate& gate = nl.gate(*nl.driver_of(net));
    for (NetId in : gate.inputs)
      if (seen.insert(in).second) queue.emplace_back(in, depth + 1);
  }
  return order;
}

std::unordered_set<NetId> fanin_cone_unbounded(const Netlist& nl, NetId root,
                                               WorkBudget* budget) {
  std::unordered_set<NetId> cone;
  std::vector<NetId> stack;
  if (expandable(nl, root)) {
    const Gate& gate = nl.gate(*nl.driver_of(root));
    for (NetId in : gate.inputs)
      if (cone.insert(in).second) stack.push_back(in);
  }
  while (!stack.empty()) {
    const NetId net = stack.back();
    stack.pop_back();
    charge(budget);
    if (!expandable(nl, net)) continue;
    const Gate& gate = nl.gate(*nl.driver_of(net));
    for (NetId in : gate.inputs)
      if (cone.insert(in).second) stack.push_back(in);
  }
  return cone;
}

bool in_fanin_cone(const Netlist& nl, NetId root, NetId candidate,
                   WorkBudget* budget) {
  if (root == candidate) return false;
  // Targeted DFS with early exit instead of materializing the full cone.
  std::unordered_set<NetId> seen;
  std::vector<NetId> stack;
  const auto push_inputs = [&](NetId net) {
    if (!expandable(nl, net)) return;
    const Gate& gate = nl.gate(*nl.driver_of(net));
    for (NetId in : gate.inputs)
      if (seen.insert(in).second) stack.push_back(in);
  };
  push_inputs(root);
  while (!stack.empty()) {
    const NetId net = stack.back();
    stack.pop_back();
    charge(budget);
    if (net == candidate) return true;
    push_inputs(net);
  }
  return false;
}

std::vector<NetId> cone_leaves(const Netlist& nl, NetId root,
                               std::size_t max_depth, WorkBudget* budget) {
  std::vector<NetId> leaves;
  std::unordered_set<NetId> seen{root};
  std::deque<std::pair<NetId, std::size_t>> queue{{root, 0}};
  while (!queue.empty()) {
    const auto [net, depth] = queue.front();
    queue.pop_front();
    charge(budget);
    if (depth >= max_depth || !expandable(nl, net)) {
      leaves.push_back(net);
      continue;
    }
    const Gate& gate = nl.gate(*nl.driver_of(net));
    for (NetId in : gate.inputs)
      if (seen.insert(in).second) queue.emplace_back(in, depth + 1);
  }
  return leaves;
}

}  // namespace netrev::netlist
