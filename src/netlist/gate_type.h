// Gate vocabulary of the gate-level netlist model.
//
// This matches the cell classes present in the flattened ITC99-style netlists
// the paper analyses: simple combinational cells plus a D flip-flop.  The
// controlling-value machinery here is what §2.5 of the paper relies on: "the
// assigned value to a control signal will be the controlling value to one of
// the logic gates that the control signal is feeding into".
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace netrev::netlist {

enum class GateType : std::uint8_t {
  kBuf,     // 1 input
  kNot,     // 1 input
  kAnd,     // >= 2 inputs
  kNand,    // >= 2 inputs
  kOr,      // >= 2 inputs
  kNor,     // >= 2 inputs
  kXor,     // >= 2 inputs
  kXnor,    // >= 2 inputs
  kDff,     // 1 input (D); clock is implicit
  kConst0,  // 0 inputs
  kConst1,  // 0 inputs
};

inline constexpr int kGateTypeCount = 11;

// Short uppercase mnemonic ("NAND"); stable, used by parser/writer.
std::string_view gate_type_name(GateType type);

// Parse a mnemonic (case-insensitive).  Returns nullopt on unknown names.
std::optional<GateType> gate_type_from_name(std::string_view name);

// Single printable character used inside structural hash keys (§2.3).
char gate_type_code(GateType type);

bool is_combinational(GateType type);

// Inclusive arity bounds for validation.
int min_arity(GateType type);
int max_arity(GateType type);  // returns a large sentinel for n-ary gates

// The input value that forces the gate output regardless of other inputs
// (0 for AND/NAND, 1 for OR/NOR).  nullopt for gates with no controlling
// value (XOR/XNOR/BUF/NOT/DFF/consts).
std::optional<bool> controlling_value(GateType type);

// Output produced when a controlling input is present (requires
// controlling_value(type) to be engaged).
bool controlled_output(GateType type);

// Whether the gate inverts: used when a gate collapses to one live input
// during circuit reduction (§2.5, "reduced appropriately into either a buffer
// or inverter").  For XOR/XNOR the collapse parity also depends on the
// constant inputs that were dropped; see reduce.cpp.
bool base_inversion(GateType type);

// Evaluate the gate over concrete input values.  `inputs` must respect the
// arity bounds.  DFF evaluates as a wire (the simulator handles state).
bool eval_gate(GateType type, std::span<const bool> inputs);

}  // namespace netrev::netlist
