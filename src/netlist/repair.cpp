#include "netlist/repair.h"

#include <vector>

namespace netrev::netlist {

RepairResult repair(const Netlist& nl, diag::Diagnostics& diags,
                    const RepairOptions& options) {
  RepairResult result;
  const std::size_t gate_count = nl.gate_count();
  const std::size_t net_count = nl.net_count();

  // --- 1. find floating combinational gates (iterated to a fixpoint) ------
  std::vector<bool> pruned(gate_count, false);
  if (options.prune_floating) {
    // Live fanout count per net; removing a gate decrements its inputs'
    // counts, which can float further gates upstream.
    std::vector<std::size_t> fanout(net_count, 0);
    for (std::size_t i = 0; i < net_count; ++i)
      fanout[i] = nl.net(nl.net_id_at(i)).fanouts.size();

    std::vector<GateId> work;
    const auto is_floating = [&](GateId g) {
      const Gate& gate = nl.gate(g);
      if (gate.type == GateType::kDff) return false;  // state is kept
      const Net& out = nl.net(gate.output);
      return fanout[gate.output.value()] == 0 && !out.is_primary_output;
    };
    for (std::size_t i = 0; i < gate_count; ++i) {
      const GateId g = nl.gate_id_at(i);
      if (is_floating(g)) work.push_back(g);
    }
    while (!work.empty()) {
      const GateId g = work.back();
      work.pop_back();
      if (pruned[g.value()]) continue;
      if (!is_floating(g)) continue;
      pruned[g.value()] = true;
      ++result.stats.floating_pruned;
      for (NetId in : nl.gate(g).inputs) {
        if (--fanout[in.value()] != 0) continue;
        const auto drv = nl.driver_of(in);
        if (drv && is_floating(*drv)) work.push_back(*drv);
      }
    }
  }

  // --- 2. rebuild, keeping nets that still play a role --------------------
  std::vector<bool> keep_net(net_count, false);
  for (std::size_t i = 0; i < net_count; ++i) {
    const Net& net = nl.net(nl.net_id_at(i));
    if (net.is_primary_input || net.is_primary_output) keep_net[i] = true;
  }
  for (std::size_t i = 0; i < gate_count; ++i) {
    if (pruned[i]) continue;
    const Gate& gate = nl.gate(nl.gate_id_at(i));
    keep_net[gate.output.value()] = true;
    for (NetId in : gate.inputs) keep_net[in.value()] = true;
  }

  Netlist out(nl.name());
  for (std::size_t i = 0; i < net_count; ++i) {
    if (!keep_net[i]) {
      ++result.stats.nets_dropped;
      continue;
    }
    const Net& net = nl.net(nl.net_id_at(i));
    const NetId id = out.find_or_add_net(net.name);
    if (net.is_primary_input) out.mark_primary_input(id);
    if (net.is_primary_output) out.mark_primary_output(id);
  }
  for (std::size_t i = 0; i < gate_count; ++i) {
    if (pruned[i]) continue;
    const Gate& gate = nl.gate(nl.gate_id_at(i));
    const NetId output = *out.find_net(nl.net(gate.output).name);
    std::vector<NetId> inputs;
    inputs.reserve(gate.inputs.size());
    for (NetId in : gate.inputs)
      inputs.push_back(*out.find_net(nl.net(in).name));
    out.add_gate(gate.type, output, inputs);
  }

  // --- 3. tie off dangling nets -------------------------------------------
  if (options.tie_off_dangling) {
    const std::size_t rebuilt_nets = out.net_count();
    for (std::size_t i = 0; i < rebuilt_nets; ++i) {
      const NetId id = out.net_id_at(i);
      const Net& net = out.net(id);
      if (net.driver.is_valid() || net.is_primary_input) continue;
      if (net.fanouts.empty() && !net.is_primary_output) continue;
      out.add_gate(GateType::kConst0, id, std::initializer_list<NetId>{});
      ++result.stats.dangling_tied;
      diags.note("repair: tied dangling net '" + net.name +
                 "' to constant 0");
    }
  }

  if (result.stats.floating_pruned != 0)
    diags.warning("repair: pruned " +
                  std::to_string(result.stats.floating_pruned) +
                  " floating gate(s)");
  if (result.stats.dangling_tied != 0)
    diags.warning("repair: tied off " +
                  std::to_string(result.stats.dangling_tied) +
                  " dangling net(s)");

  result.netlist = std::move(out);
  return result;
}

}  // namespace netrev::netlist
