// The flattened gate-level netlist model.
//
// A Netlist owns a set of named nets and a sequence of gates.  Gate order is
// significant: it is the order gate lines appear in the netlist file, which
// §2.2 of the paper exploits ("Each net is compared against the next line in
// the netlist file").  Fanout lists are maintained incrementally so fanin /
// fanout traversals are O(degree).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/strong_id.h"
#include "netlist/gate_type.h"

namespace netrev::netlist {

struct NetTag {};
struct GateTag {};
using NetId = StrongId<NetTag>;
using GateId = StrongId<GateTag>;

struct Net {
  std::string name;
  GateId driver = GateId::invalid();  // invalid => primary input or dangling
  std::vector<GateId> fanouts;        // gates reading this net
  bool is_primary_input = false;
  bool is_primary_output = false;
};

struct Gate {
  GateType type = GateType::kBuf;
  NetId output = NetId::invalid();
  std::vector<NetId> inputs;  // DFF: single D input (clock implicit)
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- construction -------------------------------------------------------

  // Creates a net.  Throws std::invalid_argument if the name is empty or
  // already taken.
  NetId add_net(std::string_view name);

  // Returns the existing net with this name or creates it.
  NetId find_or_add_net(std::string_view name);

  // Creates a gate driving `output` from `inputs`, appended at the end of the
  // file order.  Throws std::invalid_argument on arity violations or if
  // `output` already has a driver.
  GateId add_gate(GateType type, NetId output, std::span<const NetId> inputs);
  GateId add_gate(GateType type, NetId output,
                  std::initializer_list<NetId> inputs);

  void mark_primary_input(NetId net);
  void mark_primary_output(NetId net);

  // --- access -------------------------------------------------------------

  std::size_t net_count() const { return nets_.size(); }
  std::size_t gate_count() const { return gates_.size(); }

  const Net& net(NetId id) const;
  const Gate& gate(GateId id) const;

  // All gate ids in file order.
  std::vector<GateId> gates_in_file_order() const;

  std::optional<NetId> find_net(std::string_view name) const;

  // The gate driving `net`, or nullopt for primary inputs / dangling nets.
  std::optional<GateId> driver_of(NetId net) const;

  // True if the net is the output of a flip-flop.
  bool is_flop_output(NetId net) const;
  // True if the net is read by some flip-flop's D pin.
  bool feeds_flop(NetId net) const;

  std::vector<NetId> primary_inputs() const;
  std::vector<NetId> primary_outputs() const;

  // Iteration helpers: valid ids are exactly [0, count).
  NetId net_id_at(std::size_t index) const { return NetId(static_cast<std::uint32_t>(index)); }
  GateId gate_id_at(std::size_t index) const { return GateId(static_cast<std::uint32_t>(index)); }

  // --- counts used in Table 1 ---------------------------------------------

  std::size_t flop_count() const;
  std::size_t combinational_gate_count() const;

 private:
  std::string name_;
  std::vector<Net> nets_;
  std::vector<Gate> gates_;
  std::unordered_map<std::string, NetId> net_by_name_;
};

}  // namespace netrev::netlist
