#include "netlist/netlist.h"

#include <stdexcept>

#include "common/contracts.h"

namespace netrev::netlist {

NetId Netlist::add_net(std::string_view name) {
  if (name.empty()) throw std::invalid_argument("net name must not be empty");
  std::string key(name);
  if (net_by_name_.contains(key))
    throw std::invalid_argument("duplicate net name: " + key);
  const NetId id(static_cast<std::uint32_t>(nets_.size()));
  Net net;
  net.name = key;
  nets_.push_back(std::move(net));
  net_by_name_.emplace(std::move(key), id);
  return id;
}

NetId Netlist::find_or_add_net(std::string_view name) {
  if (auto existing = find_net(name)) return *existing;
  return add_net(name);
}

GateId Netlist::add_gate(GateType type, NetId output,
                         std::span<const NetId> inputs) {
  NETREV_REQUIRE(output.value() < nets_.size());
  const int arity = static_cast<int>(inputs.size());
  if (arity < min_arity(type) || arity > max_arity(type))
    throw std::invalid_argument(
        std::string("bad arity for gate ") + std::string(gate_type_name(type)) +
        ": " + std::to_string(arity));
  if (nets_[output.value()].driver.is_valid())
    throw std::invalid_argument("net already driven: " +
                                nets_[output.value()].name);
  if (nets_[output.value()].is_primary_input)
    throw std::invalid_argument("primary input cannot be driven: " +
                                nets_[output.value()].name);
  for (NetId in : inputs) NETREV_REQUIRE(in.value() < nets_.size());

  const GateId id(static_cast<std::uint32_t>(gates_.size()));
  Gate gate;
  gate.type = type;
  gate.output = output;
  gate.inputs.assign(inputs.begin(), inputs.end());
  gates_.push_back(std::move(gate));

  nets_[output.value()].driver = id;
  for (NetId in : inputs) nets_[in.value()].fanouts.push_back(id);
  return id;
}

GateId Netlist::add_gate(GateType type, NetId output,
                         std::initializer_list<NetId> inputs) {
  return add_gate(type, output, std::span<const NetId>(inputs.begin(),
                                                       inputs.size()));
}

void Netlist::mark_primary_input(NetId net) {
  NETREV_REQUIRE(net.value() < nets_.size());
  if (nets_[net.value()].driver.is_valid())
    throw std::invalid_argument("driven net cannot be a primary input: " +
                                nets_[net.value()].name);
  nets_[net.value()].is_primary_input = true;
}

void Netlist::mark_primary_output(NetId net) {
  NETREV_REQUIRE(net.value() < nets_.size());
  nets_[net.value()].is_primary_output = true;
}

const Net& Netlist::net(NetId id) const {
  NETREV_REQUIRE(id.value() < nets_.size());
  return nets_[id.value()];
}

const Gate& Netlist::gate(GateId id) const {
  NETREV_REQUIRE(id.value() < gates_.size());
  return gates_[id.value()];
}

std::vector<GateId> Netlist::gates_in_file_order() const {
  std::vector<GateId> order;
  order.reserve(gates_.size());
  for (std::size_t i = 0; i < gates_.size(); ++i)
    order.push_back(GateId(static_cast<std::uint32_t>(i)));
  return order;
}

std::optional<NetId> Netlist::find_net(std::string_view name) const {
  const auto it = net_by_name_.find(std::string(name));
  if (it == net_by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<GateId> Netlist::driver_of(NetId id) const {
  const Net& n = net(id);
  if (!n.driver.is_valid()) return std::nullopt;
  return n.driver;
}

bool Netlist::is_flop_output(NetId id) const {
  const auto drv = driver_of(id);
  return drv.has_value() && gate(*drv).type == GateType::kDff;
}

bool Netlist::feeds_flop(NetId id) const {
  for (GateId g : net(id).fanouts)
    if (gate(g).type == GateType::kDff) return true;
  return false;
}

std::vector<NetId> Netlist::primary_inputs() const {
  std::vector<NetId> result;
  for (std::size_t i = 0; i < nets_.size(); ++i)
    if (nets_[i].is_primary_input) result.push_back(NetId(static_cast<std::uint32_t>(i)));
  return result;
}

std::vector<NetId> Netlist::primary_outputs() const {
  std::vector<NetId> result;
  for (std::size_t i = 0; i < nets_.size(); ++i)
    if (nets_[i].is_primary_output) result.push_back(NetId(static_cast<std::uint32_t>(i)));
  return result;
}

std::size_t Netlist::flop_count() const {
  std::size_t count = 0;
  for (const Gate& g : gates_)
    if (g.type == GateType::kDff) ++count;
  return count;
}

std::size_t Netlist::combinational_gate_count() const {
  return gates_.size() - flop_count();
}

}  // namespace netrev::netlist
