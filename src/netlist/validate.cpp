#include "netlist/validate.h"

#include <unordered_set>

namespace netrev::netlist {

std::size_t ValidationReport::error_count() const {
  std::size_t n = 0;
  for (const auto& issue : issues)
    if (issue.severity == ValidationIssue::Severity::kError) ++n;
  return n;
}

std::size_t ValidationReport::warning_count() const {
  return issues.size() - error_count();
}

std::string ValidationReport::to_string() const {
  std::string out;
  for (const auto& issue : issues) {
    out += issue.severity == ValidationIssue::Severity::kError ? "error: "
                                                               : "warning: ";
    out += issue.message;
    out += '\n';
  }
  return out;
}

namespace {

// Iterative three-color DFS over combinational gates to detect cycles.
// DFF gates break the traversal (their input belongs to the previous cycle).
bool has_combinational_cycle(const Netlist& nl) {
  enum class Color : unsigned char { kWhite, kGray, kBlack };
  std::vector<Color> color(nl.gate_count(), Color::kWhite);

  for (std::size_t start = 0; start < nl.gate_count(); ++start) {
    if (color[start] != Color::kWhite) continue;
    if (nl.gate(nl.gate_id_at(start)).type == GateType::kDff) {
      color[start] = Color::kBlack;
      continue;
    }
    // Explicit stack of (gate index, next input position).
    std::vector<std::pair<std::size_t, std::size_t>> stack;
    stack.emplace_back(start, 0);
    color[start] = Color::kGray;
    while (!stack.empty()) {
      auto& [g, pos] = stack.back();
      const Gate& gate = nl.gate(nl.gate_id_at(g));
      if (pos >= gate.inputs.size()) {
        color[g] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const NetId in = gate.inputs[pos++];
      const auto drv = nl.driver_of(in);
      if (!drv) continue;
      const std::size_t d = drv->value();
      if (nl.gate(*drv).type == GateType::kDff) continue;
      if (color[d] == Color::kGray) return true;
      if (color[d] == Color::kWhite) {
        color[d] = Color::kGray;
        stack.emplace_back(d, 0);
      }
    }
  }
  return false;
}

}  // namespace

ValidationReport validate(const Netlist& nl) {
  ValidationReport report;
  const auto error = [&](std::string msg) {
    report.issues.push_back({ValidationIssue::Severity::kError, std::move(msg)});
  };
  const auto warning = [&](std::string msg) {
    report.issues.push_back({ValidationIssue::Severity::kWarning, std::move(msg)});
  };

  for (std::size_t i = 0; i < nl.net_count(); ++i) {
    const NetId id = nl.net_id_at(i);
    const Net& net = nl.net(id);
    if (!net.driver.is_valid() && !net.is_primary_input)
      error("net '" + net.name + "' has no driver and is not a primary input");
    if (net.driver.is_valid() && net.is_primary_input)
      error("net '" + net.name + "' is a driven primary input");
    if (net.fanouts.empty() && !net.is_primary_output)
      warning("net '" + net.name + "' has no fanout and is not a primary output");
  }

  for (std::size_t i = 0; i < nl.gate_count(); ++i) {
    const Gate& gate = nl.gate(nl.gate_id_at(i));
    const int arity = static_cast<int>(gate.inputs.size());
    if (arity < min_arity(gate.type) || arity > max_arity(gate.type))
      error(std::string("gate of type ") +
            std::string(gate_type_name(gate.type)) + " driving '" +
            nl.net(gate.output).name + "' has arity " + std::to_string(arity));
    std::unordered_set<std::uint32_t> seen;
    for (NetId in : gate.inputs)
      if (!seen.insert(in.value()).second)
        warning("gate driving '" + nl.net(gate.output).name +
                "' reads net '" + nl.net(in).name + "' more than once");
  }

  if (has_combinational_cycle(nl)) error("combinational cycle detected");
  return report;
}

}  // namespace netrev::netlist
