// Summary statistics over a netlist (the "Benchmark" columns of Table 1,
// plus per-gate-type histograms used by tests and the benchmark calibrator).
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "netlist/netlist.h"

namespace netrev::netlist {

struct NetlistStats {
  std::size_t gates = 0;       // all cells including flip-flops
  std::size_t nets = 0;        // all nets including primary inputs
  std::size_t flops = 0;
  std::size_t primary_inputs = 0;
  std::size_t primary_outputs = 0;
  std::array<std::size_t, kGateTypeCount> by_type{};

  std::string to_string() const;
};

NetlistStats compute_stats(const Netlist& nl);

// Maximum and average fanin over combinational gates (0 for empty netlists).
struct FaninProfile {
  std::size_t max_fanin = 0;
  double average_fanin = 0.0;
};
FaninProfile compute_fanin_profile(const Netlist& nl);

// Logic depth: the longest combinational path, in gates, from any primary
// input or flop output to any flop input or primary output.
std::size_t combinational_depth(const Netlist& nl);

}  // namespace netrev::netlist
