#include "parser/lexer.h"

#include <cctype>

#include "common/contracts.h"

namespace netrev::parser {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '\\';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

}  // namespace

std::string_view token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kBitLiteral: return "bit literal";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kEquals: return "'='";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kEndOfFile: return "end of file";
  }
  return "?";
}

std::vector<Token> tokenize(std::string_view source) {
  return tokenize(source, LexOptions{});
}

std::vector<Token> tokenize(std::string_view source,
                            const LexOptions& options) {
  NETREV_REQUIRE(!options.permissive || options.diags != nullptr);
  std::vector<Token> tokens;
  std::size_t line = 1;
  std::size_t column = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  // Throws in strict mode; records a diagnostic in permissive mode, after
  // which the call site skips the offending text and keeps scanning.
  const auto fail = [&](const std::string& message, std::size_t at_line,
                        std::size_t at_column) {
    if (!options.permissive) throw ParseError(message, at_line, at_column);
    options.diags->error(message, {options.file, at_line, at_column});
  };

  const auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count; ++k) {
      if (source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };

  while (i < n) {
    const char c = source[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') advance(1);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const std::size_t start_line = line, start_col = column;
      advance(2);
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/'))
        advance(1);
      if (i + 1 >= n) {
        fail("unterminated block comment", start_line, start_col);
        while (i < n) advance(1);  // comment swallows the rest of the input
        break;
      }
      advance(2);
      continue;
    }

    Token token;
    token.line = line;
    token.column = column;

    const auto single = [&](TokenKind kind) {
      token.kind = kind;
      token.text = c;
      advance(1);
      tokens.push_back(std::move(token));
    };

    switch (c) {
      case '(': single(TokenKind::kLParen); continue;
      case ')': single(TokenKind::kRParen); continue;
      case '[': single(TokenKind::kLBracket); continue;
      case ']': single(TokenKind::kRBracket); continue;
      case ',': single(TokenKind::kComma); continue;
      case ';': single(TokenKind::kSemicolon); continue;
      case '=': single(TokenKind::kEquals); continue;
      case '.': single(TokenKind::kDot); continue;
      case ':': single(TokenKind::kColon); continue;
      default: break;
    }

    if (c == '\\') {
      // Escaped identifier: everything up to the next whitespace.
      advance(1);
      std::string name;
      while (i < n && !std::isspace(static_cast<unsigned char>(source[i]))) {
        name += source[i];
        advance(1);
      }
      if (name.empty()) {
        fail("empty escaped identifier", token.line, token.column);
        continue;
      }
      token.kind = TokenKind::kIdentifier;
      token.text = std::move(name);
      tokens.push_back(std::move(token));
      continue;
    }

    if (is_ident_start(c)) {
      std::string name;
      while (i < n && is_ident_char(source[i])) {
        name += source[i];
        advance(1);
      }
      token.kind = TokenKind::kIdentifier;
      token.text = std::move(name);
      tokens.push_back(std::move(token));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string digits;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
        digits += source[i];
        advance(1);
      }
      // Bit literal: <width>'b<value>
      if (i < n && source[i] == '\'') {
        advance(1);
        if (i >= n || (source[i] != 'b' && source[i] != 'B')) {
          fail("only binary bit literals are supported", token.line,
               token.column);
          continue;  // the digits and quote are consumed; rescan from here
        }
        advance(1);
        std::string bits;
        while (i < n && (source[i] == '0' || source[i] == '1')) {
          bits += source[i];
          advance(1);
        }
        if (bits.empty()) {
          fail("empty bit literal", token.line, token.column);
          continue;
        }
        token.kind = TokenKind::kBitLiteral;
        token.text = std::move(bits);
        tokens.push_back(std::move(token));
        continue;
      }
      token.kind = TokenKind::kNumber;
      token.text = std::move(digits);
      tokens.push_back(std::move(token));
      continue;
    }

    fail(std::string("unexpected character '") + c + "'", line, column);
    advance(1);
  }

  Token eof;
  eof.kind = TokenKind::kEndOfFile;
  eof.line = line;
  eof.column = column;
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace netrev::parser
