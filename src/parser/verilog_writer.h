// Writer emitting the same structural-Verilog subset parse_verilog() reads.
// write/parse round-trips preserve gate order, gate types, connectivity, net
// names, and port directions (property-tested in tests/parser/).
#pragma once

#include <string>

#include "netlist/netlist.h"

namespace netrev::parser {

std::string write_verilog(const netlist::Netlist& nl);

void write_verilog_file(const netlist::Netlist& nl, const std::string& path);

}  // namespace netrev::parser
