// Tokenizer for the structural-Verilog subset used by gate-level netlists.
//
// Handles identifiers (including escaped \names and bus-bit suffixes like
// reg[3]), integer literals, Verilog bit literals (1'b0), punctuation, and
// both comment styles.  Token positions are tracked for error messages.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/diagnostics.h"

namespace netrev::parser {

// Raised on any lexical or syntactic error; carries line/column.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t line, std::size_t column)
      : std::runtime_error(message + " at line " + std::to_string(line) +
                           ", column " + std::to_string(column)),
        message_(message),
        line_(line),
        column_(column) {}

  // The bare message, without the " at line L, column C" suffix of what().
  const std::string& message() const { return message_; }
  std::size_t line() const { return line_; }
  std::size_t column() const { return column_; }

 private:
  std::string message_;
  std::size_t line_;
  std::size_t column_;
};

enum class TokenKind {
  kIdentifier,
  kNumber,      // plain integer
  kBitLiteral,  // 1'b0 / 1'b1, value in text
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kSemicolon,
  kEquals,
  kDot,
  kColon,
  kEndOfFile,
};

struct Token {
  TokenKind kind = TokenKind::kEndOfFile;
  std::string text;
  std::size_t line = 0;
  std::size_t column = 0;
};

struct LexOptions {
  // Strict (default): throw ParseError on the first bad character.
  // Permissive: report a diagnostic into `diags`, skip the offending text,
  // and keep scanning.  `diags` must be non-null when permissive.
  bool permissive = false;
  diag::Diagnostics* diags = nullptr;
  std::string file;  // recorded in diagnostic locations
};

// Tokenizes the whole input eagerly.  Throws ParseError on bad characters.
std::vector<Token> tokenize(std::string_view source);
std::vector<Token> tokenize(std::string_view source,
                            const LexOptions& options);

std::string_view token_kind_name(TokenKind kind);

}  // namespace netrev::parser
