// Reader for the flattened structural-Verilog subset that synthesized
// ITC99-style netlists use: one module, scalar ports, wire declarations, and
// a flat sea of library-cell / primitive instantiations.
//
// Supported statement forms:
//   module NAME (a, b, c);  input a; output z;  wire w1, w2;
//   nand U1 (out, in1, in2);          // primitive, positional, output first
//   NAND2_X1 U2 (out, in1, in2);      // library cell, positional
//   NAND2_X1 U3 (.Y(out), .A(x), .B(y));  // library cell, named ports
//   DFF_X1 r0 (.Q(q), .D(d), .CK(clock)); // flop; clock pin ignored
//   assign a = b;       // buffer
//   assign a = 1'b0;    // constant
//   endmodule
//
// Gate order in the returned netlist equals statement order in the file,
// which is what the §2.2 grouping pass keys on.
#pragma once

#include <string_view>

#include "netlist/netlist.h"

namespace netrev::parser {

// Parses `source`; throws ParseError on malformed input.
netlist::Netlist parse_verilog(std::string_view source);

// Reads and parses a file; throws std::runtime_error if unreadable.
netlist::Netlist parse_verilog_file(const std::string& path);

}  // namespace netrev::parser
