// Reader for the flattened structural-Verilog subset that synthesized
// ITC99-style netlists use: one module, scalar ports, wire declarations, and
// a flat sea of library-cell / primitive instantiations.
//
// Supported statement forms:
//   module NAME (a, b, c);  input a; output z;  wire w1, w2;
//   nand U1 (out, in1, in2);          // primitive, positional, output first
//   NAND2_X1 U2 (out, in1, in2);      // library cell, positional
//   NAND2_X1 U3 (.Y(out), .A(x), .B(y));  // library cell, named ports
//   DFF_X1 r0 (.Q(q), .D(d), .CK(clock)); // flop; clock pin ignored
//   assign a = b;       // buffer
//   assign a = 1'b0;    // constant
//   endmodule
//
// Gate order in the returned netlist equals statement order in the file,
// which is what the §2.2 grouping pass keys on.
//
// This layer parses SOURCE TEXT only.  File access lives in
// netrev::Session::load_netlist (pipeline/session.h), which dispatches on
// the spec, caches the parse, and layers repair/validation on top — the
// former parse_verilog_file entry points have been retired.
#pragma once

#include <string>
#include <string_view>

#include "common/diagnostics.h"
#include "netlist/netlist.h"
#include "parser/parse_options.h"

namespace netrev::parser {

// Parses `source`; throws ParseError on malformed input.
netlist::Netlist parse_verilog(std::string_view source);

// Configurable parse.  With options.permissive, a malformed statement is
// reported into `diags` and the parser resynchronizes at the next ';',
// keeping every statement it can; duplicate drivers are resolved keep-first
// with a warning.  The recovered netlist may contain dangling nets — run
// netlist::repair() before using it.
netlist::Netlist parse_verilog(std::string_view source,
                               const ParseOptions& options,
                               diag::Diagnostics& diags);

}  // namespace netrev::parser
