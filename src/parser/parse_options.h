// How the netlist readers treat malformed or oversized input.
#pragma once

#include <string>

#include "common/resource_guard.h"
#include "exec/cancel.h"

namespace netrev::parser {

struct ParseOptions {
  // Strict (default): throw ParseError on the first malformed construct —
  // the historical behavior, unchanged byte-for-byte.  Permissive: emit a
  // diagnostic into the caller's sink, skip the bad construct, and keep
  // parsing; the result may need netlist::repair() before it is usable.
  bool permissive = false;

  // Recorded in diagnostic source locations (usually the input path).
  std::string filename;

  // Ceilings turning runaway inputs into clean failures (strict: throws
  // ResourceLimitError; permissive: fatal diagnostic, parsing stops).
  ResourceLimits limits;

  // Cancellation/deadline poll point; the parser loops poll it per line /
  // statement.  Observation-only: excluded from the options fingerprint
  // (it changes whether a parse finishes, never what it produces).
  exec::Checkpoint checkpoint;
};

}  // namespace netrev::parser
