#include "parser/bench_parser.h"

#include "common/atomic_file.h"
#include "common/text.h"
#include "exec/chaos.h"
#include "parser/lexer.h"

namespace netrev::parser {

namespace {

using netlist::GateType;
using netlist::Netlist;

// 1-based column of `sub` within the line buffer `base`.  Both views must
// point into the same underlying storage (substr/trim preserve this).
std::size_t column_of(std::string_view base, std::string_view sub) {
  return static_cast<std::size_t>(sub.data() - base.data()) + 1;
}

struct BenchLine {
  std::string output;
  std::string function;
  std::vector<std::string> args;
  std::size_t line_number = 0;
  std::size_t output_column = 1;
  std::size_t function_column = 1;
};

// Parses "NAME = FUNC(arg, arg, ...)" into a BenchLine.  `base` is the raw
// line as read from the file; `line` is its comment-stripped, trimmed view
// into the same buffer, so reported columns are real file columns.
BenchLine parse_gate_line(std::string_view base, std::string_view line,
                          std::size_t line_number) {
  BenchLine parsed;
  parsed.line_number = line_number;
  const std::size_t eq = line.find('=');
  if (eq == std::string_view::npos)
    throw ParseError("expected '='", line_number, column_of(base, line));
  const std::string_view lhs = trim(line.substr(0, eq));
  parsed.output = std::string(lhs);
  parsed.output_column =
      lhs.empty() ? column_of(base, line) : column_of(base, lhs);
  std::string_view rhs = trim(line.substr(eq + 1));
  const std::size_t open = rhs.find('(');
  const std::size_t close = rhs.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open)
    throw ParseError("expected FUNC(args)", line_number,
                     rhs.empty() ? column_of(base, line) + eq + 1
                                 : column_of(base, rhs));
  const std::string_view func = trim(rhs.substr(0, open));
  parsed.function = std::string(func);
  parsed.function_column =
      func.empty() ? column_of(base, rhs) : column_of(base, func);
  const std::string_view args = rhs.substr(open + 1, close - open - 1);
  if (!trim(args).empty()) {
    std::size_t pos = 0;
    while (true) {
      const std::size_t comma = args.find(',', pos);
      const std::string_view field =
          comma == std::string_view::npos ? args.substr(pos)
                                          : args.substr(pos, comma - pos);
      const auto arg = trim(field);
      if (arg.empty())
        throw ParseError("empty argument", line_number,
                         column_of(base, field));
      parsed.args.emplace_back(arg);
      if (comma == std::string_view::npos) break;
      pos = comma + 1;
    }
  }
  if (parsed.output.empty())
    throw ParseError("empty output name", line_number, parsed.output_column);
  return parsed;
}

GateType function_to_type(const std::string& function, std::size_t line,
                          std::size_t column) {
  if (auto type = netlist::gate_type_from_name(function)) return *type;
  if (function == "VDD") return GateType::kConst1;
  if (function == "GND") return GateType::kConst0;
  throw ParseError("unknown function '" + function + "'", line, column);
}

}  // namespace

Netlist parse_bench(std::string_view source, const ParseOptions& options,
                    diag::Diagnostics& diags) {
  exec::chaos_point("parse");
  const auto here = [&](std::size_t line, std::size_t column) {
    return diag::SourceLocation{options.filename, line, column};
  };

  if (source.size() > options.limits.max_file_bytes) {
    const std::string message =
        "input exceeds maximum file size (" + std::to_string(source.size()) +
        " > " + std::to_string(options.limits.max_file_bytes) + " bytes)";
    if (!options.permissive) throw ResourceLimitError(message);
    diags.fatal(message, here(0, 0));
    return Netlist("bench");
  }

  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<BenchLine> gates;

  std::size_t line_number = 0;
  for (const auto& raw : split(source, '\n')) {
    ++line_number;
    options.checkpoint.poll();
    if (options.permissive && diags.at_error_limit()) {
      diags.note("too many errors; giving up on the rest of the input",
                 here(line_number, 1));
      break;
    }
    const std::string_view base = raw;
    std::string_view line = base;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    if (starts_with(line, "INPUT(") && line.back() == ')') {
      inputs.emplace_back(trim(line.substr(6, line.size() - 7)));
    } else if (starts_with(line, "OUTPUT(") && line.back() == ')') {
      outputs.emplace_back(trim(line.substr(7, line.size() - 8)));
    } else {
      try {
        gates.push_back(parse_gate_line(base, line, line_number));
      } catch (const ParseError& err) {
        if (!options.permissive) throw;
        diags.error(err.message() + "; line skipped",
                    here(err.line(), err.column()));
      }
    }
  }

  Netlist nl("bench");
  const auto over_limits = [&] {
    return nl.net_count() > options.limits.max_nets ||
           nl.gate_count() > options.limits.max_gates;
  };
  const auto limit_failure = [&](std::size_t line) {
    const std::string message =
        "netlist exceeds resource limits (" + std::to_string(nl.net_count()) +
        " nets, " + std::to_string(nl.gate_count()) + " gates)";
    if (!options.permissive) throw ResourceLimitError(message);
    diags.fatal(message, here(line, 1));
  };

  for (const auto& name : inputs) nl.mark_primary_input(nl.find_or_add_net(name));
  for (const auto& name : outputs) nl.mark_primary_output(nl.find_or_add_net(name));
  if (over_limits()) {
    limit_failure(line_number);
    return nl;
  }
  for (const auto& gate : gates) {
    if (options.permissive && diags.at_error_limit()) {
      diags.note("too many errors; giving up on the rest of the input",
                 here(gate.line_number, 1));
      break;
    }
    GateType type;
    try {
      type = function_to_type(gate.function, gate.line_number,
                              gate.function_column);
    } catch (const ParseError& err) {
      if (!options.permissive) throw;
      diags.error(err.message() + "; gate dropped",
                  here(err.line(), err.column()));
      continue;
    }
    const auto out = nl.find_or_add_net(gate.output);
    std::vector<netlist::NetId> ins;
    ins.reserve(gate.args.size());
    for (const auto& arg : gate.args) ins.push_back(nl.find_or_add_net(arg));
    try {
      nl.add_gate(type, out, ins);
    } catch (const std::invalid_argument& err) {
      if (!options.permissive)
        throw ParseError(err.what(), gate.line_number, gate.output_column);
      // Keep-first: a duplicate driver (or a gate driving a primary input)
      // drops the later gate; arity violations drop the malformed gate.
      diags.warning(std::string(err.what()) + "; gate dropped",
                    here(gate.line_number, gate.output_column));
      continue;
    }
    if (over_limits()) {
      limit_failure(gate.line_number);
      return nl;
    }
  }
  return nl;
}

Netlist parse_bench(std::string_view source) {
  diag::Diagnostics diags;
  return parse_bench(source, ParseOptions{}, diags);
}

std::string write_bench(const Netlist& nl) {
  std::string out = "# " + nl.name() + "\n";
  for (netlist::NetId id : nl.primary_inputs())
    out += "INPUT(" + nl.net(id).name + ")\n";
  for (netlist::NetId id : nl.primary_outputs())
    out += "OUTPUT(" + nl.net(id).name + ")\n";
  for (netlist::GateId g : nl.gates_in_file_order()) {
    const netlist::Gate& gate = nl.gate(g);
    out += nl.net(gate.output).name + " = ";
    out += gate_type_name(gate.type);
    out += '(';
    for (std::size_t i = 0; i < gate.inputs.size(); ++i) {
      if (i > 0) out += ", ";
      out += nl.net(gate.inputs[i]).name;
    }
    out += ")\n";
  }
  return out;
}

void write_bench_file(const Netlist& nl, const std::string& path) {
  // Temp-file + rename: a crash mid-write never leaves a truncated .bench.
  io::write_file_atomic(path, write_bench(nl));
}

}  // namespace netrev::parser
