#include "parser/bench_parser.h"

#include <fstream>
#include <sstream>
#include <unordered_set>

#include "common/text.h"
#include "parser/lexer.h"

namespace netrev::parser {

namespace {

using netlist::GateType;
using netlist::Netlist;

struct BenchLine {
  std::string output;
  std::string function;
  std::vector<std::string> args;
  std::size_t line_number = 0;
};

// Parses "NAME = FUNC(arg, arg, ...)" into a BenchLine.
BenchLine parse_gate_line(std::string_view line, std::size_t line_number) {
  BenchLine parsed;
  parsed.line_number = line_number;
  const std::size_t eq = line.find('=');
  if (eq == std::string_view::npos)
    throw ParseError("expected '='", line_number, 1);
  parsed.output = std::string(trim(line.substr(0, eq)));
  std::string_view rhs = trim(line.substr(eq + 1));
  const std::size_t open = rhs.find('(');
  const std::size_t close = rhs.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open)
    throw ParseError("expected FUNC(args)", line_number, 1);
  parsed.function = std::string(trim(rhs.substr(0, open)));
  const std::string_view args = rhs.substr(open + 1, close - open - 1);
  if (!trim(args).empty()) {
    for (const auto& field : split(args, ',')) {
      const auto arg = trim(field);
      if (arg.empty()) throw ParseError("empty argument", line_number, 1);
      parsed.args.emplace_back(arg);
    }
  }
  if (parsed.output.empty())
    throw ParseError("empty output name", line_number, 1);
  return parsed;
}

GateType function_to_type(const std::string& function, std::size_t line) {
  if (auto type = netlist::gate_type_from_name(function)) return *type;
  if (function == "VDD") return GateType::kConst1;
  if (function == "GND") return GateType::kConst0;
  throw ParseError("unknown function '" + function + "'", line, 1);
}

}  // namespace

Netlist parse_bench(std::string_view source) {
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<BenchLine> gates;

  std::size_t line_number = 0;
  for (const auto& raw : split(source, '\n')) {
    ++line_number;
    std::string_view line = raw;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    if (starts_with(line, "INPUT(") && line.back() == ')') {
      inputs.emplace_back(trim(line.substr(6, line.size() - 7)));
    } else if (starts_with(line, "OUTPUT(") && line.back() == ')') {
      outputs.emplace_back(trim(line.substr(7, line.size() - 8)));
    } else {
      gates.push_back(parse_gate_line(line, line_number));
    }
  }

  Netlist nl("bench");
  for (const auto& name : inputs) nl.mark_primary_input(nl.find_or_add_net(name));
  for (const auto& name : outputs) nl.mark_primary_output(nl.find_or_add_net(name));
  for (const auto& gate : gates) {
    const GateType type = function_to_type(gate.function, gate.line_number);
    const auto out = nl.find_or_add_net(gate.output);
    std::vector<netlist::NetId> ins;
    ins.reserve(gate.args.size());
    for (const auto& arg : gate.args) ins.push_back(nl.find_or_add_net(arg));
    try {
      nl.add_gate(type, out, ins);
    } catch (const std::invalid_argument& err) {
      throw ParseError(err.what(), gate.line_number, 1);
    }
  }
  return nl;
}

Netlist parse_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_bench(buffer.str());
}

std::string write_bench(const Netlist& nl) {
  std::string out = "# " + nl.name() + "\n";
  for (netlist::NetId id : nl.primary_inputs())
    out += "INPUT(" + nl.net(id).name + ")\n";
  for (netlist::NetId id : nl.primary_outputs())
    out += "OUTPUT(" + nl.net(id).name + ")\n";
  for (netlist::GateId g : nl.gates_in_file_order()) {
    const netlist::Gate& gate = nl.gate(g);
    out += nl.net(gate.output).name + " = ";
    out += gate_type_name(gate.type);
    out += '(';
    for (std::size_t i = 0; i < gate.inputs.size(); ++i) {
      if (i > 0) out += ", ";
      out += nl.net(gate.inputs[i]).name;
    }
    out += ")\n";
  }
  return out;
}

void write_bench_file(const Netlist& nl, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open file for writing: " + path);
  out << write_bench(nl);
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace netrev::parser
