#include "parser/verilog_writer.h"

#include <cctype>
#include <stdexcept>

#include "common/atomic_file.h"
#include "common/contracts.h"

namespace netrev::parser {

namespace {

using netlist::GateType;
using netlist::Netlist;

// Escape names that are not simple Verilog identifiers.
std::string emit_name(const std::string& name) {
  NETREV_REQUIRE(!name.empty());
  bool simple = std::isalpha(static_cast<unsigned char>(name[0])) != 0 ||
                name[0] == '_';
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$'))
      simple = false;
  }
  if (simple) return name;
  return "\\" + name + " ";
}

std::string cell_name(GateType type, std::size_t arity) {
  switch (type) {
    case GateType::kBuf: return "BUF";
    case GateType::kNot: return "NOT";
    case GateType::kDff: return "DFF";
    default:
      return std::string(gate_type_name(type)) + std::to_string(arity);
  }
}

}  // namespace

std::string write_verilog(const Netlist& nl) {
  std::string out;
  out += "module " + (nl.name().empty() ? std::string("top") : nl.name()) +
         " (";
  bool first = true;
  const auto emit_port = [&](netlist::NetId id) {
    if (!first) out += ", ";
    out += emit_name(nl.net(id).name);
    first = false;
  };
  for (netlist::NetId id : nl.primary_inputs()) emit_port(id);
  for (netlist::NetId id : nl.primary_outputs()) emit_port(id);
  out += ");\n";

  for (netlist::NetId id : nl.primary_inputs())
    out += "  input " + emit_name(nl.net(id).name) + ";\n";
  for (netlist::NetId id : nl.primary_outputs())
    out += "  output " + emit_name(nl.net(id).name) + ";\n";
  for (std::size_t i = 0; i < nl.net_count(); ++i) {
    const netlist::Net& net = nl.net(nl.net_id_at(i));
    if (net.is_primary_input || net.is_primary_output) continue;
    out += "  wire " + emit_name(net.name) + ";\n";
  }
  out += "\n";

  std::size_t instance = 0;
  for (netlist::GateId g : nl.gates_in_file_order()) {
    const netlist::Gate& gate = nl.gate(g);
    const std::string output = emit_name(nl.net(gate.output).name);
    if (gate.type == GateType::kConst0) {
      out += "  assign " + output + " = 1'b0;\n";
      continue;
    }
    if (gate.type == GateType::kConst1) {
      out += "  assign " + output + " = 1'b1;\n";
      continue;
    }
    out += "  " + cell_name(gate.type, gate.inputs.size()) + " g" +
           std::to_string(instance++) + " (" + output;
    for (netlist::NetId in : gate.inputs)
      out += ", " + emit_name(nl.net(in).name);
    out += ");\n";
  }
  out += "endmodule\n";
  return out;
}

void write_verilog_file(const Netlist& nl, const std::string& path) {
  // Temp-file + rename: a crash mid-write never leaves a truncated .v.
  io::write_file_atomic(path, write_verilog(nl));
}

}  // namespace netrev::parser
