// Reader/writer for the ISCAS/ITC ".bench" netlist format:
//
//   # comment
//   INPUT(G0)
//   OUTPUT(G17)
//   G10 = NAND(G0, G1)
//   G11 = DFF(G10)
//   G12 = NOT(G11)
//
// Like the Verilog reader, line order is preserved as gate order.
#pragma once

#include <string>
#include <string_view>

#include "netlist/netlist.h"

namespace netrev::parser {

netlist::Netlist parse_bench(std::string_view source);
netlist::Netlist parse_bench_file(const std::string& path);

std::string write_bench(const netlist::Netlist& nl);
void write_bench_file(const netlist::Netlist& nl, const std::string& path);

}  // namespace netrev::parser
