// Reader/writer for the ISCAS/ITC ".bench" netlist format:
//
//   # comment
//   INPUT(G0)
//   OUTPUT(G17)
//   G10 = NAND(G0, G1)
//   G11 = DFF(G10)
//   G12 = NOT(G11)
//
// Like the Verilog reader, line order is preserved as gate order.
//
// This layer parses SOURCE TEXT only (the writer still writes files).  File
// reading lives in netrev::Session::load_netlist (pipeline/session.h), which
// dispatches on the spec, caches the parse, and layers repair/validation on
// top — the former parse_bench_file entry points have been retired.
#pragma once

#include <string>
#include <string_view>

#include "common/diagnostics.h"
#include "netlist/netlist.h"
#include "parser/parse_options.h"

namespace netrev::parser {

// Strict parse: throws ParseError (with real line/column) on the first
// malformed construct, ResourceLimitError on oversized input.
netlist::Netlist parse_bench(std::string_view source);

// Configurable parse.  With options.permissive, malformed lines are skipped
// with a diagnostic and parsing continues; the recovered netlist may contain
// dangling nets (run netlist::repair() before using it).  Duplicate drivers
// are resolved keep-first with a warning.
netlist::Netlist parse_bench(std::string_view source,
                             const ParseOptions& options,
                             diag::Diagnostics& diags);

std::string write_bench(const netlist::Netlist& nl);
void write_bench_file(const netlist::Netlist& nl, const std::string& path);

}  // namespace netrev::parser
