#include "parser/verilog_parser.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "exec/chaos.h"
#include "parser/lexer.h"

namespace netrev::parser {

namespace {

using netlist::GateType;
using netlist::Netlist;

// Pin names conventionally used for cell outputs.
bool is_output_pin(std::string_view pin) {
  return pin == "Y" || pin == "Q" || pin == "Z" || pin == "O" || pin == "OUT";
}

// Pin names for clock/reset-style connections we deliberately ignore: the
// netlist model treats clocking as implicit (DESIGN.md §6).
bool is_ignored_pin(std::string_view pin) {
  return pin == "CK" || pin == "CLK" || pin == "CLOCK" || pin == "RST" ||
         pin == "RESET" || pin == "SET" || pin == "EN";
}

// Maps a cell identifier like "NAND3_X2", "nand", "INV" to a gate type.
std::optional<GateType> cell_to_gate_type(std::string_view cell) {
  std::string upper(cell);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  // Strip a drive-strength suffix (_X1, X2, ...).
  const auto strip_suffix = [&](std::string& s) {
    const std::size_t x = s.rfind('X');
    if (x != std::string::npos && x + 1 < s.size() &&
        std::all_of(s.begin() + static_cast<std::ptrdiff_t>(x) + 1, s.end(),
                    [](unsigned char c) { return std::isdigit(c); })) {
      s.erase(x);
      if (!s.empty() && s.back() == '_') s.pop_back();
    }
  };
  strip_suffix(upper);
  // Strip a trailing arity count (NAND3 -> NAND).
  while (!upper.empty() && std::isdigit(static_cast<unsigned char>(upper.back())))
    upper.pop_back();
  if (upper == "FD" || upper == "DFF" || upper == "SDFF" || upper == "FLOP")
    return GateType::kDff;
  return netlist::gate_type_from_name(upper);
}

struct PendingGate {
  GateType type = GateType::kBuf;
  std::string output;
  std::vector<std::string> inputs;
  std::size_t line = 0;
  std::size_t column = 1;
};

class VerilogParser {
 public:
  VerilogParser(std::string_view source, const ParseOptions& options,
                diag::Diagnostics& diags)
      : options_(options),
        diags_(diags),
        tokens_(tokenize(source, LexOptions{options.permissive, &diags,
                                            options.filename})) {}

  Netlist parse() {
    std::string module_name = parse_header();

    while (!at_keyword("endmodule")) {
      options_.checkpoint.poll();
      const Token& tok = peek();
      if (tok.kind == TokenKind::kEndOfFile) {
        if (!permissive())
          throw ParseError("missing 'endmodule'", tok.line, tok.column);
        diags_.error("missing 'endmodule'", here(tok));
        break;
      }
      if (permissive() && diags_.at_error_limit()) {
        diags_.note("too many errors; giving up on the rest of the input",
                    here(tok));
        break;
      }
      try {
        parse_statement();
      } catch (const ParseError& err) {
        if (!permissive()) throw;
        diags_.error(err.message() + "; statement skipped",
                     {options_.filename, err.line(), err.column()});
        synchronize();
      }
    }
    if (at_keyword("endmodule")) expect_keyword("endmodule");

    return build(module_name);
  }

 private:
  bool permissive() const { return options_.permissive; }

  diag::SourceLocation here(const Token& tok) const {
    return {options_.filename, tok.line, tok.column};
  }

  // --- token stream helpers -----------------------------------------------

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t index = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[index];
  }

  Token take() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  void expect(TokenKind kind) {
    const Token tok = take();
    if (tok.kind != kind)
      throw ParseError("expected " + std::string(token_kind_name(kind)) +
                           ", got " + std::string(token_kind_name(tok.kind)),
                       tok.line, tok.column);
  }

  bool at_keyword(std::string_view keyword) const {
    const Token& tok = peek();
    return tok.kind == TokenKind::kIdentifier && tok.text == keyword;
  }

  void expect_keyword(std::string_view keyword) {
    const Token tok = take();
    if (tok.kind != TokenKind::kIdentifier || tok.text != keyword)
      throw ParseError("expected '" + std::string(keyword) + "'", tok.line,
                       tok.column);
  }

  std::string expect_identifier() {
    const Token tok = take();
    if (tok.kind != TokenKind::kIdentifier)
      throw ParseError("expected identifier, got " +
                           std::string(token_kind_name(tok.kind)),
                       tok.line, tok.column);
    return tok.text;
  }

  // Identifier with optional [index] suffix, normalized to "name[index]".
  std::string expect_net_name() {
    std::string name = expect_identifier();
    if (peek().kind == TokenKind::kLBracket) {
      take();
      const Token index = take();
      if (index.kind != TokenKind::kNumber)
        throw ParseError("expected bit index", index.line, index.column);
      expect(TokenKind::kRBracket);
      name += '[' + index.text + ']';
    }
    return name;
  }

  // Error recovery: skip to just past the next ';' (or stop at 'endmodule' /
  // end of file) so the next statement starts on a clean boundary.  Always
  // consumes at least one token unless already at end of file.
  void synchronize() {
    while (true) {
      const Token& tok = peek();
      if (tok.kind == TokenKind::kEndOfFile) return;
      if (at_keyword("endmodule")) return;
      if (tok.kind == TokenKind::kSemicolon) {
        take();
        return;
      }
      take();
    }
  }

  // --- grammar ---------------------------------------------------------

  std::string parse_header() {
    try {
      expect_keyword("module");
      const std::string module_name = expect_identifier();
      parse_port_header();
      expect(TokenKind::kSemicolon);
      return module_name;
    } catch (const ParseError& err) {
      if (!permissive()) throw;
      diags_.error(err.message() + "; module header skipped",
                   {options_.filename, err.line(), err.column()});
      synchronize();
      return "recovered";
    }
  }

  void parse_statement() {
    const Token& tok = peek();
    if (at_keyword("input")) {
      parse_declaration(inputs_);
    } else if (at_keyword("output")) {
      parse_declaration(outputs_);
    } else if (at_keyword("wire")) {
      parse_declaration(wires_);
    } else if (at_keyword("assign")) {
      parse_assign();
    } else if (tok.kind == TokenKind::kIdentifier) {
      parse_instance();
    } else {
      throw ParseError("expected statement, got " +
                           std::string(token_kind_name(tok.kind)),
                       tok.line, tok.column);
    }
  }

  void parse_port_header() {
    expect(TokenKind::kLParen);
    if (peek().kind != TokenKind::kRParen) {
      while (true) {
        expect_net_name();  // header order is not semantically relevant
        if (peek().kind != TokenKind::kComma) break;
        take();
      }
    }
    expect(TokenKind::kRParen);
  }

  void parse_declaration(std::vector<std::string>& into) {
    take();  // keyword
    while (true) {
      into.push_back(expect_net_name());
      if (peek().kind != TokenKind::kComma) break;
      take();
    }
    expect(TokenKind::kSemicolon);
  }

  void parse_assign() {
    const Token keyword = peek();
    take();  // 'assign'
    PendingGate gate;
    gate.line = keyword.line;
    gate.column = keyword.column;
    gate.output = expect_net_name();
    expect(TokenKind::kEquals);
    const Token rhs = peek();
    if (rhs.kind == TokenKind::kBitLiteral) {
      take();
      if (rhs.text.size() != 1 || (rhs.text[0] != '0' && rhs.text[0] != '1'))
        throw ParseError("only single-bit constants supported", rhs.line,
                         rhs.column);
      gate.type = rhs.text[0] == '0' ? GateType::kConst0 : GateType::kConst1;
    } else {
      gate.type = GateType::kBuf;
      gate.inputs.push_back(expect_net_name());
    }
    expect(TokenKind::kSemicolon);
    gates_.push_back(std::move(gate));
  }

  void parse_instance() {
    const Token cell_tok = take();
    const auto type = cell_to_gate_type(cell_tok.text);
    if (!type)
      throw ParseError("unknown cell type '" + cell_tok.text + "'",
                       cell_tok.line, cell_tok.column);

    // Optional instance name (primitives may omit it).
    if (peek().kind == TokenKind::kIdentifier) take();

    PendingGate gate;
    gate.type = *type;
    gate.line = cell_tok.line;
    gate.column = cell_tok.column;

    expect(TokenKind::kLParen);
    if (peek().kind == TokenKind::kDot) {
      parse_named_connections(gate);
    } else {
      parse_positional_connections(gate);
    }
    expect(TokenKind::kRParen);
    expect(TokenKind::kSemicolon);

    if (gate.output.empty())
      throw ParseError("instance has no output connection", cell_tok.line,
                       cell_tok.column);
    gates_.push_back(std::move(gate));
  }

  void parse_positional_connections(PendingGate& gate) {
    // Verilog primitive convention: output first, then inputs.
    gate.output = expect_net_name();
    while (peek().kind == TokenKind::kComma) {
      take();
      gate.inputs.push_back(expect_net_name());
    }
  }

  void parse_named_connections(PendingGate& gate) {
    // Collect (pin, net); sort input pins by name so A,B,C order is stable
    // regardless of the order connections appear in the file.
    std::vector<std::pair<std::string, std::string>> input_pins;
    while (true) {
      expect(TokenKind::kDot);
      const std::string pin = expect_identifier();
      expect(TokenKind::kLParen);
      const std::string net = expect_net_name();
      expect(TokenKind::kRParen);
      if (is_output_pin(pin)) {
        gate.output = net;
      } else if (!is_ignored_pin(pin)) {
        input_pins.emplace_back(pin, net);
      }
      if (peek().kind != TokenKind::kComma) break;
      take();
    }
    std::sort(input_pins.begin(), input_pins.end());
    for (auto& [pin, net] : input_pins) gate.inputs.push_back(std::move(net));
  }

  // --- netlist construction ----------------------------------------------

  Netlist build(const std::string& module_name) {
    Netlist nl(module_name);
    const auto ensure = [&](const std::string& name) {
      return nl.find_or_add_net(name);
    };

    std::unordered_set<std::string> declared_inputs(inputs_.begin(),
                                                    inputs_.end());
    // Declare in a deterministic order: inputs, outputs, wires, then
    // implicitly-declared nets as they appear in gates.
    for (const auto& name : inputs_) {
      const auto id = ensure(name);
      nl.mark_primary_input(id);
    }
    for (const auto& name : outputs_) nl.mark_primary_output(ensure(name));
    for (const auto& name : wires_) ensure(name);

    const auto over_limits = [&] {
      return nl.net_count() > options_.limits.max_nets ||
             nl.gate_count() > options_.limits.max_gates;
    };
    for (const auto& gate : gates_) {
      if (declared_inputs.contains(gate.output)) {
        if (!permissive())
          throw ParseError("gate drives primary input '" + gate.output + "'",
                           gate.line, gate.column);
        diags_.warning("gate drives primary input '" + gate.output +
                           "'; gate dropped",
                       {options_.filename, gate.line, gate.column});
        continue;
      }
      const auto out = ensure(gate.output);
      std::vector<netlist::NetId> ins;
      ins.reserve(gate.inputs.size());
      for (const auto& in : gate.inputs) ins.push_back(ensure(in));
      try {
        nl.add_gate(gate.type, out, ins);
      } catch (const std::invalid_argument& err) {
        if (!permissive())
          throw ParseError(err.what(), gate.line, gate.column);
        // Keep-first duplicate-driver resolution; arity violations drop the
        // malformed gate.
        diags_.warning(std::string(err.what()) + "; gate dropped",
                       {options_.filename, gate.line, gate.column});
        continue;
      }
      if (over_limits()) {
        const std::string message = "netlist exceeds resource limits (" +
                                    std::to_string(nl.net_count()) + " nets, " +
                                    std::to_string(nl.gate_count()) +
                                    " gates)";
        if (!permissive()) throw ResourceLimitError(message);
        diags_.fatal(message, {options_.filename, gate.line, gate.column});
        break;
      }
    }
    return nl;
  }

  const ParseOptions& options_;
  diag::Diagnostics& diags_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::vector<std::string> inputs_;
  std::vector<std::string> outputs_;
  std::vector<std::string> wires_;
  std::vector<PendingGate> gates_;
};

}  // namespace

netlist::Netlist parse_verilog(std::string_view source,
                               const ParseOptions& options,
                               diag::Diagnostics& diags) {
  exec::chaos_point("parse");
  if (source.size() > options.limits.max_file_bytes) {
    const std::string message =
        "input exceeds maximum file size (" + std::to_string(source.size()) +
        " > " + std::to_string(options.limits.max_file_bytes) + " bytes)";
    if (!options.permissive) throw ResourceLimitError(message);
    diags.fatal(message, {options.filename, 0, 0});
    return Netlist("recovered");
  }
  return VerilogParser(source, options, diags).parse();
}

netlist::Netlist parse_verilog(std::string_view source) {
  diag::Diagnostics diags;
  return parse_verilog(source, ParseOptions{}, diags);
}

}  // namespace netrev::parser
