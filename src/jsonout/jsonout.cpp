#include "jsonout/jsonout.h"

namespace netrev::jsonout {

std::string version_field() {
  return "\"schema_version\":" + std::to_string(kSchemaVersion);
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string quote(std::string_view text) {
  return '"' + escape(text) + '"';
}

std::string document(std::string_view members) {
  std::string out = "{" + version_field();
  if (!members.empty()) {
    out += ',';
    out += members;
  }
  out += '}';
  return out;
}

}  // namespace netrev::jsonout
