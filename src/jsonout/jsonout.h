// Shared JSON emission policy for every netrev output surface.
//
// All JSON the tool emits — identify/evaluate/lint reports, batch results,
// serve responses, lifted word-level models — is hand-rendered (no external
// JSON dependency) through this module so the escaping rules and the
// interchange version stamp cannot drift between surfaces.
//
// The contract:
//
//   * Every top-level document begins with `"schema_version":<kSchemaVersion>`
//     as its FIRST field, so consumers can dispatch on the version before
//     parsing the rest.  Documents embedded inside other documents (an
//     identify report inside a batch entry, diagnostics inside a serve
//     response) keep their own stamp — each is independently consumable.
//   * Emission is deterministic: fixed key order, no timestamps, no locale
//     formatting.  Byte-identical output at any `--jobs` value, warm or cold
//     cache, daemon or one-shot CLI is a tested invariant.
//   * The version is bumped only for breaking shape changes; adding a new
//     field is NOT a version bump (consumers must ignore unknown keys).  See
//     docs/FORMATS.md ("Versioning policy").
#pragma once

#include <string>
#include <string_view>

namespace netrev::jsonout {

// Version of the JSON interchange schema stamped on every document.
inline constexpr int kSchemaVersion = 1;

// `"schema_version":1` — the mandatory first field of a document.
std::string version_field();

// JSON string escaping: `"` `\` and control bytes; everything else verbatim
// (net names are raw bytes, not guaranteed UTF-8).
std::string escape(std::string_view text);

// `escape` wrapped in double quotes.
std::string quote(std::string_view text);

// Wraps comma-joined member text into a versioned document:
//   document("\"a\":1")  ==  {"schema_version":1,"a":1}
//   document("")         ==  {"schema_version":1}
std::string document(std::string_view members);

}  // namespace netrev::jsonout
