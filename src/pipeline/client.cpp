#include "pipeline/client.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace netrev::pipeline::client {

std::optional<Endpoint> parse_endpoint(const std::string& text) {
  const auto colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == text.size())
    return std::nullopt;
  Endpoint endpoint;
  endpoint.host = text.substr(0, colon);
  int port = 0;
  for (std::size_t i = colon + 1; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return std::nullopt;
    port = port * 10 + (c - '0');
    if (port > 65535) return std::nullopt;
  }
  // Port 0 is allowed: `serve --listen HOST:0` binds an ephemeral port.
  // connect()ing to port 0 fails at the socket layer with a clear error.
  endpoint.port = port;
  return endpoint;
}

Connection::Connection(const Endpoint& endpoint) {
  if (!endpoint.unix_path.empty()) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("client: cannot create socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.unix_path.size() >= sizeof(addr.sun_path)) {
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("client: socket path too long: " +
                               endpoint.unix_path);
    }
    std::strncpy(addr.sun_path, endpoint.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      const std::string reason = std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("client: cannot connect to unix:" +
                               endpoint.unix_path + ": " + reason);
    }
    return;
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("client: cannot create socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(endpoint.port));
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("client: bad host address: " + endpoint.host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("client: cannot connect to " + endpoint.host +
                             ":" + std::to_string(endpoint.port) + ": " +
                             reason);
  }
}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

void Connection::send_all(const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0)
      throw std::runtime_error("client: connection lost while sending");
    sent += static_cast<std::size_t>(n);
  }
}

std::string Connection::read_line(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  char chunk[4096];
  for (;;) {
    const auto newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0)
      throw std::runtime_error("client: timed out waiting for a response");
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("client: poll failed");
    }
    if (ready == 0)
      throw std::runtime_error("client: timed out waiting for a response");
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0)
      throw std::runtime_error(
          "client: server closed the connection before responding");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string Connection::round_trip_line(const std::string& line,
                                        std::chrono::milliseconds timeout) {
  send_all(line + "\n");
  return read_line(timeout);
}

protocol::Response Connection::round_trip(const protocol::Request& request,
                                          std::chrono::milliseconds timeout) {
  const std::string line =
      round_trip_line(protocol::render_request(request), timeout);
  protocol::ParsedResponse parsed = protocol::parse_response(line);
  if (!parsed.response)
    throw std::runtime_error("client: malformed response line: " +
                             parsed.error);
  return std::move(*parsed.response);
}

}  // namespace netrev::pipeline::client
