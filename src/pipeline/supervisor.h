// Process-level fault isolation: a pool of supervised worker processes
// speaking the NDJSON protocol over pipes.
//
// Each worker is a child process (by default `/proc/self/exe worker ...`)
// whose stdin/stdout are pipes owned by the supervisor.  One round trip =
// one request line written, one response line read.  A worker that dies
// (signal or exit), closes its pipe without replying, or outlives the
// wall-clock watchdog yields a *crash outcome* instead of a response: the
// supervisor SIGKILLs it if needed, reaps it synchronously with waitpid on
// its own pid — there is no SIGCHLD handler anywhere, which is what makes
// reaping race-free against the serve drain sequence by construction — and
// classifies the death from the wait status.  Dead workers are replaced
// lazily on the next dispatch, with exponential backoff after consecutive
// crashes and a pool-wide respawn budget so a crash loop converges instead
// of forking forever.
//
// Resource limits (RLIMIT_AS / RLIMIT_CPU) are applied in the child between
// fork and exec; only async-signal-safe calls run in that window.  The
// constructor ignores SIGPIPE process-wide: writes to a crashed worker's
// pipe must surface as EPIPE (a classified crash), not kill the supervisor
// — MSG_NOSIGNAL only covers sockets, not pipes.
//
// Thread-safety: run() may be called from any number of threads; callers
// block while every worker slot is busy.  poison() kills every live worker
// (in-flight round trips return crash outcomes) and is how the serve drain
// guarantees no round trip outlives the drain window.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace netrev::pipeline::supervisor {

// Per-worker resource limits, applied pre-exec in the child.  0 = inherit.
struct WorkerLimits {
  std::size_t mem_bytes = 0;    // RLIMIT_AS (note: breaks ASan shadow maps)
  std::size_t cpu_seconds = 0;  // RLIMIT_CPU (SIGXCPU, then SIGKILL)
};

// How a worker died, classified from the wait status (or the watchdog).
enum class CrashKind {
  kSignal,   // WIFSIGNALED: segfault, abort, SIGXCPU, oom-kill, ...
  kExit,     // WIFEXITED without a reply (exit 0 + silence is still a crash)
  kTimeout,  // wall-clock watchdog fired; the worker was SIGKILLed
  kSpawn,    // the worker could not be started (exec failure, respawn
             // budget exhausted)
};

struct CrashInfo {
  CrashKind kind = CrashKind::kExit;
  int signal = 0;       // kSignal: the terminating signal
  int exit_status = 0;  // kExit: the exit code
  std::string detail;   // kSpawn: why

  // Stable one-line description for journals and responses:
  //   "signal 6 (SIGABRT)", "exit 3 without reply", "watchdog timeout
  //   (killed after 500ms)", "spawn failed: ...".
  std::string describe() const;
};

struct PoolOptions {
  // Worker executable; empty = $NETREV_WORKER_EXE, else /proc/self/exe.
  std::string exe;
  // argv tail after the executable, e.g. {"worker", "--depth", "4"}.
  std::vector<std::string> args;

  std::size_t workers = 2;  // concurrent worker processes
  WorkerLimits limits;

  // Per-round-trip wall-clock watchdog; 0 = none.  run() can override.
  std::chrono::milliseconds wall_timeout{0};

  // Backoff before respawning after a crash, doubled per consecutive crash
  // (capped at 64x) so a crash loop backs off instead of fork-bombing.
  std::chrono::milliseconds restart_backoff{25};
  // Pool-lifetime respawn budget AFTER crashes (initial spawns are free);
  // exhausted -> run() returns kSpawn outcomes.
  std::size_t max_restarts = 64;
};

struct PoolStats {
  std::size_t spawned = 0;   // total worker processes ever started
  std::size_t alive = 0;     // currently running (idle or busy)
  std::size_t restarts = 0;  // respawns after a crash
  std::size_t crashes = 0;   // round trips that ended in a crash
};

class WorkerPool {
 public:
  explicit WorkerPool(PoolOptions options);
  ~WorkerPool();  // kills (SIGKILL) and reaps every worker

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  struct Outcome {
    bool crashed = false;
    CrashInfo crash;       // meaningful when crashed
    std::string response;  // one response line, no trailing '\n'
  };

  // One round trip: dispatches `request_line` (no trailing '\n') to an idle
  // worker — spawning or respawning one as needed — and waits for its
  // one-line reply.  Never throws; every failure mode is a crash outcome.
  Outcome run(const std::string& request_line);
  Outcome run(const std::string& request_line,
              std::chrono::milliseconds wall_timeout);

  PoolStats stats() const;
  const PoolOptions& options() const { return options_; }

  // SIGKILLs every live worker.  In-flight round trips observe EOF and
  // return crash outcomes; subsequent run() calls respawn workers (the
  // serve drain poisons first, then destroys the pool once quiesced).
  void poison();

 private:
  struct Worker;

  std::unique_ptr<Worker> acquire(CrashInfo& spawn_error);
  void release(std::unique_ptr<Worker> worker);
  // Crashed worker: deregister, SIGKILL, reap; returns the classification.
  CrashInfo retire(std::unique_ptr<Worker> worker);
  std::unique_ptr<Worker> spawn(CrashInfo& error);

  PoolOptions options_;
  std::string exe_;

  mutable std::mutex mutex_;
  std::condition_variable slot_cv_;
  std::vector<std::unique_ptr<Worker>> idle_;
  std::vector<Worker*> busy_;  // registered so poison() can reach them
  std::size_t live_ = 0;       // idle_.size() + busy_.size()
  std::size_t consecutive_crashes_ = 0;
  PoolStats stats_;
};

// Installs SIG_IGN for SIGPIPE once per process (idempotent).  Called by the
// WorkerPool constructor and Server::start(); exposed for the worker mode
// itself, whose stdout pipe dies with its supervisor.
void ignore_sigpipe();

}  // namespace netrev::pipeline::supervisor
