// Crash-safe batch journal: an append-only JSONL record of completed batch
// entries, keyed by the same content/options fingerprints that address the
// artifact cache.
//
// Each finished entry (ok, failed, or crashed — never cancelled, never
// skipped) is
// appended as ONE line and flushed, so a SIGKILL at any instant loses at
// most the line being written.  read_journal() tolerates exactly that: a
// torn final line (or any line that does not parse) is ignored.  `netrev
// batch --resume <journal>` restores recorded outcomes by key and only
// computes what is missing; because the key covers the input bytes and every
// option that changes an entry's output, a stale journal entry (edited file,
// different flags) simply never matches and the entry is recomputed.
//
// Line format (version 1) — one flat JSON object, nested stage JSON stored
// as escaped strings so the reader needs no recursive parser:
//
//   {"v":1,"key":"<16 hex>","spec":"...","status":"ok|failed",
//    "stage":"...","error":"...","identify":"...","lift":"...",
//    "analysis":"...","evaluation":"...","diagnostics":"...",
//    "degrade_level":"...","degrade_stage":"...","words":N,
//    "control_signals":N,"lint_errors":N,"lint_warnings":N,"lint_notes":N}
//
// Version 2 extends v1 with quarantined crashes from isolated runs
// (`batch --isolate`): status "crashed" plus the supervisor's
// classification.  ok/failed entries keep writing v1 lines byte-identically
// — v2 is emitted ONLY for crashed entries, so journals from non-isolated
// runs are indistinguishable from pre-isolation builds, and the reader
// accepts both versions:
//
//   {"v":2,...,"status":"crashed","crash":"signal 11 (SIGSEGV)","signal":11}
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "pipeline/batch.h"

namespace netrev::pipeline {

// One journal line: a finished batch entry plus the key identifying it.
struct JournalRecord {
  std::string key;
  BatchEntry entry;
};

// The journal key for one batch entry: content hash of the input (raw file
// bytes, or "family:<name>" for built benchmarks) mixed with the batch
// options fingerprint, rendered as 16 lowercase hex digits.
std::string journal_key(std::uint64_t content, std::uint64_t options_fp);

// Append-side handle.  Opens for append (creating the file if missing);
// throws std::runtime_error when the path cannot be opened.  append() is
// thread-safe — entries finish on pool workers — and flushes per line.
class JournalWriter {
 public:
  explicit JournalWriter(const std::string& path);

  const std::string& path() const { return path_; }

  void append(const std::string& key, const BatchEntry& entry);

 private:
  std::string path_;
  std::ofstream out_;
  std::mutex mutex_;
};

// Reads every parseable record, in file order.  A missing or unreadable
// file yields an empty journal (resuming from nothing is starting fresh);
// torn or malformed lines are skipped.  Later records win on duplicate keys
// (a rerun may legitimately re-append an entry).
std::vector<JournalRecord> read_journal(const std::string& path);

// One rendered journal line including the trailing newline — the exact bytes
// JournalWriter::append writes, shared with compaction so a compacted
// journal is indistinguishable from a freshly written one.
std::string render_journal_line(const std::string& key,
                                const BatchEntry& entry);

// Parses one journal line (trailing newline optional) into a record; false
// on torn, malformed, or foreign lines.  Exposed for the worker protocol:
// an isolated batch entry travels the wire as exactly one journal line, so
// supervisor and worker agree on the bytes by construction.
bool parse_journal_line(const std::string& line, JournalRecord& record);

// `batch --compact-journal`: rewrites the journal keeping only the winning
// (last) record per key, in their original file order, through the atomic
// temp+rename writer — a crash mid-compaction leaves the old journal intact.
// Torn/foreign lines are dropped as a side effect.  A missing file is a
// no-op.  Resuming from the compacted journal restores exactly the same
// outcomes as the original (later-lines-win already ignored the dropped
// records).
struct CompactionStats {
  std::size_t kept = 0;     // surviving records (unique keys)
  std::size_t dropped = 0;  // superseded duplicates removed
};
CompactionStats compact_journal(const std::string& path);

}  // namespace netrev::pipeline
