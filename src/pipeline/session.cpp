#include "pipeline/session.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "analysis/analyzer.h"
#include "analysis/dataflow.h"
#include "eval/report.h"
#include "itc/family.h"
#include "lift/json.h"
#include "lift/lift.h"
#include "netlist/repair.h"
#include "netlist/validate.h"
#include "parser/bench_parser.h"
#include "parser/verilog_parser.h"
#include "perf/profile.h"
#include "pipeline/fingerprint.h"
#include "wordrec/baseline.h"
#include "wordrec/degrade.h"

namespace netrev {

namespace {

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_family_name(const std::string& name) {
  try {
    itc::profile_by_name(name);
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

// Re-reports every stored diagnostic into `to`, so a warm (cached) load
// surfaces exactly the diagnostics the cold load did.
void replay(const diag::Diagnostics& from, diag::Diagnostics& to) {
  if (&from == &to) return;
  for (const diag::Diagnostic& entry : from.entries())
    to.report(entry.severity, entry.message, entry.location);
}

}  // namespace

struct Session::ParsedArtifact {
  netlist::Netlist netlist;
  diag::Diagnostics diags;
  std::uint64_t content = 0;   // raw input content hash
  std::uint64_t identity = 0;  // structural fingerprint of `netlist`
};

struct Session::LoadArtifact {
  netlist::Netlist netlist;
  diag::Diagnostics diags;  // parse + repair + cycle-break + validation
  std::uint64_t identity = 0;
  bool usable = true;
  std::size_t validation_errors = 0;
};

Session::Session(RunConfig config, pipeline::ArtifactCache* cache)
    : config_(std::move(config)),
      cache_(cache != nullptr ? cache : &pipeline::ArtifactCache::global()) {
  if (config_.cache_entries) cache_->set_max_entries(*config_.cache_entries);
  run_deadline_ = exec::Deadline::after(config_.exec.timeout);
}

exec::Checkpoint Session::stage_checkpoint() const {
  const ExecConfig& exec_cfg = config_.exec;
  const bool armed = exec_cfg.timeout.count() > 0 ||
                     exec_cfg.stage_timeout.count() > 0 ||
                     exec_cfg.cancellable;
  if (!armed) return {};
  return exec::Checkpoint(
      exec_cfg.cancel,
      exec::Deadline::sooner(run_deadline_,
                             exec::Deadline::after(exec_cfg.stage_timeout)));
}

exec::Checkpoint Session::analysis_checkpoint() const {
  if (!config_.exec.cancellable) return {};
  return exec::Checkpoint(config_.exec.cancel, exec::Deadline());
}

LoadedDesign Session::design_from(const std::string& spec,
                                  std::shared_ptr<const netlist::Netlist> nl,
                                  bool from_family, bool from_file) const {
  LoadedDesign design;
  design.spec = spec;
  design.identity = pipeline::netlist_fingerprint(*nl);
  design.netlist = std::move(nl);
  design.from_family = from_family;
  design.from_file = from_file;
  return design;
}

std::shared_ptr<const Session::ParsedArtifact> Session::parse_artifact(
    const std::string& spec, const parser::ParseOptions& options,
    std::size_t max_errors) {
  if (is_family_name(spec)) {
    pipeline::ArtifactKey key{"parse", pipeline::fnv1a64("family:" + spec), 0};
    return cache_->get_or_compute<ParsedArtifact>(key, [&] {
      auto artifact = std::make_shared<ParsedArtifact>();
      artifact->netlist = itc::build_benchmark(spec).netlist;
      artifact->content = key.content;
      artifact->identity = pipeline::netlist_fingerprint(artifact->netlist);
      return artifact;
    });
  }

  std::ifstream in(spec);
  if (!in) {
    if (!options.permissive)
      throw std::runtime_error("cannot open file: " + spec);
    // Not cached: readability is an environment fact, not input content.
    auto artifact = std::make_shared<ParsedArtifact>();
    artifact->netlist =
        netlist::Netlist(ends_with(spec, ".bench") ? "bench" : "recovered");
    artifact->diags.fatal("cannot open file: " + spec, {spec, 0, 0});
    return artifact;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string source = buffer.str();

  parser::ParseOptions parse_options = options;
  parse_options.filename = spec;
  parse_options.checkpoint = stage_checkpoint();
  pipeline::ArtifactKey key{"parse", pipeline::fnv1a64(source),
                            pipeline::fingerprint(parse_options, max_errors)};
  return cache_->get_or_compute<ParsedArtifact>(key, [&] {
    auto artifact = std::make_shared<ParsedArtifact>();
    artifact->diags.set_max_errors(max_errors);
    artifact->netlist =
        ends_with(spec, ".bench")
            ? parser::parse_bench(source, parse_options, artifact->diags)
            : parser::parse_verilog(source, parse_options, artifact->diags);
    artifact->content = key.content;
    artifact->identity = pipeline::netlist_fingerprint(artifact->netlist);
    return artifact;
  });
}

LoadedDesign Session::load_netlist(const std::string& spec) {
  return load_netlist(spec, config_.parse, diags_);
}

LoadedDesign Session::load_netlist(const std::string& spec,
                                   const parser::ParseOptions& options) {
  return load_netlist(spec, options, diags_);
}

LoadedDesign Session::load_netlist(const std::string& spec,
                                   const parser::ParseOptions& options,
                                   diag::Diagnostics& diags) {
  perf::Stage stage("load");
  const bool family = is_family_name(spec);
  auto parsed = parse_artifact(spec, options, diags.max_errors());
  if (family || !options.permissive) {
    // Strict parses either succeeded identically or threw above.
    std::shared_ptr<const netlist::Netlist> nl(parsed, &parsed->netlist);
    LoadedDesign design = design_from(spec, std::move(nl), family, !family);
    design.identity = parsed->identity;
    return design;
  }

  if (!parsed->diags.usable()) {
    replay(parsed->diags, diags);
    throw UnusableInputError("input unusable: " + spec +
                             " (fatal diagnostics; see --diag-json)");
  }

  parser::ParseOptions parse_options = options;
  parse_options.filename = spec;
  pipeline::ArtifactKey key{
      "load", parsed->content,
      pipeline::fingerprint(parse_options, diags.max_errors())};
  auto loaded = cache_->get_or_compute<LoadArtifact>(key, [&] {
    auto artifact = std::make_shared<LoadArtifact>();
    artifact->diags.set_max_errors(diags.max_errors());
    replay(parsed->diags, artifact->diags);
    netlist::RepairResult repaired =
        netlist::repair(parsed->netlist, artifact->diags);
    // repair() ties and prunes but cannot fix combinational cycles; break
    // them here (diag-reported) so levelization and identification proceed.
    analysis::CycleBreakResult decycled =
        analysis::break_combinational_cycles(repaired.netlist,
                                             artifact->diags);
    if (decycled.cycles_broken > 0)
      repaired.netlist = std::move(decycled.netlist);
    const auto report = netlist::validate(repaired.netlist);
    if (!report.ok()) {
      for (const auto& issue : report.issues)
        if (issue.severity == netlist::ValidationIssue::Severity::kError)
          artifact->diags.error(issue.message, {spec, 0, 0});
      artifact->usable = false;
      artifact->validation_errors = report.error_count();
    }
    artifact->netlist = std::move(repaired.netlist);
    artifact->identity = pipeline::netlist_fingerprint(artifact->netlist);
    return artifact;
  });

  replay(loaded->diags, diags);
  if (!loaded->usable)
    throw UnusableInputError("input unusable: " + spec +
                             " fails validation (" +
                             std::to_string(loaded->validation_errors) +
                             " error(s)) even after repair");
  std::shared_ptr<const netlist::Netlist> nl(loaded, &loaded->netlist);
  LoadedDesign design = design_from(spec, std::move(nl), false, true);
  design.identity = loaded->identity;
  return design;
}

LoadedDesign Session::adopt_netlist(netlist::Netlist nl) {
  auto owned = std::make_shared<const netlist::Netlist>(std::move(nl));
  // Read the name before std::move(owned): argument evaluation order is
  // unspecified, so calling owned->name() in the same argument list could
  // dereference the already-moved-from pointer.
  std::string spec = owned->name();
  return design_from(std::move(spec), std::move(owned), false, false);
}

Session::Parsed Session::parse_netlist(const std::string& spec,
                                       diag::Diagnostics& diags) {
  parser::ParseOptions options = config_.parse;
  options.permissive = true;
  const bool family = is_family_name(spec);
  auto parsed = parse_artifact(spec, options, diags.max_errors());
  if (!family) replay(parsed->diags, diags);
  if (!parsed->diags.usable())
    throw UnusableInputError("input unusable: " + spec +
                             " (fatal diagnostics; see --diag-json)");
  Parsed result;
  std::shared_ptr<const netlist::Netlist> nl(parsed, &parsed->netlist);
  result.design = design_from(spec, std::move(nl), family, !family);
  result.design.identity = parsed->identity;
  result.parse_diags =
      std::shared_ptr<const diag::Diagnostics>(parsed, &parsed->diags);
  return result;
}

std::shared_ptr<const netlist::CompactView> Session::compact(
    const LoadedDesign& design) {
  // Derived purely from the netlist, which the design identity already
  // keys; no options fingerprint.
  pipeline::ArtifactKey key{"compact", design.identity, 0};
  return cache_->get_or_compute<netlist::CompactView>(key, [&] {
    perf::Stage stage("compact");
    return std::make_shared<netlist::CompactView>(
        netlist::CompactView::build(design.nl()));
  });
}

std::shared_ptr<const analysis::DataflowFacts> Session::dataflow(
    const LoadedDesign& design) {
  // Only dataflow_max_iterations keys the stage: the checkpoint is
  // observation-only, and the netlist is keyed by the design identity.
  pipeline::ArtifactKey key{
      "dataflow", design.identity,
      pipeline::mix(pipeline::fnv1a64("dataflow-options"),
                    config_.analysis.dataflow_max_iterations)};
  // Opened outside the cache lookup so the profile tree has the same shape
  // on hits and misses (run_dataflow's stage.dataflow_ns counter still only
  // accrues on misses, which is the honest cost).
  perf::Stage stage("dataflow");
  return cache_->get_or_compute<analysis::DataflowFacts>(key, [&] {
    analysis::DataflowOptions options;
    options.max_iterations = config_.analysis.dataflow_max_iterations;
    options.checkpoint = analysis_checkpoint();
    return std::make_shared<analysis::DataflowFacts>(
        analysis::run_dataflow(design.nl(), options));
  });
}

std::shared_ptr<const wordrec::IdentifyResult> Session::identify(
    const LoadedDesign& design) {
  wordrec::Options options = config_.wordrec;
  options.checkpoint = stage_checkpoint();
  // The session resolves the dataflow mask from its cached stage so repeated
  // identifies (and a lint on the same design) share one engine run.  The
  // mask must outlive the identify_words call below.
  std::vector<std::uint8_t> constant_mask;
  if (options.use_dataflow && options.constant_nets == nullptr) {
    constant_mask = dataflow(design)->constant_mask();
    options.constant_nets = &constant_mask;
  }
  if (options.trace != nullptr) {
    // Traced runs narrate the actual execution; never serve or store them,
    // and never degrade them (a trace documents the full technique's run —
    // deadline trips propagate as errors instead).  The cache stays
    // untouched, so identify_words builds its own CompactView.
    return std::make_shared<wordrec::IdentifyResult>(
        wordrec::identify_words(design.nl(), options));
  }
  // Resolve the compact core from the cached stage so repeated identifies
  // share one flattening pass.  The shared_ptr keeps the view alive past
  // the identify_words call; like the mask above, it never keys artifacts.
  std::shared_ptr<const netlist::CompactView> view;
  if (options.use_compact && options.compact == nullptr) {
    view = compact(design);
    options.compact = view.get();
  }
  // The degrade policy changes what a tripped run produces, so it is part of
  // the key; the deadline itself is not — an untripped deadline must share
  // cache entries with no deadline at all.
  pipeline::ArtifactKey key{
      "identify", design.identity,
      pipeline::mix(config_.wordrec_fingerprint(), config_.exec_fingerprint())};
  bool computed = false;
  auto result = cache_->get_or_compute<wordrec::IdentifyResult>(key, [&] {
    computed = true;
    return std::make_shared<wordrec::IdentifyResult>(
        wordrec::identify_words_degradable(design.nl(), options,
                                           config_.exec.degrade));
  });
  if (!computed) {
    // Keep the profile tree shape stable on cache hits: identify_words
    // normally opens this stage itself.
    perf::Stage stage("identify");
  }
  return result;
}

std::shared_ptr<const wordrec::WordSet> Session::identify_baseline(
    const LoadedDesign& design) {
  // The baseline IS a degradation rung, so it gets deadline enforcement but
  // no ladder of its own: a trip here propagates to the caller.
  wordrec::Options options = config_.wordrec;
  options.checkpoint = stage_checkpoint();
  std::shared_ptr<const netlist::CompactView> view;
  if (options.use_compact && options.compact == nullptr) {
    view = compact(design);
    options.compact = view.get();
  }
  pipeline::ArtifactKey key{"identify_base", design.identity,
                            config_.wordrec_fingerprint()};
  return cache_->get_or_compute<wordrec::WordSet>(key, [&] {
    return std::make_shared<wordrec::WordSet>(
        wordrec::identify_words_baseline(design.nl(), options));
  });
}

std::string Session::identify_json(const LoadedDesign& design) {
  const char* stage = config_.use_baseline ? "identify_base_json"
                                           : "identify_json";
  pipeline::ArtifactKey key{
      stage, design.identity,
      pipeline::mix(config_.wordrec_fingerprint(), config_.exec_fingerprint())};
  auto json = cache_->get_or_compute<std::string>(key, [&] {
    return std::make_shared<std::string>(
        config_.use_baseline
            ? eval::words_to_json(design.nl(), *identify_baseline(design))
            : eval::identify_result_to_json(design.nl(), *identify(design)));
  });
  return *json;
}

std::shared_ptr<const lift::LiftResult> Session::lift(
    const LoadedDesign& design) {
  // The word source (paper technique vs baseline) changes the lifted model,
  // so baseline lifts key under their own stage name — mirroring the
  // identify_json split.  The options fingerprint mixes the word-recovery
  // knobs, the lift knobs, and the degrade policy (which changes what a
  // tripped identify feeds the lifter).
  const char* stage_name = config_.use_baseline ? "lift_base" : "lift";
  pipeline::ArtifactKey key{
      stage_name, design.identity,
      pipeline::mix(
          pipeline::mix(config_.wordrec_fingerprint(), config_.lift_fingerprint()),
          config_.exec_fingerprint())};
  // Keep the profile tree shape identical on hits and misses (the dataflow
  // pattern): lift_words charges the "stage.lift_ns" counter itself, but the
  // wall-tree stage is opened here, outside the cache lookup.
  perf::Stage stage("lift");
  return cache_->get_or_compute<lift::LiftResult>(key, [&] {
    const wordrec::WordSet* words = nullptr;
    std::shared_ptr<const wordrec::IdentifyResult> ours;
    std::shared_ptr<const wordrec::WordSet> base;
    if (config_.use_baseline) {
      base = identify_baseline(design);
      words = base.get();
    } else {
      ours = identify(design);
      words = &ours->words;
    }
    // Cancellation-only poll (the lint rationale): lifting has no
    // degradation ladder, so a deadline trip here — e.g. a budget already
    // consumed by a degraded identify — would turn into a hard stage
    // failure instead of the documented degrade-and-continue behavior.
    // Deadlines stay with the stages that can degrade.
    return std::make_shared<lift::LiftResult>(
        lift::lift_words(design.nl(), *words, config_.lift,
                         analysis_checkpoint()));
  });
}

std::string Session::lift_json(const LoadedDesign& design) {
  const char* stage = config_.use_baseline ? "lift_base_json" : "lift_json";
  pipeline::ArtifactKey key{
      stage, design.identity,
      pipeline::mix(
          pipeline::mix(config_.wordrec_fingerprint(), config_.lift_fingerprint()),
          config_.exec_fingerprint())};
  auto json = cache_->get_or_compute<std::string>(key, [&] {
    return std::make_shared<std::string>(
        lift::lift_result_to_json(design.nl(), *lift(design)));
  });
  return *json;
}

std::shared_ptr<const eval::ReferenceExtraction> Session::reference(
    const LoadedDesign& design) {
  pipeline::ArtifactKey key{"reference", design.identity, 0};
  return cache_->get_or_compute<eval::ReferenceExtraction>(key, [&] {
    return std::make_shared<eval::ReferenceExtraction>(
        eval::extract_reference_words(design.nl()));
  });
}

std::shared_ptr<const analysis::AnalysisResult> Session::analyze(
    const LoadedDesign& design, const diag::Diagnostics* parse_diags) {
  std::uint64_t options = config_.analysis_fingerprint();
  if (parse_diags != nullptr)
    options = pipeline::mix(options, pipeline::fingerprint(*parse_diags));
  pipeline::ArtifactKey key{"analyze", design.identity, options};
  return cache_->get_or_compute<analysis::AnalysisResult>(key, [&] {
    analysis::AnalysisOptions analysis_options = config_.analysis;
    analysis_options.checkpoint = analysis_checkpoint();
    // Hand the dataflow rules the session's cached facts so a lint sharing
    // a cache with an identify run (or an earlier lint) computes the engine
    // once — but only when a selected rule would consume them.
    std::shared_ptr<const analysis::DataflowFacts> facts;
    const auto& enabled = analysis_options.enabled_rules;
    const bool wants_dataflow =
        enabled.empty() ||
        std::any_of(enabled.begin(), enabled.end(), [](const std::string& id) {
          return id == "const-net" || id == "stuck-ff" ||
                 id == "redundant-mux";
        });
    if (wants_dataflow) facts = dataflow(design);
    return std::make_shared<analysis::AnalysisResult>(
        analysis::analyze(design.nl(), analysis_options, parse_diags,
                          analysis::RuleRegistry::builtin(), facts.get()));
  });
}

eval::TechniqueRun Session::run_ours(const LoadedDesign& design) {
  const auto start = std::chrono::steady_clock::now();
  auto result = identify(design);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return eval::technique_run(*result, seconds);
}

eval::TechniqueRun Session::run_baseline(const LoadedDesign& design) {
  const auto start = std::chrono::steady_clock::now();
  auto words = identify_baseline(design);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return eval::technique_run(*words, seconds);
}

}  // namespace netrev
