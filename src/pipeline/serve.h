// netrev serve — the long-lived analysis daemon.
//
// This layer puts sockets, admission control, and drain choreography on top
// of the transport-free protocol module (pipeline/protocol.h):
//
//   * transport: newline-delimited JSON over TCP (127.0.0.1) or a Unix
//     domain socket; one reader thread per connection with an idle timeout.
//   * admission: a bounded queue (`max_queue`) feeding `max_inflight`
//     worker threads.  A full queue — or a draining server — answers
//     immediately with status "overloaded" instead of stalling the client.
//   * execution: workers run requests through the shared Executor; the
//     heavy pipeline stages inside each request fan out on the process-wide
//     ThreadPool exactly as the one-shot CLI does.
//   * drain: request_drain() (wired to SIGTERM/SIGINT by the CLI) stops
//     accepting connections, sheds new requests as "overloaded", and gives
//     admitted work `drain_timeout` to finish.  If the window expires the
//     in-flight cancel tokens fire and still-queued requests are answered
//     with status "cancelled" — every admitted request gets exactly one
//     response either way.  run() returns ExitCode::kDrained on a clean
//     drain, ExitCode::kDrainTimeout otherwise.
//   * isolation (--isolate): with a worker pool configured, analysis ops are
//     executed in supervised child processes; a request that crashes its
//     worker (segfault, OOM kill, watchdog) is answered with status
//     "worker_crashed" while the daemon keeps serving.  ping/stats/health
//     stay in-process so the daemon remains observable even when every
//     worker is wedged.  The drain window poisons the pool on expiry, so no
//     round trip outlives the drain.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "common/exit_code.h"
#include "exec/cancel.h"
#include "pipeline/protocol.h"
#include "pipeline/supervisor.h"

namespace netrev::pipeline::serve {

struct ServeOptions {
  // TCP endpoint; port 0 binds an ephemeral port (read it back via port()).
  // A non-empty unix_path switches to a Unix domain socket instead.
  std::string host = "127.0.0.1";
  int port = 0;
  std::string unix_path;

  std::size_t max_inflight = 4;  // worker threads executing requests
  std::size_t max_queue = 16;    // admitted-but-not-started bound
  std::chrono::milliseconds idle_timeout{30000};  // per-connection read idle
  std::chrono::milliseconds drain_timeout{5000};  // budget for in-flight work

  // Bound on one connection's unframed read buffer (--max-request-bytes): a
  // frame still lacking its newline past this size is answered with
  // "bad_request" and the connection is closed, so a client streaming an
  // endless line cannot balloon daemon memory.
  std::size_t max_request_bytes = 8u << 20;

  // Process isolation (--isolate): run analysis ops in supervised worker
  // processes from a pool with these options.  Absent = in-process.
  std::optional<supervisor::PoolOptions> pool;

  protocol::ExecutorConfig executor;
};

class Server : public protocol::HealthSource {
 public:
  // `log` receives one line per response and lifecycle event (pass nullptr
  // to silence); it must outlive the server.
  explicit Server(ServeOptions options, std::ostream* log = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds and listens; throws std::runtime_error when the endpoint cannot
  // be bound.  Separate from run() so the caller can print the resolved
  // endpoint before serving.
  void start();

  // Serves until request_drain(), then drains; blocks.  Must be preceded by
  // start().
  ExitCode run();

  // Begins graceful drain.  Callable from any thread; signal handlers must
  // store through drain_flag() instead (the only async-signal-safe entry).
  void request_drain() {
    drain_requested_.store(true, std::memory_order_relaxed);
  }
  std::atomic<bool>* drain_flag() { return &drain_requested_; }

  // The resolved TCP port (after start(); 0 for Unix sockets).
  int port() const { return port_; }
  // Printable endpoint: "127.0.0.1:4821" or "unix:/path".
  std::string endpoint() const;

  protocol::Executor& executor() { return executor_; }

  // Live counters for the "health" op and the "stats" serve block.
  protocol::HealthSnapshot health() const override;

 private:
  struct Connection;

  // One admitted request waiting for (or held by) a worker.
  struct Work {
    protocol::Request request;
    exec::CancelToken cancel;
    std::shared_ptr<Connection> connection;
  };

  void reader_loop(std::shared_ptr<Connection> connection);
  void worker_loop();
  // Executes one admitted request: in-process, or — when isolating and the
  // op is an analysis op — one round trip through the worker pool.
  protocol::Response execute_work(const Work& work);
  void handle_line(const std::shared_ptr<Connection>& connection,
                   const std::string& line);
  void respond(const std::shared_ptr<Connection>& connection,
               const protocol::Response& response);
  void logline(const std::string& text);

  ServeOptions options_;
  std::ostream* log_;
  protocol::Executor executor_;
  std::unique_ptr<supervisor::WorkerPool> pool_;  // null = in-process
  std::chrono::steady_clock::time_point start_time_{};

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> drain_requested_{false};
  std::atomic<std::uint64_t> next_request_id_{1};

  mutable std::mutex mutex_;          // guards the five fields below
  std::deque<Work> queue_;
  std::size_t inflight_ = 0;
  bool draining_ = false;             // admission rejects new requests
  bool stop_workers_ = false;
  std::vector<exec::CancelToken> active_;  // tokens of executing requests
  std::condition_variable work_cv_;   // workers wait for queue/stop
  std::condition_variable drain_cv_;  // run() waits for quiesce

  std::vector<std::thread> workers_;
  std::mutex connections_mutex_;
  std::vector<std::weak_ptr<Connection>> connections_;
  std::vector<std::thread> readers_;
  std::mutex log_mutex_;
};

}  // namespace netrev::pipeline::serve
