// Batch input expansion: manifests and globs.
//
// `netrev batch` accepts a mixed list of specs; each one is either
//   - a family benchmark name or netlist file  -> passed through,
//   - a glob over the final path component     -> expanded (sorted),
//   - any other existing file                  -> read as a manifest:
//     one spec per line, `#` starts a comment, blank lines ignored.
//     Relative entries resolve against the manifest's directory when a
//     file exists there (so manifests travel with their netlists).
//
// Expansion is deterministic: glob matches are sorted, manifest order is
// preserved, and unknown specs pass through untouched so they surface as
// per-entry load failures instead of killing the whole batch.
#pragma once

#include <string>
#include <vector>

namespace netrev::pipeline {

// True if `text` matches `pattern`, where `*` matches any run (including
// empty) and `?` matches exactly one character.
bool glob_match(const std::string& pattern, const std::string& text);

// Expands a glob whose final path component may contain `*`/`?` into the
// sorted list of matching paths.  Throws std::invalid_argument when the
// pattern matches nothing (a silently-empty batch hides typos).
std::vector<std::string> expand_glob(const std::string& pattern);

// Reads a manifest file into its spec list.  Throws std::runtime_error if
// the file cannot be opened.
std::vector<std::string> read_manifest(const std::string& path);

// Expands every spec per the rules above into the final batch entry list.
std::vector<std::string> expand_specs(const std::vector<std::string>& specs);

}  // namespace netrev::pipeline
