#include "pipeline/protocol.h"

#include <cctype>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "common/diagnostics.h"
#include "common/version.h"
#include "eval/diagnose.h"
#include "eval/report.h"
#include "exec/chaos.h"
#include "jsonout/jsonout.h"
#include "netlist/stats.h"
#include "perf/profile.h"
#include "pipeline/batch.h"
#include "pipeline/journal.h"
#include "pipeline/manifest.h"
#include "pipeline/session.h"
#include "wordrec/degrade.h"

namespace netrev::pipeline::protocol {

namespace {

std::string quoted(const std::string& text) {
  return '"' + eval::json_escape(text) + '"';
}

std::string hex16(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

// The serving-counters object shared by the "health" op and the "stats"
// serve block, so the two surfaces can never drift apart.
std::string serve_block(const HealthSnapshot& snap) {
  std::string out = "{\"uptime_s\":" + std::to_string(snap.uptime_s);
  out += ",\"inflight\":" + std::to_string(snap.inflight);
  out += ",\"queued\":" + std::to_string(snap.queued);
  out += ",\"workers\":{\"isolate\":";
  out += snap.isolate ? "true" : "false";
  out += ",\"alive\":" + std::to_string(snap.workers_alive);
  out += ",\"restarted\":" + std::to_string(snap.workers_restarted);
  out += ",\"quarantined\":" + std::to_string(snap.workers_quarantined);
  out += "}}";
  return out;
}

// --- minimal JSON reader ---------------------------------------------------
// Parses the full JSON grammar the protocol needs: objects, arrays, strings,
// non-negative integers, booleans, null.  Every value records its source
// span so callers can recover raw bytes (the client re-prints a response's
// "result" exactly as the server rendered it).

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  // Only meaningful when integral: the protocol interprets nothing but
  // non-negative integers (request options).  Floats and negatives still
  // PARSE — response results carry arbitrary JSON (evaluation metrics are
  // fractional) recovered raw via the source span — they are just never
  // interpreted as counts.
  bool integral = false;
  std::uint64_t number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::size_t begin = 0;  // source span [begin, end) in the parsed line
  std::size_t end = 0;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [name, value] : object)
      if (name == key) return &value;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  // Parses the whole line as one value; returns false with `error_` set on
  // malformed input or trailing garbage.
  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after value");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool fail(const std::string& message) {
    if (error_.empty())
      error_ = message + " at offset " + std::to_string(pos_);
    return false;
  }

  static constexpr int kMaxDepth = 256;

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  bool parse_value(JsonValue& out) {
    out.begin = pos_;
    bool ok = false;
    switch (peek()) {
      // The parser is recursive-descent, so nesting depth is stack depth:
      // without a bound, a hostile frame of brackets — well within any
      // byte limit — would overflow the stack and kill the process.
      case '{':
        if (++depth_ > kMaxDepth) return fail("nesting too deep");
        ok = parse_object(out);
        --depth_;
        break;
      case '[':
        if (++depth_ > kMaxDepth) return fail("nesting too deep");
        ok = parse_array(out);
        --depth_;
        break;
      case '"':
        out.kind = JsonValue::Kind::kString;
        ok = parse_string(out.string);
        break;
      case 't':
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        ok = parse_bool(out.boolean);
        break;
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        ok = parse_null();
        break;
      default:
        ok = parse_number(out);
        break;
    }
    out.end = pos_;
    return ok;
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    if (!consume('{')) return fail("expected '{'");
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return fail("expected object key");
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    if (!consume('[')) return fail("expected '['");
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool parse_bool(bool& out) {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out = true;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out = false;
      return true;
    }
    return fail("expected boolean");
  }

  bool parse_null() {
    if (text_.compare(pos_, 4, "null") != 0) return fail("expected null");
    pos_ += 4;
    return true;
  }

  bool parse_number(JsonValue& out) {
    out.kind = JsonValue::Kind::kNumber;
    const bool negative = consume('-');
    if (std::isdigit(static_cast<unsigned char>(peek())) == 0)
      return fail("expected a number");
    out.integral = !negative;
    out.number = 0;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
      const std::uint64_t digit = static_cast<std::uint64_t>(peek() - '0');
      if (out.number > (UINT64_MAX - digit) / 10)
        out.integral = false;  // carried raw via the span, never interpreted
      else
        out.number = out.number * 10 + digit;
      ++pos_;
    }
    if (consume('.')) {
      out.integral = false;
      if (std::isdigit(static_cast<unsigned char>(peek())) == 0)
        return fail("expected digits after '.'");
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      out.integral = false;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek())) == 0)
        return fail("expected digits in exponent");
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return true;
  }

  static int hex_digit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          int code = 0;
          for (int i = 0; i < 4; ++i) {
            const int digit =
                hex_digit(text_[pos_ + static_cast<std::size_t>(i)]);
            if (digit < 0) return fail("bad \\u escape");
            code = code * 16 + digit;
          }
          pos_ += 4;
          // The emitters only \u-escape control bytes; reject anything that
          // does not fit one byte instead of mis-encoding it.
          if (code > 0xff) return fail("unsupported \\u code point");
          out += static_cast<char>(code);
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

// --- request field extraction ----------------------------------------------

// Strict field readers: a present-but-mistyped field is an error, so typos
// surface as bad_request instead of being silently ignored.

bool read_string(const JsonValue& object, const char* key, std::string& out,
                 std::string& error) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) return true;
  if (value->kind != JsonValue::Kind::kString) {
    error = std::string("\"") + key + "\" must be a string";
    return false;
  }
  out = value->string;
  return true;
}

bool read_bool(const JsonValue& object, const char* key,
               std::optional<bool>& out, std::string& error) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) return true;
  if (value->kind != JsonValue::Kind::kBool) {
    error = std::string("\"") + key + "\" must be a boolean";
    return false;
  }
  out = value->boolean;
  return true;
}

bool read_count(const JsonValue& object, const char* key,
                std::optional<std::size_t>& out, std::string& error) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) return true;
  if (value->kind != JsonValue::Kind::kNumber || !value->integral) {
    error = std::string("\"") + key + "\" must be a non-negative integer";
    return false;
  }
  out = static_cast<std::size_t>(value->number);
  return true;
}

bool read_options(const JsonValue& object, RequestOptions& out,
                  std::string& error) {
  const JsonValue* options = object.find("options");
  if (options == nullptr) return true;
  if (options->kind != JsonValue::Kind::kObject) {
    error = "\"options\" must be an object";
    return false;
  }
  static const char* known[] = {"base",        "permissive", "cross_group",
                                "use_dataflow", "depth",     "max_assign",
                                "max_errors",  "timeout_ms", "degrade"};
  for (const auto& [key, value] : options->object) {
    (void)value;
    bool recognized = false;
    for (const char* name : known)
      if (key == name) recognized = true;
    if (!recognized) {
      error = "unknown option \"" + key + "\"";
      return false;
    }
  }
  if (!read_bool(*options, "base", out.base, error)) return false;
  if (!read_bool(*options, "permissive", out.permissive, error)) return false;
  if (!read_bool(*options, "cross_group", out.cross_group, error))
    return false;
  if (!read_bool(*options, "use_dataflow", out.use_dataflow, error))
    return false;
  if (!read_count(*options, "depth", out.depth, error)) return false;
  if (!read_count(*options, "max_assign", out.max_assign, error)) return false;
  if (!read_count(*options, "max_errors", out.max_errors, error)) return false;
  if (!read_count(*options, "timeout_ms", out.timeout_ms, error)) return false;
  if (const JsonValue* degrade = options->find("degrade")) {
    if (degrade->kind != JsonValue::Kind::kString) {
      error = "\"degrade\" must be a string";
      return false;
    }
    const auto policy = exec::parse_degrade_policy(degrade->string);
    if (!policy) {
      error = "\"degrade\" expects off, full, depth, baseline, or groups; "
              "got \"" + degrade->string + "\"";
      return false;
    }
    out.degrade = *policy;
  }
  return true;
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::kPing:
      return "ping";
    case Op::kStats:
      return "stats";
    case Op::kLoad:
      return "load";
    case Op::kLint:
      return "lint";
    case Op::kIdentify:
      return "identify";
    case Op::kEvaluate:
      return "evaluate";
    case Op::kBatch:
      return "batch";
    case Op::kLift:
      return "lift";
    case Op::kHealth:
      return "health";
    case Op::kEntry:
      return "entry";
  }
  return "unknown";
}

namespace {

constexpr Op kAllOps[] = {Op::kPing,     Op::kStats,    Op::kLoad,
                          Op::kLint,     Op::kIdentify, Op::kEvaluate,
                          Op::kBatch,    Op::kLift,     Op::kHealth,
                          Op::kEntry};

// "ping, stats, ..., or lift" — the bad_request text enumerates every op so
// a client learns the full surface (including newly added ops) from the
// error itself.
std::string op_list() {
  std::string out;
  for (std::size_t i = 0; i < std::size(kAllOps); ++i) {
    if (i > 0) out += i + 1 == std::size(kAllOps) ? ", or " : ", ";
    out += op_name(kAllOps[i]);
  }
  return out;
}

}  // namespace

std::optional<Op> parse_op(const std::string& name) {
  for (Op op : kAllOps)
    if (name == op_name(op)) return op;
  return std::nullopt;
}

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kDegraded:
      return "degraded";
    case Status::kOverloaded:
      return "overloaded";
    case Status::kDeadline:
      return "deadline";
    case Status::kCancelled:
      return "cancelled";
    case Status::kError:
      return "error";
    case Status::kBadRequest:
      return "bad_request";
    case Status::kWorkerCrashed:
      return "worker_crashed";
  }
  return "unknown";
}

ParsedRequest parse_request(const std::string& line) {
  ParsedRequest out;
  JsonValue root;
  JsonParser parser(line);
  if (!parser.parse(root)) {
    out.error = parser.error();
    return out;
  }
  if (root.kind != JsonValue::Kind::kObject) {
    out.error = "request must be a JSON object";
    return out;
  }

  Request request;
  if (!read_string(root, "id", request.id, out.error)) return out;

  std::string op_field;
  if (!read_string(root, "op", op_field, out.error)) return out;
  if (op_field.empty()) {
    out.error = "missing \"op\"";
    return out;
  }
  const auto op = parse_op(op_field);
  if (!op) {
    out.error = "unknown op \"" + op_field + "\" (expected " + op_list() + ")";
    return out;
  }
  request.op = *op;

  if (!read_string(root, "design", request.design, out.error)) return out;
  if (const JsonValue* designs = root.find("designs")) {
    if (designs->kind != JsonValue::Kind::kArray) {
      out.error = "\"designs\" must be an array of strings";
      return out;
    }
    for (const JsonValue& entry : designs->array) {
      if (entry.kind != JsonValue::Kind::kString) {
        out.error = "\"designs\" must be an array of strings";
        return out;
      }
      request.designs.push_back(entry.string);
    }
  }
  if (!read_options(root, request.options, out.error)) return out;

  out.request = std::move(request);
  return out;
}

std::string render_request(const Request& request) {
  std::string out = "{";
  if (!request.id.empty()) out += "\"id\":" + quoted(request.id) + ",";
  out += "\"op\":\"";
  out += op_name(request.op);
  out += "\"";
  if (!request.design.empty()) out += ",\"design\":" + quoted(request.design);
  if (!request.designs.empty()) {
    out += ",\"designs\":[";
    for (std::size_t i = 0; i < request.designs.size(); ++i) {
      if (i > 0) out += ",";
      out += quoted(request.designs[i]);
    }
    out += "]";
  }

  const RequestOptions& o = request.options;
  std::string options;
  const auto add = [&options](const std::string& field) {
    if (!options.empty()) options += ",";
    options += field;
  };
  if (o.base) add(std::string("\"base\":") + (*o.base ? "true" : "false"));
  if (o.permissive)
    add(std::string("\"permissive\":") + (*o.permissive ? "true" : "false"));
  if (o.cross_group)
    add(std::string("\"cross_group\":") + (*o.cross_group ? "true" : "false"));
  if (o.use_dataflow)
    add(std::string("\"use_dataflow\":") +
        (*o.use_dataflow ? "true" : "false"));
  if (o.depth) add("\"depth\":" + std::to_string(*o.depth));
  if (o.max_assign) add("\"max_assign\":" + std::to_string(*o.max_assign));
  if (o.max_errors) add("\"max_errors\":" + std::to_string(*o.max_errors));
  if (o.timeout_ms) add("\"timeout_ms\":" + std::to_string(*o.timeout_ms));
  if (o.degrade) {
    const char* name = o.degrade->enabled
                           ? exec::degrade_level_name(o.degrade->floor)
                           : "off";
    add(std::string("\"degrade\":\"") + name + "\"");
  }
  if (!options.empty()) out += ",\"options\":{" + options + "}";
  out += "}";
  return out;
}

std::string render_response(const Response& response) {
  std::string out = "{\"id\":" + quoted(response.id) + ",\"status\":\"";
  out += status_name(response.status);
  out += "\"";
  if (!response.result.empty()) out += ",\"result\":" + response.result;
  if (!response.error.empty()) out += ",\"error\":" + quoted(response.error);
  if (!response.diagnostics.empty())
    out += ",\"diagnostics\":" + response.diagnostics;
  out += "}";
  return out;
}

ParsedResponse parse_response(const std::string& line) {
  ParsedResponse out;
  JsonValue root;
  JsonParser parser(line);
  if (!parser.parse(root)) {
    out.error = parser.error();
    return out;
  }
  if (root.kind != JsonValue::Kind::kObject) {
    out.error = "response must be a JSON object";
    return out;
  }
  Response response;
  if (!read_string(root, "id", response.id, out.error)) return out;
  std::string status_field;
  if (!read_string(root, "status", status_field, out.error)) return out;
  bool known_status = false;
  for (Status status :
       {Status::kOk, Status::kDegraded, Status::kOverloaded, Status::kDeadline,
        Status::kCancelled, Status::kError, Status::kBadRequest,
        Status::kWorkerCrashed}) {
    if (status_field == status_name(status)) {
      response.status = status;
      known_status = true;
    }
  }
  if (!known_status) {
    out.error = "unknown status \"" + status_field + "\"";
    return out;
  }
  if (!read_string(root, "error", response.error, out.error)) return out;
  // The raw source spans preserve the server's exact bytes — the client
  // re-prints "result" byte-identically to the one-shot CLI.
  if (const JsonValue* result = root.find("result"))
    response.result = line.substr(result->begin, result->end - result->begin);
  if (const JsonValue* diagnostics = root.find("diagnostics"))
    response.diagnostics =
        line.substr(diagnostics->begin, diagnostics->end - diagnostics->begin);
  out.response = std::move(response);
  return out;
}

// --- Executor ---------------------------------------------------------------

Executor::Executor(ExecutorConfig config)
    : config_(std::move(config)),
      cache_(config_.cache != nullptr ? config_.cache
                                      : &ArtifactCache::global()) {
  // Apply the capacity bound once up front; per-request Sessions re-apply it
  // idempotently.
  if (config_.base.cache_entries)
    cache_->set_max_entries(*config_.base.cache_entries);
}

RunConfig Executor::config_for(const RequestOptions& options) const {
  RunConfig config = config_.base;
  // QoS clamp: the client's budget never exceeds the server ceiling, and an
  // omitted (or explicit 0 = "unlimited") budget inherits the ceiling.
  const auto ceiling = config_.max_timeout;
  std::chrono::milliseconds budget = ceiling;
  if (options.timeout_ms && *options.timeout_ms > 0) {
    budget = std::chrono::milliseconds(*options.timeout_ms);
    if (ceiling.count() > 0 && budget > ceiling) budget = ceiling;
  }
  config.exec.timeout = budget;
  if (options.base) config.use_baseline = *options.base;
  if (options.permissive) config.parse.permissive = *options.permissive;
  if (options.cross_group)
    config.wordrec.cross_group_checking = *options.cross_group;
  if (options.use_dataflow)
    config.wordrec.use_dataflow = *options.use_dataflow;
  if (options.depth) config.wordrec.cone_depth = *options.depth;
  if (options.max_assign)
    config.wordrec.max_simultaneous_assignments = *options.max_assign;
  if (options.degrade) config.exec.degrade = *options.degrade;
  return config;
}

void Executor::record(Status status) {
  by_status_[static_cast<std::size_t>(status)].fetch_add(
      1, std::memory_order_relaxed);
  perf::Profiler::global().count("serve.requests", 1);
}

Response Executor::execute(const Request& request, exec::CancelToken cancel) {
  perf::Stage stage("serve.request");
  // Scope chaos injection (NETREV_CHAOS=<mode>@<stage>:<match>) to this
  // request's design, so a fault target wired for one design leaves every
  // other request on this thread untouched.
  exec::ChaosScope chaos_scope(request.design);
  Response response;
  response.id = request.id;

  RunConfig config = config_for(request.options);
  config.exec.cancel = std::move(cancel);
  config.exec.cancellable = true;

  diag::Diagnostics diags;
  diags.set_max_errors(request.options.max_errors.value_or(
      diag::Diagnostics::kDefaultMaxErrors));

  try {
    switch (request.op) {
      case Op::kPing:
        response.result = "{" + jsonout::version_field() +
                          ",\"protocol\":" + std::to_string(kProtocolVersion) +
                          ",\"version\":" + quoted(version()) + "}";
        break;

      case Op::kStats:
        response.result = stats_json();
        break;

      case Op::kHealth:
        response.result = health_json();
        break;

      case Op::kEntry: {
        if (request.design.empty())
          throw std::invalid_argument("entry: missing \"design\"");
        BatchOptions options;
        options.config = config;
        // A failed entry is a RESULT here (a journal line with status
        // "failed"), not a request error — the supervisor quarantines only
        // crashes, never clean failures.
        options.keep_going = true;
        options.max_errors = diags.max_errors();
        options.retries = config_.entry_retries;
        options.retry_backoff = config_.entry_retry_backoff;
        options.cache = cache_;
        const BatchResult result = run_batch({request.design}, options);
        if (result.interrupted()) {
          response.status = Status::kCancelled;
          response.error = "entry cancelled";
          break;
        }
        // The result IS one journal line (sans newline): supervisor and
        // worker agree on the bytes by sharing the renderer.  The key slot
        // is a placeholder — only the supervisor knows the real key.
        std::string line =
            render_journal_line("0000000000000000", result.entries.front());
        if (!line.empty() && line.back() == '\n') line.pop_back();
        response.result = std::move(line);
        break;
      }

      case Op::kBatch: {
        if (request.designs.empty())
          throw std::invalid_argument("batch: missing \"designs\"");
        BatchOptions options;
        options.config = config;
        // Request-level fault isolation: one bad design fails its entry,
        // never the request (the serve analogue of batch --keep-going).
        options.keep_going = true;
        options.max_errors = diags.max_errors();
        options.cache = cache_;
        const BatchResult result =
            run_batch(expand_specs(request.designs), options);
        response.result = result.to_json();
        if (result.interrupted()) {
          response.status = Status::kCancelled;
          response.error = "batch cancelled";
        }
        break;
      }

      case Op::kLoad:
      case Op::kLint:
      case Op::kIdentify:
      case Op::kEvaluate:
      case Op::kLift: {
        if (request.design.empty())
          throw std::invalid_argument(std::string(op_name(request.op)) +
                                      ": missing \"design\"");
        Session session(config, cache_);
        const LoadedDesign design =
            session.load_netlist(request.design, config.parse, diags);

        if (request.op == Op::kLoad) {
          const auto stats = netlist::compute_stats(design.nl());
          response.result =
              "{" + jsonout::version_field() +
              ",\"design\":" + quoted(request.design) + ",\"identity\":\"" +
              hex16(design.identity) +
              "\",\"gates\":" + std::to_string(stats.gates) +
              ",\"nets\":" + std::to_string(stats.nets) +
              ",\"flops\":" + std::to_string(stats.flops) +
              ",\"inputs\":" + std::to_string(stats.primary_inputs) +
              ",\"outputs\":" + std::to_string(stats.primary_outputs) + "}";
          break;
        }

        if (request.op == Op::kLint) {
          const auto analysis = session.analyze(design);
          response.result = eval::analysis_to_json(design.nl(), *analysis);
          break;
        }

        if (request.op == Op::kIdentify) {
          // Byte-identical to `netrev identify <design> --json`.
          response.result = session.identify_json(design);
          if (!config.use_baseline) {
            const auto result = session.identify(design);  // cache hit
            if (result->degraded()) {
              response.status = Status::kDegraded;
              wordrec::report_degradation(*result, diags);
            }
          }
          break;
        }

        if (request.op == Op::kLift) {
          // Byte-identical to `netrev lift <design>`.
          response.result = session.lift_json(design);
          if (!config.use_baseline) {
            const auto result = session.identify(design);  // cache hit
            if (result->degraded()) {
              response.status = Status::kDegraded;
              wordrec::report_degradation(*result, diags);
            }
          }
          break;
        }

        // evaluate — byte-identical to `netrev evaluate <design> --json`.
        const auto reference = session.reference(design);
        if (reference->words.empty())
          throw std::runtime_error(
              "evaluate: no reference words (flop output names carry no "
              "indices)");
        const wordrec::WordSet words = [&] {
          if (config.use_baseline) return *session.identify_baseline(design);
          const auto result = session.identify(design);
          if (result->degraded()) {
            response.status = Status::kDegraded;
            wordrec::report_degradation(*result, diags);
          }
          return result->words;
        }();
        const eval::Diagnosis diagnosis =
            eval::diagnose(design.nl(), words, *reference);
        const auto health = session.analyze(design);
        response.result = eval::evaluate_doc_to_json(
            eval::evaluation_to_json(diagnosis.summary, reference->words),
            eval::analysis_to_json(design.nl(), *health));
        break;
      }
    }
  } catch (const exec::DeadlineExceededError& error) {
    response.status = Status::kDeadline;
    response.result.clear();
    response.error = error.what();
  } catch (const exec::CancelledError& error) {
    response.status = Status::kCancelled;
    response.result.clear();
    response.error = error.what();
  } catch (const UnusableInputError& error) {
    response.status = Status::kError;
    response.result.clear();
    response.error = error.what();
  } catch (const std::exception& error) {
    response.status = Status::kError;
    response.result.clear();
    response.error = error.what();
  }

  if (!diags.empty()) response.diagnostics = diags.to_json();
  record(response.status);
  return response;
}

std::string Executor::stats_json() const {
  std::uint64_t total = 0;
  for (const auto& counter : by_status_)
    total += counter.load(std::memory_order_relaxed);
  const auto count = [&](Status status) {
    return std::to_string(by_status_[static_cast<std::size_t>(status)].load(
        std::memory_order_relaxed));
  };
  std::string out = "{" + jsonout::version_field() +
                    ",\"protocol\":" + std::to_string(kProtocolVersion) +
                    ",\"version\":" + quoted(version());
  out += ",\"requests\":{\"total\":" + std::to_string(total);
  for (Status status :
       {Status::kOk, Status::kDegraded, Status::kOverloaded, Status::kDeadline,
        Status::kCancelled, Status::kError, Status::kBadRequest,
        Status::kWorkerCrashed}) {
    out += ",\"";
    out += status_name(status);
    out += "\":" + count(status);
  }
  out += "},\"cache\":{\"hits\":" + std::to_string(cache_->hits());
  out += ",\"misses\":" + std::to_string(cache_->misses());
  out += ",\"evictions\":" + std::to_string(cache_->evictions());
  out += ",\"entries\":" + std::to_string(cache_->size());
  out += ",\"max_entries\":" + std::to_string(cache_->max_entries());
  out += "}";
  // One-shot executors and worker processes have no serve layer — the block
  // appears only when a health source is attached, keeping their stats
  // shape historical.
  if (health_ != nullptr) out += ",\"serve\":" + serve_block(health_->health());
  out += "}";
  return out;
}

std::string Executor::health_json() const {
  const HealthSnapshot snap =
      health_ != nullptr ? health_->health() : HealthSnapshot{};
  std::string out = "{" + jsonout::version_field() +
                    ",\"protocol\":" + std::to_string(kProtocolVersion) +
                    ",\"version\":" + quoted(version());
  out += ",\"serve\":" + serve_block(snap);
  out += ",\"cache\":{\"entries\":" + std::to_string(cache_->size()) + "}}";
  return out;
}

}  // namespace netrev::pipeline::protocol
