// Content-addressed in-memory artifact cache for the batch pipeline.
//
// Artifacts (parsed netlists, repaired designs, identification results,
// reference extractions, analysis reports, rendered JSON) are immutable and
// shared via shared_ptr<const T>.  Keys are (stage, content hash, options
// fingerprint) — see pipeline/fingerprint.h for the hashing rules — so
// repeated stages over the same design are computed once and reused across
// identify/evaluate/lint of one batch and across repeated batch runs in one
// process.
//
// Thread-safe: lookups and stores take one mutex; compute callbacks run
// OUTSIDE the lock, so two threads racing on the same cold key may both
// compute — the first store wins and both callers observe the stored
// artifact.  Artifacts are deterministic functions of their key, so the race
// is only duplicated work, never divergent results.
//
// Hit/miss totals are mirrored into perf::Profiler::global() as the
// "cache.hits" / "cache.misses" counters (visible under --profile[=json]).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <typeinfo>
#include <unordered_map>

#include "pipeline/fingerprint.h"

namespace netrev::pipeline {

struct ArtifactKey {
  std::string stage;          // "parse", "load", "identify", ...
  std::uint64_t content = 0;  // content hash of the input
  std::uint64_t options = 0;  // fingerprint of the stage options

  bool operator==(const ArtifactKey& other) const = default;
};

struct ArtifactKeyHash {
  std::size_t operator()(const ArtifactKey& key) const {
    return static_cast<std::size_t>(
        mix(mix(fnv1a64(key.stage), key.content), key.options));
  }
};

class ArtifactCache {
 public:
  static constexpr std::size_t kDefaultMaxEntries = 512;

  // `max_entries` bounds the FIFO store; 0 disables caching entirely (every
  // lookup misses, every store is a pass-through).
  explicit ArtifactCache(std::size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries) {}
  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  // The process-wide cache the CLI and batch engine share, so repeated runs
  // in one process (in-process batch reruns, library embedders) reuse work.
  static ArtifactCache& global();

  // Returns the cached artifact for `key`, or runs `compute`, stores its
  // result, and returns the stored artifact (the first store for a key wins,
  // so concurrent callers converge on one shared object).  A throwing
  // compute stores nothing.  Throws std::logic_error if `key` was previously
  // stored with a different artifact type.
  template <typename T, typename Fn>
  std::shared_ptr<const T> get_or_compute(const ArtifactKey& key,
                                          Fn&& compute) {
    if (auto hit = lookup(key, typeid(T)))
      return std::static_pointer_cast<const T>(hit);
    std::shared_ptr<const T> made = compute();
    return std::static_pointer_cast<const T>(
        store(key, std::move(made), typeid(T)));
  }

  // Counters (process lifetime; clear() does not reset them).
  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }
  std::uint64_t evictions() const { return evictions_.load(); }
  std::size_t size() const;
  std::size_t max_entries() const;

  // Rebounds the cache (e.g. from --cache-entries).  Shrinking evicts oldest
  // entries down to the new bound; 0 drops everything and disables caching.
  // Capacity never keys artifacts, so changing it cannot change results —
  // only how much recomputation later lookups save.
  void set_max_entries(std::size_t max_entries);

  void clear();

 private:
  struct Entry {
    std::shared_ptr<const void> value;
    const std::type_info* type = nullptr;
    std::uint64_t order = 0;  // insertion order, for FIFO eviction
  };

  std::shared_ptr<const void> lookup(const ArtifactKey& key,
                                     const std::type_info& type);
  std::shared_ptr<const void> store(const ArtifactKey& key,
                                    std::shared_ptr<const void> value,
                                    const std::type_info& type);
  void evict_oldest_locked();

  std::size_t max_entries_;  // guarded by mutex_; 0 = caching disabled
  mutable std::mutex mutex_;
  std::unordered_map<ArtifactKey, Entry, ArtifactKeyHash> entries_;
  std::uint64_t next_order_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace netrev::pipeline
