// One configuration object for a whole pipeline run.
//
// RunConfig consolidates the per-stage option structs that call sites used
// to plumb individually (parser::ParseOptions, wordrec::Options,
// analysis::AnalysisOptions) plus the technique selector, so the CLI, the
// batch engine, and library embedders configure a netrev::Session in one
// place and cache keys can be derived uniformly.
#pragma once

#include <cstdint>

#include "analysis/rule.h"
#include "parser/parse_options.h"
#include "wordrec/options.h"

namespace netrev {

struct RunConfig {
  // How inputs are parsed (permissive recovery, resource limits).  The
  // filename field is set per load; leave it empty here.
  parser::ParseOptions parse;

  // The word-identification knobs (§2 of the paper).
  wordrec::Options wordrec;

  // Static-analysis / lint knobs.
  analysis::AnalysisOptions analysis;

  // Identify with the shape-hashing baseline instead of the paper's
  // control-signal technique ("Base" vs "Ours" in Table 1).
  bool use_baseline = false;

  // Fingerprints of the option subsets, as used in artifact-cache keys.
  // `max_errors` is the diagnostics sink's error budget (it bounds what a
  // permissive parse recovers, so it is part of the parse fingerprint).
  std::uint64_t parse_fingerprint(std::size_t max_errors) const;
  std::uint64_t wordrec_fingerprint() const;
  std::uint64_t analysis_fingerprint() const;
};

}  // namespace netrev
