// One configuration object for a whole pipeline run.
//
// RunConfig consolidates the per-stage option structs that call sites used
// to plumb individually (parser::ParseOptions, wordrec::Options,
// analysis::AnalysisOptions) plus the technique selector, so the CLI, the
// batch engine, and library embedders configure a netrev::Session in one
// place and cache keys can be derived uniformly.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>

#include "analysis/rule.h"
#include "exec/cancel.h"
#include "exec/degrade.h"
#include "lift/options.h"
#include "parser/parse_options.h"
#include "wordrec/options.h"

namespace netrev {

// Execution control: wall-clock budgets, cancellation, and the degradation
// policy applied when a budget trips.  Timeouts and the cancel token are
// observation-only (excluded from every fingerprint); the degrade policy is
// part of exec_fingerprint() because it changes what a tripped run produces.
struct ExecConfig {
  // Whole-run wall-clock budget; 0 = unlimited.
  std::chrono::milliseconds timeout{0};
  // Per-stage wall-clock budget (each load/identify/evaluate stage gets its
  // own deadline, still capped by the run deadline); 0 = unlimited.
  std::chrono::milliseconds stage_timeout{0};
  // What happens when a stage deadline or work budget trips.
  exec::DegradePolicy degrade;
  // External cancellation (SIGINT, embedder shutdown).  Copies share the
  // flag, so the CLI can hand the same token to a signal handler.
  exec::CancelToken cancel;
  // Set when a cancellation source is actually wired up (the CLI's SIGINT
  // handler).  Arms stage checkpoints even without timeouts, so mid-stage
  // work polls the token; left false, an untimed run pays zero poll cost.
  bool cancellable = false;
};

struct RunConfig {
  // How inputs are parsed (permissive recovery, resource limits).  The
  // filename field is set per load; leave it empty here.
  parser::ParseOptions parse;

  // The word-identification knobs (§2 of the paper).
  wordrec::Options wordrec;

  // Static-analysis / lint knobs.
  analysis::AnalysisOptions analysis;

  // Word-level lifting knobs (verification vectors, opaque cone depth).
  lift::Options lift;

  // Identify with the shape-hashing baseline instead of the paper's
  // control-signal technique ("Base" vs "Ours" in Table 1).
  bool use_baseline = false;

  // Deadlines, cancellation, degradation (see ExecConfig).
  ExecConfig exec;

  // Artifact-cache capacity override: number of entries the session's cache
  // may hold (0 disables caching entirely).  Unset = the built-in default.
  // Never part of any fingerprint — capacity changes retention, not results.
  std::optional<std::size_t> cache_entries;

  // Fingerprints of the option subsets, as used in artifact-cache keys.
  // `max_errors` is the diagnostics sink's error budget (it bounds what a
  // permissive parse recovers, so it is part of the parse fingerprint).
  std::uint64_t parse_fingerprint(std::size_t max_errors) const;
  std::uint64_t wordrec_fingerprint() const;
  std::uint64_t analysis_fingerprint() const;
  std::uint64_t lift_fingerprint() const;
  // Fingerprint of the degrade policy only — timeouts and the cancel token
  // never key artifacts (an untripped deadline must share cache entries with
  // no deadline).  Mixed into identify keys by the Session.
  std::uint64_t exec_fingerprint() const;
};

}  // namespace netrev
