#include "pipeline/fingerprint.h"

namespace netrev::pipeline {

namespace {

std::uint64_t hash_u64(std::uint64_t value, std::uint64_t seed) {
  char bytes[8];
  for (int i = 0; i < 8; ++i)
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  return fnv1a64(std::string_view(bytes, 8), seed);
}

std::uint64_t hash_bool(bool value, std::uint64_t seed) {
  return hash_u64(value ? 1 : 0, seed);
}

std::uint64_t hash_string(std::string_view text, std::uint64_t seed) {
  // Length prefix keeps ("ab","c") distinct from ("a","bc") when chained.
  return fnv1a64(text, hash_u64(text.size(), seed));
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t mix(std::uint64_t a, std::uint64_t b) { return hash_u64(b, a); }

std::uint64_t fingerprint(const parser::ParseOptions& options,
                          std::size_t max_errors) {
  std::uint64_t hash = fnv1a64("parse-options");
  hash = hash_bool(options.permissive, hash);
  hash = hash_string(options.filename, hash);
  hash = hash_u64(options.limits.max_file_bytes, hash);
  hash = hash_u64(options.limits.max_nets, hash);
  hash = hash_u64(options.limits.max_gates, hash);
  // The error budget only matters when recovery is on; strict parses either
  // succeed identically or throw before producing an artifact.
  if (options.permissive) hash = hash_u64(max_errors, hash);
  return hash;
}

std::uint64_t fingerprint(const wordrec::Options& options) {
  std::uint64_t hash = fnv1a64("wordrec-options");
  hash = hash_u64(options.cone_depth, hash);
  hash = hash_u64(options.max_simultaneous_assignments, hash);
  hash = hash_bool(options.distinguish_leaf_kinds, hash);
  hash = hash_bool(options.sweep_dead_logic, hash);
  hash = hash_bool(options.try_both_values_without_controlling_sink, hash);
  hash = hash_bool(options.cross_group_checking, hash);
  hash = hash_u64(options.cross_group_max_gap, hash);
  hash = hash_u64(options.max_control_signals_per_subgroup, hash);
  hash = hash_u64(options.max_assignment_trials_per_subgroup, hash);
  hash = hash_u64(options.max_cone_work, hash);
  hash = hash_bool(options.use_dataflow, hash);
  // options.constant_nets is derived purely from the netlist (already part
  // of every artifact key via the design identity), so the mask pointer is
  // excluded; use_dataflow above is what changes the output.
  // options.trace, options.cone_budget, and options.checkpoint are
  // observation-only and excluded (a deadline changes when a run stops, not
  // what a completed run computes).
  return hash;
}

std::uint64_t fingerprint(const lift::Options& options) {
  std::uint64_t hash = fnv1a64("lift-options");
  hash = hash_bool(options.verify, hash);
  hash = hash_u64(options.verify_vectors, hash);
  hash = hash_u64(options.verify_seed, hash);
  hash = hash_u64(options.opaque_depth, hash);
  hash = hash_bool(options.include_singletons, hash);
  return hash;
}

std::uint64_t fingerprint(const analysis::AnalysisOptions& options) {
  std::uint64_t hash = fnv1a64("analysis-options");
  hash = hash_u64(options.enabled_rules.size(), hash);
  for (const std::string& rule : options.enabled_rules)
    hash = hash_string(rule, hash);
  hash = hash_u64(static_cast<std::uint64_t>(options.fanout_percentile * 1e6),
                  hash);
  hash = hash_u64(options.min_flagged_fanout, hash);
  hash = hash_u64(options.max_findings_per_rule, hash);
  hash = hash_u64(options.dataflow_max_iterations, hash);
  hash = hash_u64(options.min_control_fanout, hash);
  // options.checkpoint is observation-only and excluded.
  return hash;
}

std::uint64_t fingerprint(const exec::DegradePolicy& policy) {
  std::uint64_t hash = fnv1a64("degrade-policy");
  hash = hash_bool(policy.enabled, hash);
  hash = hash_u64(static_cast<std::uint64_t>(policy.floor), hash);
  return hash;
}

std::uint64_t fingerprint(const diag::Diagnostics& diags) {
  std::uint64_t hash = fnv1a64("diagnostics");
  hash = hash_u64(diags.entries().size(), hash);
  for (const diag::Diagnostic& entry : diags.entries()) {
    hash = hash_u64(static_cast<std::uint64_t>(entry.severity), hash);
    hash = hash_string(entry.message, hash);
    hash = hash_string(entry.location.file, hash);
    hash = hash_u64(entry.location.line, hash);
    hash = hash_u64(entry.location.column, hash);
  }
  return hash;
}

std::uint64_t netlist_fingerprint(const netlist::Netlist& nl) {
  std::uint64_t hash = fnv1a64("netlist");
  hash = hash_string(nl.name(), hash);
  hash = hash_u64(nl.net_count(), hash);
  for (std::size_t i = 0; i < nl.net_count(); ++i) {
    const netlist::Net& net = nl.net(nl.net_id_at(i));
    hash = hash_string(net.name, hash);
    hash = hash_bool(net.is_primary_input, hash);
    hash = hash_bool(net.is_primary_output, hash);
  }
  hash = hash_u64(nl.gate_count(), hash);
  for (netlist::GateId id : nl.gates_in_file_order()) {
    const netlist::Gate& gate = nl.gate(id);
    hash = hash_u64(static_cast<std::uint64_t>(gate.type), hash);
    hash = hash_u64(gate.output.value(), hash);
    hash = hash_u64(gate.inputs.size(), hash);
    for (netlist::NetId input : gate.inputs)
      hash = hash_u64(input.value(), hash);
  }
  return hash;
}

}  // namespace netrev::pipeline
