#include "pipeline/manifest.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "common/text.h"
#include "itc/family.h"

namespace netrev::pipeline {

namespace {

namespace fs = std::filesystem;

bool has_wildcard(const std::string& spec) {
  return spec.find_first_of("*?") != std::string::npos;
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_family_name(const std::string& name) {
  try {
    itc::profile_by_name(name);
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

bool is_netlist_path(const std::string& spec) {
  return ends_with(spec, ".bench") || ends_with(spec, ".v");
}

// Resolves one manifest entry: relative entries prefer the manifest's own
// directory so a manifest can travel with its netlists.
std::string resolve_entry(const std::string& entry, const fs::path& base) {
  if (entry.empty() || fs::path(entry).is_absolute()) return entry;
  const fs::path local = base / entry;
  std::error_code ec;
  if (fs::exists(local, ec)) return local.string();
  return entry;
}

}  // namespace

bool glob_match(const std::string& pattern, const std::string& text) {
  std::size_t p = 0, t = 0;
  std::size_t star = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == text[t] || pattern[p] == '?')) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::vector<std::string> expand_glob(const std::string& pattern) {
  const fs::path full(pattern);
  const fs::path dir =
      full.has_parent_path() ? full.parent_path() : fs::path(".");
  const std::string leaf = full.filename().string();
  if (has_wildcard(dir.string()))
    throw std::invalid_argument(
        "glob wildcards are only supported in the final path component: " +
        pattern);

  std::vector<std::string> matches;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (!glob_match(leaf, name)) continue;
    matches.push_back(full.has_parent_path() ? (dir / name).string() : name);
  }
  if (ec)
    throw std::runtime_error("cannot expand glob '" + pattern +
                             "': " + ec.message());
  if (matches.empty())
    throw std::runtime_error("glob matched no files: " + pattern);
  std::sort(matches.begin(), matches.end());
  return matches;
}

std::vector<std::string> read_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open manifest: " + path);
  std::vector<std::string> specs;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string spec{trim(line)};
    if (!spec.empty()) specs.push_back(spec);
  }
  return specs;
}

std::vector<std::string> expand_specs(const std::vector<std::string>& specs) {
  std::vector<std::string> expanded;
  for (const std::string& spec : specs) {
    if (has_wildcard(spec)) {
      for (std::string& match : expand_glob(spec))
        expanded.push_back(std::move(match));
      continue;
    }
    if (is_family_name(spec) || is_netlist_path(spec)) {
      expanded.push_back(spec);
      continue;
    }
    std::error_code ec;
    if (fs::is_regular_file(spec, ec)) {
      // Any other existing file is a manifest.  Entries may be globs, but
      // not further manifests (no recursion).
      const fs::path base = fs::path(spec).parent_path();
      for (const std::string& raw : read_manifest(spec)) {
        const std::string entry = resolve_entry(raw, base);
        if (has_wildcard(entry)) {
          for (std::string& match : expand_glob(entry))
            expanded.push_back(std::move(match));
        } else {
          expanded.push_back(entry);
        }
      }
      continue;
    }
    // Unknown spec: keep it so the batch reports a per-entry load failure.
    expanded.push_back(spec);
  }
  return expanded;
}

}  // namespace netrev::pipeline
