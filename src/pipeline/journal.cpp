#include "pipeline/journal.h"

#include <cctype>
#include <stdexcept>
#include <unordered_map>

#include "common/atomic_file.h"
#include "eval/report.h"
#include "pipeline/fingerprint.h"

namespace netrev::pipeline {

namespace {

std::string hex16(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

std::string quoted(const std::string& text) {
  return '"' + eval::json_escape(text) + '"';
}

// --- flat JSON line reader -------------------------------------------------
// Parses exactly the shape the writer emits: one object whose values are
// strings, unsigned integers, or null.  Anything else fails the line.

struct FlatObject {
  std::unordered_map<std::string, std::string> strings;
  std::unordered_map<std::string, std::uint64_t> numbers;
};

class FlatParser {
 public:
  explicit FlatParser(const std::string& text) : text_(text) {}

  bool parse(FlatObject& out) {
    skip_ws();
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return at_end();
    for (;;) {
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (peek() == '"') {
        std::string value;
        if (!parse_string(value)) return false;
        out.strings[key] = std::move(value);
      } else if (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
        std::uint64_t value = 0;
        if (!parse_number(value)) return false;
        out.numbers[key] = value;
      } else if (consume_word("null")) {
        // absent value; nothing stored
      } else {
        return false;
      }
      skip_ws();
      if (consume(',')) {
        skip_ws();
        continue;
      }
      if (consume('}')) return at_end();
      return false;
    }
  }

 private:
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  bool consume_word(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }
  bool at_end() {
    skip_ws();
    return pos_ == text_.size();
  }

  bool parse_number(std::uint64_t& out) {
    out = 0;
    bool any = false;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
      out = out * 10 + static_cast<std::uint64_t>(peek() - '0');
      ++pos_;
      any = true;
    }
    return any;
  }

  static int hex_digit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          int code = 0;
          for (int i = 0; i < 4; ++i) {
            int digit = hex_digit(text_[pos_ + static_cast<std::size_t>(i)]);
            if (digit < 0) return false;
            code = code * 16 + digit;
          }
          pos_ += 4;
          // The writer only escapes control bytes (<0x20); anything larger
          // passes through raw, so a one-byte append is sufficient here.
          if (code > 0xff) return false;
          out += static_cast<char>(code);
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated (torn line)
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

bool record_from(const FlatObject& object, JournalRecord& record) {
  const auto str = [&](const char* key) -> const std::string* {
    const auto it = object.strings.find(key);
    return it == object.strings.end() ? nullptr : &it->second;
  };
  const auto num = [&](const char* key) -> std::uint64_t {
    const auto it = object.numbers.find(key);
    return it == object.numbers.end() ? 0 : it->second;
  };

  const std::uint64_t v = num("v");
  if (v != 1 && v != 2) return false;
  const std::string* key = str("key");
  const std::string* spec = str("spec");
  const std::string* status = str("status");
  if (key == nullptr || spec == nullptr || status == nullptr) return false;
  if (key->size() != 16) return false;

  record.key = *key;
  record.entry.spec = *spec;
  if (*status == "ok") {
    record.entry.status = EntryStatus::kOk;
  } else if (*status == "failed") {
    record.entry.status = EntryStatus::kFailed;
  } else if (*status == "crashed" && v >= 2) {
    record.entry.status = EntryStatus::kCrashed;
  } else {
    return false;  // journals never hold skipped/cancelled entries
  }

  const auto copy = [&](const char* name, std::string& into) {
    if (const std::string* value = str(name)) into = *value;
  };
  copy("stage", record.entry.failed_stage);
  copy("error", record.entry.error);
  copy("identify", record.entry.identify_json);
  copy("lift", record.entry.lift_json);
  copy("analysis", record.entry.analysis_json);
  copy("evaluation", record.entry.evaluation_json);
  copy("diagnostics", record.entry.diagnostics_json);
  copy("degrade_level", record.entry.degrade_level);
  copy("degrade_stage", record.entry.degrade_stage);
  copy("crash", record.entry.crash);
  record.entry.crash_signal = num("signal");
  record.entry.multibit_words = num("words");
  record.entry.control_signals = num("control_signals");
  record.entry.lint_errors = num("lint_errors");
  record.entry.lint_warnings = num("lint_warnings");
  record.entry.lint_notes = num("lint_notes");
  return true;
}

}  // namespace

std::string journal_key(std::uint64_t content, std::uint64_t options_fp) {
  return hex16(mix(content, options_fp));
}

JournalWriter::JournalWriter(const std::string& path)
    : path_(path), out_(path, std::ios::app) {
  if (!out_)
    throw std::runtime_error("cannot open journal for append: " + path);
}

void JournalWriter::append(const std::string& key, const BatchEntry& entry) {
  const std::string line = render_journal_line(key, entry);
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << line;
  out_.flush();  // one line per entry survives a crash right after
}

std::string render_journal_line(const std::string& key,
                                const BatchEntry& entry) {
  // v2 is written ONLY for crashed entries: ok/failed lines stay
  // byte-identical to what pre-isolation builds wrote, so journals remain
  // interchangeable between isolated and non-isolated runs.
  const bool crashed = entry.status == EntryStatus::kCrashed;
  std::string line =
      std::string("{\"v\":") + (crashed ? "2" : "1") + ",\"key\":" +
      quoted(key);
  line += ",\"spec\":" + quoted(entry.spec);
  line += ",\"status\":";
  line += crashed ? "\"crashed\""
                  : (entry.status == EntryStatus::kOk ? "\"ok\""
                                                      : "\"failed\"");
  if (crashed) {
    line += ",\"crash\":" + quoted(entry.crash);
    line += ",\"signal\":" + std::to_string(entry.crash_signal);
  }
  line += ",\"stage\":" + quoted(entry.failed_stage);
  line += ",\"error\":" + quoted(entry.error);
  line += ",\"identify\":" + quoted(entry.identify_json);
  line += ",\"lift\":" + quoted(entry.lift_json);
  line += ",\"analysis\":" + quoted(entry.analysis_json);
  line += ",\"evaluation\":" + quoted(entry.evaluation_json);
  line += ",\"diagnostics\":" + quoted(entry.diagnostics_json);
  line += ",\"degrade_level\":" + quoted(entry.degrade_level);
  line += ",\"degrade_stage\":" + quoted(entry.degrade_stage);
  line += ",\"words\":" + std::to_string(entry.multibit_words);
  line += ",\"control_signals\":" + std::to_string(entry.control_signals);
  line += ",\"lint_errors\":" + std::to_string(entry.lint_errors);
  line += ",\"lint_warnings\":" + std::to_string(entry.lint_warnings);
  line += ",\"lint_notes\":" + std::to_string(entry.lint_notes);
  line += "}\n";
  return line;
}

bool parse_journal_line(const std::string& line, JournalRecord& record) {
  std::string trimmed = line;
  while (!trimmed.empty() &&
         (trimmed.back() == '\n' || trimmed.back() == '\r'))
    trimmed.pop_back();
  FlatObject object;
  if (!FlatParser(trimmed).parse(object)) return false;
  return record_from(object, record);
}

std::vector<JournalRecord> read_journal(const std::string& path) {
  std::vector<JournalRecord> records;
  std::ifstream in(path);
  if (!in) return records;  // no journal yet: resuming from nothing
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JournalRecord record;
    if (!parse_journal_line(line, record)) continue;  // torn/foreign line
    records.push_back(std::move(record));
  }
  return records;
}

CompactionStats compact_journal(const std::string& path) {
  CompactionStats stats;
  const std::vector<JournalRecord> records = read_journal(path);
  if (records.empty()) return stats;  // nothing to compact (or no journal)

  // Later lines win, so a record survives iff it is the LAST occurrence of
  // its key; survivors keep their original relative order.
  std::unordered_map<std::string, std::size_t> last_index;
  for (std::size_t i = 0; i < records.size(); ++i)
    last_index[records[i].key] = i;

  std::string compacted;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (last_index[records[i].key] != i) {
      ++stats.dropped;
      continue;
    }
    compacted += render_journal_line(records[i].key, records[i].entry);
    ++stats.kept;
  }
  io::write_file_atomic(path, compacted);
  return stats;
}

}  // namespace netrev::pipeline
