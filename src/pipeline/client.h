// Client side of the serve wire: connect, send one request line, read one
// response line.  Used by `netrev client`, the soak tests, and check.sh's
// serve gate; the protocol bytes themselves live in pipeline/protocol.h.
#pragma once

#include <chrono>
#include <optional>
#include <string>

#include "pipeline/protocol.h"

namespace netrev::pipeline::client {

struct Endpoint {
  // TCP when unix_path is empty, Unix domain socket otherwise.
  std::string host = "127.0.0.1";
  int port = 0;
  std::string unix_path;
};

// Parses "HOST:PORT" (e.g. "127.0.0.1:4821"); nullopt when malformed.
std::optional<Endpoint> parse_endpoint(const std::string& text);

// One synchronous connection.  Not thread-safe; open one per thread (the
// soak tests do exactly that).
class Connection {
 public:
  // Connects immediately; throws std::runtime_error on failure.
  explicit Connection(const Endpoint& endpoint);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // Sends one already-rendered request line (no newline) and waits up to
  // `timeout` for the response line.  Throws std::runtime_error when the
  // server closes the connection or the timeout passes without a line.
  std::string round_trip_line(
      const std::string& line,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(60000));

  // Typed round trip: render, exchange, parse.  Throws on transport errors;
  // a server-side failure comes back as a non-ok Response, not a throw.
  protocol::Response round_trip(
      const protocol::Request& request,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(60000));

  // Raw halves of the round trip, for pipelined clients (send many lines,
  // then collect the responses — workers may answer out of order).
  void send_all(const std::string& bytes);
  std::string read_line(std::chrono::milliseconds timeout);

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes past the last consumed newline
};

}  // namespace netrev::pipeline::client
