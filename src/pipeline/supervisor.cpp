#include "pipeline/supervisor.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <thread>
#include <utility>

namespace netrev::pipeline::supervisor {

namespace {

// Deterministic names for the signals a worker plausibly dies from, so crash
// descriptions (which land in journals) do not depend on libc's strsignal
// tables.
const char* signal_label(int sig) {
  switch (sig) {
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGKILL: return "SIGKILL";
    case SIGSEGV: return "SIGSEGV";
    case SIGTERM: return "SIGTERM";
    case SIGXCPU: return "SIGXCPU";
    case SIGXFSZ: return "SIGXFSZ";
    default: return nullptr;
  }
}

CrashInfo classify_wait_status(int status) {
  CrashInfo info;
  if (WIFSIGNALED(status)) {
    info.kind = CrashKind::kSignal;
    info.signal = WTERMSIG(status);
  } else if (WIFEXITED(status)) {
    info.kind = CrashKind::kExit;
    info.exit_status = WEXITSTATUS(status);
  }
  return info;
}

}  // namespace

std::string CrashInfo::describe() const {
  switch (kind) {
    case CrashKind::kSignal: {
      std::string out = "signal " + std::to_string(signal);
      if (const char* label = signal_label(signal))
        out += std::string(" (") + label + ")";
      return out;
    }
    case CrashKind::kExit:
      return "exit " + std::to_string(exit_status) + " without reply";
    case CrashKind::kTimeout:
      return "watchdog timeout" +
             (detail.empty() ? std::string() : " (" + detail + ")");
    case CrashKind::kSpawn:
      return "spawn failed" +
             (detail.empty() ? std::string() : ": " + detail);
  }
  return "unknown crash";
}

void ignore_sigpipe() {
  // A write to a pipe whose reader died must return EPIPE (classified as a
  // crash), not deliver SIGPIPE and kill the whole process.
  struct sigaction action {};
  action.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &action, nullptr);
}

// One live child process.  The supervisor owns the write end of its stdin
// and the read end of its stdout; `buffer` carries bytes read past the last
// response line (normally empty — one line per round trip).
struct WorkerPool::Worker {
  pid_t pid = -1;
  int in_fd = -1;   // -> child stdin
  int out_fd = -1;  // <- child stdout
  std::string buffer;

  ~Worker() {
    if (in_fd >= 0) ::close(in_fd);
    if (out_fd >= 0) ::close(out_fd);
  }

  // SIGKILL + synchronous reap; returns the classified wait status.  Safe to
  // call after the child already died (waitpid still reaps the zombie) and
  // idempotent — a second call must never ::kill(-1, ...).
  CrashInfo kill_and_reap() {
    if (pid < 0) return CrashInfo{};
    ::kill(pid, SIGKILL);
    int status = 0;
    pid_t reaped;
    do {
      reaped = ::waitpid(pid, &status, 0);
    } while (reaped < 0 && errno == EINTR);
    pid = -1;
    return reaped < 0 ? CrashInfo{} : classify_wait_status(status);
  }
};

WorkerPool::WorkerPool(PoolOptions options) : options_(std::move(options)) {
  if (options_.workers == 0) options_.workers = 1;
  exe_ = options_.exe;
  if (exe_.empty()) {
    const char* env = std::getenv("NETREV_WORKER_EXE");
    exe_ = (env != nullptr && *env != '\0') ? env : "/proc/self/exe";
  }
  ignore_sigpipe();
}

WorkerPool::~WorkerPool() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Busy workers belong to in-flight run() calls; by contract the pool is
  // destroyed only after poison() + quiesce, so kill whatever idles remain.
  for (auto& worker : idle_) worker->kill_and_reap();
  idle_.clear();
}

std::unique_ptr<WorkerPool::Worker> WorkerPool::spawn(CrashInfo& error) {
  error = CrashInfo{};
  error.kind = CrashKind::kSpawn;

  int to_child[2];   // supervisor writes, child stdin reads
  int from_child[2]; // child stdout writes, supervisor reads
  if (::pipe2(to_child, O_CLOEXEC) != 0) {
    error.detail = std::string("pipe: ") + std::strerror(errno);
    return nullptr;
  }
  if (::pipe2(from_child, O_CLOEXEC) != 0) {
    error.detail = std::string("pipe: ") + std::strerror(errno);
    ::close(to_child[0]);
    ::close(to_child[1]);
    return nullptr;
  }

  // argv must be fully built BEFORE fork: between fork and exec only
  // async-signal-safe calls are allowed, and malloc is not one of them.
  std::vector<char*> argv;
  argv.reserve(options_.args.size() + 2);
  argv.push_back(const_cast<char*>(exe_.c_str()));
  for (const std::string& arg : options_.args)
    argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    error.detail = std::string("fork: ") + std::strerror(errno);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    return nullptr;
  }

  if (pid == 0) {
    // Child: plumb the pipes onto stdio (the dup2'd fds lose O_CLOEXEC, the
    // originals keep it), apply limits, restore default signal dispositions
    // the supervisor may have overridden, exec.  Async-signal-safe only.
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    if (options_.limits.mem_bytes > 0) {
      struct rlimit rl;
      rl.rlim_cur = options_.limits.mem_bytes;
      rl.rlim_max = options_.limits.mem_bytes;
      ::setrlimit(RLIMIT_AS, &rl);
    }
    if (options_.limits.cpu_seconds > 0) {
      struct rlimit rl;
      rl.rlim_cur = options_.limits.cpu_seconds;
      rl.rlim_max = options_.limits.cpu_seconds;
      ::setrlimit(RLIMIT_CPU, &rl);
    }
    ::signal(SIGPIPE, SIG_DFL);
    // The supervisor owns this worker's lifecycle: a Ctrl-C at the terminal
    // reaches the whole process group, and workers must keep serving their
    // current entry so the parent can journal it before unwinding.
    ::signal(SIGINT, SIG_IGN);
    ::execv(exe_.c_str(), argv.data());
    _exit(127);  // exec failed; classified as "exit 127 without reply"
  }

  ::close(to_child[0]);
  ::close(from_child[1]);
  auto worker = std::make_unique<Worker>();
  worker->pid = pid;
  worker->in_fd = to_child[1];
  worker->out_fd = from_child[0];
  return worker;
}

std::unique_ptr<WorkerPool::Worker> WorkerPool::acquire(
    CrashInfo& spawn_error) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (!idle_.empty()) {
      auto worker = std::move(idle_.back());
      idle_.pop_back();
      busy_.push_back(worker.get());
      return worker;
    }
    if (live_ < options_.workers) {
      const bool is_restart = stats_.spawned >= options_.workers ||
                              consecutive_crashes_ > 0;
      if (is_restart && stats_.restarts >= options_.max_restarts) {
        spawn_error.kind = CrashKind::kSpawn;
        spawn_error.detail =
            "respawn budget exhausted (" +
            std::to_string(options_.max_restarts) + " restarts)";
        return nullptr;
      }
      ++live_;  // reserve the slot before dropping the lock
      std::chrono::milliseconds backoff{0};
      if (consecutive_crashes_ > 0) {
        const std::size_t shift =
            consecutive_crashes_ - 1 < 6 ? consecutive_crashes_ - 1 : 6;
        backoff = options_.restart_backoff * (1u << shift);
      }
      lock.unlock();
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
      auto worker = spawn(spawn_error);
      lock.lock();
      if (worker == nullptr) {
        --live_;
        slot_cv_.notify_one();
        return nullptr;
      }
      ++stats_.spawned;
      if (is_restart) ++stats_.restarts;
      busy_.push_back(worker.get());
      return worker;
    }
    slot_cv_.wait(lock);
  }
}

void WorkerPool::release(std::unique_ptr<Worker> worker) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < busy_.size(); ++i) {
    if (busy_[i] == worker.get()) {
      busy_.erase(busy_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  consecutive_crashes_ = 0;
  idle_.push_back(std::move(worker));
  slot_cv_.notify_one();
}

CrashInfo WorkerPool::retire(std::unique_ptr<Worker> worker) {
  // Deregister BEFORE reaping: once waitpid returns, the pid may be
  // recycled, and poison() must never kill a recycled pid.  Deregistration
  // and poison()'s kill both hold the mutex, so poison() only ever signals
  // a still-registered (not-yet-reaped) child.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < busy_.size(); ++i) {
      if (busy_[i] == worker.get()) {
        busy_.erase(busy_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  }
  const CrashInfo info = worker->kill_and_reap();
  std::lock_guard<std::mutex> lock(mutex_);
  --live_;
  ++consecutive_crashes_;
  ++stats_.crashes;
  slot_cv_.notify_one();
  return info;
}

void WorkerPool::poison() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& worker : idle_) worker->kill_and_reap();
  idle_.clear();
  live_ = busy_.size();
  // Busy workers: kill only — their in-flight run() observes EOF, reaps,
  // and returns a crash outcome.
  for (Worker* worker : busy_) ::kill(worker->pid, SIGKILL);
  slot_cv_.notify_all();
}

PoolStats WorkerPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  PoolStats out = stats_;
  out.alive = live_;
  return out;
}

WorkerPool::Outcome WorkerPool::run(const std::string& request_line) {
  return run(request_line, options_.wall_timeout);
}

WorkerPool::Outcome WorkerPool::run(const std::string& request_line,
                                    std::chrono::milliseconds wall_timeout) {
  Outcome outcome;
  auto worker = acquire(outcome.crash);
  if (worker == nullptr) {
    outcome.crashed = true;  // crash holds the spawn error from acquire()
    return outcome;
  }

  // Retires the worker (deregister -> SIGKILL -> reap) and fills the
  // outcome: by default with the classification of how the child actually
  // died; `forced` overrides it where the watchdog is the real cause.
  const auto crash = [&](std::optional<CrashInfo> forced =
                             std::nullopt) -> Outcome& {
    const CrashInfo reaped = retire(std::move(worker));
    outcome.crashed = true;
    outcome.crash = forced ? std::move(*forced) : reaped;
    return outcome;
  };

  // --- write the request line ----------------------------------------------
  const std::string framed = request_line + "\n";
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::write(worker->in_fd, framed.data() + sent, framed.size() - sent);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      // EPIPE (SIGPIPE ignored): the worker died between round trips.
      return crash();
    }
    sent += static_cast<std::size_t>(n);
  }

  // --- read one response line under the watchdog ---------------------------
  const bool bounded = wall_timeout.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() + wall_timeout;
  char chunk[4096];
  for (;;) {
    const auto newline = worker->buffer.find('\n');
    if (newline != std::string::npos) {
      outcome.response = worker->buffer.substr(0, newline);
      worker->buffer.erase(0, newline + 1);
      release(std::move(worker));
      return outcome;
    }

    int wait_ms = -1;
    if (bounded) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        CrashInfo info;
        info.kind = CrashKind::kTimeout;
        info.detail =
            "killed after " + std::to_string(wall_timeout.count()) + "ms";
        return crash(std::move(info));
      }
      wait_ms = static_cast<int>(left.count());
    }

    pollfd pfd{worker->out_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return crash();
    }
    if (ready == 0) continue;  // deadline re-checked at loop top

    const ssize_t n = ::read(worker->out_fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      // EOF without a complete reply: the worker is dead (or worse, exited
      // cleanly without answering — still a crash from the caller's view).
      return crash();
    }
    worker->buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace netrev::pipeline::supervisor
