#include "pipeline/serve.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace netrev::pipeline::serve {

namespace {

// Scoped fd so early-throw paths in start() never leak a socket.
struct ScopedFd {
  int fd = -1;
  ~ScopedFd() {
    if (fd >= 0) ::close(fd);
  }
  int release() { return std::exchange(fd, -1); }
};

}  // namespace

// One client connection.  The reader thread owns reads; responses are
// written by whichever thread finished the request, serialized by
// write_mutex so concurrent responses to one client never interleave bytes.
struct Server::Connection {
  explicit Connection(int fd) : fd(fd) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  // Sends `line` + '\n'.  Best-effort: a client that vanished mid-response
  // just loses it (the request was still executed and counted).
  void write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(write_mutex);
    std::string framed = line + "\n";
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return;  // peer gone
      sent += static_cast<std::size_t>(n);
    }
  }

  // Unblocks the reader thread's poll/recv from another thread.
  void shutdown_both() { ::shutdown(fd, SHUT_RDWR); }

  int fd;
  std::mutex write_mutex;
};

Server::Server(ServeOptions options, std::ostream* log)
    : options_(std::move(options)), log_(log), executor_(options_.executor) {
  if (options_.max_inflight == 0) options_.max_inflight = 1;
}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

std::string Server::endpoint() const {
  if (!options_.unix_path.empty()) return "unix:" + options_.unix_path;
  return options_.host + ":" + std::to_string(port_);
}

void Server::start() {
  // Pipe writes to crashed workers must surface as EPIPE, and a client that
  // disconnects mid-response must not kill the daemon (MSG_NOSIGNAL covers
  // the socket sends, SIG_IGN covers everything else).
  supervisor::ignore_sigpipe();
  start_time_ = std::chrono::steady_clock::now();
  if (options_.pool) pool_ = std::make_unique<supervisor::WorkerPool>(*options_.pool);
  executor_.set_health_source(this);

  ScopedFd fd;
  if (!options_.unix_path.empty()) {
    fd.fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd.fd < 0) throw std::runtime_error("serve: cannot create socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path))
      throw std::runtime_error("serve: socket path too long: " +
                               options_.unix_path);
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_path.c_str());  // stale socket from a dead server
    if (::bind(fd.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
      throw std::runtime_error("serve: cannot bind " + options_.unix_path +
                               ": " + std::strerror(errno));
  } else {
    fd.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd.fd < 0) throw std::runtime_error("serve: cannot create socket");
    const int one = 1;
    ::setsockopt(fd.fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1)
      throw std::runtime_error("serve: bad listen address: " + options_.host);
    if (::bind(fd.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
      throw std::runtime_error("serve: cannot bind " + options_.host + ":" +
                               std::to_string(options_.port) + ": " +
                               std::strerror(errno));
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(fd.fd, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  }
  if (::listen(fd.fd, 64) != 0)
    throw std::runtime_error(std::string("serve: listen failed: ") +
                             std::strerror(errno));
  listen_fd_ = fd.release();
}

void Server::logline(const std::string& text) {
  if (log_ == nullptr) return;
  std::lock_guard<std::mutex> lock(log_mutex_);
  *log_ << "serve: " << text << '\n';
  log_->flush();
}

void Server::respond(const std::shared_ptr<Connection>& connection,
                     const protocol::Response& response) {
  connection->write_line(protocol::render_response(response));
  logline("id=" + (response.id.empty() ? std::string("?") : response.id) +
          " status=" + protocol::status_name(response.status) +
          (response.error.empty() ? "" : " error=\"" + response.error + "\""));
}

void Server::handle_line(const std::shared_ptr<Connection>& connection,
                         const std::string& line) {
  protocol::ParsedRequest parsed = protocol::parse_request(line);
  if (!parsed.request) {
    protocol::Response response;
    response.status = protocol::Status::kBadRequest;
    response.error = parsed.error;
    executor_.record(response.status);
    respond(connection, response);
    return;
  }
  protocol::Request request = std::move(*parsed.request);
  if (request.id.empty())
    request.id =
        "s" + std::to_string(next_request_id_.fetch_add(
                  1, std::memory_order_relaxed));

  // Admission: bounded queue, never a stall.  A shed request is answered
  // right here on the reader thread.
  bool shed_for_drain;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!draining_ && queue_.size() < options_.max_queue) {
      queue_.push_back(Work{std::move(request), exec::CancelToken{},
                            connection});
      work_cv_.notify_one();
      return;
    }
    shed_for_drain = draining_;
  }
  protocol::Response response;
  response.id = request.id;
  response.status = protocol::Status::kOverloaded;
  response.error = shed_for_drain
                       ? "server is draining; retry against a live instance"
                       : "admission queue full (max-queue=" +
                             std::to_string(options_.max_queue) +
                             "); retry with backoff";
  executor_.record(response.status);
  respond(connection, response);
}

protocol::Response Server::execute_work(const Work& work) {
  // ping/stats/health answer in-process even when isolating, so the daemon
  // stays observable while every worker is crashed or wedged.
  const protocol::Op op = work.request.op;
  const bool pooled = pool_ != nullptr && op != protocol::Op::kPing &&
                      op != protocol::Op::kStats &&
                      op != protocol::Op::kHealth;
  if (!pooled) return executor_.execute(work.request, work.cancel);

  const supervisor::WorkerPool::Outcome outcome =
      pool_->run(protocol::render_request(work.request));
  protocol::Response response;
  response.id = work.request.id;
  if (outcome.crashed) {
    response.status = protocol::Status::kWorkerCrashed;
    response.error = "worker crashed: " + outcome.crash.describe();
  } else {
    protocol::ParsedResponse parsed =
        protocol::parse_response(outcome.response);
    if (parsed.response) {
      response = std::move(*parsed.response);
      response.id = work.request.id;
    } else {
      response.status = protocol::Status::kWorkerCrashed;
      response.error = "unusable worker reply: " + parsed.error;
    }
  }
  // The worker counted the request in ITS stats; this daemon's stats must
  // see it too (the same rule as responses synthesized by admission).
  executor_.record(response.status);
  return response;
}

void Server::worker_loop() {
  for (;;) {
    Work work;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_workers_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_workers_) return;
        continue;
      }
      work = std::move(queue_.front());
      queue_.pop_front();
      ++inflight_;
      active_.push_back(work.cancel);
    }
    const protocol::Response response = execute_work(work);
    respond(work.connection, response);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (std::size_t i = 0; i < active_.size(); ++i) {
        if (active_[i].flag() == work.cancel.flag()) {
          active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
      --inflight_;
    }
    drain_cv_.notify_all();
  }
}

void Server::reader_loop(std::shared_ptr<Connection> connection) {
  std::string buffer;
  auto last_activity = std::chrono::steady_clock::now();
  char chunk[4096];
  for (;;) {
    pollfd pfd{connection->fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      if (options_.idle_timeout.count() > 0 &&
          std::chrono::steady_clock::now() - last_activity >
              options_.idle_timeout) {
        logline("connection idle for " +
                std::to_string(options_.idle_timeout.count()) +
                "ms, closing");
        break;
      }
      continue;
    }
    const ssize_t n = ::recv(connection->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // peer closed (or the drain shutdown unblocked us)
    last_activity = std::chrono::steady_clock::now();
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) handle_line(connection, line);
    }
    // Unframed-buffer bound: a frame still lacking its newline past the
    // limit can only grow, so answer once and disconnect rather than
    // buffering a client's endless line.
    if (buffer.size() > options_.max_request_bytes) {
      protocol::Response response;
      response.status = protocol::Status::kBadRequest;
      response.error = "request exceeds max-request-bytes (" +
                       std::to_string(options_.max_request_bytes) +
                       "); closing connection";
      executor_.record(response.status);
      respond(connection, response);
      break;
    }
  }
}

protocol::HealthSnapshot Server::health() const {
  protocol::HealthSnapshot snap;
  snap.uptime_s = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snap.inflight = inflight_;
    snap.queued = queue_.size();
  }
  if (pool_ != nullptr) {
    const supervisor::PoolStats stats = pool_->stats();
    snap.isolate = true;
    snap.workers_alive = stats.alive;
    snap.workers_restarted = stats.restarts;
    snap.workers_quarantined = stats.crashes;
  }
  return snap;
}

ExitCode Server::run() {
  for (std::size_t i = 0; i < options_.max_inflight; ++i)
    workers_.emplace_back([this] { worker_loop(); });

  // Accept loop: poll with a short tick so the signal-set drain flag is
  // observed within ~50ms without any async-signal-unsafe work in handlers.
  while (!drain_requested_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 50);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the drain flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto connection = std::make_shared<Connection>(fd);
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(connection);
    }
    readers_.emplace_back(
        [this, connection = std::move(connection)]() mutable {
          reader_loop(std::move(connection));
        });
  }

  // --- drain ---------------------------------------------------------------
  logline("drain requested");
  ::close(listen_fd_);  // stop accepting; connected readers keep reading
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;  // admission now sheds everything as "overloaded"
  }

  const auto deadline =
      std::chrono::steady_clock::now() + options_.drain_timeout;
  bool clean;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    clean = drain_cv_.wait_until(
        lock, deadline, [&] { return queue_.empty() && inflight_ == 0; });
    if (!clean) {
      // Window expired: cancel executing requests (their Executor turns the
      // CancelledError into a "cancelled" response) and answer everything
      // still queued ourselves, so every admitted request gets exactly one
      // response.
      logline("drain window expired; cancelling in-flight requests");
      for (exec::CancelToken& token : active_) token.request_cancel();
      // Pooled round trips cannot observe cancel tokens — poison the pool
      // so their workers die and the round trips return (as crash
      // outcomes, answered "worker_crashed") within the drain window.
      if (pool_ != nullptr) pool_->poison();
      std::deque<Work> unstarted;
      unstarted.swap(queue_);
      lock.unlock();
      for (Work& work : unstarted) {
        protocol::Response response;
        response.id = work.request.id;
        response.status = protocol::Status::kCancelled;
        response.error = "server drained before this request started";
        executor_.record(response.status);
        respond(work.connection, response);
      }
      lock.lock();
      // Cancellation is cooperative and every stage polls, so this wait is
      // short; it is unbounded because exiting with workers still running
      // is never an option.
      drain_cv_.wait(lock, [&] { return queue_.empty() && inflight_ == 0; });
    }
    stop_workers_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();

  // Unblock and retire the readers; responses are all flushed (write_line
  // completes before a worker retires), so closing now loses nothing.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (std::weak_ptr<Connection>& weak : connections_)
      if (auto connection = weak.lock()) connection->shutdown_both();
  }
  for (std::thread& reader : readers_) reader.join();
  readers_.clear();

  logline(clean ? "drained cleanly" : "drain timed out");
  return clean ? ExitCode::kDrained : ExitCode::kDrainTimeout;
}

}  // namespace netrev::pipeline::serve
