// netrev::Session — the unified entry point to the identification pipeline.
//
// A Session fronts every pipeline stage behind one object:
//
//   Session session(config);
//   LoadedDesign design = session.load_netlist("b03s");       // or .bench/.v
//   auto result = session.identify(design);                   // cached
//   std::string json = session.identify_json(design);         // CLI bytes
//
// load_netlist() is the single format-dispatching entry (family benchmark
// name, `.bench` file, or structural Verilog file) and replaces the
// per-call-site parser selection the CLI and examples used to do by hand.
// Every stage routes through the content-addressed ArtifactCache, so
// repeated stages on the same design — across identify/evaluate/lint, and
// across repeated runs in one process — are computed once.
//
// Thread-safety: a Session may be used from multiple threads as long as the
// configuration is not mutated concurrently and each thread reports into its
// own diag::Diagnostics sink (the explicit-sink overloads; the batch engine
// does exactly this).  The cache itself is always thread-safe.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "analysis/analyzer.h"
#include "common/diagnostics.h"
#include "eval/reference.h"
#include "eval/runner.h"
#include "lift/model.h"
#include "netlist/compact.h"
#include "netlist/netlist.h"
#include "pipeline/artifact_cache.h"
#include "pipeline/run_config.h"
#include "wordrec/identify.h"

namespace netrev {

// Thrown when a permissive load recovers nothing usable (fatal diagnostics,
// or a netlist that still fails validation after repair).  The CLI maps it
// to exit code 4; the batch engine records it as a per-entry failure.
class UnusableInputError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// A loaded design: the immutable netlist plus its content-addressed
// identity.  Cheap to copy (the netlist is shared).
struct LoadedDesign {
  std::shared_ptr<const netlist::Netlist> netlist;
  std::string spec;            // what the caller asked for
  std::uint64_t identity = 0;  // structural fingerprint of the loaded netlist
  bool from_family = false;    // built from a family benchmark profile
  bool from_file = false;      // parsed from a netlist file

  const netlist::Netlist& nl() const { return *netlist; }
  bool valid() const { return netlist != nullptr; }
};

class Session {
 public:
  explicit Session(RunConfig config = {},
                   pipeline::ArtifactCache* cache = nullptr);

  RunConfig& config() { return config_; }
  const RunConfig& config() const { return config_; }
  pipeline::ArtifactCache& cache() { return *cache_; }
  // The session-owned sink the single-argument overloads report into.
  diag::Diagnostics& diagnostics() { return diags_; }

  // --- loading -------------------------------------------------------------

  // Loads a design by spec: family benchmark name, `.bench` file, or
  // structural Verilog file (anything else parses as Verilog).  Strict by
  // default (parse errors throw); with config().parse.permissive the parsers
  // recover, the netlist is repaired, combinational cycles are broken, and
  // only a design that still fails validation is rejected
  // (UnusableInputError).  Diagnostics land in `diags` — cached loads replay
  // the recorded diagnostics so warm runs report identically to cold ones.
  LoadedDesign load_netlist(const std::string& spec);
  LoadedDesign load_netlist(const std::string& spec,
                            const parser::ParseOptions& options);
  LoadedDesign load_netlist(const std::string& spec,
                            const parser::ParseOptions& options,
                            diag::Diagnostics& diags);

  // Wraps an in-memory netlist (synthesized designs, tests) as a loaded
  // design, content-addressed by its structural fingerprint.
  LoadedDesign adopt_netlist(netlist::Netlist nl);

  // Permissive parse WITHOUT repair, for lint: the raw recovered netlist
  // (dangling nets and all) plus the recorded parse diagnostics.  Family
  // names build the benchmark with empty diagnostics.
  struct Parsed {
    LoadedDesign design;
    std::shared_ptr<const diag::Diagnostics> parse_diags;
  };
  Parsed parse_netlist(const std::string& spec, diag::Diagnostics& diags);

  // --- stages (all cache-aware) --------------------------------------------

  // The paper's control-signal identification (config().wordrec).  When a
  // trace sink is configured the cache is bypassed: traces narrate the
  // actual run.
  std::shared_ptr<const wordrec::IdentifyResult> identify(
      const LoadedDesign& design);

  // The shape-hashing baseline.
  std::shared_ptr<const wordrec::WordSet> identify_baseline(
      const LoadedDesign& design);

  // Exactly the bytes `netrev identify <design> --json` prints (sans the
  // trailing newline); honors config().use_baseline.
  std::string identify_json(const LoadedDesign& design);

  // Word-level lifting (config().lift) of the identified words — the
  // paper's words plus their control/data cones as typed multi-bit
  // operators, each self-verified by bit-blast + simulation equivalence
  // (lift::lift_words).  Honors config().use_baseline for the word source.
  // Cached per design identity × (wordrec, lift, degrade) fingerprints;
  // profiled as stage "lift" (counter "stage.lift_ns").  Polls
  // cancellation only (analysis_checkpoint rationale): lifting has no
  // degradation ladder, so run deadlines stay with identify.
  std::shared_ptr<const lift::LiftResult> lift(const LoadedDesign& design);

  // Exactly the bytes `netrev lift <design>` prints (sans the trailing
  // newline): the schema-versioned word-level JSON document.
  std::string lift_json(const LoadedDesign& design);

  // Golden reference words from flop output names (§3).
  std::shared_ptr<const eval::ReferenceExtraction> reference(
      const LoadedDesign& design);

  // Flat data-oriented image of the design (netlist::CompactView): SoA
  // arrays, CSR adjacency, interned names, levelized orders.  Built once
  // per design identity and cached; identify() and the functional screen
  // iterate it when config().wordrec.use_compact is set (the default —
  // --legacy-core clears it).  Performance-only: results are byte-identical
  // with or without the view, so it never contributes to artifact keys.
  std::shared_ptr<const netlist::CompactView> compact(
      const LoadedDesign& design);

  // Ternary dataflow facts (analysis::run_dataflow under
  // config().analysis.dataflow_max_iterations).  Cached per design identity;
  // identify() consumes the constant mask when config().wordrec.use_dataflow
  // is set, and analyze() hands the same facts to the dataflow rules so one
  // lint + identify run computes them once.
  std::shared_ptr<const analysis::DataflowFacts> dataflow(
      const LoadedDesign& design);

  // Static-analysis findings (config().analysis).  `parse_diags` optionally
  // carries parse-time recovery facts (see analysis::AnalysisContext).
  std::shared_ptr<const analysis::AnalysisResult> analyze(
      const LoadedDesign& design,
      const diag::Diagnostics* parse_diags = nullptr);

  // Timed technique runs (eval::TechniqueRun), routed through the cache:
  // the reported seconds are the wall time of this call, which is the cache
  // lookup on warm runs.
  eval::TechniqueRun run_ours(const LoadedDesign& design);
  eval::TechniqueRun run_baseline(const LoadedDesign& design);

  // --- execution control ---------------------------------------------------

  // The poll point every stage of this session runs under: the run deadline
  // (started at construction, from config().exec.timeout) capped by a fresh
  // per-stage deadline (config().exec.stage_timeout), plus the cancel token.
  // Unarmed — a single-branch no-op poll — unless a timeout is configured or
  // config().exec.cancellable is set.
  exec::Checkpoint stage_checkpoint() const;

  // The poll point for the static-analysis stages (dataflow facts, domain
  // grouping, the lint rules).  Cancellation-only: lint has no degradation
  // ladder, so a deadline trip here would turn a slow wall clock into a hard
  // stage failure and make lint output time-dependent.  Deadlines stay with
  // the stages that can degrade (identify).
  exec::Checkpoint analysis_checkpoint() const;

 private:
  struct ParsedArtifact;  // netlist + parse diagnostics
  struct LoadArtifact;    // repaired netlist + accumulated diagnostics

  std::shared_ptr<const ParsedArtifact> parse_artifact(
      const std::string& spec, const parser::ParseOptions& options,
      std::size_t max_errors);
  LoadedDesign design_from(const std::string& spec,
                           std::shared_ptr<const netlist::Netlist> nl,
                           bool from_family, bool from_file) const;

  RunConfig config_;
  pipeline::ArtifactCache* cache_;
  diag::Diagnostics diags_;
  exec::Deadline run_deadline_;  // whole-run budget, started at construction
};

}  // namespace netrev
