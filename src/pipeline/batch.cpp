#include "pipeline/batch.h"

#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "common/thread_pool.h"
#include "common/version.h"
#include "eval/diagnose.h"
#include "eval/report.h"
#include "exec/cancel.h"
#include "exec/chaos.h"
#include "exec/degrade.h"
#include "itc/family.h"
#include "jsonout/jsonout.h"
#include "pipeline/journal.h"
#include "pipeline/protocol.h"
#include "pipeline/session.h"
#include "pipeline/supervisor.h"
#include "wordrec/degrade.h"

namespace netrev::pipeline {

namespace {

struct EntryState {
  BatchEntry out;
  diag::Diagnostics diags;
  LoadedDesign design;
  bool restored = false;  // journal hit: recorded outcome reused as-is
};

void fail(EntryState& state, const char* stage, const std::string& message) {
  state.out.status = EntryStatus::kFailed;
  state.out.failed_stage = stage;
  state.out.error = message;
}

bool is_family_name(const std::string& name) {
  try {
    itc::profile_by_name(name);
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

// The journal content hash: raw file bytes for file specs (so an edited
// input never matches its stale journal entry), a name tag for family
// benchmarks (built in-process, no bytes to hash), and a spec tag for
// unreadable files (their recorded outcome is the canonical load error).
std::uint64_t content_hash_for(const std::string& spec) {
  if (is_family_name(spec)) return fnv1a64("family:" + spec);
  std::ifstream in(spec, std::ios::binary);
  if (!in) return fnv1a64("spec:" + spec);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return fnv1a64(buffer.str());
}

// Everything that changes what one entry produces.  keep_going is excluded:
// it reshapes final statuses (the skip rule), never a recorded outcome.
// Isolation (pool, crash_retries) is excluded for the same reason: a clean
// entry's bytes are identical either way, so journals written isolated and
// non-isolated stay interchangeable.
std::uint64_t batch_options_fingerprint(const BatchOptions& options) {
  const RunConfig& config = options.config;
  std::uint64_t fp = fnv1a64("batch-options");
  fp = mix(fp, config.parse_fingerprint(options.max_errors));
  fp = mix(fp, config.wordrec_fingerprint());
  fp = mix(fp, config.analysis_fingerprint());
  fp = mix(fp, config.lift_fingerprint());
  fp = mix(fp, config.exec_fingerprint());
  fp = mix(fp, config.use_baseline ? 1 : 0);
  fp = mix(fp, options.run_lint ? 1 : 0);
  fp = mix(fp, options.run_lift ? 1 : 0);
  fp = mix(fp, options.run_evaluate ? 1 : 0);
  return fp;
}

// Transient-failure retry: probe readability with exponential backoff before
// handing the spec to the loader.  Heals NFS hiccups and not-yet-visible
// files; a permanently missing file falls through so the load reports its
// usual error.
void await_readable(const std::string& spec, const BatchOptions& options) {
  if (options.retries == 0 || is_family_name(spec)) return;
  std::chrono::milliseconds backoff = options.retry_backoff;
  for (std::size_t attempt = 0; attempt <= options.retries; ++attempt) {
    if (std::ifstream(spec)) return;
    if (attempt == options.retries) return;
    std::this_thread::sleep_for(backoff);
    backoff *= 2;
  }
}

void run_entry(Session& session, const BatchOptions& options,
               EntryState& state) {
  // Scope chaos injection to this entry's spec so NETREV_CHAOS with a
  // ":<match>" target fires on exactly one entry of the batch.
  exec::ChaosScope chaos_scope(state.out.spec);
  // Poll between stages so an interrupted batch stops at the next stage
  // boundary even when stage checkpoints are unarmed.
  const auto check_cancel = [&] {
    if (options.config.exec.cancellable &&
        options.config.exec.cancel.cancel_requested())
      throw exec::CancelledError();
  };

  const char* stage = "load";
  try {
    check_cancel();
    await_readable(state.out.spec, options);
    state.design = session.load_netlist(state.out.spec, options.config.parse,
                                        state.diags);

    if (options.run_lint) {
      stage = "lint";
      check_cancel();
      const auto analysis = session.analyze(state.design);
      state.out.analysis_json =
          eval::analysis_to_json(state.design.nl(), *analysis);
      state.out.lint_errors = analysis->error_count();
      state.out.lint_warnings = analysis->warning_count();
      state.out.lint_notes = analysis->note_count();
    }

    stage = "identify";
    check_cancel();
    state.out.identify_json = session.identify_json(state.design);
    if (options.config.use_baseline) {
      const auto words = session.identify_baseline(state.design);
      state.out.multibit_words = words->count_multibit();
    } else {
      const auto result = session.identify(state.design);
      state.out.multibit_words = result->words.count_multibit();
      state.out.control_signals = result->used_control_signals.size();
      if (result->degraded()) {
        state.out.degrade_level =
            exec::degrade_level_name(result->degrade_level);
        state.out.degrade_stage = result->degrade_stage;
        wordrec::report_degradation(*result, state.diags);
      }
    }

    if (options.run_lift) {
      stage = "lift";
      check_cancel();
      state.out.lift_json = session.lift_json(state.design);
    }

    if (options.run_evaluate) {
      stage = "evaluate";
      check_cancel();
      const auto reference = session.reference(state.design);
      // A design whose flop names carry no indices has nothing to evaluate
      // against; that is a property of the input, not a failure.
      if (!reference->words.empty()) {
        const eval::Diagnosis diagnosis =
            options.config.use_baseline
                ? eval::diagnose(state.design.nl(),
                                 *session.identify_baseline(state.design),
                                 *reference)
                : eval::diagnose(state.design.nl(),
                                 session.identify(state.design)->words,
                                 *reference);
        state.out.evaluation_json =
            eval::evaluation_to_json(diagnosis.summary, reference->words);
      }
    }
  } catch (const exec::CancelledError&) {
    state.out.status = EntryStatus::kCancelled;
  } catch (const std::exception& error) {
    fail(state, stage, error.what());
  }
  if (!state.diags.empty())
    state.out.diagnostics_json = state.diags.to_json();
}

// Dispatches one entry to a supervised worker process (batch --isolate) and
// adopts the journal-line result, so a clean entry's recorded fields are
// byte-identical to an in-process run by construction.  A crash burns one
// attempt; the pool hands the retry a fresh worker.  When every attempt
// crashes the entry is QUARANTINED: status kCrashed with the supervisor's
// last classification, and the batch moves on.
void run_entry_isolated(const BatchOptions& options, EntryState& state) {
  if (options.config.exec.cancellable &&
      options.config.exec.cancel.cancel_requested()) {
    state.out.status = EntryStatus::kCancelled;
    return;
  }

  protocol::Request request;
  request.op = protocol::Op::kEntry;
  request.design = state.out.spec;
  // The worker reads config knobs from its own command line (they are
  // per-pool constants); only the per-entry diagnostics budget travels in
  // the request.
  request.options.max_errors = options.max_errors;
  const std::string line = protocol::render_request(request);

  const std::size_t attempts =
      options.crash_retries > 0 ? options.crash_retries : 1;
  supervisor::WorkerPool::Outcome outcome;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    outcome = options.pool->run(line);
    if (!outcome.crashed) break;
  }

  const auto quarantine = [&](const std::string& crash,
                              std::size_t crash_signal) {
    state.out.status = EntryStatus::kCrashed;
    state.out.crash = crash;
    state.out.crash_signal = crash_signal;
  };
  if (outcome.crashed) {
    const supervisor::CrashInfo& info = outcome.crash;
    quarantine(info.describe(),
               info.kind == supervisor::CrashKind::kSignal
                   ? static_cast<std::size_t>(info.signal)
                   : 0);
    return;
  }

  const protocol::ParsedResponse parsed =
      protocol::parse_response(outcome.response);
  if (!parsed.response) {
    // The worker stayed alive but replied garbage — a poisoned worker is a
    // crash for quarantine purposes, just one we classified ourselves.
    quarantine("unusable worker reply: " + parsed.error, 0);
    return;
  }
  const protocol::Response& response = *parsed.response;
  if (response.status == protocol::Status::kCancelled) {
    state.out.status = EntryStatus::kCancelled;
    return;
  }
  JournalRecord record;
  if (response.status != protocol::Status::kOk ||
      !parse_journal_line(response.result, record) ||
      record.entry.spec != state.out.spec) {
    quarantine("unusable worker reply: status " +
                   std::string(protocol::status_name(response.status)) +
                   (response.error.empty() ? "" : " (" + response.error + ")"),
               0);
    return;
  }
  state.out = std::move(record.entry);
}

// Without --keep-going, reproduce the historical wave semantics over the
// final per-entry outcomes: failures surface at stage barriers in input
// order, and once the first failure (in input order) has surfaced, every
// later entry not already failed at that barrier is marked skipped — so the
// statuses are deterministic at any job count even though entries now run
// their whole pipeline independently.
void apply_skip_rule(std::vector<EntryState>& states, bool keep_going) {
  if (keep_going) return;
  static const char* kStages[] = {"load", "lint", "identify", "lift",
                                  "evaluate"};
  // Quarantined (crashed) entries never trigger the barrier: quarantine
  // means "contain and continue", so their neighbors keep their fault-free
  // outcomes even without --keep-going.
  std::vector<bool> active(states.size());
  for (std::size_t i = 0; i < states.size(); ++i)
    active[i] = states[i].out.status != EntryStatus::kCancelled &&
                states[i].out.status != EntryStatus::kCrashed;
  std::size_t first_failed = std::numeric_limits<std::size_t>::max();
  for (const char* stage : kStages) {
    for (std::size_t i = 0; i < states.size(); ++i) {
      if (!active[i]) continue;
      if (states[i].out.status == EntryStatus::kFailed &&
          states[i].out.failed_stage == stage) {
        active[i] = false;
        if (i < first_failed) first_failed = i;
      }
    }
    if (first_failed == std::numeric_limits<std::size_t>::max()) continue;
    // Stage barrier: entries after the first failure that are still running
    // are skipped; entries that already failed at this or an earlier stage
    // keep their failure (they had surfaced before the barrier).  A still-
    // earlier entry may fail at a later stage, moving first_failed down —
    // exactly as successive wave barriers did.
    for (std::size_t i = first_failed + 1; i < states.size(); ++i) {
      if (!active[i]) continue;
      active[i] = false;
      states[i].out.status = EntryStatus::kSkipped;
    }
  }
}

const char* status_name(EntryStatus status) {
  switch (status) {
    case EntryStatus::kOk:
      return "ok";
    case EntryStatus::kFailed:
      return "failed";
    case EntryStatus::kSkipped:
      return "skipped";
    case EntryStatus::kCancelled:
      return "cancelled";
    case EntryStatus::kCrashed:
      return "crashed";
  }
  return "unknown";
}

std::string json_escape(const std::string& text) {
  return eval::json_escape(text);
}

}  // namespace

BatchResult run_batch(const std::vector<std::string>& specs,
                      const BatchOptions& options) {
  Session session(options.config, options.cache);
  ArtifactCache& cache = session.cache();
  const std::uint64_t hits_before = cache.hits();
  const std::uint64_t misses_before = cache.misses();

  std::vector<EntryState> states(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    states[i].out.spec = specs[i];
    states[i].diags.set_max_errors(options.max_errors);
  }

  BatchResult result;

  // Journaled runs: restore recorded outcomes, then append the rest as they
  // finish.  Keys are computed up front (one file read per spec) so restore
  // and append agree on them.
  std::vector<std::string> keys;
  std::unique_ptr<JournalWriter> journal;
  if (!options.resume_path.empty()) {
    const std::uint64_t options_fp = batch_options_fingerprint(options);
    keys.resize(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
      keys[i] = journal_key(content_hash_for(specs[i]), options_fp);

    std::unordered_map<std::string, BatchEntry> recorded;
    for (JournalRecord& record : read_journal(options.resume_path))
      recorded[record.key] = std::move(record.entry);  // later lines win
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto it = recorded.find(keys[i]);
      if (it == recorded.end() || it->second.spec != specs[i]) continue;
      states[i].out = it->second;
      states[i].restored = true;
      ++result.resumed;
    }
    journal = std::make_unique<JournalWriter>(options.resume_path);
  }

  // One task per entry runs its whole pipeline; all failure modes become
  // per-entry records, and a finished entry is journaled before the batch
  // moves on — the crash-safety property --resume relies on.
  parallel_for(0, states.size(), [&](std::size_t i) {
    EntryState& state = states[i];
    if (state.restored) return;
    if (options.pool != nullptr)
      run_entry_isolated(options, state);
    else
      run_entry(session, options, state);
    if (journal != nullptr && (state.out.status == EntryStatus::kOk ||
                               state.out.status == EntryStatus::kFailed ||
                               state.out.status == EntryStatus::kCrashed))
      journal->append(keys[i], state.out);
  });

  apply_skip_rule(states, options.keep_going);

  result.entries.reserve(states.size());
  for (EntryState& state : states) {
    switch (state.out.status) {
      case EntryStatus::kOk:
        ++result.ok;
        break;
      case EntryStatus::kFailed:
        ++result.failed;
        break;
      case EntryStatus::kSkipped:
        ++result.skipped;
        break;
      case EntryStatus::kCancelled:
        ++result.cancelled;
        break;
      case EntryStatus::kCrashed:
        ++result.crashed;
        break;
    }
    result.entries.push_back(std::move(state.out));
  }
  result.cache_hits = cache.hits() - hits_before;
  result.cache_misses = cache.misses() - misses_before;
  return result;
}

std::string BatchResult::to_json() const {
  std::string out = "{" + jsonout::version_field() + ",\"version\":\"";
  out += json_escape(version());
  out += "\",\"entries\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const BatchEntry& entry = entries[i];
    if (i > 0) out += ",";
    out += "{\"design\":\"" + json_escape(entry.spec) + "\",\"status\":\"";
    out += status_name(entry.status);
    out += "\"";
    switch (entry.status) {
      case EntryStatus::kOk:
        out += ",\"identify\":" + entry.identify_json;
        out += ",\"lift\":";
        out += entry.lift_json.empty() ? "null" : entry.lift_json;
        out += ",\"analysis\":";
        out += entry.analysis_json.empty() ? "null" : entry.analysis_json;
        out += ",\"evaluation\":";
        out += entry.evaluation_json.empty() ? "null" : entry.evaluation_json;
        out += ",\"diagnostics\":";
        out += entry.diagnostics_json.empty() ? "null" : entry.diagnostics_json;
        out += ",\"words\":" + std::to_string(entry.multibit_words);
        out +=
            ",\"control_signals\":" + std::to_string(entry.control_signals);
        out += ",\"degraded\":";
        if (entry.degrade_level.empty()) {
          out += "null";
        } else {
          out += "{\"level\":\"" + json_escape(entry.degrade_level) +
                 "\",\"stage\":\"" + json_escape(entry.degrade_stage) + "\"}";
        }
        break;
      case EntryStatus::kFailed:
        out += ",\"stage\":\"" + json_escape(entry.failed_stage) + "\"";
        out += ",\"error\":\"" + json_escape(entry.error) + "\"";
        out += ",\"diagnostics\":";
        out += entry.diagnostics_json.empty() ? "null" : entry.diagnostics_json;
        break;
      case EntryStatus::kCrashed:
        out += ",\"crash\":\"" + json_escape(entry.crash) + "\"";
        out += ",\"signal\":" + std::to_string(entry.crash_signal);
        break;
      case EntryStatus::kSkipped:
      case EntryStatus::kCancelled:
        break;
    }
    out += "}";
  }
  out += "],\"summary\":{\"total\":" + std::to_string(entries.size());
  out += ",\"ok\":" + std::to_string(ok);
  out += ",\"failed\":" + std::to_string(failed);
  out += ",\"skipped\":" + std::to_string(skipped);
  out += ",\"cancelled\":" + std::to_string(cancelled);
  out += ",\"crashed\":" + std::to_string(crashed);
  out += "}}";
  return out;
}

std::string BatchResult::render_text() const {
  std::string out;
  for (const BatchEntry& entry : entries) {
    out += entry.spec;
    out += ": ";
    switch (entry.status) {
      case EntryStatus::kOk:
        out += "ok, " + std::to_string(entry.multibit_words) + " word(s), " +
               std::to_string(entry.control_signals) + " control signal(s)";
        if (!entry.analysis_json.empty())
          out += ", lint " + std::to_string(entry.lint_errors) +
                 " error(s) / " + std::to_string(entry.lint_warnings) +
                 " warning(s)";
        if (!entry.degrade_level.empty())
          out += ", degraded to '" + entry.degrade_level + "'";
        break;
      case EntryStatus::kFailed:
        out += "FAILED at " + entry.failed_stage + ": " + entry.error;
        break;
      case EntryStatus::kSkipped:
        out += "skipped";
        break;
      case EntryStatus::kCancelled:
        out += "cancelled";
        break;
      case EntryStatus::kCrashed:
        out += "CRASHED: " + entry.crash;
        break;
    }
    out += "\n";
  }
  out += "batch: " + std::to_string(entries.size()) + " total, " +
         std::to_string(ok) + " ok, " + std::to_string(failed) + " failed, " +
         std::to_string(skipped) + " skipped";
  if (cancelled > 0) out += ", " + std::to_string(cancelled) + " cancelled";
  if (crashed > 0) out += ", " + std::to_string(crashed) + " crashed";
  if (resumed > 0)
    out += "; resumed " + std::to_string(resumed) + " from journal";
  out += "; cache: " + std::to_string(cache_hits) + " hit(s), " +
         std::to_string(cache_misses) + " miss(es)\n";
  return out;
}

}  // namespace netrev::pipeline
