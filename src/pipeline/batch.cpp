#include "pipeline/batch.h"

#include <limits>

#include "common/thread_pool.h"
#include "common/version.h"
#include "eval/diagnose.h"
#include "eval/report.h"
#include "pipeline/session.h"

namespace netrev::pipeline {

namespace {

struct EntryState {
  BatchEntry out;
  diag::Diagnostics diags;
  LoadedDesign design;
  bool active = true;  // still progressing through waves
};

void fail(EntryState& state, const char* stage, const std::string& message) {
  state.out.status = EntryStatus::kFailed;
  state.out.failed_stage = stage;
  state.out.error = message;
  state.active = false;
}

// Without --keep-going, the FIRST failure in input order ends the batch:
// every later entry still active is marked skipped.  Earlier entries (and
// entries that raced ahead before the failure surfaced) keep their results,
// so the outcome is deterministic at any job count.
void apply_skip_rule(std::vector<EntryState>& states, bool keep_going) {
  if (keep_going) return;
  std::size_t first_failed = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (states[i].out.status == EntryStatus::kFailed) {
      first_failed = i;
      break;
    }
  }
  if (first_failed == std::numeric_limits<std::size_t>::max()) return;
  for (std::size_t i = first_failed + 1; i < states.size(); ++i) {
    if (!states[i].active) continue;
    states[i].active = false;
    states[i].out.status = EntryStatus::kSkipped;
  }
}

const char* status_name(EntryStatus status) {
  switch (status) {
    case EntryStatus::kOk:
      return "ok";
    case EntryStatus::kFailed:
      return "failed";
    case EntryStatus::kSkipped:
      return "skipped";
  }
  return "unknown";
}

std::string json_escape(const std::string& text) {
  return eval::json_escape(text);
}

}  // namespace

BatchResult run_batch(const std::vector<std::string>& specs,
                      const BatchOptions& options) {
  Session session(options.config, options.cache);
  ArtifactCache& cache = session.cache();
  const std::uint64_t hits_before = cache.hits();
  const std::uint64_t misses_before = cache.misses();

  std::vector<EntryState> states(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    states[i].out.spec = specs[i];
    states[i].diags.set_max_errors(options.max_errors);
  }

  // One wave = one stage over every still-active entry, in parallel.  All
  // failure modes become per-entry records; nothing escapes a wave.
  const auto wave = [&](const char* stage, auto&& body) {
    parallel_for(0, states.size(), [&](std::size_t i) {
      EntryState& state = states[i];
      if (!state.active) return;
      try {
        body(state);
      } catch (const std::exception& error) {
        fail(state, stage, error.what());
      }
    });
    apply_skip_rule(states, options.keep_going);
  };

  wave("load", [&](EntryState& state) {
    state.design =
        session.load_netlist(state.out.spec, options.config.parse, state.diags);
  });

  if (options.run_lint) {
    wave("lint", [&](EntryState& state) {
      const auto analysis = session.analyze(state.design);
      state.out.analysis_json =
          eval::analysis_to_json(state.design.nl(), *analysis);
      state.out.lint_errors = analysis->error_count();
      state.out.lint_warnings = analysis->warning_count();
      state.out.lint_notes = analysis->note_count();
    });
  }

  wave("identify", [&](EntryState& state) {
    state.out.identify_json = session.identify_json(state.design);
    if (options.config.use_baseline) {
      const auto words = session.identify_baseline(state.design);
      state.out.multibit_words = words->count_multibit();
    } else {
      const auto result = session.identify(state.design);
      state.out.multibit_words = result->words.count_multibit();
      state.out.control_signals = result->used_control_signals.size();
    }
  });

  if (options.run_evaluate) {
    wave("evaluate", [&](EntryState& state) {
      const auto reference = session.reference(state.design);
      // A design whose flop names carry no indices has nothing to evaluate
      // against; that is a property of the input, not a failure.
      if (reference->words.empty()) return;
      const eval::Diagnosis diagnosis =
          options.config.use_baseline
              ? eval::diagnose(state.design.nl(),
                               *session.identify_baseline(state.design),
                               *reference)
              : eval::diagnose(state.design.nl(),
                               session.identify(state.design)->words,
                               *reference);
      state.out.evaluation_json =
          eval::evaluation_to_json(diagnosis.summary, reference->words);
    });
  }

  BatchResult result;
  result.entries.reserve(states.size());
  for (EntryState& state : states) {
    if (!state.diags.empty())
      state.out.diagnostics_json = state.diags.to_json();
    switch (state.out.status) {
      case EntryStatus::kOk:
        ++result.ok;
        break;
      case EntryStatus::kFailed:
        ++result.failed;
        break;
      case EntryStatus::kSkipped:
        ++result.skipped;
        break;
    }
    result.entries.push_back(std::move(state.out));
  }
  result.cache_hits = cache.hits() - hits_before;
  result.cache_misses = cache.misses() - misses_before;
  return result;
}

std::string BatchResult::to_json() const {
  std::string out = "{\"version\":\"";
  out += json_escape(version());
  out += "\",\"entries\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const BatchEntry& entry = entries[i];
    if (i > 0) out += ",";
    out += "{\"design\":\"" + json_escape(entry.spec) + "\",\"status\":\"";
    out += status_name(entry.status);
    out += "\"";
    switch (entry.status) {
      case EntryStatus::kOk:
        out += ",\"identify\":" + entry.identify_json;
        out += ",\"analysis\":";
        out += entry.analysis_json.empty() ? "null" : entry.analysis_json;
        out += ",\"evaluation\":";
        out += entry.evaluation_json.empty() ? "null" : entry.evaluation_json;
        out += ",\"diagnostics\":";
        out += entry.diagnostics_json.empty() ? "null" : entry.diagnostics_json;
        out += ",\"words\":" + std::to_string(entry.multibit_words);
        out +=
            ",\"control_signals\":" + std::to_string(entry.control_signals);
        break;
      case EntryStatus::kFailed:
        out += ",\"stage\":\"" + json_escape(entry.failed_stage) + "\"";
        out += ",\"error\":\"" + json_escape(entry.error) + "\"";
        out += ",\"diagnostics\":";
        out += entry.diagnostics_json.empty() ? "null" : entry.diagnostics_json;
        break;
      case EntryStatus::kSkipped:
        break;
    }
    out += "}";
  }
  out += "],\"summary\":{\"total\":" + std::to_string(entries.size());
  out += ",\"ok\":" + std::to_string(ok);
  out += ",\"failed\":" + std::to_string(failed);
  out += ",\"skipped\":" + std::to_string(skipped);
  out += "}}";
  return out;
}

std::string BatchResult::render_text() const {
  std::string out;
  for (const BatchEntry& entry : entries) {
    out += entry.spec;
    out += ": ";
    switch (entry.status) {
      case EntryStatus::kOk:
        out += "ok, " + std::to_string(entry.multibit_words) + " word(s), " +
               std::to_string(entry.control_signals) + " control signal(s)";
        if (!entry.analysis_json.empty())
          out += ", lint " + std::to_string(entry.lint_errors) +
                 " error(s) / " + std::to_string(entry.lint_warnings) +
                 " warning(s)";
        break;
      case EntryStatus::kFailed:
        out += "FAILED at " + entry.failed_stage + ": " + entry.error;
        break;
      case EntryStatus::kSkipped:
        out += "skipped";
        break;
    }
    out += "\n";
  }
  out += "batch: " + std::to_string(entries.size()) + " total, " +
         std::to_string(ok) + " ok, " + std::to_string(failed) + " failed, " +
         std::to_string(skipped) + " skipped; cache: " +
         std::to_string(cache_hits) + " hit(s), " +
         std::to_string(cache_misses) + " miss(es)\n";
  return out;
}

}  // namespace netrev::pipeline
