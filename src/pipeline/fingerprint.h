// Content and option fingerprints for the artifact cache.
//
// Every cached artifact is addressed by (stage, content hash, options
// fingerprint).  The content hash identifies *what* was processed (raw file
// bytes for parse artifacts, the structural identity of the loaded netlist
// for everything downstream); the options fingerprint identifies *how* (the
// knobs of ParseOptions / wordrec::Options / AnalysisOptions that can change
// the stage's output).  Non-owning instrumentation pointers (trace sinks,
// shared work budgets) are deliberately excluded: they never change results,
// only observation.  docs/API.md documents the keying rules.
#pragma once

#include <cstdint>
#include <string_view>

#include "analysis/rule.h"
#include "exec/degrade.h"
#include "lift/options.h"
#include "netlist/netlist.h"
#include "parser/parse_options.h"
#include "wordrec/options.h"

namespace netrev::pipeline {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

// FNV-1a over raw bytes; chainable via `seed`.
std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed = kFnvOffset);

// Order-dependent combination of two 64-bit hashes.
std::uint64_t mix(std::uint64_t a, std::uint64_t b);

// Options fingerprints.  `max_errors` rides along with ParseOptions because
// the recovering parsers stop at the sink's error budget, so it changes what
// a permissive parse produces.
std::uint64_t fingerprint(const parser::ParseOptions& options,
                          std::size_t max_errors);
std::uint64_t fingerprint(const wordrec::Options& options);
std::uint64_t fingerprint(const analysis::AnalysisOptions& options);
std::uint64_t fingerprint(const lift::Options& options);

// Degradation policy fingerprint.  The policy changes what a trip *produces*
// (which rung answers), so identify artifacts key on it; deadlines, cancel
// tokens, and checkpoints are observation-only and excluded — an untripped
// deadline must hit the same cache entries as no deadline at all.
std::uint64_t fingerprint(const exec::DegradePolicy& policy);

// Fingerprint of collected diagnostics (severity + message + location per
// entry).  Analysis artifacts that consume parse-time facts key on this.
std::uint64_t fingerprint(const diag::Diagnostics& diags);

// Structural identity of a netlist: name, nets (names + PI/PO markings) and
// gates in file order (type, output, inputs).  Two netlists with equal
// fingerprints produce byte-identical results in every downstream stage.
std::uint64_t netlist_fingerprint(const netlist::Netlist& nl);

}  // namespace netrev::pipeline
