#include "pipeline/run_config.h"

#include "pipeline/fingerprint.h"

namespace netrev {

std::uint64_t RunConfig::parse_fingerprint(std::size_t max_errors) const {
  return pipeline::fingerprint(parse, max_errors);
}

std::uint64_t RunConfig::wordrec_fingerprint() const {
  return pipeline::fingerprint(wordrec);
}

std::uint64_t RunConfig::analysis_fingerprint() const {
  return pipeline::fingerprint(analysis);
}

std::uint64_t RunConfig::lift_fingerprint() const {
  return pipeline::fingerprint(lift);
}

std::uint64_t RunConfig::exec_fingerprint() const {
  return pipeline::fingerprint(exec.degrade);
}

}  // namespace netrev
