#include "pipeline/artifact_cache.h"

#include "perf/profile.h"

namespace netrev::pipeline {

ArtifactCache& ArtifactCache::global() {
  static ArtifactCache cache;
  return cache;
}

std::size_t ArtifactCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t ArtifactCache::max_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_entries_;
}

void ArtifactCache::set_max_entries(std::size_t max_entries) {
  std::lock_guard<std::mutex> lock(mutex_);
  max_entries_ = max_entries;
  if (max_entries_ == 0) {
    entries_.clear();
    return;
  }
  while (entries_.size() > max_entries_) evict_oldest_locked();
}

void ArtifactCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

std::shared_ptr<const void> ArtifactCache::lookup(const ArtifactKey& key,
                                                  const std::type_info& type) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it =
        max_entries_ == 0 ? entries_.end() : entries_.find(key);
    if (it != entries_.end()) {
      if (*it->second.type != type)
        throw std::logic_error("artifact cache type mismatch for stage '" +
                               key.stage + "': stored " +
                               it->second.type->name() + ", requested " +
                               type.name());
      hits_.fetch_add(1, std::memory_order_relaxed);
      perf::Profiler::global().count("cache.hits", 1);
      return it->second.value;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  perf::Profiler::global().count("cache.misses", 1);
  return nullptr;
}

std::shared_ptr<const void> ArtifactCache::store(
    const ArtifactKey& key, std::shared_ptr<const void> value,
    const std::type_info& type) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (max_entries_ == 0) return value;  // caching disabled: pass through
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // A concurrent compute stored first; converge on its artifact.
    if (*it->second.type != type)
      throw std::logic_error("artifact cache type mismatch for stage '" +
                             key.stage + "'");
    return it->second.value;
  }
  if (entries_.size() >= max_entries_) evict_oldest_locked();
  Entry entry;
  entry.value = std::move(value);
  entry.type = &type;
  entry.order = next_order_++;
  return entries_.emplace(key, std::move(entry)).first->second.value;
}

void ArtifactCache::evict_oldest_locked() {
  auto oldest = entries_.begin();
  for (auto it = entries_.begin(); it != entries_.end(); ++it)
    if (it->second.order < oldest->second.order) oldest = it;
  if (oldest != entries_.end()) {
    entries_.erase(oldest);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace netrev::pipeline
