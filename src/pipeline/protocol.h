// The serve wire protocol: newline-delimited JSON requests and responses.
//
// This module is deliberately transport-free — it parses request lines,
// renders response lines, and executes requests against a shared
// ArtifactCache — so the whole protocol surface is unit-testable without
// opening a socket.  pipeline/serve.h supplies the sockets, admission
// control, and drain choreography on top.
//
// Request line (one JSON object, one line):
//
//   {"id":"r1","op":"identify","design":"b03s",
//    "options":{"base":false,"depth":4,"max_assign":2,"cross_group":false,
//               "permissive":false,"timeout_ms":1000,"degrade":"groups",
//               "max_errors":64}}
//
// Ops: "ping", "stats", "load", "lint", "identify", "evaluate", "batch",
// "lift", "health", "entry" (batch takes "designs":[...] instead of
// "design").  Every field except "op" is optional; an omitted "id" is
// assigned by the server.
//
// Response line:
//
//   {"id":"r1","status":"ok","result":{...}}
//   {"id":"r1","status":"degraded","result":{...}}      // QoS ladder engaged
//   {"id":"r2","status":"overloaded","error":"..."}     // admission shed
//   {"id":"r3","status":"deadline","error":"..."}       // budget, degrade off
//   {"id":"r4","status":"cancelled","error":"..."}      // drain cancelled it
//   {"id":"r5","status":"error","error":"..."}          // request failed
//   {"id":"?","status":"bad_request","error":"..."}     // unparseable line
//
// Determinism contract: for identical inputs and options, the "result" body
// of identify/evaluate/lint/batch/lift is byte-identical to the one-shot
// CLI's JSON output at any --jobs (the Executor routes through the same
// Session code paths and the same renderers).
//
// QoS: the client requests a degradation floor ("degrade") and a wall-clock
// budget ("timeout_ms"); the server enforces a ceiling — client budgets are
// clamped to ExecutorConfig::max_timeout, and an omitted budget inherits it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "exec/cancel.h"
#include "exec/degrade.h"
#include "pipeline/artifact_cache.h"
#include "pipeline/run_config.h"

namespace netrev::pipeline::protocol {

inline constexpr int kProtocolVersion = 1;

enum class Op {
  kPing,
  kStats,
  kLoad,
  kLint,
  kIdentify,
  kEvaluate,
  kBatch,
  kLift,
  // Readiness probe for load balancers: uptime, inflight/queued counts, and
  // worker-pool health (alive/restarted/quarantined) when serving isolated.
  kHealth,
  // One batch entry end to end; the result is the flat journal-line object
  // (pipeline/journal.h).  This is the supervisor<->worker op behind
  // `batch --isolate` — reusing the journal rendering is what makes an
  // isolated entry's bytes identical to an in-process one.
  kEntry,
};

const char* op_name(Op op);
std::optional<Op> parse_op(const std::string& name);

// Per-request pipeline knobs, a subset of the one-shot CLI's flags.  Unset
// fields inherit the server's base RunConfig.
struct RequestOptions {
  std::optional<bool> base;
  std::optional<bool> permissive;
  std::optional<bool> cross_group;
  std::optional<bool> use_dataflow;
  std::optional<std::size_t> depth;
  std::optional<std::size_t> max_assign;
  std::optional<std::size_t> max_errors;
  // Client-requested wall-clock budget; clamped to the server ceiling.
  std::optional<std::size_t> timeout_ms;
  // Client-requested degradation floor (QoS): how far identification may
  // fall when the budget trips ("off" = fail with status "deadline").
  std::optional<exec::DegradePolicy> degrade;
};

struct Request {
  std::string id;  // echoed in the response; server-assigned when empty
  Op op = Op::kPing;
  std::string design;                // load/lint/identify/evaluate
  std::vector<std::string> designs;  // batch
  RequestOptions options;
};

enum class Status {
  kOk,
  kDegraded,    // completed on a lower QoS rung (result still present)
  kOverloaded,  // shed by admission control or a draining server
  kDeadline,    // budget tripped and the degrade floor forbade falling
  kCancelled,   // drain window expired while the request was in flight
  kError,          // the request itself failed (bad design, unusable input)
  kBadRequest,     // the line was not a valid request
  kWorkerCrashed,  // isolated execution: the worker process died on this
                   // request; the daemon itself kept serving
};

const char* status_name(Status status);

struct Response {
  std::string id;
  Status status = Status::kOk;
  std::string result;       // JSON body; empty = none
  std::string error;        // message for non-ok statuses
  std::string diagnostics;  // diagnostics JSON when any were collected
};

// Parses one request line.  On failure `request` is empty and `error` holds
// a one-line description (the caller answers with status "bad_request").
struct ParsedRequest {
  std::optional<Request> request;
  std::string error;
};
ParsedRequest parse_request(const std::string& line);

// Renders a request/response as a single line WITHOUT the trailing newline.
std::string render_request(const Request& request);
std::string render_response(const Response& response);

// Parses a response line (the client side of the wire).
struct ParsedResponse {
  std::optional<Response> response;
  std::string error;
};
ParsedResponse parse_response(const std::string& line);

// --- execution --------------------------------------------------------------

// Live serving counters for the "health" op, supplied by the serve layer
// (the Executor itself has no notion of queues or worker processes).  All
// fields are snapshots; absent pool -> the workers block reports zeros with
// isolate=false.
struct HealthSnapshot {
  std::uint64_t uptime_s = 0;
  std::size_t inflight = 0;
  std::size_t queued = 0;
  bool isolate = false;
  std::size_t workers_alive = 0;
  std::size_t workers_restarted = 0;
  std::size_t workers_quarantined = 0;  // requests answered worker_crashed
};

class HealthSource {
 public:
  virtual ~HealthSource() = default;
  virtual HealthSnapshot health() const = 0;
};

struct ExecutorConfig {
  // Server-wide defaults a request's options overlay.  Its exec.timeout is
  // ignored (per-request budgets come from max_timeout / the request).
  RunConfig base;
  // Per-request wall-clock ceiling; 0 = unlimited.  Client budgets are
  // clamped to it, and requests without a budget inherit it.
  std::chrono::milliseconds max_timeout{0};
  // Shared artifact cache; null = the process-global cache.
  ArtifactCache* cache = nullptr;
  // File-probe retry policy for the "entry" op only (mirrors
  // BatchOptions::retries so an isolated batch entry probes files exactly
  // like its in-process twin would).
  std::size_t entry_retries = 0;
  std::chrono::milliseconds entry_retry_backoff{20};
};

// Executes requests, one Session per request over the shared cache so
// repeated designs are warm across requests.  Thread-safe; execute() never
// throws.  Also the stats book-keeper: the serve layer reports responses it
// synthesizes itself (sheds, bad requests) via record(), so the "stats" op
// sees every response the server ever produced.
class Executor {
 public:
  explicit Executor(ExecutorConfig config);

  // Runs one request under `cancel` (the serve layer cancels it on drain
  // timeout).  The returned response is already record()ed.
  Response execute(const Request& request, exec::CancelToken cancel);

  // Counts a response produced outside execute() (admission sheds,
  // bad-request answers) into the stats.
  void record(Status status);

  // {"schema_version":1,"protocol":1,"version":"...",
  //  "requests":{"total":N,"ok":N,...},
  //  "cache":{"hits":N,"misses":N,"evictions":N,"entries":N}}
  // With a health source attached, a "serve" block with the same counters
  // as the health op is appended (absent otherwise, so stats from one-shot
  // executors and worker processes keep their historical shape).
  std::string stats_json() const;

  // {"schema_version":1,"protocol":1,"version":"...",
  //  "serve":{"uptime_s":N,"inflight":N,"queued":N,
  //           "workers":{"isolate":B,"alive":N,"restarted":N,
  //                      "quarantined":N}},
  //  "cache":{"entries":N}}
  // Without a health source the counters are all zero (isolate false).
  std::string health_json() const;

  // Wires the serve layer's live counters into the health op; null
  // disconnects.  The source must outlive the executor.
  void set_health_source(const HealthSource* source) { health_ = source; }

  ArtifactCache& cache() { return *cache_; }

  // The effective RunConfig a request with `options` executes under —
  // exposed for tests asserting the QoS clamp rules.
  RunConfig config_for(const RequestOptions& options) const;

 private:
  ExecutorConfig config_;
  ArtifactCache* cache_;
  const HealthSource* health_ = nullptr;
  std::atomic<std::uint64_t> by_status_[8] = {};
};

}  // namespace netrev::pipeline::protocol
