// The serve wire protocol: newline-delimited JSON requests and responses.
//
// This module is deliberately transport-free — it parses request lines,
// renders response lines, and executes requests against a shared
// ArtifactCache — so the whole protocol surface is unit-testable without
// opening a socket.  pipeline/serve.h supplies the sockets, admission
// control, and drain choreography on top.
//
// Request line (one JSON object, one line):
//
//   {"id":"r1","op":"identify","design":"b03s",
//    "options":{"base":false,"depth":4,"max_assign":2,"cross_group":false,
//               "permissive":false,"timeout_ms":1000,"degrade":"groups",
//               "max_errors":64}}
//
// Ops: "ping", "stats", "load", "lint", "identify", "evaluate", "batch",
// "lift" (batch takes "designs":[...] instead of "design").  Every field
// except "op" is optional; an omitted "id" is assigned by the server.
//
// Response line:
//
//   {"id":"r1","status":"ok","result":{...}}
//   {"id":"r1","status":"degraded","result":{...}}      // QoS ladder engaged
//   {"id":"r2","status":"overloaded","error":"..."}     // admission shed
//   {"id":"r3","status":"deadline","error":"..."}       // budget, degrade off
//   {"id":"r4","status":"cancelled","error":"..."}      // drain cancelled it
//   {"id":"r5","status":"error","error":"..."}          // request failed
//   {"id":"?","status":"bad_request","error":"..."}     // unparseable line
//
// Determinism contract: for identical inputs and options, the "result" body
// of identify/evaluate/lint/batch/lift is byte-identical to the one-shot
// CLI's JSON output at any --jobs (the Executor routes through the same
// Session code paths and the same renderers).
//
// QoS: the client requests a degradation floor ("degrade") and a wall-clock
// budget ("timeout_ms"); the server enforces a ceiling — client budgets are
// clamped to ExecutorConfig::max_timeout, and an omitted budget inherits it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "exec/cancel.h"
#include "exec/degrade.h"
#include "pipeline/artifact_cache.h"
#include "pipeline/run_config.h"

namespace netrev::pipeline::protocol {

inline constexpr int kProtocolVersion = 1;

enum class Op {
  kPing,
  kStats,
  kLoad,
  kLint,
  kIdentify,
  kEvaluate,
  kBatch,
  kLift,
};

const char* op_name(Op op);
std::optional<Op> parse_op(const std::string& name);

// Per-request pipeline knobs, a subset of the one-shot CLI's flags.  Unset
// fields inherit the server's base RunConfig.
struct RequestOptions {
  std::optional<bool> base;
  std::optional<bool> permissive;
  std::optional<bool> cross_group;
  std::optional<bool> use_dataflow;
  std::optional<std::size_t> depth;
  std::optional<std::size_t> max_assign;
  std::optional<std::size_t> max_errors;
  // Client-requested wall-clock budget; clamped to the server ceiling.
  std::optional<std::size_t> timeout_ms;
  // Client-requested degradation floor (QoS): how far identification may
  // fall when the budget trips ("off" = fail with status "deadline").
  std::optional<exec::DegradePolicy> degrade;
};

struct Request {
  std::string id;  // echoed in the response; server-assigned when empty
  Op op = Op::kPing;
  std::string design;                // load/lint/identify/evaluate
  std::vector<std::string> designs;  // batch
  RequestOptions options;
};

enum class Status {
  kOk,
  kDegraded,    // completed on a lower QoS rung (result still present)
  kOverloaded,  // shed by admission control or a draining server
  kDeadline,    // budget tripped and the degrade floor forbade falling
  kCancelled,   // drain window expired while the request was in flight
  kError,       // the request itself failed (bad design, unusable input)
  kBadRequest,  // the line was not a valid request
};

const char* status_name(Status status);

struct Response {
  std::string id;
  Status status = Status::kOk;
  std::string result;       // JSON body; empty = none
  std::string error;        // message for non-ok statuses
  std::string diagnostics;  // diagnostics JSON when any were collected
};

// Parses one request line.  On failure `request` is empty and `error` holds
// a one-line description (the caller answers with status "bad_request").
struct ParsedRequest {
  std::optional<Request> request;
  std::string error;
};
ParsedRequest parse_request(const std::string& line);

// Renders a request/response as a single line WITHOUT the trailing newline.
std::string render_request(const Request& request);
std::string render_response(const Response& response);

// Parses a response line (the client side of the wire).
struct ParsedResponse {
  std::optional<Response> response;
  std::string error;
};
ParsedResponse parse_response(const std::string& line);

// --- execution --------------------------------------------------------------

struct ExecutorConfig {
  // Server-wide defaults a request's options overlay.  Its exec.timeout is
  // ignored (per-request budgets come from max_timeout / the request).
  RunConfig base;
  // Per-request wall-clock ceiling; 0 = unlimited.  Client budgets are
  // clamped to it, and requests without a budget inherit it.
  std::chrono::milliseconds max_timeout{0};
  // Shared artifact cache; null = the process-global cache.
  ArtifactCache* cache = nullptr;
};

// Executes requests, one Session per request over the shared cache so
// repeated designs are warm across requests.  Thread-safe; execute() never
// throws.  Also the stats book-keeper: the serve layer reports responses it
// synthesizes itself (sheds, bad requests) via record(), so the "stats" op
// sees every response the server ever produced.
class Executor {
 public:
  explicit Executor(ExecutorConfig config);

  // Runs one request under `cancel` (the serve layer cancels it on drain
  // timeout).  The returned response is already record()ed.
  Response execute(const Request& request, exec::CancelToken cancel);

  // Counts a response produced outside execute() (admission sheds,
  // bad-request answers) into the stats.
  void record(Status status);

  // {"schema_version":1,"protocol":1,"version":"...",
  //  "requests":{"total":N,"ok":N,...},
  //  "cache":{"hits":N,"misses":N,"evictions":N,"entries":N}}
  std::string stats_json() const;

  ArtifactCache& cache() { return *cache_; }

  // The effective RunConfig a request with `options` executes under —
  // exposed for tests asserting the QoS clamp rules.
  RunConfig config_for(const RequestOptions& options) const;

 private:
  ExecutorConfig config_;
  ArtifactCache* cache_;
  std::atomic<std::uint64_t> by_status_[7] = {};
};

}  // namespace netrev::pipeline::protocol
