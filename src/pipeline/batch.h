// Batch pipeline engine: parse -> repair -> lint -> identify -> lift ->
// evaluate over many netlists, one entry-pipeline per input scheduled on the shared
// ThreadPool and routed through one Session so artifacts (parses,
// identifications, references, analyses) are computed once per distinct
// input.  Entries complete individually, which is what makes the journal
// crash-safe: a finished entry is on disk before its neighbors finish.
//
// Determinism contract: per-entry results are index-addressed and the
// output (JSON and text) is byte-identical at any job count, on warm cache
// re-runs, and on resumed runs (a journal-restored entry reproduces the
// recorded bytes exactly).  For that reason the JSON deliberately carries no
// timing, no cache statistics, and no resume markers — those go to perf
// counters ("cache.hits", "cache.misses") and the text summary instead.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "common/diagnostics.h"
#include "pipeline/artifact_cache.h"
#include "pipeline/run_config.h"

namespace netrev::pipeline {

namespace supervisor {
class WorkerPool;
}

struct BatchOptions {
  RunConfig config;

  // Record per-entry failures but keep running every entry.  Off by
  // default: the first failure (in input order) marks all later entries
  // skipped — deterministically, regardless of which entries had already
  // raced ahead on other threads.
  bool keep_going = false;

  bool run_lint = true;
  bool run_lift = true;
  bool run_evaluate = true;

  // Per-entry diagnostics error budget (CLI --max-errors).
  std::size_t max_errors = diag::Diagnostics::kDefaultMaxErrors;

  // Bounded retry for transient file-I/O failures: before loading a file
  // spec, its readability is probed up to `retries` extra times with
  // exponential backoff (retry_backoff, doubled per attempt).  A file that
  // never becomes readable falls through to the canonical load error.
  std::size_t retries = 0;
  std::chrono::milliseconds retry_backoff{20};

  // Crash-safe resume journal (CLI --resume): completed entries are appended
  // to this JSONL file as they finish, and entries already recorded there —
  // under the same input bytes and options — are restored instead of rerun.
  // Empty = no journaling.  See pipeline/journal.h.
  std::string resume_path;

  // Cache to route artifacts through; null = the process-global cache.
  ArtifactCache* cache = nullptr;

  // Process isolation (CLI --isolate): dispatch each entry to a supervised
  // worker process through this pool instead of running it in-process.  A
  // clean entry's output is byte-identical either way (the worker runs the
  // same run_batch code path and returns the same journal-line bytes); a
  // hard crash (segfault, OOM kill, watchdog timeout) becomes a quarantined
  // "crashed" entry instead of taking down the run.  Null = in-process.
  supervisor::WorkerPool* pool = nullptr;

  // How many crashed attempts quarantine an entry (CLI --crash-retries):
  // 2 = one retry on a fresh worker after the first crash.  Only meaningful
  // with `pool`; clamped to at least 1.
  std::size_t crash_retries = 2;
};

enum class EntryStatus { kOk, kFailed, kSkipped, kCancelled, kCrashed };

struct BatchEntry {
  std::string spec;
  EntryStatus status = EntryStatus::kOk;

  // Failure record (status == kFailed).
  std::string failed_stage;  // "load" | "lint" | "identify" | "lift" |
                             // "evaluate"
  std::string error;

  // Crash record (status == kCrashed, isolated runs only): the supervisor's
  // classification of how the worker died, e.g. "signal 11 (SIGSEGV)" or
  // "watchdog timeout (killed after 500ms)", and the terminating signal
  // number (0 when the worker exited or timed out without a signal).
  std::string crash;
  std::size_t crash_signal = 0;

  // Stage outputs (status == kOk; empty when the stage did not run).
  // identify_json is byte-identical to `netrev identify <spec> --json`;
  // lift_json to `netrev lift <spec>`.
  std::string identify_json;
  std::string lift_json;
  std::string analysis_json;
  std::string evaluation_json;  // empty when the design has no reference words
  std::string diagnostics_json;  // empty when no diagnostics were collected

  // Degradation record (empty when identification ran at full fidelity):
  // the rung that answered and the rung that first tripped.
  std::string degrade_level;
  std::string degrade_stage;

  std::size_t multibit_words = 0;
  std::size_t control_signals = 0;  // 0 for the baseline technique
  std::size_t lint_errors = 0;
  std::size_t lint_warnings = 0;
  std::size_t lint_notes = 0;
};

struct BatchResult {
  std::vector<BatchEntry> entries;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t skipped = 0;
  std::size_t cancelled = 0;  // interrupted mid-run (SIGINT / cancel token)
  std::size_t crashed = 0;    // quarantined after crashing their workers
  std::size_t resumed = 0;    // restored from the journal, not recomputed

  // Cache traffic attributable to this run (lookups during the run).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  bool all_ok() const {
    return failed == 0 && skipped == 0 && cancelled == 0 && crashed == 0;
  }
  // True when the run was stopped by cancellation; the journal (if any)
  // holds every entry that finished, so --resume completes the rest.
  bool interrupted() const { return cancelled > 0; }

  // {"schema_version":1,"version":...,"entries":[...],"summary":{...}} —
  // stable bytes: no timing, no cache statistics, no resume markers.
  std::string to_json() const;
  // Human-readable per-entry lines plus a summary with cache statistics.
  std::string render_text() const;
};

// Runs the batch over already-expanded specs (see manifest.h).  Per-entry
// failures never throw out of this function; spec-expansion errors and an
// unopenable resume journal do.
BatchResult run_batch(const std::vector<std::string>& specs,
                      const BatchOptions& options = {});

}  // namespace netrev::pipeline
