#include "eval/report.h"

#include "common/text.h"
#include "exec/degrade.h"
#include "jsonout/jsonout.h"

namespace netrev::eval {

namespace {

std::string json_number(double value) {
  // Stable fixed formatting; metrics are percentages/fractions.
  return format_fixed(value, 4);
}

}  // namespace

std::string json_escape(const std::string& text) {
  return jsonout::escape(text);
}

namespace {

std::string bits_array(const netlist::Netlist& nl,
                       const std::vector<netlist::NetId>& bits) {
  std::string out = "[";
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (i > 0) out += ",";
    out += '"' + json_escape(nl.net(bits[i]).name) + '"';
  }
  out += "]";
  return out;
}

std::string words_array(const netlist::Netlist& nl,
                        const wordrec::WordSet& words,
                        bool include_singletons) {
  std::string out = "[";
  bool first = true;
  for (const wordrec::Word& word : words.words) {
    if (!include_singletons && word.width() < 2) continue;
    if (!first) out += ",";
    first = false;
    out += "{\"width\":" + std::to_string(word.width()) +
           ",\"bits\":" + bits_array(nl, word.bits) + "}";
  }
  out += "]";
  return out;
}

}  // namespace

std::string words_to_json(const netlist::Netlist& nl,
                          const wordrec::WordSet& words,
                          bool include_singletons) {
  return jsonout::document("\"words\":" +
                           words_array(nl, words, include_singletons));
}

std::string identify_result_to_json(const netlist::Netlist& nl,
                                    const wordrec::IdentifyResult& result) {
  std::string out = "{" + jsonout::version_field() + ",";
  out += "\"multibit_words\":" +
         std::to_string(result.words.count_multibit()) + ",";

  out += "\"control_signals\":[";
  for (std::size_t i = 0; i < result.used_control_signals.size(); ++i) {
    if (i > 0) out += ",";
    out += '"' + json_escape(nl.net(result.used_control_signals[i]).name) + '"';
  }
  out += "],";

  out += "\"unified\":[";
  for (std::size_t i = 0; i < result.unified.size(); ++i) {
    if (i > 0) out += ",";
    const wordrec::UnifiedWord& word = result.unified[i];
    out += "{\"bits\":" + bits_array(nl, word.bits) + ",\"assignment\":{";
    for (std::size_t k = 0; k < word.assignment.size(); ++k) {
      if (k > 0) out += ",";
      out += '"' + json_escape(nl.net(word.assignment[k].first).name) +
             "\":" + (word.assignment[k].second ? "1" : "0");
    }
    out += "}}";
  }
  out += "],";

  const wordrec::IdentifyStats& stats = result.stats;
  out += "\"stats\":{";
  out += "\"groups\":" + std::to_string(stats.groups) + ",";
  out += "\"subgroups\":" + std::to_string(stats.subgroups) + ",";
  out += "\"partial_subgroups\":" + std::to_string(stats.partial_subgroups) + ",";
  out += "\"control_signal_candidates\":" +
         std::to_string(stats.control_signal_candidates) + ",";
  out += "\"reduction_trials\":" + std::to_string(stats.reduction_trials) + ",";
  out += "\"unified_subgroups\":" + std::to_string(stats.unified_subgroups);
  out += "},";

  out += "\"words\":" + words_array(nl, result.words, false) + ",";

  // Always present ("degraded":null when the run completed at full fidelity)
  // so a run finishing under its deadline is byte-identical to a run with no
  // deadline at all.
  if (result.degraded()) {
    out += "\"degraded\":{\"level\":\"" +
           std::string(exec::degrade_level_name(result.degrade_level)) +
           "\",\"stage\":\"" + json_escape(result.degrade_stage) +
           "\",\"reason\":\"" + json_escape(result.degrade_reason) + "\"}";
  } else {
    out += "\"degraded\":null";
  }
  out += "}";
  return out;
}

std::string evaluation_to_json(const EvaluationSummary& summary,
                               std::span<const ReferenceWord> reference) {
  std::string out = "{" + jsonout::version_field() + ",";
  out += "\"reference_words\":" + std::to_string(summary.reference_words) + ",";
  out += "\"fully_found\":" + std::to_string(summary.fully_found) + ",";
  out += "\"partially_found\":" + std::to_string(summary.partially_found) + ",";
  out += "\"not_found\":" + std::to_string(summary.not_found) + ",";
  out += "\"full_pct\":" + json_number(summary.full_fraction * 100.0) + ",";
  out += "\"not_found_pct\":" +
         json_number(summary.not_found_fraction * 100.0) + ",";
  out += "\"avg_fragmentation\":" + json_number(summary.avg_fragmentation) + ",";
  out += "\"per_word\":[";
  for (std::size_t i = 0; i < summary.per_word.size(); ++i) {
    if (i > 0) out += ",";
    const WordEvaluation& eval = summary.per_word[i];
    const char* outcome = eval.outcome == WordOutcome::kFullyFound
                              ? "full"
                              : eval.outcome == WordOutcome::kNotFound
                                    ? "not_found"
                                    : "partial";
    out += "{\"register\":\"" +
           json_escape(i < reference.size() ? reference[i].register_name
                                            : std::string()) +
           "\",\"outcome\":\"" + outcome +
           "\",\"pieces\":" + std::to_string(eval.pieces) + "}";
  }
  out += "]}";
  return out;
}

std::string evaluate_doc_to_json(const std::string& evaluation_json,
                                 const std::string& analysis_json) {
  return jsonout::document("\"evaluation\":" + evaluation_json +
                           ",\"analysis\":" + analysis_json);
}

std::string analysis_to_json(const netlist::Netlist& nl,
                             const analysis::AnalysisResult& result) {
  std::string out = "{" + jsonout::version_field() + ",\"findings\":[";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    if (i > 0) out += ",";
    const analysis::Finding& finding = result.findings[i];
    out += "{\"rule\":\"" + json_escape(finding.rule) + "\",";
    out += "\"severity\":\"" +
           std::string(diag::severity_name(finding.severity)) + "\",";
    out += "\"message\":\"" + json_escape(finding.message) + "\",";
    out += "\"fix_hint\":\"" + json_escape(finding.fix_hint) + "\",";
    out += "\"nets\":" + bits_array(nl, finding.nets) + "}";
  }
  out += "],";
  out += "\"errors\":" + std::to_string(result.error_count()) + ",";
  out += "\"warnings\":" + std::to_string(result.warning_count()) + ",";
  out += "\"notes\":" + std::to_string(result.note_count()) + ",";
  out += "\"rules_run\":" + std::to_string(result.rules_run);
  out += "}";
  return out;
}

std::string table_to_json(std::span<const Table1Row> rows) {
  std::string members = "\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) members += ",";
    members += table_row_to_json(rows[i]);
  }
  members += "]";
  return jsonout::document(members);
}

std::string table_row_to_json(const Table1Row& row) {
  const auto cells = [](const TechniqueCells& c) {
    std::string out = "{";
    out += "\"full_pct\":" + json_number(c.full_pct) + ",";
    out += "\"fragmentation\":" + json_number(c.fragmentation) + ",";
    out += "\"not_found_pct\":" + json_number(c.not_found_pct) + ",";
    out += "\"seconds\":" + json_number(c.seconds) + ",";
    out += "\"control_signals\":" + std::to_string(c.control_signals);
    out += "}";
    return out;
  };
  std::string out = "{";
  out += "\"benchmark\":\"" + json_escape(row.benchmark) + "\",";
  out += "\"gates\":" + std::to_string(row.gates) + ",";
  out += "\"nets\":" + std::to_string(row.nets) + ",";
  out += "\"flops\":" + std::to_string(row.flops) + ",";
  out += "\"reference_words\":" + std::to_string(row.reference_words) + ",";
  out += "\"avg_word_size\":" + json_number(row.avg_word_size) + ",";
  out += "\"base\":" + cells(row.base) + ",";
  out += "\"ours\":" + cells(row.ours);
  out += "}";
  return out;
}

}  // namespace netrev::eval
