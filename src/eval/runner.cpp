#include "eval/runner.h"

#include <chrono>

#include "wordrec/baseline.h"

namespace netrev::eval {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

TechniqueRun run_baseline(const netlist::Netlist& nl,
                          const wordrec::Options& options) {
  TechniqueRun run;
  const auto start = Clock::now();
  run.words = wordrec::identify_words_baseline(nl, options);
  run.seconds = elapsed_seconds(start);
  return run;
}

TechniqueRun technique_run(const wordrec::IdentifyResult& result,
                           double seconds) {
  TechniqueRun run;
  run.words = result.words;
  run.seconds = seconds;
  run.control_signals = result.used_control_signals.size();
  run.stats = result.stats;
  return run;
}

TechniqueRun technique_run(const wordrec::WordSet& baseline_words,
                           double seconds) {
  TechniqueRun run;
  run.words = baseline_words;
  run.seconds = seconds;
  return run;
}

TechniqueRun run_ours(const netlist::Netlist& nl,
                      const wordrec::Options& options) {
  TechniqueRun run;
  const auto start = Clock::now();
  wordrec::IdentifyResult result = wordrec::identify_words(nl, options);
  run.seconds = elapsed_seconds(start);
  run.words = std::move(result.words);
  run.control_signals = result.used_control_signals.size();
  run.stats = result.stats;
  return run;
}

}  // namespace netrev::eval
