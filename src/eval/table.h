// Table 1 assembly: one row per benchmark comparing Base (shape hashing [6])
// against Ours, plus the averages row.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "eval/metrics.h"
#include "eval/reference.h"
#include "eval/runner.h"

namespace netrev::eval {

struct TechniqueCells {
  double full_pct = 0.0;       // % of reference words fully found
  double fragmentation = 0.0;  // avg normalized fragmentation of partials
  double not_found_pct = 0.0;  // % of reference words not found
  double seconds = 0.0;
  std::size_t control_signals = 0;
};

struct Table1Row {
  std::string benchmark;
  std::size_t gates = 0;
  std::size_t nets = 0;
  std::size_t flops = 0;
  std::size_t reference_words = 0;
  double avg_word_size = 0.0;
  TechniqueCells base;
  TechniqueCells ours;
};

TechniqueCells make_cells(const EvaluationSummary& summary,
                          const TechniqueRun& run);

Table1Row make_row(const std::string& benchmark, const netlist::Netlist& nl,
                   const ReferenceExtraction& reference,
                   const TechniqueRun& base_run, const TechniqueRun& ours_run);

// Renders the table in the paper's layout (Base and Ours sub-rows per
// benchmark).  When `include_average` is set, appends the averages row the
// paper reports (mean of percentage/fragmentation/time columns).
std::string render_table1(std::span<const Table1Row> rows,
                          bool include_average = true);

// Averages over rows, mirroring the paper's bottom row.
Table1Row average_row(std::span<const Table1Row> rows);

}  // namespace netrev::eval
