// Machine-readable (JSON) reports for downstream tooling: identified words,
// pipeline stats, evaluation summaries, and Table 1 rows.  All emission goes
// through the shared netrev::jsonout policy module: every top-level document
// carries `"schema_version"` as its first field, escaping is uniform across
// surfaces, and output is byte-deterministic (see docs/FORMATS.md).
#pragma once

#include <span>
#include <string>

#include "analysis/analyzer.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "netlist/netlist.h"
#include "wordrec/identify.h"
#include "wordrec/word.h"

namespace netrev::eval {

// Low-level helper (exposed for tests); delegates to jsonout::escape.
std::string json_escape(const std::string& text);

// Words as {"schema_version":1,"words":[{"width":N,"bits":[...]}]} — only
// multi-bit words unless `include_singletons`.
std::string words_to_json(const netlist::Netlist& nl,
                          const wordrec::WordSet& words,
                          bool include_singletons = false);

// Full identification result: words, control signals, unified words with
// their assignments, pipeline stats.
std::string identify_result_to_json(const netlist::Netlist& nl,
                                    const wordrec::IdentifyResult& result);

// Per-reference-word outcomes plus the aggregate metrics.
std::string evaluation_to_json(const EvaluationSummary& summary,
                               std::span<const ReferenceWord> reference);

// The combined `evaluate --json` document, shared verbatim by the CLI and
// the serve protocol so daemon bytes equal one-shot bytes:
// {"schema_version":1,"evaluation":<evaluation_json>,"analysis":<analysis_json>}
std::string evaluate_doc_to_json(const std::string& evaluation_json,
                                 const std::string& analysis_json);

// One Table 1 row (unversioned: always embedded in table_to_json).
std::string table_row_to_json(const Table1Row& row);

// The `table --json` document: {"schema_version":1,"rows":[<row>,...]}.
std::string table_to_json(std::span<const Table1Row> rows);

// Static-analysis findings with per-severity counts:
// {"schema_version":1,"findings":[{"rule":...,"severity":...,"message":...,
//  "fix_hint":...,"nets":[...]}],"errors":N,"warnings":N,"notes":N,
//  "rules_run":N}
std::string analysis_to_json(const netlist::Netlist& nl,
                             const analysis::AnalysisResult& result);

}  // namespace netrev::eval
