// Machine-readable (JSON) reports for downstream tooling: identified words,
// pipeline stats, evaluation summaries, and Table 1 rows.  The emitter is
// self-contained (no external JSON dependency) and escapes net names
// correctly (escaped Verilog identifiers can carry arbitrary characters).
#pragma once

#include <string>

#include "analysis/analyzer.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "netlist/netlist.h"
#include "wordrec/identify.h"
#include "wordrec/word.h"

namespace netrev::eval {

// Low-level helpers (exposed for tests).
std::string json_escape(const std::string& text);

// Words as {"words": [{"width": N, "bits": ["net", ...]}, ...]} — only
// multi-bit words unless `include_singletons`.
std::string words_to_json(const netlist::Netlist& nl,
                          const wordrec::WordSet& words,
                          bool include_singletons = false);

// Full identification result: words, control signals, unified words with
// their assignments, pipeline stats.
std::string identify_result_to_json(const netlist::Netlist& nl,
                                    const wordrec::IdentifyResult& result);

// Per-reference-word outcomes plus the aggregate metrics.
std::string evaluation_to_json(const EvaluationSummary& summary,
                               std::span<const ReferenceWord> reference);

// One Table 1 row.
std::string table_row_to_json(const Table1Row& row);

// Static-analysis findings with per-severity counts:
// {"findings":[{"rule":...,"severity":...,"message":...,"fix_hint":...,
//  "nets":[...]}],"errors":N,"warnings":N,"notes":N,"rules_run":N}
std::string analysis_to_json(const netlist::Netlist& nl,
                             const analysis::AnalysisResult& result);

}  // namespace netrev::eval
