#include "eval/diagnose.h"

#include <algorithm>
#include <map>

#include "common/text.h"

namespace netrev::eval {

Diagnosis diagnose(const netlist::Netlist& nl,
                   const wordrec::WordSet& generated,
                   const ReferenceExtraction& reference) {
  (void)nl;
  Diagnosis diagnosis;
  diagnosis.summary = evaluate_words(generated, reference.words);

  const auto index = generated.index_of_net();
  for (std::size_t w = 0; w < reference.words.size(); ++w) {
    const ReferenceWord& ref = reference.words[w];
    WordDiagnosis word;
    word.register_name = ref.register_name;
    word.width = ref.width();
    word.outcome = diagnosis.summary.per_word[w].outcome;
    word.pieces = diagnosis.summary.per_word[w].pieces;

    // Count this word's bits per generated fragment.
    std::map<std::size_t, std::size_t> per_fragment;
    std::size_t uncovered = 0;
    for (netlist::NetId bit : ref.bits) {
      const auto it = index.find(bit);
      if (it == index.end())
        ++uncovered;
      else
        ++per_fragment[it->second];
    }
    for (const auto& [fragment, count] : per_fragment)
      word.fragment_sizes.push_back(count);
    for (std::size_t k = 0; k < uncovered; ++k) word.fragment_sizes.push_back(1);
    std::sort(word.fragment_sizes.rbegin(), word.fragment_sizes.rend());
    diagnosis.words.push_back(std::move(word));
  }
  return diagnosis;
}

std::string render_diagnosis(const Diagnosis& diagnosis) {
  std::string out;
  out += "reference words: " + std::to_string(diagnosis.summary.reference_words);
  out += "  full: " + std::to_string(diagnosis.summary.fully_found);
  out += "  partial: " + std::to_string(diagnosis.summary.partially_found);
  out += "  not-found: " + std::to_string(diagnosis.summary.not_found);
  out += "  (full " + format_pct(diagnosis.summary.full_fraction);
  out += "%, frag " + format_fixed(diagnosis.summary.avg_fragmentation, 2);
  out += ")\n";

  for (const WordDiagnosis& word : diagnosis.words) {
    const char* tag = word.outcome == WordOutcome::kFullyFound ? "FULL   "
                      : word.outcome == WordOutcome::kNotFound ? "MISSING"
                                                               : "PARTIAL";
    out += "  " + std::string(tag) + "  " + pad_right(word.register_name, 24) +
           " width " + pad_left(std::to_string(word.width), 3);
    if (word.outcome != WordOutcome::kFullyFound) {
      out += "  fragments:";
      for (std::size_t size : word.fragment_sizes)
        out += ' ' + std::to_string(size);
    }
    out += '\n';
  }
  return out;
}

}  // namespace netrev::eval
