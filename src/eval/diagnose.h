// Per-reference-word diagnosis: which words a technique found, how the
// missed ones fragmented, and which generated words look functionally
// suspicious.  Rendered as text for the CLI `evaluate` command and consumed
// by tests.
#pragma once

#include <string>

#include "eval/metrics.h"
#include "eval/reference.h"
#include "wordrec/word.h"

namespace netrev::eval {

struct WordDiagnosis {
  std::string register_name;
  std::size_t width = 0;
  WordOutcome outcome = WordOutcome::kNotFound;
  std::size_t pieces = 0;
  // For partial/not-found: the sizes of the generated fragments holding the
  // word's bits (descending).
  std::vector<std::size_t> fragment_sizes;
};

struct Diagnosis {
  EvaluationSummary summary;
  std::vector<WordDiagnosis> words;
};

Diagnosis diagnose(const netlist::Netlist& nl, const wordrec::WordSet& generated,
                   const ReferenceExtraction& reference);

// Multi-line human-readable rendering.
std::string render_diagnosis(const Diagnosis& diagnosis);

}  // namespace netrev::eval
