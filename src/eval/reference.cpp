#include "eval/reference.h"

#include <algorithm>
#include <cctype>
#include <map>

namespace netrev::eval {

using netlist::GateId;
using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

namespace {

bool all_digits(std::string_view text) {
  if (text.empty()) return false;
  return std::all_of(text.begin(), text.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

}  // namespace

std::optional<RegisterBitName> parse_register_bit_name(std::string_view name) {
  // COUNT_REG[5]
  if (!name.empty() && name.back() == ']') {
    const std::size_t open = name.rfind('[');
    if (open != std::string_view::npos) {
      const std::string_view digits = name.substr(open + 1, name.size() - open - 2);
      if (all_digits(digits) && open > 0)
        return RegisterBitName{std::string(name.substr(0, open)),
                               static_cast<std::size_t>(std::stoul(std::string(digits)))};
    }
    return std::nullopt;
  }
  // COUNT_REG_5_
  if (!name.empty() && name.back() == '_') {
    const std::string_view body = name.substr(0, name.size() - 1);
    const std::size_t underscore = body.rfind('_');
    if (underscore != std::string_view::npos) {
      const std::string_view digits = body.substr(underscore + 1);
      if (all_digits(digits) && underscore > 0)
        return RegisterBitName{std::string(body.substr(0, underscore)),
                               static_cast<std::size_t>(std::stoul(std::string(digits)))};
    }
    return std::nullopt;
  }
  // COUNT_REG_5
  const std::size_t underscore = name.rfind('_');
  if (underscore != std::string_view::npos && underscore > 0) {
    const std::string_view digits = name.substr(underscore + 1);
    if (all_digits(digits))
      return RegisterBitName{std::string(name.substr(0, underscore)),
                             static_cast<std::size_t>(std::stoul(std::string(digits)))};
  }
  return std::nullopt;
}

ReferenceExtraction extract_reference_words(const Netlist& nl,
                                            std::size_t min_width) {
  ReferenceExtraction extraction;

  // register base name -> (bit index -> D net), ordered for determinism.
  std::map<std::string, std::map<std::size_t, NetId>> registers;

  for (std::size_t i = 0; i < nl.gate_count(); ++i) {
    const GateId g = nl.gate_id_at(i);
    const netlist::Gate& gate = nl.gate(g);
    if (gate.type != GateType::kDff) continue;
    ++extraction.flop_count;
    const auto parsed = parse_register_bit_name(nl.net(gate.output).name);
    if (!parsed) continue;
    ++extraction.indexed_flops;
    registers[parsed->base][parsed->index] = gate.inputs[0];
  }

  for (const auto& [base, bits] : registers) {
    if (bits.size() < min_width) continue;
    ReferenceWord word;
    word.register_name = base;
    word.bits.reserve(bits.size());
    for (const auto& [index, d_net] : bits) word.bits.push_back(d_net);
    extraction.words.push_back(std::move(word));
  }
  return extraction;
}

}  // namespace netrev::eval
