#include "eval/reference.h"

#include <map>

#include "common/text.h"

namespace netrev::eval {

using netlist::GateId;
using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

std::optional<RegisterBitName> parse_register_bit_name(std::string_view name) {
  // The shape grammar lives in common/text so the analysis layer (domain
  // grouping) can share it without depending on eval.
  auto parsed = parse_indexed_name(name);
  if (!parsed) return std::nullopt;
  return RegisterBitName{std::move(parsed->base), parsed->index};
}

ReferenceExtraction extract_reference_words(const Netlist& nl,
                                            std::size_t min_width) {
  ReferenceExtraction extraction;

  // register base name -> (bit index -> D net), ordered for determinism.
  std::map<std::string, std::map<std::size_t, NetId>> registers;

  for (std::size_t i = 0; i < nl.gate_count(); ++i) {
    const GateId g = nl.gate_id_at(i);
    const netlist::Gate& gate = nl.gate(g);
    if (gate.type != GateType::kDff) continue;
    ++extraction.flop_count;
    const auto parsed = parse_register_bit_name(nl.net(gate.output).name);
    if (!parsed) continue;
    ++extraction.indexed_flops;
    registers[parsed->base][parsed->index] = gate.inputs[0];
  }

  for (const auto& [base, bits] : registers) {
    if (bits.size() < min_width) continue;
    ReferenceWord word;
    word.register_name = base;
    word.bits.reserve(bits.size());
    for (const auto& [index, d_net] : bits) word.bits.push_back(d_net);
    extraction.words.push_back(std::move(word));
  }
  return extraction;
}

}  // namespace netrev::eval
