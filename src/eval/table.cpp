#include "eval/table.h"

#include "common/text.h"
#include "netlist/stats.h"

namespace netrev::eval {

TechniqueCells make_cells(const EvaluationSummary& summary,
                          const TechniqueRun& run) {
  TechniqueCells cells;
  cells.full_pct = summary.full_fraction * 100.0;
  cells.fragmentation = summary.avg_fragmentation;
  cells.not_found_pct = summary.not_found_fraction * 100.0;
  cells.seconds = run.seconds;
  cells.control_signals = run.control_signals;
  return cells;
}

Table1Row make_row(const std::string& benchmark, const netlist::Netlist& nl,
                   const ReferenceExtraction& reference,
                   const TechniqueRun& base_run, const TechniqueRun& ours_run) {
  Table1Row row;
  row.benchmark = benchmark;
  const netlist::NetlistStats stats = netlist::compute_stats(nl);
  row.gates = stats.gates;
  row.nets = stats.nets;
  row.flops = stats.flops;
  row.reference_words = reference.words.size();
  row.avg_word_size = reference.average_word_size();
  row.base = make_cells(
      evaluate_words(base_run.words, reference.words), base_run);
  row.ours = make_cells(
      evaluate_words(ours_run.words, reference.words), ours_run);
  return row;
}

Table1Row average_row(std::span<const Table1Row> rows) {
  Table1Row avg;
  avg.benchmark = "Average";
  if (rows.empty()) return avg;
  const auto accumulate = [&rows](auto member) {
    double base = 0.0, ours = 0.0;
    for (const Table1Row& row : rows) {
      base += row.base.*member;
      ours += row.ours.*member;
    }
    const double n = static_cast<double>(rows.size());
    return std::pair<double, double>{base / n, ours / n};
  };
  std::tie(avg.base.full_pct, avg.ours.full_pct) =
      accumulate(&TechniqueCells::full_pct);
  std::tie(avg.base.fragmentation, avg.ours.fragmentation) =
      accumulate(&TechniqueCells::fragmentation);
  std::tie(avg.base.not_found_pct, avg.ours.not_found_pct) =
      accumulate(&TechniqueCells::not_found_pct);
  std::tie(avg.base.seconds, avg.ours.seconds) =
      accumulate(&TechniqueCells::seconds);
  return avg;
}

std::string render_table1(std::span<const Table1Row> rows,
                          bool include_average) {
  const std::vector<std::string> header = {
      "Benchmark", "#gates",      "#nets",       "#FF",
      "#Words",    "AvgWordSize", "Technique",   "Full Found (%Word)",
      "Partial (Word Frag. Rate)", "Not Found (%Words)", "Time(s)",
      "#Control Signals"};

  std::vector<std::vector<std::string>> body;
  const auto emit = [&body](const Table1Row& row) {
    // Two sub-rows per benchmark: "Base" carries the size columns, "Ours"
    // leaves them blank for readability (the paper's layout).
    const auto technique_row = [&](const char* label,
                                   const TechniqueCells& cells,
                                   bool with_sizes) {
      std::vector<std::string> cols;
      cols.push_back(with_sizes ? row.benchmark : std::string());
      if (with_sizes) {
        cols.push_back(std::to_string(row.gates));
        cols.push_back(std::to_string(row.nets));
        cols.push_back(std::to_string(row.flops));
        cols.push_back(std::to_string(row.reference_words));
        cols.push_back(format_fixed(row.avg_word_size, 2));
      } else {
        cols.insert(cols.end(), 5, std::string());
      }
      cols.emplace_back(label);
      cols.push_back(format_fixed(cells.full_pct, 1));
      cols.push_back(format_fixed(cells.fragmentation, 2));
      cols.push_back(format_fixed(cells.not_found_pct, 1));
      cols.push_back(format_fixed(cells.seconds, 2));
      cols.push_back(std::to_string(cells.control_signals));
      return cols;
    };
    body.push_back(technique_row("Base", row.base, /*with_sizes=*/true));
    body.push_back(technique_row("Ours", row.ours, /*with_sizes=*/false));
  };

  for (const Table1Row& row : rows) emit(row);
  if (include_average && !rows.empty()) {
    Table1Row avg = average_row(rows);
    std::vector<std::string> base_cols = {
        "Average", "", "", "", "", "", "Base",
        format_fixed(avg.base.full_pct, 2),
        format_fixed(avg.base.fragmentation, 3),
        format_fixed(avg.base.not_found_pct, 2),
        format_fixed(avg.base.seconds, 3), ""};
    std::vector<std::string> ours_cols = {
        "", "", "", "", "", "", "Ours",
        format_fixed(avg.ours.full_pct, 2),
        format_fixed(avg.ours.fragmentation, 3),
        format_fixed(avg.ours.not_found_pct, 2),
        format_fixed(avg.ours.seconds, 3), ""};
    body.push_back(std::move(base_cols));
    body.push_back(std::move(ours_cols));
  }
  return render_table(header, body);
}

}  // namespace netrev::eval
