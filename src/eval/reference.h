// Golden-reference word extraction (§3).
//
// The paper exploits the fact that synthesis preserves register names on
// flip-flop output nets ("the output net of each flip-flop is named using
// the register name and bit position it corresponds to").  Flops whose
// output names share a register base name form a reference word; the word's
// bits are the flops' *D-input* nets, "since we are matching structure based
// on fanin-cones".
//
// Recognised name shapes (all produced by common netlist writers):
//   COUNT_REG_5_   (Synopsys flattened bus bit)
//   COUNT_REG[5]   (bracketed bus bit)
//   COUNT_REG_5    (plain trailing index)
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.h"

namespace netrev::eval {

struct RegisterBitName {
  std::string base;   // register name without the index
  std::size_t index;  // bit position
};

// Parses one flop-output net name; nullopt when no index pattern matches
// (e.g. a scalar register like "stato_reg").
std::optional<RegisterBitName> parse_register_bit_name(std::string_view name);

struct ReferenceWord {
  std::string register_name;
  std::vector<netlist::NetId> bits;  // D-input nets, ordered by bit index

  std::size_t width() const { return bits.size(); }
};

struct ReferenceExtraction {
  std::vector<ReferenceWord> words;   // width >= min_width, name order
  std::size_t flop_count = 0;         // all flops in the design
  std::size_t indexed_flops = 0;      // flops with a parsable indexed name

  double average_word_size() const {
    if (words.empty()) return 0.0;
    std::size_t bits = 0;
    for (const auto& word : words) bits += word.width();
    return static_cast<double>(bits) / static_cast<double>(words.size());
  }
};

// Groups indexed flops by register base name.  Words narrower than
// `min_width` are dropped (a single wire is not a word).
ReferenceExtraction extract_reference_words(const netlist::Netlist& nl,
                                            std::size_t min_width = 2);

}  // namespace netrev::eval
