#include "eval/metrics.h"

#include <limits>
#include <unordered_set>

#include "common/contracts.h"

namespace netrev::eval {

EvaluationSummary evaluate_words(const wordrec::WordSet& generated,
                                 std::span<const ReferenceWord> reference) {
  EvaluationSummary summary;
  summary.reference_words = reference.size();
  const auto word_of_net = generated.index_of_net();

  double fragmentation_total = 0.0;
  std::size_t uncovered_counter = 0;

  for (const ReferenceWord& ref : reference) {
    NETREV_REQUIRE(!ref.bits.empty());
    std::unordered_set<std::size_t> pieces;
    for (netlist::NetId bit : ref.bits) {
      const auto it = word_of_net.find(bit);
      if (it != word_of_net.end()) {
        pieces.insert(it->second);
      } else {
        // Bit absent from the partition: unique pseudo-word.
        pieces.insert(std::numeric_limits<std::size_t>::max() -
                      uncovered_counter++);
      }
    }

    WordEvaluation eval;
    eval.pieces = pieces.size();
    if (eval.pieces == 1) {
      eval.outcome = WordOutcome::kFullyFound;
      ++summary.fully_found;
    } else if (eval.pieces == ref.bits.size()) {
      eval.outcome = WordOutcome::kNotFound;
      ++summary.not_found;
    } else {
      eval.outcome = WordOutcome::kPartiallyFound;
      eval.fragmentation = static_cast<double>(eval.pieces) /
                           static_cast<double>(ref.bits.size());
      fragmentation_total += eval.fragmentation;
      ++summary.partially_found;
    }
    summary.per_word.push_back(eval);
  }

  if (summary.reference_words > 0) {
    summary.full_fraction = static_cast<double>(summary.fully_found) /
                            static_cast<double>(summary.reference_words);
    summary.not_found_fraction = static_cast<double>(summary.not_found) /
                                 static_cast<double>(summary.reference_words);
  }
  if (summary.partially_found > 0)
    summary.avg_fragmentation =
        fragmentation_total / static_cast<double>(summary.partially_found);
  return summary;
}

}  // namespace netrev::eval
