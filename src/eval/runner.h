// Timed execution of both identification techniques on one netlist.
#pragma once

#include <string>

#include "netlist/netlist.h"
#include "wordrec/identify.h"
#include "wordrec/options.h"
#include "wordrec/word.h"

namespace netrev::eval {

struct TechniqueRun {
  wordrec::WordSet words;
  double seconds = 0.0;
  std::size_t control_signals = 0;     // 0 for the baseline
  wordrec::IdentifyStats stats;        // zeroed for the baseline
};

TechniqueRun run_baseline(const netlist::Netlist& nl,
                          const wordrec::Options& options = {});

TechniqueRun run_ours(const netlist::Netlist& nl,
                      const wordrec::Options& options = {});

// Package an already-computed identification as a TechniqueRun with an
// externally measured wall time.  netrev::Session routes its cache-aware
// run_ours/run_baseline through these, so a warm run reports the (near-zero)
// cache-lookup time instead of re-running the technique.
TechniqueRun technique_run(const wordrec::IdentifyResult& result,
                           double seconds);
TechniqueRun technique_run(const wordrec::WordSet& baseline_words,
                           double seconds);

}  // namespace netrev::eval
