// The three evaluation metrics of §3: fully found, not found, and the
// normalized fragmentation rate of partially-found reference words.
#pragma once

#include <span>
#include <vector>

#include "eval/reference.h"
#include "wordrec/word.h"

namespace netrev::eval {

enum class WordOutcome {
  kFullyFound,      // one generated word includes all bits of the reference
  kPartiallyFound,  // some but not all bits grouped together
  kNotFound,        // every bit lies in a different generated word
};

struct WordEvaluation {
  WordOutcome outcome = WordOutcome::kNotFound;
  std::size_t pieces = 0;        // generated words the bits are spread across
  double fragmentation = 0.0;    // pieces / width (only meaningful if partial)
};

struct EvaluationSummary {
  std::size_t reference_words = 0;
  std::size_t fully_found = 0;
  std::size_t partially_found = 0;
  std::size_t not_found = 0;
  // Percent metrics as fractions in [0,1]; Table 1 prints them * 100.
  double full_fraction = 0.0;
  double not_found_fraction = 0.0;
  // Average normalized fragmentation over partially-found words; 0 when no
  // word is partially found (as in the paper's b04/Ours cell).
  double avg_fragmentation = 0.0;

  std::vector<WordEvaluation> per_word;  // parallel to the reference list
};

// Classifies every reference word against the generated word partition.
// Reference bits not covered by any generated word each count as their own
// singleton piece.
EvaluationSummary evaluate_words(const wordrec::WordSet& generated,
                                 std::span<const ReferenceWord> reference);

}  // namespace netrev::eval
