#include "analysis/scc.h"

#include <gtest/gtest.h>

namespace netrev::analysis {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NetId;

Netlist acyclic() {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  nl.add_gate(GateType::kAnd, y, {a, b});
  nl.mark_primary_output(y);
  return nl;
}

TEST(CombinationalScc, AcyclicNetlistHasNone) {
  EXPECT_TRUE(combinational_sccs(acyclic()).empty());
}

TEST(CombinationalScc, TwoGateCycleIsOneScc) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId x = nl.add_net("x");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::kAnd, x, {a, y});
  nl.add_gate(GateType::kBuf, y, {x});
  nl.mark_primary_output(y);

  const auto sccs = combinational_sccs(nl);
  ASSERT_EQ(sccs.size(), 1u);
  EXPECT_EQ(sccs[0].gates.size(), 2u);
  ASSERT_EQ(sccs[0].nets.size(), 2u);
  // Members come back in ascending gate-id (= file) order.
  EXPECT_EQ(nl.net(sccs[0].nets[0]).name, "x");
  EXPECT_EQ(nl.net(sccs[0].nets[1]).name, "y");
}

TEST(CombinationalScc, SelfReadingGateIsAnScc) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::kOr, y, {a, y});
  nl.mark_primary_output(y);

  const auto sccs = combinational_sccs(nl);
  ASSERT_EQ(sccs.size(), 1u);
  EXPECT_EQ(sccs[0].gates.size(), 1u);
}

TEST(CombinationalScc, FlopBreaksTheLoop) {
  // q = DFF(x), x = NOT(q): a legitimate toggle register, not a comb cycle.
  Netlist nl;
  const NetId q = nl.add_net("q");
  const NetId x = nl.add_net("x");
  nl.add_gate(GateType::kNot, x, {q});
  nl.add_gate(GateType::kDff, q, {x});
  nl.mark_primary_output(q);
  EXPECT_TRUE(combinational_sccs(nl).empty());
}

TEST(CombinationalScc, MultipleIndependentCycles) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  const NetId x1 = nl.add_net("x1");
  const NetId y1 = nl.add_net("y1");
  nl.add_gate(GateType::kAnd, x1, {a, y1});
  nl.add_gate(GateType::kBuf, y1, {x1});
  const NetId x2 = nl.add_net("x2");
  const NetId y2 = nl.add_net("y2");
  nl.add_gate(GateType::kOr, x2, {a, y2});
  nl.add_gate(GateType::kBuf, y2, {x2});
  nl.mark_primary_output(y1);
  nl.mark_primary_output(y2);

  const auto sccs = combinational_sccs(nl);
  ASSERT_EQ(sccs.size(), 2u);
  // Deterministic order by smallest member gate id.
  EXPECT_EQ(nl.net(sccs[0].nets[0]).name, "x1");
  EXPECT_EQ(nl.net(sccs[1].nets[0]).name, "x2");
}

TEST(CombinationalScc, DescribeCycleNamesMembers) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId x = nl.add_net("x");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::kAnd, x, {a, y});
  nl.add_gate(GateType::kBuf, y, {x});
  nl.mark_primary_output(y);

  const auto sccs = combinational_sccs(nl);
  ASSERT_EQ(sccs.size(), 1u);
  EXPECT_EQ(describe_cycle(nl, sccs[0]), "x -> y -> x");
}

TEST(CombinationalScc, DescribeCycleElidesLongLoops) {
  // A ring of 12 buffers closed by an AND; only `max_names` names show.
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  std::vector<NetId> ring;
  for (int i = 0; i < 12; ++i) ring.push_back(nl.add_net("r" + std::to_string(i)));
  nl.add_gate(GateType::kAnd, ring[0], {a, ring.back()});
  for (std::size_t i = 1; i < ring.size(); ++i)
    nl.add_gate(GateType::kBuf, ring[i], {ring[i - 1]});
  nl.mark_primary_output(ring.back());

  const auto sccs = combinational_sccs(nl);
  ASSERT_EQ(sccs.size(), 1u);
  const std::string text = describe_cycle(nl, sccs[0], 4);
  EXPECT_NE(text.find("..."), std::string::npos);
  EXPECT_NE(text.find("r0"), std::string::npos);
}

}  // namespace
}  // namespace netrev::analysis
