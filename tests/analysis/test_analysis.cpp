// Per-rule unit tests for the static-analysis engine, each on a hand-built
// netlist exhibiting exactly one defect, plus engine-level tests (registry,
// rule filtering, finding caps, diag emission, cycle breaking).
#include "analysis/analyzer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/scc.h"

namespace netrev::analysis {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NetId;

// a AND b -> y, observable and fully wired: every rule stays silent.
Netlist clean() {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  nl.add_gate(GateType::kAnd, y, {a, b});
  nl.mark_primary_output(y);
  return nl;
}

AnalysisResult run_rule(const Netlist& nl, const std::string& rule,
                        const diag::Diagnostics* parse_diags = nullptr) {
  AnalysisOptions options;
  options.enabled_rules = {rule};
  return analyze(nl, options, parse_diags);
}

std::vector<std::string> rules_hit(const AnalysisResult& result) {
  std::vector<std::string> ids;
  for (const Finding& finding : result.findings) ids.push_back(finding.rule);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

TEST(Analyze, CleanNetlistHasNoFindings) {
  const AnalysisResult result = analyze(clean());
  EXPECT_TRUE(result.findings.empty()) << result.summary();
  EXPECT_EQ(result.rules_run, 12u);
  EXPECT_EQ(
      result.summary(),
      "0 finding(s): 0 error(s), 0 warning(s), 0 note(s); 12 rule(s) run");
}

TEST(Analyze, UnknownRuleIdThrowsListingKnownRules) {
  AnalysisOptions options;
  options.enabled_rules = {"no-such-rule"};
  try {
    analyze(clean(), options);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("no-such-rule"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("comb-cycle"), std::string::npos);
  }
}

TEST(Analyze, EnabledRulesFilterRuns) {
  const AnalysisResult result = run_rule(clean(), "comb-cycle");
  EXPECT_EQ(result.rules_run, 1u);
}

// --- comb-cycle ------------------------------------------------------------

Netlist cyclic() {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId x = nl.add_net("x");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::kAnd, x, {a, y});
  nl.add_gate(GateType::kBuf, y, {x});
  nl.mark_primary_output(y);
  return nl;
}

TEST(CombCycleRule, FlagsCycleWithMemberNets) {
  const AnalysisResult result = run_rule(cyclic(), "comb-cycle");
  ASSERT_EQ(result.findings.size(), 1u);
  const Finding& finding = result.findings[0];
  EXPECT_EQ(finding.severity, diag::Severity::kError);
  EXPECT_NE(finding.message.find("x -> y -> x"), std::string::npos);
  EXPECT_EQ(finding.nets.size(), 2u);
  EXPECT_EQ(finding.to_string().rfind("error[comb-cycle]:", 0), 0u);
}

TEST(CombCycleRule, SilentOnRegisterFeedback) {
  Netlist nl;
  const NetId q = nl.add_net("q");
  const NetId x = nl.add_net("x");
  nl.add_gate(GateType::kNot, x, {q});
  nl.add_gate(GateType::kDff, q, {x});
  nl.mark_primary_output(q);
  EXPECT_TRUE(run_rule(nl, "comb-cycle").findings.empty());
}

// --- multi-driven ----------------------------------------------------------

TEST(MultiDrivenRule, FoldsParserKeepFirstDiagnosticsIntoFindings) {
  Netlist nl = clean();
  diag::Diagnostics parse_diags;
  parse_diags.warning("net already driven: y; gate dropped");
  parse_diags.warning("net already driven: y; gate dropped");

  const AnalysisResult result = run_rule(nl, "multi-driven", &parse_diags);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].severity, diag::Severity::kError);
  EXPECT_NE(result.findings[0].message.find("'y' has 3 drivers"),
            std::string::npos);
  ASSERT_EQ(result.findings[0].nets.size(), 1u);
  EXPECT_EQ(nl.net(result.findings[0].nets[0]).name, "y");
}

TEST(MultiDrivenRule, SilentWithoutParseFacts) {
  EXPECT_TRUE(run_rule(clean(), "multi-driven").findings.empty());
}

// --- undriven-net ----------------------------------------------------------

TEST(UndrivenNetRule, FlagsFloatingInternalNet) {
  Netlist nl = clean();
  const NetId floating = nl.add_net("floating");
  const NetId z = nl.add_net("z");
  nl.add_gate(GateType::kBuf, z, {floating});
  nl.mark_primary_output(z);

  const AnalysisResult result = run_rule(nl, "undriven-net");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].severity, diag::Severity::kError);
  EXPECT_NE(result.findings[0].message.find("'floating'"), std::string::npos);
  EXPECT_NE(result.findings[0].message.find("1 reader(s)"), std::string::npos);
}

TEST(UndrivenNetRule, PrimaryInputsAreNotFloating) {
  EXPECT_TRUE(run_rule(clean(), "undriven-net").findings.empty());
}

// --- dead-logic ------------------------------------------------------------

TEST(DeadLogicRule, FlagsConeThatReachesNoOutput) {
  Netlist nl = clean();
  const NetId d1 = nl.add_net("dead1");
  const NetId d2 = nl.add_net("dead2");
  nl.add_gate(GateType::kNot, d1, {*nl.find_net("a")});
  nl.add_gate(GateType::kNot, d2, {d1});

  const AnalysisResult result = run_rule(nl, "dead-logic");
  ASSERT_EQ(result.findings.size(), 2u);
  EXPECT_EQ(result.findings[0].severity, diag::Severity::kWarning);
}

TEST(DeadLogicRule, ObservableFlopKeepsItsNextStateConeAlive) {
  // cone -> D -> flop -> Q is a primary output: nothing is dead.
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId d = nl.add_net("d");
  const NetId q = nl.add_net("q");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::kNot, d, {a});
  nl.add_gate(GateType::kDff, q, {d});
  nl.mark_primary_output(q);
  EXPECT_TRUE(run_rule(nl, "dead-logic").findings.empty());
}

TEST(DeadLogicRule, UnobservableRegisterLoopIsDead) {
  // Two registers feeding only each other never reach the single PO.
  Netlist nl = clean();
  const NetId q1 = nl.add_net("q1");
  const NetId q2 = nl.add_net("q2");
  const NetId n1 = nl.add_net("n1");
  nl.add_gate(GateType::kNot, n1, {q2});
  nl.add_gate(GateType::kDff, q1, {n1});
  nl.add_gate(GateType::kDff, q2, {q1});

  const AnalysisResult result = run_rule(nl, "dead-logic");
  EXPECT_EQ(result.findings.size(), 3u);
}

TEST(DeadLogicRule, NoOutputsAtAllIsOneFinding) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::kNot, y, {a});

  const AnalysisResult result = run_rule(nl, "dead-logic");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_NE(result.findings[0].message.find("no primary outputs"),
            std::string::npos);
}

// --- const-foldable --------------------------------------------------------

TEST(ConstFoldableRule, FlagsControllingConstantInput) {
  Netlist nl = clean();
  const NetId zero = nl.add_net("zero");
  const NetId g = nl.add_net("gated");
  nl.add_gate(GateType::kConst0, zero, {});
  nl.add_gate(GateType::kAnd, g, {*nl.find_net("a"), zero});
  nl.mark_primary_output(g);

  const AnalysisResult result = run_rule(nl, "const-foldable");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_NE(result.findings[0].message.find("controlling constant"),
            std::string::npos);
}

TEST(ConstFoldableRule, FlagsAllConstantFanin) {
  Netlist nl = clean();
  const NetId one = nl.add_net("one");
  const NetId inv = nl.add_net("inv");
  nl.add_gate(GateType::kConst1, one, {});
  nl.add_gate(GateType::kNot, inv, {one});
  nl.mark_primary_output(inv);

  const AnalysisResult result = run_rule(nl, "const-foldable");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_NE(result.findings[0].message.find("all inputs tied to constants"),
            std::string::npos);
}

TEST(ConstFoldableRule, NonControllingConstantIsFoldableOnlyWhenAllConst) {
  // OR with a constant 0 input: 0 is not OR's controlling value and 'a' is
  // free, so the output is not fixed.
  Netlist nl = clean();
  const NetId zero = nl.add_net("zero");
  const NetId g = nl.add_net("g");
  nl.add_gate(GateType::kConst0, zero, {});
  nl.add_gate(GateType::kOr, g, {*nl.find_net("a"), zero});
  nl.mark_primary_output(g);
  EXPECT_TRUE(run_rule(nl, "const-foldable").findings.empty());
}

// --- degenerate-gate -------------------------------------------------------

TEST(DegenerateGateRule, FlagsDuplicateInput) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::kXor, y, {a, a});
  nl.mark_primary_output(y);

  const AnalysisResult result = run_rule(nl, "degenerate-gate");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_NE(result.findings[0].message.find("reads net 'a' twice"),
            std::string::npos);
}

TEST(DegenerateGateRule, FlagsSelfReadingGateOnce) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::kOr, y, {a, y, y});
  nl.mark_primary_output(y);

  const AnalysisResult result = run_rule(nl, "degenerate-gate");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_NE(result.findings[0].message.find("reads its own output"),
            std::string::npos);
}

// --- high-fanout -----------------------------------------------------------

TEST(HighFanoutRule, FlagsOutlierDriverAboveThreshold) {
  Netlist nl;
  const NetId ctrl = nl.add_net("ctrl");
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(ctrl);
  nl.mark_primary_input(a);
  // ctrl fans out to 8 gates, everything else to at most 1.
  for (int i = 0; i < 8; ++i) {
    const NetId y = nl.add_net("y" + std::to_string(i));
    nl.add_gate(GateType::kAnd, y, {ctrl, a});
    nl.mark_primary_output(y);
  }

  AnalysisOptions options;
  options.enabled_rules = {"high-fanout"};
  options.fanout_percentile = 90.0;
  options.min_flagged_fanout = 4;
  const AnalysisResult result = analyze(nl, options);
  ASSERT_EQ(result.findings.size(), 2u);  // ctrl and a both drive 8 gates
  EXPECT_EQ(result.findings[0].severity, diag::Severity::kNote);
  EXPECT_NE(result.findings[0].message.find("candidate clock/reset/control"),
            std::string::npos);
}

TEST(HighFanoutRule, MinFlaggedFanoutSuppressesSmallDesignNoise) {
  // Same design, default min_flagged_fanout (16): fanout 8 is not flagged.
  Netlist nl;
  const NetId ctrl = nl.add_net("ctrl");
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(ctrl);
  nl.mark_primary_input(a);
  for (int i = 0; i < 8; ++i) {
    const NetId y = nl.add_net("y" + std::to_string(i));
    nl.add_gate(GateType::kAnd, y, {ctrl, a});
    nl.mark_primary_output(y);
  }
  EXPECT_TRUE(run_rule(nl, "high-fanout").findings.empty());
}

// --- dff-self-loop ---------------------------------------------------------

TEST(DffSelfLoopRule, FlagsBufferOnlyRecirculation) {
  Netlist nl;
  const NetId q = nl.add_net("q");
  const NetId b = nl.add_net("b");
  nl.add_gate(GateType::kBuf, b, {q});
  nl.add_gate(GateType::kDff, q, {b});
  nl.mark_primary_output(q);

  const AnalysisResult result = run_rule(nl, "dff-self-loop");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_NE(result.findings[0].message.find("state can never change"),
            std::string::npos);
}

TEST(DffSelfLoopRule, ToggleFlopIsLegitimate) {
  Netlist nl;
  const NetId q = nl.add_net("q");
  const NetId n = nl.add_net("n");
  nl.add_gate(GateType::kNot, n, {q});
  nl.add_gate(GateType::kDff, q, {n});
  nl.mark_primary_output(q);
  EXPECT_TRUE(run_rule(nl, "dff-self-loop").findings.empty());
}

TEST(DffSelfLoopRule, DirectSelfDriveIsFlagged) {
  Netlist nl;
  const NetId q = nl.add_net("q");
  nl.add_gate(GateType::kDff, q, {q});
  nl.mark_primary_output(q);
  EXPECT_EQ(run_rule(nl, "dff-self-loop").findings.size(), 1u);
}

// --- engine-level ----------------------------------------------------------

TEST(Analyze, FindingCapFoldsOverflowIntoSummaryFinding) {
  Netlist nl = clean();
  for (int i = 0; i < 4; ++i) {
    const NetId f = nl.add_net("float" + std::to_string(i));
    const NetId z = nl.add_net("z" + std::to_string(i));
    nl.add_gate(GateType::kBuf, z, {f});
    nl.mark_primary_output(z);
  }

  AnalysisOptions options;
  options.enabled_rules = {"undriven-net"};
  options.max_findings_per_rule = 2;
  const AnalysisResult result = analyze(nl, options);
  ASSERT_EQ(result.findings.size(), 3u);
  EXPECT_NE(result.findings[2].message.find(
                "2 further undriven-net finding(s) suppressed"),
            std::string::npos);
}

TEST(Analyze, MultipleDefectsHitMultipleRules) {
  Netlist nl = cyclic();
  const NetId f = nl.add_net("floating");
  const NetId z = nl.add_net("z");
  nl.add_gate(GateType::kBuf, z, {f});

  const AnalysisResult result = analyze(nl);
  const std::vector<std::string> ids = rules_hit(result);
  EXPECT_NE(std::find(ids.begin(), ids.end(), "comb-cycle"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "undriven-net"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "dead-logic"), ids.end());
  EXPECT_TRUE(result.has_finding_at_least(diag::Severity::kError));
}

TEST(Registry, BuiltinHasTwelveRulesAndFindsById) {
  const RuleRegistry& registry = RuleRegistry::builtin();
  EXPECT_EQ(registry.rules().size(), 12u);
  ASSERT_NE(registry.find("comb-cycle"), nullptr);
  ASSERT_NE(registry.find("const-net"), nullptr);
  ASSERT_NE(registry.find("mixed-domain-word"), nullptr);
  EXPECT_EQ(registry.find("comb-cycle")->info().severity,
            diag::Severity::kError);
  EXPECT_EQ(registry.find("nope"), nullptr);
}

TEST(Registry, DuplicateIdIsRejected) {
  RuleRegistry registry;
  register_builtin_rules(registry);
  EXPECT_THROW(register_builtin_rules(registry), std::invalid_argument);
}

TEST(Emit, RendersFindingsIntoDiagSink) {
  const AnalysisResult result = run_rule(cyclic(), "comb-cycle");
  diag::Diagnostics diags;
  emit(result, diags, "cyclic.bench");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.entries()[0].location.file, "cyclic.bench");
  EXPECT_NE(diags.entries()[0].message.find("[comb-cycle]"),
            std::string::npos);
  EXPECT_NE(diags.entries()[0].message.find("(fix: "), std::string::npos);
}

TEST(RequireAcyclic, PassesCleanAndThrowsNamingCycle) {
  EXPECT_NO_THROW(require_acyclic(clean()));
  try {
    require_acyclic(cyclic());
    FAIL() << "expected StructuralDefectError";
  } catch (const StructuralDefectError& error) {
    EXPECT_NE(std::string(error.what()).find("x -> y -> x"),
              std::string::npos);
  }
}

TEST(BreakCycles, CutsEveryCycleAndPreservesGateOrder) {
  const Netlist nl = cyclic();
  diag::Diagnostics diags;
  const CycleBreakResult result = break_combinational_cycles(nl, diags);
  EXPECT_EQ(result.cycles_broken, 1u);
  EXPECT_TRUE(combinational_sccs(result.netlist).empty());
  EXPECT_EQ(diags.warning_count(), 1u);

  // Original gates keep their positions; the tie-off constant appends.
  ASSERT_EQ(result.netlist.gate_count(), nl.gate_count() + 1);
  for (std::size_t g = 0; g < nl.gate_count(); ++g)
    EXPECT_EQ(result.netlist.gate(result.netlist.gate_id_at(g)).type,
              nl.gate(nl.gate_id_at(g)).type);
  EXPECT_EQ(
      result.netlist.gate(result.netlist.gate_id_at(nl.gate_count())).type,
      GateType::kConst0);
  EXPECT_TRUE(result.netlist.find_net("__cut0").has_value());
}

TEST(BreakCycles, NoCyclesMeansUntouchedCopy) {
  const Netlist nl = clean();
  diag::Diagnostics diags;
  const CycleBreakResult result = break_combinational_cycles(nl, diags);
  EXPECT_EQ(result.cycles_broken, 0u);
  EXPECT_EQ(result.netlist.gate_count(), nl.gate_count());
  EXPECT_TRUE(diags.empty());
}

}  // namespace
}  // namespace netrev::analysis
