// Tests for the ternary dataflow engine (analysis/dataflow.h): lattice and
// transfer functions, constant propagation, cycle tolerance, the steady-state
// flop iteration, stuck-flop detection, cancellation, and determinism across
// thread counts — plus the lint rules built directly on the engine
// (const-net, stuck-ff, redundant-mux).
#include "analysis/dataflow.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "common/thread_pool.h"
#include "exec/cancel.h"
#include "itc/family.h"

namespace netrev::analysis {
namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;
using netlist::NetId;

struct Builder {
  Netlist nl;

  NetId pi(const std::string& name) {
    const NetId id = nl.add_net(name);
    nl.mark_primary_input(id);
    return id;
  }
  NetId gate(GateType type, const std::string& name,
             std::initializer_list<NetId> ins) {
    const NetId id = nl.add_net(name);
    nl.add_gate(type, id, ins);
    return id;
  }
};

AnalysisResult run_rule(const Netlist& nl, const std::string& rule) {
  AnalysisOptions options;
  options.enabled_rules = {rule};
  return analyze(nl, options);
}

// --- lattice ---------------------------------------------------------------

TEST(DataflowLattice, JoinBottomIsIdentity) {
  for (const Ternary v : {Ternary::kBottom, Ternary::kZero, Ternary::kOne,
                          Ternary::kX}) {
    EXPECT_EQ(ternary_join(Ternary::kBottom, v), v);
    EXPECT_EQ(ternary_join(v, Ternary::kBottom), v);
  }
}

TEST(DataflowLattice, JoinOfDistinctConstantsIsX) {
  EXPECT_EQ(ternary_join(Ternary::kZero, Ternary::kOne), Ternary::kX);
  EXPECT_EQ(ternary_join(Ternary::kOne, Ternary::kZero), Ternary::kX);
}

TEST(DataflowLattice, JoinXAbsorbsAndJoinIsIdempotent) {
  for (const Ternary v : {Ternary::kBottom, Ternary::kZero, Ternary::kOne,
                          Ternary::kX}) {
    EXPECT_EQ(ternary_join(Ternary::kX, v), Ternary::kX);
    EXPECT_EQ(ternary_join(v, v), v);
  }
}

TEST(DataflowLattice, CodesAreDistinct) {
  EXPECT_EQ(ternary_code(Ternary::kBottom), '_');
  EXPECT_EQ(ternary_code(Ternary::kZero), '0');
  EXPECT_EQ(ternary_code(Ternary::kOne), '1');
  EXPECT_EQ(ternary_code(Ternary::kX), 'X');
}

// --- transfer functions ----------------------------------------------------

TEST(DataflowTransfer, ControllingValuesDominateUnknowns) {
  const Ternary zx[] = {Ternary::kZero, Ternary::kX};
  EXPECT_EQ(eval_gate_ternary(GateType::kAnd, zx), Ternary::kZero);
  EXPECT_EQ(eval_gate_ternary(GateType::kNand, zx), Ternary::kOne);
  const Ternary ox[] = {Ternary::kOne, Ternary::kX};
  EXPECT_EQ(eval_gate_ternary(GateType::kOr, ox), Ternary::kOne);
  EXPECT_EQ(eval_gate_ternary(GateType::kNor, ox), Ternary::kZero);
}

TEST(DataflowTransfer, NonControllingUnknownStaysUnknown) {
  const Ternary ix[] = {Ternary::kOne, Ternary::kX};
  EXPECT_EQ(eval_gate_ternary(GateType::kAnd, ix), Ternary::kX);
  const Ternary zx[] = {Ternary::kZero, Ternary::kX};
  EXPECT_EQ(eval_gate_ternary(GateType::kOr, zx), Ternary::kX);
  EXPECT_EQ(eval_gate_ternary(GateType::kXor, zx), Ternary::kX);
}

TEST(DataflowTransfer, FullyKnownInputsEvaluateExactly) {
  const Ternary oz[] = {Ternary::kOne, Ternary::kZero};
  EXPECT_EQ(eval_gate_ternary(GateType::kXor, oz), Ternary::kOne);
  EXPECT_EQ(eval_gate_ternary(GateType::kXnor, oz), Ternary::kZero);
  const Ternary one[] = {Ternary::kOne};
  EXPECT_EQ(eval_gate_ternary(GateType::kNot, one), Ternary::kZero);
  EXPECT_EQ(eval_gate_ternary(GateType::kBuf, one), Ternary::kOne);
  EXPECT_EQ(eval_gate_ternary(GateType::kConst0, {}), Ternary::kZero);
  EXPECT_EQ(eval_gate_ternary(GateType::kConst1, {}), Ternary::kOne);
}

TEST(DataflowTransfer, BottomInputsProveNothing) {
  // ⊥ is treated as X: an AND of ⊥ and 1 must not claim a constant.
  const Ternary bo[] = {Ternary::kBottom, Ternary::kOne};
  EXPECT_EQ(eval_gate_ternary(GateType::kAnd, bo), Ternary::kX);
  // ...but a controlling 0 still dominates.
  const Ternary bz[] = {Ternary::kBottom, Ternary::kZero};
  EXPECT_EQ(eval_gate_ternary(GateType::kAnd, bz), Ternary::kZero);
}

// --- always valuation ------------------------------------------------------

TEST(DataflowAlways, ConstantsPropagateThroughChains) {
  Builder b;
  const NetId a = b.pi("a");
  const NetId c1 = b.gate(GateType::kConst1, "c1", {});
  const NetId n = b.gate(GateType::kNot, "n", {c1});       // 0
  const NetId y = b.gate(GateType::kAnd, "y", {n, a});     // 0 (controlling)
  const NetId z = b.gate(GateType::kOr, "z", {y, a});      // X
  b.nl.mark_primary_output(z);

  const DataflowFacts facts = run_dataflow(b.nl);
  EXPECT_EQ(facts.always[c1.value()], Ternary::kOne);
  EXPECT_EQ(facts.always[n.value()], Ternary::kZero);
  EXPECT_EQ(facts.always[y.value()], Ternary::kZero);
  EXPECT_EQ(facts.always[a.value()], Ternary::kX);
  EXPECT_EQ(facts.always[z.value()], Ternary::kX);
  EXPECT_TRUE(facts.always_constant(y));
  EXPECT_FALSE(facts.always_constant(z));
}

TEST(DataflowAlways, FlopOutputsArePinnedToX) {
  Builder b;
  const NetId c1 = b.gate(GateType::kConst1, "c1", {});
  const NetId q = b.gate(GateType::kDff, "q", {c1});
  const NetId y = b.gate(GateType::kBuf, "y", {q});
  b.nl.mark_primary_output(y);

  const DataflowFacts facts = run_dataflow(b.nl);
  // `always` must hold at cycle 0 from any power-up state, so the flop and
  // its fanout stay X even though D is constant 1.
  EXPECT_EQ(facts.always[q.value()], Ternary::kX);
  EXPECT_EQ(facts.always[y.value()], Ternary::kX);
}

TEST(DataflowAlways, UndrivenNetsAreBottomAndProveNothing) {
  Builder b;
  const NetId floating = b.nl.add_net("floating");  // no driver, not a PI
  const NetId y = b.gate(GateType::kAnd, "y", {floating, floating});
  b.nl.mark_primary_output(y);

  const DataflowFacts facts = run_dataflow(b.nl);
  EXPECT_EQ(facts.always[floating.value()], Ternary::kBottom);
  EXPECT_FALSE(facts.always_constant(floating));
  EXPECT_FALSE(facts.always_constant(y));
}

TEST(DataflowAlways, TerminatesOnCombinationalCycles) {
  Builder b;
  const NetId a = b.pi("a");
  const NetId x = b.nl.add_net("x");
  const NetId y = b.nl.add_net("y");
  b.nl.add_gate(GateType::kAnd, x, {a, y});
  b.nl.add_gate(GateType::kBuf, y, {x});
  b.nl.mark_primary_output(y);

  const DataflowFacts facts = run_dataflow(b.nl);  // must not hang
  EXPECT_EQ(facts.always[x.value()], Ternary::kX);
  EXPECT_EQ(facts.always[y.value()], Ternary::kX);
}

TEST(DataflowAlways, ConstantSideInputBreaksIntoCycle) {
  Builder b;
  const NetId c0 = b.gate(GateType::kConst0, "c0", {});
  const NetId x = b.nl.add_net("x");
  const NetId y = b.nl.add_net("y");
  // x = AND(c0, y) is 0 regardless of the cycle; y follows.
  b.nl.add_gate(GateType::kAnd, x, {c0, y});
  b.nl.add_gate(GateType::kBuf, y, {x});
  b.nl.mark_primary_output(y);

  const DataflowFacts facts = run_dataflow(b.nl);
  EXPECT_EQ(facts.always[x.value()], Ternary::kZero);
  EXPECT_EQ(facts.always[y.value()], Ternary::kZero);
}

TEST(DataflowAlways, ConstantMaskMatchesAlwaysConstant) {
  Builder b;
  const NetId a = b.pi("a");
  const NetId c0 = b.gate(GateType::kConst0, "c0", {});
  const NetId y = b.gate(GateType::kAnd, "y", {a, c0});
  b.nl.mark_primary_output(y);

  const DataflowFacts facts = run_dataflow(b.nl);
  const std::vector<std::uint8_t> mask = facts.constant_mask();
  ASSERT_EQ(mask.size(), b.nl.net_count());
  for (std::size_t i = 0; i < mask.size(); ++i) {
    EXPECT_EQ(mask[i] != 0, facts.always_constant(b.nl.net_id_at(i)))
        << "net index " << i;
  }
  EXPECT_NE(mask[y.value()], 0);
  EXPECT_EQ(mask[a.value()], 0);
}

// --- steady valuation ------------------------------------------------------

TEST(DataflowSteady, FlopFedConstantSettles) {
  Builder b;
  const NetId c1 = b.gate(GateType::kConst1, "c1", {});
  const NetId q = b.gate(GateType::kDff, "q", {c1});
  b.nl.mark_primary_output(q);

  const DataflowFacts facts = run_dataflow(b.nl);
  EXPECT_TRUE(facts.converged);
  EXPECT_EQ(facts.steady[q.value()], Ternary::kOne);
  EXPECT_TRUE(facts.steady_constant(q));
  // ...while `always` still holds X at cycle 0.
  EXPECT_EQ(facts.always[q.value()], Ternary::kX);
}

TEST(DataflowSteady, ConstantRipplesDownFlopChain) {
  Builder b;
  const NetId c0 = b.gate(GateType::kConst0, "c0", {});
  const NetId q0 = b.gate(GateType::kDff, "q0", {c0});
  const NetId q1 = b.gate(GateType::kDff, "q1", {q0});
  const NetId q2 = b.gate(GateType::kDff, "q2", {q1});
  b.nl.mark_primary_output(q2);

  const DataflowFacts facts = run_dataflow(b.nl);
  EXPECT_TRUE(facts.converged);
  EXPECT_EQ(facts.steady[q0.value()], Ternary::kZero);
  EXPECT_EQ(facts.steady[q1.value()], Ternary::kZero);
  EXPECT_EQ(facts.steady[q2.value()], Ternary::kZero);
  EXPECT_GE(facts.iterations, 3u);
}

TEST(DataflowSteady, OscillatingFlopFreezesAtX) {
  Builder b;
  const NetId q = b.nl.add_net("q");
  const NetId nq = b.nl.add_net("nq");
  b.nl.add_gate(GateType::kDff, q, {nq});
  b.nl.add_gate(GateType::kNot, nq, {q});
  b.nl.mark_primary_output(q);

  const DataflowFacts facts = run_dataflow(b.nl);  // must not diverge
  EXPECT_EQ(facts.steady[q.value()], Ternary::kX);
  EXPECT_FALSE(facts.steady_constant(q));
}

TEST(DataflowSteady, IterationBudgetExhaustionFallsBackToAlways) {
  // A 4-deep flop chain cannot settle in 1 round; the sound fallback is
  // steady == always.
  Builder b;
  const NetId c1 = b.gate(GateType::kConst1, "c1", {});
  NetId prev = c1;
  for (int i = 0; i < 4; ++i)
    prev = b.gate(GateType::kDff, "q" + std::to_string(i), {prev});
  b.nl.mark_primary_output(prev);

  DataflowOptions options;
  options.max_iterations = 1;
  const DataflowFacts facts = run_dataflow(b.nl, options);
  EXPECT_FALSE(facts.converged);
  EXPECT_EQ(facts.steady, facts.always);
}

// --- stuck flops -----------------------------------------------------------

TEST(DataflowStuck, SelfLoopThroughBufferHoldsState) {
  Builder b;
  const NetId q = b.nl.add_net("q");
  const NetId d = b.nl.add_net("d");
  b.nl.add_gate(GateType::kDff, q, {d});
  b.nl.add_gate(GateType::kBuf, d, {q});
  b.nl.mark_primary_output(q);

  const DataflowFacts facts = run_dataflow(b.nl);
  ASSERT_EQ(facts.stuck_flops.size(), 1u);
  EXPECT_TRUE(facts.stuck_flops[0].holds_state);
}

TEST(DataflowStuck, RecirculatingMuxWithDeadSelectHoldsState) {
  // d = OR(AND(en, din), AND(!en, q)) with en tied 0: d always equals q.
  Builder b;
  const NetId din = b.pi("din");
  const NetId en = b.gate(GateType::kConst0, "en", {});
  const NetId nen = b.gate(GateType::kNot, "nen", {en});
  const NetId q = b.nl.add_net("q");
  const NetId load = b.gate(GateType::kAnd, "load", {en, din});
  const NetId hold = b.gate(GateType::kAnd, "hold", {nen, q});
  const NetId d = b.gate(GateType::kOr, "d", {load, hold});
  b.nl.add_gate(GateType::kDff, q, {d});
  b.nl.mark_primary_output(q);

  const DataflowFacts facts = run_dataflow(b.nl);
  ASSERT_EQ(facts.stuck_flops.size(), 1u);
  EXPECT_EQ(facts.stuck_flops[0].flop, b.nl.driver_of(q).value());
  EXPECT_TRUE(facts.stuck_flops[0].holds_state);
}

TEST(DataflowStuck, LiveFlopIsNotReported) {
  Builder b;
  const NetId din = b.pi("din");
  const NetId q = b.gate(GateType::kDff, "q", {din});
  b.nl.mark_primary_output(q);

  const DataflowFacts facts = run_dataflow(b.nl);
  EXPECT_TRUE(facts.stuck_flops.empty());
}

// --- engine-level ----------------------------------------------------------

TEST(DataflowEngine, CancelledCheckpointStopsTheRun) {
  const Netlist nl = itc::build_benchmark("b03s").netlist;
  exec::CancelToken token;
  token.request_cancel();
  DataflowOptions options;
  options.checkpoint = exec::Checkpoint(token, exec::Deadline());
  EXPECT_THROW((void)run_dataflow(nl, options), exec::CancelledError);
}

TEST(DataflowEngine, FactsAreIdenticalAtAnyJobCount) {
  const Netlist nl = itc::build_benchmark("b13s").netlist;
  const std::size_t restore = ThreadPool::global_jobs();
  ThreadPool::set_global_jobs(1);
  const DataflowFacts serial = run_dataflow(nl);
  ThreadPool::set_global_jobs(8);
  const DataflowFacts parallel = run_dataflow(nl);
  ThreadPool::set_global_jobs(restore);

  EXPECT_EQ(serial.always, parallel.always);
  EXPECT_EQ(serial.steady, parallel.steady);
  EXPECT_EQ(serial.iterations, parallel.iterations);
  ASSERT_EQ(serial.stuck_flops.size(), parallel.stuck_flops.size());
  for (std::size_t i = 0; i < serial.stuck_flops.size(); ++i) {
    EXPECT_EQ(serial.stuck_flops[i].flop, parallel.stuck_flops[i].flop);
    EXPECT_EQ(serial.stuck_flops[i].holds_state,
              parallel.stuck_flops[i].holds_state);
    EXPECT_EQ(serial.stuck_flops[i].settles_to,
              parallel.stuck_flops[i].settles_to);
  }
}

TEST(DataflowEngine, CombinationalOrderRespectsDependencies) {
  Builder b;
  const NetId a = b.pi("a");
  const NetId x = b.gate(GateType::kNot, "x", {a});
  const NetId y = b.gate(GateType::kAnd, "y", {x, a});
  const NetId z = b.gate(GateType::kOr, "z", {y, x});
  b.nl.mark_primary_output(z);

  const std::vector<GateId> order = combinational_order(b.nl);
  ASSERT_EQ(order.size(), 3u);
  auto position = [&](NetId out) {
    for (std::size_t i = 0; i < order.size(); ++i)
      if (b.nl.gate(order[i]).output == out) return i;
    return order.size();
  };
  EXPECT_LT(position(x), position(y));
  EXPECT_LT(position(y), position(z));
}

TEST(DataflowEngine, CombinationalOrderToleratesCycles) {
  Builder b;
  const NetId a = b.pi("a");
  const NetId x = b.nl.add_net("x");
  const NetId y = b.nl.add_net("y");
  b.nl.add_gate(GateType::kAnd, x, {a, y});
  b.nl.add_gate(GateType::kBuf, y, {x});
  b.nl.mark_primary_output(y);
  EXPECT_EQ(combinational_order(b.nl).size(), 2u);  // all gates, no throw
}

// --- const-net rule --------------------------------------------------------

TEST(DataflowRules, ConstNetFlagsDerivedConstantsOnly) {
  Builder b;
  const NetId a = b.pi("a");
  const NetId c0 = b.gate(GateType::kConst0, "c0", {});
  const NetId y = b.gate(GateType::kAnd, "y", {a, c0});  // derived constant
  b.nl.mark_primary_output(y);

  const AnalysisResult result = run_rule(b.nl, "const-net");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "const-net");
  EXPECT_NE(result.findings[0].message.find("'y'"), std::string::npos);
  EXPECT_NE(result.findings[0].message.find("constant 0"), std::string::npos);
  // The constant gate's own net c0 is not a finding.
  ASSERT_EQ(result.findings[0].nets.size(), 1u);
  EXPECT_EQ(result.findings[0].nets[0], y);
}

TEST(DataflowRules, ConstNetSilentOnLiveLogic) {
  Builder b;
  const NetId a = b.pi("a");
  const NetId c = b.pi("c");
  const NetId y = b.gate(GateType::kAnd, "y", {a, c});
  b.nl.mark_primary_output(y);
  EXPECT_TRUE(run_rule(b.nl, "const-net").findings.empty());
}

// --- stuck-ff rule ---------------------------------------------------------

TEST(DataflowRules, StuckFfFlagsHoldState) {
  Builder b;
  const NetId q = b.nl.add_net("q");
  b.nl.add_gate(GateType::kDff, q, {q});  // d wired straight to q
  b.nl.mark_primary_output(q);

  const AnalysisResult result = run_rule(b.nl, "stuck-ff");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_NE(result.findings[0].message.find("never change state"),
            std::string::npos);
}

TEST(DataflowRules, StuckFfFlagsSettlingFlop) {
  Builder b;
  const NetId c1 = b.gate(GateType::kConst1, "c1", {});
  const NetId q = b.gate(GateType::kDff, "q", {c1});
  b.nl.mark_primary_output(q);

  const AnalysisResult result = run_rule(b.nl, "stuck-ff");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_NE(result.findings[0].message.find("settles to constant 1"),
            std::string::npos);
}

TEST(DataflowRules, StuckFfSilentOnLiveFlop) {
  Builder b;
  const NetId din = b.pi("din");
  const NetId q = b.gate(GateType::kDff, "q", {din});
  b.nl.mark_primary_output(q);
  EXPECT_TRUE(run_rule(b.nl, "stuck-ff").findings.empty());
}

// --- redundant-mux rule ----------------------------------------------------

TEST(DataflowRules, RedundantMuxFlagsConstantSelect) {
  Builder b;
  const NetId d0 = b.pi("d0");
  const NetId d1 = b.pi("d1");
  const NetId sel = b.gate(GateType::kConst1, "sel_const", {});
  const NetId sel_wire = b.gate(GateType::kBuf, "sel", {sel});
  const NetId nsel = b.gate(GateType::kNot, "nsel", {sel_wire});
  const NetId t = b.gate(GateType::kAnd, "t", {sel_wire, d1});
  const NetId e = b.gate(GateType::kAnd, "e", {nsel, d0});
  const NetId y = b.gate(GateType::kOr, "y", {t, e});
  b.nl.mark_primary_output(y);

  const AnalysisResult result = run_rule(b.nl, "redundant-mux");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "redundant-mux");
  EXPECT_NE(result.findings[0].message.find("'y'"), std::string::npos);
}

TEST(DataflowRules, RedundantMuxSilentOnLiveSelect) {
  Builder b;
  const NetId d0 = b.pi("d0");
  const NetId d1 = b.pi("d1");
  const NetId sel = b.pi("sel");
  const NetId nsel = b.gate(GateType::kNot, "nsel", {sel});
  const NetId t = b.gate(GateType::kAnd, "t", {sel, d1});
  const NetId e = b.gate(GateType::kAnd, "e", {nsel, d0});
  const NetId y = b.gate(GateType::kOr, "y", {t, e});
  b.nl.mark_primary_output(y);
  EXPECT_TRUE(run_rule(b.nl, "redundant-mux").findings.empty());
}

TEST(DataflowRules, FamilyBenchmarksAreCleanUnderDataflowRules) {
  // The ITC'99-style families contain no derived constants, so none of the
  // engine-backed warning rules may fire — this is what keeps the lint gate
  // in scripts/check.sh green at --fail-on=warning.
  for (const char* name : {"b03s", "b13s"}) {
    SCOPED_TRACE(name);
    const Netlist nl = itc::build_benchmark(name).netlist;
    for (const char* rule : {"const-net", "stuck-ff", "redundant-mux"}) {
      SCOPED_TRACE(rule);
      EXPECT_TRUE(run_rule(nl, rule).findings.empty());
    }
  }
}

}  // namespace
}  // namespace netrev::analysis
