// Tests for the control-domain inference (analysis/domains.h): root tracing
// with polarity, enable-mux / sync-set / sync-reset detection across gate
// forms, the min_control_fanout gate, deterministic grouping, and the
// mixed-domain-word lint rule built on the groups.
#include "analysis/domains.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "common/thread_pool.h"
#include "exec/cancel.h"
#include "itc/family.h"

namespace netrev::analysis {
namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;
using netlist::NetId;

struct Builder {
  Netlist nl;

  NetId pi(const std::string& name) {
    const NetId id = nl.add_net(name);
    nl.mark_primary_input(id);
    return id;
  }
  NetId gate(GateType type, const std::string& name,
             std::initializer_list<NetId> ins) {
    const NetId id = nl.add_net(name);
    nl.add_gate(type, id, ins);
    return id;
  }
  // One load-enable bit in AND-OR form: d = (en & din) | (!en & q).
  NetId enable_bit(NetId en, NetId nen, NetId din, const std::string& name) {
    const NetId q = nl.add_net(name);
    const NetId load = gate(GateType::kAnd, name + "_load", {en, din});
    const NetId hold = gate(GateType::kAnd, name + "_hold", {nen, q});
    const NetId d = gate(GateType::kOr, name + "_d", {load, hold});
    nl.add_gate(GateType::kDff, q, {d});
    return q;
  }
};

const DomainSignature& signature_of(const DomainAnalysis& analysis,
                                    const Netlist& nl,
                                    const std::string& q_name) {
  for (const FlopDomain& flop : analysis.flops)
    if (nl.net(nl.gate(flop.flop).output).name == q_name)
      return flop.signature;
  static const DomainSignature kMissing;
  ADD_FAILURE() << "no flop with output '" << q_name << "'";
  return kMissing;
}

// --- root tracing ----------------------------------------------------------

TEST(DomainTrace, WireChainsCollapseOntoTheRoot) {
  Builder b;
  const NetId root = b.pi("root");
  const NetId w1 = b.gate(GateType::kBuf, "w1", {root});
  const NetId w2 = b.gate(GateType::kBuf, "w2", {w1});
  b.nl.mark_primary_output(w2);

  const ControlRoot traced = trace_control_root(b.nl, w2);
  EXPECT_EQ(traced.net, root);
  EXPECT_TRUE(traced.active_high);
}

TEST(DomainTrace, InversionsFoldIntoPolarity) {
  Builder b;
  const NetId root = b.pi("root");
  const NetId n1 = b.gate(GateType::kNot, "n1", {root});
  const NetId n2 = b.gate(GateType::kNot, "n2", {n1});
  b.nl.mark_primary_output(n2);

  const ControlRoot once = trace_control_root(b.nl, n1);
  EXPECT_EQ(once.net, root);
  EXPECT_FALSE(once.active_high);
  const ControlRoot twice = trace_control_root(b.nl, n2);
  EXPECT_EQ(twice.net, root);
  EXPECT_TRUE(twice.active_high);
  // Tracing the active-low sense flips the answer.
  EXPECT_FALSE(trace_control_root(b.nl, n2, /*active_high=*/false).active_high);
}

TEST(DomainTrace, StopsAtNonWireDrivers) {
  Builder b;
  const NetId a = b.pi("a");
  const NetId c = b.pi("c");
  const NetId y = b.gate(GateType::kAnd, "y", {a, c});
  const NetId w = b.gate(GateType::kBuf, "w", {y});
  b.nl.mark_primary_output(w);
  EXPECT_EQ(trace_control_root(b.nl, w).net, y);
}

TEST(DomainTrace, BufferCycleTerminates) {
  Builder b;
  const NetId x = b.nl.add_net("x");
  const NetId y = b.nl.add_net("y");
  b.nl.add_gate(GateType::kBuf, x, {y});
  b.nl.add_gate(GateType::kBuf, y, {x});
  b.nl.mark_primary_output(y);
  EXPECT_TRUE(trace_control_root(b.nl, y).valid());  // must not hang
}

// --- enable detection ------------------------------------------------------

TEST(DomainEnable, AndOrMuxYieldsActiveHighEnable) {
  Builder b;
  const NetId en = b.pi("load_en");
  const NetId nen = b.gate(GateType::kNot, "nen", {en});
  for (int i = 0; i < 4; ++i) {
    const std::string tag = std::to_string(i);
    b.enable_bit(en, nen, b.pi("din" + tag), "r[" + tag + "]");
  }

  const DomainAnalysis analysis = analyze_domains(b.nl);
  const DomainSignature& sig = signature_of(analysis, b.nl, "r[0]");
  ASSERT_TRUE(sig.enable.valid());
  EXPECT_EQ(sig.enable.net, en);
  EXPECT_TRUE(sig.enable.active_high);
  EXPECT_TRUE(sig.sets.empty());
  EXPECT_TRUE(sig.resets.empty());
  EXPECT_EQ(sig.describe(b.nl), "enable=load_en");
}

TEST(DomainEnable, NandNandMuxNormalizesToTheSameEnable) {
  Builder b;
  const NetId en = b.pi("load_en");
  const NetId nen = b.gate(GateType::kNot, "nen", {en});
  for (int i = 0; i < 4; ++i) {
    const std::string tag = std::to_string(i);
    const NetId din = b.pi("din" + tag);
    const NetId q = b.nl.add_net("r[" + tag + "]");
    const NetId load = b.gate(GateType::kNand, "load" + tag, {en, din});
    const NetId hold = b.gate(GateType::kNand, "hold" + tag, {nen, q});
    const NetId d = b.gate(GateType::kNand, "d" + tag, {load, hold});
    b.nl.add_gate(GateType::kDff, q, {d});
  }

  const DomainAnalysis analysis = analyze_domains(b.nl);
  const DomainSignature& sig = signature_of(analysis, b.nl, "r[2]");
  ASSERT_TRUE(sig.enable.valid());
  EXPECT_EQ(sig.enable.net, en);
  EXPECT_TRUE(sig.enable.active_high);
}

TEST(DomainEnable, BothBranchesRecirculatingIsNotAnEnable) {
  Builder b;
  const NetId sel = b.pi("sel");
  const NetId nsel = b.gate(GateType::kNot, "nsel", {sel});
  const NetId extra0 = b.gate(GateType::kBuf, "extra0", {sel});
  const NetId extra1 = b.gate(GateType::kBuf, "extra1", {sel});
  b.nl.mark_primary_output(extra0);
  b.nl.mark_primary_output(extra1);
  const NetId q = b.nl.add_net("q");
  const NetId t0 = b.gate(GateType::kAnd, "t0", {sel, q});
  const NetId t1 = b.gate(GateType::kAnd, "t1", {nsel, q});
  const NetId d = b.gate(GateType::kOr, "d", {t0, t1});
  b.nl.add_gate(GateType::kDff, q, {d});

  DomainOptions options;
  options.min_control_fanout = 1;
  const DomainAnalysis analysis = analyze_domains(b.nl, options);
  EXPECT_FALSE(signature_of(analysis, b.nl, "q").enable.valid());
}

// --- set / reset detection -------------------------------------------------

TEST(DomainSets, SharedOrTermIsAnActiveHighSet) {
  Builder b;
  const NetId set = b.pi("set");
  for (int i = 0; i < 4; ++i) {
    const std::string tag = std::to_string(i);
    const NetId x = b.pi("x" + tag);
    const NetId q = b.nl.add_net("r[" + tag + "]");
    const NetId d = b.gate(GateType::kOr, "d" + tag, {set, x});
    b.nl.add_gate(GateType::kDff, q, {d});
  }

  const DomainAnalysis analysis = analyze_domains(b.nl);
  const DomainSignature& sig = signature_of(analysis, b.nl, "r[1]");
  ASSERT_EQ(sig.sets.size(), 1u);
  EXPECT_EQ(sig.sets[0].net, set);
  EXPECT_TRUE(sig.sets[0].active_high);
  // The per-bit data wires x0..x3 (fanout 1 < min_control_fanout) must not
  // be mistaken for control.
  EXPECT_TRUE(sig.resets.empty());
  EXPECT_EQ(sig.describe(b.nl), "set=set");
}

TEST(DomainResets, SharedAndTermIsAnActiveLowReset) {
  Builder b;
  const NetId rstn = b.pi("rstn");
  for (int i = 0; i < 4; ++i) {
    const std::string tag = std::to_string(i);
    const NetId x = b.pi("x" + tag);
    const NetId q = b.nl.add_net("r[" + tag + "]");
    const NetId d = b.gate(GateType::kAnd, "d" + tag, {rstn, x});
    b.nl.add_gate(GateType::kDff, q, {d});
  }

  const DomainAnalysis analysis = analyze_domains(b.nl);
  const DomainSignature& sig = signature_of(analysis, b.nl, "r[3]");
  ASSERT_EQ(sig.resets.size(), 1u);
  EXPECT_EQ(sig.resets[0].net, rstn);
  // d = rstn & x: driving rstn LOW forces D to 0, so the reset asserts low.
  EXPECT_FALSE(sig.resets[0].active_high);
  EXPECT_EQ(sig.describe(b.nl), "reset=!rstn");
}

TEST(DomainSets, BufferedControlCollapsesOntoOneRoot) {
  // Per-bit buffer trees on the same set line must produce ONE signature.
  Builder b;
  const NetId set = b.pi("set");
  for (int i = 0; i < 4; ++i) {
    const std::string tag = std::to_string(i);
    const NetId buffered =
        b.gate(GateType::kBuf, "set_buf" + tag, {set});
    const NetId x = b.pi("x" + tag);
    const NetId q = b.nl.add_net("r[" + tag + "]");
    const NetId d = b.gate(GateType::kOr, "d" + tag, {buffered, x});
    b.nl.add_gate(GateType::kDff, q, {d});
  }

  const DomainAnalysis analysis = analyze_domains(b.nl);
  const DomainSignature& first = signature_of(analysis, b.nl, "r[0]");
  ASSERT_EQ(first.sets.size(), 1u);
  EXPECT_EQ(first.sets[0].net, set);
  for (int i = 1; i < 4; ++i)
    EXPECT_EQ(signature_of(analysis, b.nl, "r[" + std::to_string(i) + "]"),
              first);
}

TEST(DomainOptionsTest, MinControlFanoutGatesLowFanoutRoots) {
  Builder b;
  const NetId set = b.pi("set");  // feeds exactly one gate
  const NetId x = b.pi("x");
  const NetId q = b.nl.add_net("q");
  const NetId d = b.gate(GateType::kOr, "d", {set, x});
  b.nl.add_gate(GateType::kDff, q, {d});

  EXPECT_TRUE(signature_of(analyze_domains(b.nl), b.nl, "q").trivial());
  DomainOptions permissive;
  permissive.min_control_fanout = 1;
  EXPECT_FALSE(
      signature_of(analyze_domains(b.nl, permissive), b.nl, "q").trivial());
}

// --- grouping --------------------------------------------------------------

TEST(DomainGrouping, SharedEnableRegisterFormsOneGroup) {
  Builder b;
  const NetId en = b.pi("load_en");
  const NetId nen = b.gate(GateType::kNot, "nen", {en});
  for (int i = 0; i < 4; ++i) {
    const std::string tag = std::to_string(i);
    b.enable_bit(en, nen, b.pi("din" + tag), "r[" + tag + "]");
  }
  // One free-running flop lands in its own (trivial) group.
  const NetId other = b.gate(GateType::kDff, "lone", {b.pi("dl")});
  b.nl.mark_primary_output(other);

  const DomainAnalysis analysis = analyze_domains(b.nl);
  ASSERT_EQ(analysis.groups.size(), 2u);
  // First-member file order: the register bits were added first.
  EXPECT_EQ(analysis.groups[0].flops.size(), 4u);
  EXPECT_TRUE(analysis.groups[0].signature.enable.valid());
  EXPECT_EQ(analysis.groups[1].flops.size(), 1u);
  EXPECT_TRUE(analysis.groups[1].signature.trivial());
}

TEST(DomainGrouping, ResultsAreIdenticalAtAnyJobCount) {
  const Netlist nl = itc::build_benchmark("b13s").netlist;
  const std::size_t restore = ThreadPool::global_jobs();
  ThreadPool::set_global_jobs(1);
  const DomainAnalysis serial = analyze_domains(nl);
  ThreadPool::set_global_jobs(8);
  const DomainAnalysis parallel = analyze_domains(nl);
  ThreadPool::set_global_jobs(restore);

  ASSERT_EQ(serial.flops.size(), parallel.flops.size());
  for (std::size_t i = 0; i < serial.flops.size(); ++i) {
    EXPECT_EQ(serial.flops[i].flop, parallel.flops[i].flop);
    EXPECT_EQ(serial.flops[i].signature, parallel.flops[i].signature);
  }
  ASSERT_EQ(serial.groups.size(), parallel.groups.size());
  for (std::size_t i = 0; i < serial.groups.size(); ++i) {
    EXPECT_EQ(serial.groups[i].signature, parallel.groups[i].signature);
    EXPECT_EQ(serial.groups[i].flops, parallel.groups[i].flops);
  }
}

TEST(DomainEngine, CancelledCheckpointStopsTheRun) {
  const Netlist nl = itc::build_benchmark("b03s").netlist;
  exec::CancelToken token;
  token.request_cancel();
  DomainOptions options;
  options.checkpoint = exec::Checkpoint(token, exec::Deadline());
  EXPECT_THROW((void)analyze_domains(nl, options), exec::CancelledError);
}

// --- mux-select detection --------------------------------------------------

TEST(DomainMux, DetectsAndOrSelect) {
  Builder b;
  const NetId d0 = b.pi("d0");
  const NetId d1 = b.pi("d1");
  const NetId sel = b.pi("sel");
  const NetId nsel = b.gate(GateType::kNot, "nsel", {sel});
  const NetId t = b.gate(GateType::kAnd, "t", {sel, d1});
  const NetId e = b.gate(GateType::kAnd, "e", {nsel, d0});
  const NetId y = b.gate(GateType::kOr, "y", {t, e});
  b.nl.mark_primary_output(y);

  const auto select = detect_mux_select(b.nl, b.nl.driver_of(y).value());
  ASSERT_TRUE(select.has_value());
  EXPECT_EQ(*select, sel);
  // The product terms themselves are not muxes.
  EXPECT_FALSE(detect_mux_select(b.nl, b.nl.driver_of(t).value()).has_value());
}

TEST(DomainMux, PlainAndIsNotAMux) {
  Builder b;
  const NetId a = b.pi("a");
  const NetId c = b.pi("c");
  const NetId y = b.gate(GateType::kAnd, "y", {a, c});
  b.nl.mark_primary_output(y);
  EXPECT_FALSE(detect_mux_select(b.nl, b.nl.driver_of(y).value()).has_value());
}

// --- mixed-domain-word rule ------------------------------------------------

AnalysisResult run_mixed_domain(const Netlist& nl) {
  AnalysisOptions options;
  options.enabled_rules = {"mixed-domain-word"};
  return analyze(nl, options);
}

TEST(DomainRules, MixedDomainWordFlagsMinorityOutlier) {
  Builder b;
  const NetId en = b.pi("load_en");
  const NetId nen = b.gate(GateType::kNot, "nen", {en});
  for (int i = 0; i < 3; ++i) {
    const std::string tag = std::to_string(i);
    b.enable_bit(en, nen, b.pi("din" + tag), "r[" + tag + "]");
  }
  // Bit 3 free-runs: 3-of-4 dominant enable domain, one outlier.
  const NetId outlier = b.gate(GateType::kDff, "r[3]", {b.pi("din3")});
  b.nl.mark_primary_output(outlier);

  const AnalysisResult result = run_mixed_domain(b.nl);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "mixed-domain-word");
  EXPECT_NE(result.findings[0].message.find("register 'r'"),
            std::string::npos);
  EXPECT_NE(result.findings[0].message.find("enable=load_en"),
            std::string::npos);
  ASSERT_EQ(result.findings[0].nets.size(), 1u);
  EXPECT_EQ(result.findings[0].nets[0], outlier);
}

TEST(DomainRules, MixedDomainWordSilentWithoutADominantMajority) {
  // Every bit carries its own set-term (an FSM-style state register): no
  // dominant domain, so the rule must stay quiet.
  Builder b;
  for (int i = 0; i < 4; ++i) {
    const std::string tag = std::to_string(i);
    const NetId ctrl = b.pi("c" + tag);
    // Fan each control out so it clears min_control_fanout.
    b.nl.mark_primary_output(b.gate(GateType::kBuf, "cb" + tag, {ctrl}));
    b.nl.mark_primary_output(b.gate(GateType::kBuf, "cc" + tag, {ctrl}));
    const NetId x = b.pi("x" + tag);
    const NetId q = b.nl.add_net("s[" + tag + "]");
    const NetId d = b.gate(GateType::kOr, "d" + tag, {ctrl, x});
    b.nl.add_gate(GateType::kDff, q, {d});
  }
  EXPECT_TRUE(run_mixed_domain(b.nl).findings.empty());
}

TEST(DomainRules, MixedDomainWordSilentOnUniformRegister) {
  Builder b;
  const NetId en = b.pi("load_en");
  const NetId nen = b.gate(GateType::kNot, "nen", {en});
  for (int i = 0; i < 4; ++i) {
    const std::string tag = std::to_string(i);
    b.enable_bit(en, nen, b.pi("din" + tag), "r[" + tag + "]");
  }
  EXPECT_TRUE(run_mixed_domain(b.nl).findings.empty());
}

}  // namespace
}  // namespace netrev::analysis
