#include "rtl/synth.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "netlist/validate.h"
#include "rtl/netnamer.h"
#include "sim/simulator.h"

namespace netrev::rtl {
namespace {

using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

// Drives a synthesized netlist and mirrors it against the RTL interpreter.
class CoSim {
 public:
  CoSim(const Module& module, const SynthesisResult& synth)
      : module_(&module), synth_(&synth), sim_(synth.netlist) {}

  void set_input(const std::string& name, std::uint64_t value) {
    input_values_[name] = value;
    const Port* port = nullptr;
    for (const Port& p : module_->inputs())
      if (p.name == name) port = &p;
    ASSERT_NE(port, nullptr);
    for (std::size_t i = 0; i < port->width; ++i) {
      const auto net =
          synth_->netlist.find_net(bit_name(name, i, port->width));
      ASSERT_TRUE(net.has_value());
      sim_.set_input(*net, (value >> i) & 1);
    }
  }

  void set_register(const std::string& name, std::uint64_t value) {
    reg_values_[name] = value;
    const Register* reg = module_->find_register(name);
    ASSERT_NE(reg, nullptr);
    for (std::size_t i = 0; i < reg->width; ++i) {
      const auto net =
          synth_->netlist.find_net(flop_output_name(name, i, reg->width));
      ASSERT_TRUE(net.has_value());
      sim_.set_state(*net, (value >> i) & 1);
    }
  }

  // Evaluates and checks every register's next state against the
  // interpreter; then steps both models.
  void check_and_step() {
    sim_.eval();
    EvalEnv env;
    env.context = this;
    env.lookup_input = [](const std::string& name, void* ctx) {
      return static_cast<CoSim*>(ctx)->input_values_.at(name);
    };
    env.lookup_reg = [](const std::string& name, void* ctx) {
      return static_cast<CoSim*>(ctx)->reg_values_.at(name);
    };

    std::map<std::string, std::uint64_t> next_values;
    for (const Register& reg : module_->registers()) {
      const std::uint64_t expected = evaluate(*reg.next, env);
      std::uint64_t measured = 0;
      const auto& d_nets = synth_->register_d_nets.at(reg.name);
      for (std::size_t i = 0; i < d_nets.size(); ++i)
        measured |= static_cast<std::uint64_t>(sim_.value(d_nets[i])) << i;
      EXPECT_EQ(measured, expected) << "register " << reg.name;
      next_values[reg.name] = expected;
    }
    sim_.step();
    reg_values_ = std::move(next_values);
  }

 private:
  const Module* module_;
  const SynthesisResult* synth_;
  sim::Simulator sim_;
  std::map<std::string, std::uint64_t> input_values_;
  std::map<std::string, std::uint64_t> reg_values_;
};

Module datapath_module() {
  Module m("dp");
  const auto din = m.add_input("DIN", 8);
  const auto sel = m.add_input("SEL", 1);
  const auto hold = m.add_register("HOLD", 8);
  const auto acc = m.add_register("ACC", 8);
  const auto cnt = m.add_register("CNT", 4);
  const auto shifty = m.add_register("SHIFTY", 4);
  m.set_next("HOLD", mux(sel, hold, din));
  m.set_next("ACC", add(acc, hold));
  m.set_next("CNT", sub(cnt, constant(1, 4)));
  m.set_next("SHIFTY", mux(lt(cnt, constant(9, 4)), shr(shifty, 1),
                           shl(shifty, 2)));
  m.add_output("DOUT", bit_xor(acc, hold));
  m.add_output("ZERO", eq(cnt, constant(0, 4)));
  return m;
}

TEST(Synth, ProducesValidNetlist) {
  const auto synth = synthesize(datapath_module());
  const auto report = netlist::validate(synth.netlist);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Synth, RegisterNamesSurviveOnFlopOutputs) {
  const auto synth = synthesize(datapath_module());
  EXPECT_TRUE(synth.netlist.find_net("HOLD_reg_0_").has_value());
  EXPECT_TRUE(synth.netlist.find_net("ACC_reg_7_").has_value());
  EXPECT_TRUE(synth.netlist.find_net("CNT_reg_3_").has_value());
  EXPECT_TRUE(
      synth.netlist.is_flop_output(*synth.netlist.find_net("HOLD_reg_0_")));
}

TEST(Synth, InternalNetsAreAnonymous) {
  const auto synth = synthesize(datapath_module());
  std::size_t u_named = 0;
  for (std::size_t i = 0; i < synth.netlist.net_count(); ++i) {
    const auto& name = synth.netlist.net(synth.netlist.net_id_at(i)).name;
    if (name.size() > 1 && name[0] == 'U' &&
        std::isdigit(static_cast<unsigned char>(name[1])))
      ++u_named;
  }
  EXPECT_GT(u_named, 10u);
}

TEST(Synth, WordRootGatesLandOnConsecutiveLines) {
  const auto synth = synthesize(datapath_module());
  // The D nets of HOLD must be driven by gates occupying consecutive file
  // positions (this is what §2.2 grouping relies on).
  const auto& d_nets = synth.register_d_nets.at("HOLD");
  std::vector<std::size_t> positions;
  const auto order = synth.netlist.gates_in_file_order();
  for (NetId d : d_nets)
    for (std::size_t pos = 0; pos < order.size(); ++pos)
      if (synth.netlist.gate(order[pos]).output == d) positions.push_back(pos);
  ASSERT_EQ(positions.size(), d_nets.size());
  for (std::size_t i = 1; i < positions.size(); ++i)
    EXPECT_EQ(positions[i], positions[i - 1] + 1);
}

TEST(Synth, SharedSubexpressionsEmitOnce) {
  Module m("share");
  const auto a = m.add_input("A", 8);
  const auto b = m.add_input("B", 8);
  const auto shared = bit_xor(a, b);  // one Expr node reused twice
  m.add_register("R1", 8);
  m.add_register("R2", 8);
  m.set_next("R1", bit_and(shared, a));
  m.set_next("R2", bit_or(shared, b));
  const auto synth = synthesize(m);

  std::size_t xor_count = 0;
  for (std::size_t i = 0; i < synth.netlist.gate_count(); ++i)
    if (synth.netlist.gate(synth.netlist.gate_id_at(i)).type == GateType::kXor)
      ++xor_count;
  EXPECT_EQ(xor_count, 8u);  // shared emitted once, not twice
}

TEST(Synth, RejectsIncompleteModule) {
  Module m("bad");
  m.add_register("r", 4);
  EXPECT_THROW(synthesize(m), std::invalid_argument);
}

// The core property: gate-level behaviour == word-level semantics, across
// random stimulus and several clock cycles.
class SynthCoSim : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SynthCoSim, MatchesInterpreterOverRandomRuns) {
  const Module m = datapath_module();
  const auto synth = synthesize(m);
  CoSim cosim(m, synth);
  Rng rng(GetParam());
  cosim.set_register("HOLD", rng.next_u64() & 0xFF);
  cosim.set_register("ACC", rng.next_u64() & 0xFF);
  cosim.set_register("CNT", rng.next_u64() & 0xF);
  cosim.set_register("SHIFTY", rng.next_u64() & 0xF);
  for (int cycle = 0; cycle < 12; ++cycle) {
    cosim.set_input("DIN", rng.next_u64() & 0xFF);
    cosim.set_input("SEL", rng.next_u64() & 1);
    cosim.check_and_step();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthCoSim,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace netrev::rtl
