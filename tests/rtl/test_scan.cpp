#include "rtl/scan.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "itc/family.h"
#include "netlist/validate.h"
#include "rtl/module.h"
#include "rtl/synth.h"
#include "sim/simulator.h"

namespace netrev::rtl {
namespace {

using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

Netlist small_design() {
  Module m("scan_demo");
  const auto din = m.add_input("DIN", 4);
  const auto r = m.add_register("R", 4);
  m.set_next("R", bit_xor(r, din));
  m.add_output("OUT", r);
  return synthesize(m).netlist;
}

TEST(Scan, InsertsOneMuxPerFlop) {
  const Netlist nl = small_design();
  const auto scanned = insert_scan_chain(nl);
  EXPECT_EQ(scanned.muxes_inserted, nl.flop_count());
  EXPECT_EQ(scanned.netlist.flop_count(), nl.flop_count());
  EXPECT_TRUE(scanned.scan_enable.is_valid());
  EXPECT_EQ(scanned.netlist.net(scanned.scan_enable).name, "SCAN_EN");
}

TEST(Scan, ResultValidates) {
  const auto scanned = insert_scan_chain(small_design());
  const auto report = netlist::validate(scanned.netlist);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Scan, FunctionalModeMatchesOriginal) {
  const Netlist original = small_design();
  const auto scanned = insert_scan_chain(original);

  sim::Simulator sim_orig(original);
  sim::Simulator sim_scan(scanned.netlist);
  sim_scan.set_input(scanned.scan_enable, false);
  sim_scan.set_input(scanned.scan_in, false);

  Rng rng(42);
  // Mirror states and inputs, run cycles, compare every flop.
  std::vector<NetId> q_orig, q_scan;
  for (std::size_t i = 0; i < original.net_count(); ++i) {
    const NetId id = original.net_id_at(i);
    if (!original.is_flop_output(id)) continue;
    q_orig.push_back(id);
    q_scan.push_back(*scanned.netlist.find_net(original.net(id).name));
  }
  for (NetId pi_net : original.primary_inputs()) {
    const bool v = rng.next_bool();
    sim_orig.set_input(pi_net, v);
    sim_scan.set_input(*scanned.netlist.find_net(original.net(pi_net).name), v);
  }
  for (std::size_t k = 0; k < q_orig.size(); ++k) {
    const bool v = rng.next_bool();
    sim_orig.set_state(q_orig[k], v);
    sim_scan.set_state(q_scan[k], v);
  }
  for (int cycle = 0; cycle < 6; ++cycle) {
    sim_orig.eval();
    sim_scan.eval();
    for (std::size_t k = 0; k < q_orig.size(); ++k)
      EXPECT_EQ(sim_orig.value(q_orig[k]), sim_scan.value(q_scan[k]))
          << "cycle " << cycle << " flop " << k;
    sim_orig.step();
    sim_scan.step();
  }
}

TEST(Scan, ShiftModeThreadsTheChain) {
  const auto scanned = insert_scan_chain(small_design());
  sim::Simulator sim(scanned.netlist);
  for (NetId pi_net : scanned.netlist.primary_inputs())
    sim.set_input(pi_net, false);
  sim.set_input(scanned.scan_enable, true);

  // Clear the chain, then shift in a single 1 and watch it emerge after
  // flop_count cycles.
  std::vector<NetId> flops;
  for (std::size_t i = 0; i < scanned.netlist.net_count(); ++i) {
    const NetId id = scanned.netlist.net_id_at(i);
    if (scanned.netlist.is_flop_output(id)) sim.set_state(id, false);
  }
  sim.set_input(scanned.scan_in, true);
  sim.eval();
  sim.step();
  sim.set_input(scanned.scan_in, false);
  const std::size_t chain_length = scanned.netlist.flop_count();
  for (std::size_t k = 1; k < chain_length; ++k) {
    sim.eval();
    EXPECT_FALSE(sim.value(scanned.scan_out));
    sim.step();
  }
  sim.eval();
  EXPECT_TRUE(sim.value(scanned.scan_out));
}

TEST(Scan, RejectsFloplessDesigns) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  nl.mark_primary_output(a);
  EXPECT_THROW(insert_scan_chain(nl), std::invalid_argument);
}

TEST(Scan, RejectsReservedNames) {
  Netlist nl = small_design();
  nl.add_net("SCAN_EN");
  EXPECT_THROW(insert_scan_chain(nl), std::invalid_argument);
}

TEST(Scan, WorksOnFamilyBenchmark) {
  const auto bench = itc::build_benchmark("b03s");
  const auto scanned = insert_scan_chain(bench.netlist);
  EXPECT_TRUE(netlist::validate(scanned.netlist).ok());
  EXPECT_EQ(scanned.muxes_inserted, 30u);
}

}  // namespace
}  // namespace netrev::rtl
