#include "rtl/expr.h"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>

namespace netrev::rtl {
namespace {

// Evaluation harness backed by name->value maps.
struct Env {
  std::map<std::string, std::uint64_t> inputs;
  std::map<std::string, std::uint64_t> regs;

  EvalEnv make() {
    EvalEnv env;
    env.context = this;
    env.lookup_input = [](const std::string& name, void* ctx) {
      return static_cast<Env*>(ctx)->inputs.at(name);
    };
    env.lookup_reg = [](const std::string& name, void* ctx) {
      return static_cast<Env*>(ctx)->regs.at(name);
    };
    return env;
  }
};

TEST(Expr, ConstantTruncatesToWidth) {
  const auto c = constant(0x1FF, 8);
  Env env;
  EXPECT_EQ(evaluate(*c, env.make()), 0xFFu);
}

TEST(Expr, InputAndRegLookups) {
  Env env;
  env.inputs["a"] = 5;
  env.regs["r"] = 9;
  EXPECT_EQ(evaluate(*input("a", 4), env.make()), 5u);
  EXPECT_EQ(evaluate(*reg_ref("r", 4), env.make()), 9u);
}

TEST(Expr, BitwiseOps) {
  Env env;
  env.inputs["a"] = 0b1100;
  env.inputs["b"] = 0b1010;
  const auto a = input("a", 4), b = input("b", 4);
  EXPECT_EQ(evaluate(*bit_and(a, b), env.make()), 0b1000u);
  EXPECT_EQ(evaluate(*bit_or(a, b), env.make()), 0b1110u);
  EXPECT_EQ(evaluate(*bit_xor(a, b), env.make()), 0b0110u);
  EXPECT_EQ(evaluate(*bit_not(a), env.make()), 0b0011u);
}

TEST(Expr, AddSubWrapAtWidth) {
  Env env;
  env.inputs["a"] = 0xF0;
  env.inputs["b"] = 0x20;
  const auto a = input("a", 8), b = input("b", 8);
  EXPECT_EQ(evaluate(*add(a, b), env.make()), 0x10u);
  EXPECT_EQ(evaluate(*sub(b, a), env.make()), 0x30u);
}

TEST(Expr, EqIsOneBit) {
  Env env;
  env.inputs["a"] = 7;
  env.inputs["b"] = 7;
  const auto e = eq(input("a", 4), input("b", 4));
  EXPECT_EQ(e->width(), 1u);
  EXPECT_EQ(evaluate(*e, env.make()), 1u);
  env.inputs["b"] = 6;
  EXPECT_EQ(evaluate(*e, env.make()), 0u);
}

TEST(Expr, MuxSelectsArm) {
  Env env;
  env.inputs["s"] = 0;
  env.inputs["a"] = 3;
  env.inputs["b"] = 12;
  const auto m = mux(input("s", 1), input("a", 4), input("b", 4));
  EXPECT_EQ(evaluate(*m, env.make()), 3u);
  env.inputs["s"] = 1;
  EXPECT_EQ(evaluate(*m, env.make()), 12u);
}

TEST(Expr, SliceAndConcat) {
  Env env;
  env.inputs["a"] = 0b110100;
  const auto a = input("a", 6);
  EXPECT_EQ(evaluate(*slice(a, 2, 3), env.make()), 0b101u);
  const auto cat = concat(slice(a, 0, 2), slice(a, 4, 2));
  EXPECT_EQ(cat->width(), 4u);
  EXPECT_EQ(evaluate(*cat, env.make()), 0b1100u);  // high<<2 | low
}

TEST(Expr, FactoryValidation) {
  EXPECT_THROW(constant(0, 0), std::invalid_argument);
  EXPECT_THROW(constant(0, 65), std::invalid_argument);
  EXPECT_THROW(input("", 4), std::invalid_argument);
  EXPECT_THROW(bit_and(input("a", 4), input("b", 5)), std::invalid_argument);
  EXPECT_THROW(mux(input("s", 2), input("a", 4), input("b", 4)),
               std::invalid_argument);
  EXPECT_THROW(mux(input("s", 1), input("a", 4), input("b", 5)),
               std::invalid_argument);
  EXPECT_THROW(slice(input("a", 4), 2, 3), std::invalid_argument);
  EXPECT_THROW(slice(input("a", 4), 0, 0), std::invalid_argument);
}

TEST(Expr, LessThanIsUnsigned) {
  Env env;
  env.inputs["a"] = 3;
  env.inputs["b"] = 12;
  const auto cmp = lt(input("a", 4), input("b", 4));
  EXPECT_EQ(cmp->width(), 1u);
  EXPECT_EQ(evaluate(*cmp, env.make()), 1u);
  env.inputs["a"] = 12;
  env.inputs["b"] = 12;
  EXPECT_EQ(evaluate(*cmp, env.make()), 0u);
  env.inputs["b"] = 11;
  EXPECT_EQ(evaluate(*cmp, env.make()), 0u);
}

TEST(Expr, ShiftsByConstant) {
  Env env;
  env.inputs["a"] = 0b1011;
  const auto a = input("a", 4);
  EXPECT_EQ(evaluate(*shl(a, 1), env.make()), 0b0110u);
  EXPECT_EQ(evaluate(*shr(a, 2), env.make()), 0b0010u);
  EXPECT_EQ(evaluate(*shl(a, 0), env.make()), 0b1011u);
}

TEST(Expr, ShiftValidation) {
  EXPECT_THROW(shl(input("a", 4), 4), std::invalid_argument);
  EXPECT_THROW(shr(input("a", 4), 7), std::invalid_argument);
}

TEST(Expr, WidthsPropagate) {
  const auto a = input("a", 8);
  EXPECT_EQ(bit_not(a)->width(), 8u);
  EXPECT_EQ(add(a, constant(1, 8))->width(), 8u);
  EXPECT_EQ(concat(a, a)->width(), 16u);
}

}  // namespace
}  // namespace netrev::rtl
