#include "rtl/lower_ops.h"

#include <gtest/gtest.h>

#include "netlist/validate.h"
#include "sim/simulator.h"

namespace netrev::rtl {
namespace {

using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

struct Fixture {
  Netlist nl{"lower"};
  NetNamer namer{nl, 100};
  NetId a, b, s;

  Fixture() {
    a = nl.add_net("a");
    b = nl.add_net("b");
    s = nl.add_net("s");
    nl.mark_primary_input(a);
    nl.mark_primary_input(b);
    nl.mark_primary_input(s);
  }
};

TEST(NetNamer, FreshNamesAreSequentialUNames) {
  Fixture f;
  const NetId u100 = f.namer.fresh();
  const NetId u101 = f.namer.fresh();
  EXPECT_EQ(f.nl.net(u100).name, "U100");
  EXPECT_EQ(f.nl.net(u101).name, "U101");
}

TEST(NetNamer, SkipsTakenNames) {
  Fixture f;
  f.nl.add_net("U100");
  const NetId fresh = f.namer.fresh();
  EXPECT_EQ(f.nl.net(fresh).name, "U101");
}

TEST(NetNamer, BitNames) {
  EXPECT_EQ(bit_name("X", 0, 1), "X");
  EXPECT_EQ(bit_name("X", 2, 4), "X_2_");
  EXPECT_EQ(flop_output_name("R", 0, 1), "R_reg");
  EXPECT_EQ(flop_output_name("R", 3, 8), "R_reg_3_");
}

TEST(LowerOps, ImmediateBuildersEmitOneGateEach) {
  Fixture f;
  const NetId y = make_nand(f.namer, f.a, f.b);
  EXPECT_EQ(f.nl.gate_count(), 1u);
  const auto drv = f.nl.driver_of(y);
  ASSERT_TRUE(drv.has_value());
  EXPECT_EQ(f.nl.gate(*drv).type, GateType::kNand);
}

TEST(LowerOps, EmitOntoDrivesExistingNet) {
  Fixture f;
  const NetId target = f.nl.add_net("target");
  GateSpec spec{GateType::kOr, {f.a, f.b}};
  emit_onto(f.namer, target, spec);
  const auto drv = f.nl.driver_of(target);
  ASSERT_TRUE(drv.has_value());
  EXPECT_EQ(f.nl.gate(*drv).type, GateType::kOr);
}

TEST(LowerOps, Mux2SpecImplementsMux) {
  Fixture f;
  const NetId not_s = make_not(f.namer, f.s);
  const GateSpec root = mux2_spec(f.namer, f.s, f.a, f.b, not_s);
  const NetId y = emit(f.namer, root);
  f.nl.mark_primary_output(y);
  ASSERT_TRUE(netlist::validate(f.nl).ok());

  sim::Simulator sim(f.nl);
  for (int sv = 0; sv < 2; ++sv)
    for (int av = 0; av < 2; ++av)
      for (int bv = 0; bv < 2; ++bv) {
        sim.set_input(f.s, sv != 0);
        sim.set_input(f.a, av != 0);
        sim.set_input(f.b, bv != 0);
        sim.eval();
        EXPECT_EQ(sim.value(y), sv ? bv != 0 : av != 0)
            << "s=" << sv << " a=" << av << " b=" << bv;
      }
}

TEST(LowerOps, AndTreeReducesAllInputs) {
  Fixture f;
  std::vector<NetId> ins;
  for (int i = 0; i < 5; ++i) {
    ins.push_back(f.nl.add_net("i" + std::to_string(i)));
    f.nl.mark_primary_input(ins.back());
  }
  const NetId y = emit(f.namer, and_tree_spec(f.namer, ins));
  f.nl.mark_primary_output(y);

  sim::Simulator sim(f.nl);
  for (int mask = 0; mask < 32; ++mask) {
    for (int i = 0; i < 5; ++i)
      sim.set_input(ins[static_cast<std::size_t>(i)], (mask >> i) & 1);
    sim.eval();
    EXPECT_EQ(sim.value(y), mask == 31) << "mask " << mask;
  }
}

TEST(LowerOps, AndTreeSingleInputIsBuffer) {
  Fixture f;
  const NetId one[] = {f.a};
  const GateSpec spec = and_tree_spec(f.namer, one);
  EXPECT_EQ(spec.type, GateType::kBuf);
}

TEST(LowerOps, AndTreeRejectsEmpty) {
  Fixture f;
  EXPECT_THROW(and_tree_spec(f.namer, {}), ContractViolation);
}

}  // namespace
}  // namespace netrev::rtl
